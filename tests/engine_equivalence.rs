//! Cross-engine equivalence: every workload computes the same result
//! under the interpreter, the JIT, the threshold policy, the oracle,
//! and both register-IR engines — and matches its host-side reference
//! implementation.

use javart::experiments::runner::derive_oracle;
use javart::trace::CountingSink;
use javart::vm::{ExecMode, JitPolicy, SyncKind, Vm, VmConfig};
use javart::workloads::{suite_with_hello, Size};

#[test]
fn all_workloads_agree_across_engines() {
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        let expected = (spec.expected)(Size::Tiny);

        let configs: Vec<(&str, VmConfig)> = vec![
            ("interp", VmConfig::interpreter()),
            ("jit", VmConfig::jit()),
            (
                "threshold",
                VmConfig {
                    mode: ExecMode::Jit(JitPolicy::Threshold(4)),
                    ..VmConfig::default()
                },
            ),
            ("oracle", VmConfig::oracle(derive_oracle(&program))),
            ("ir-interp", VmConfig::ir_interp()),
            ("ir-jit", VmConfig::ir_jit()),
        ];
        for (label, cfg) in configs {
            let r = Vm::new(&program, cfg)
                .run(&mut CountingSink::new())
                .unwrap_or_else(|e| panic!("{}/{label}: {e}", spec.name));
            assert_eq!(
                r.exit_value,
                Some(expected),
                "{}/{label} diverged from the host reference",
                spec.name
            );
        }
    }
}

#[test]
fn all_workloads_agree_across_sync_engines() {
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        let expected = (spec.expected)(Size::Tiny);
        for sync in SyncKind::ALL {
            let r = Vm::new(&program, VmConfig::jit().with_sync(sync))
                .run(&mut CountingSink::new())
                .unwrap_or_else(|e| panic!("{}/{sync:?}: {e}", spec.name));
            assert_eq!(r.exit_value, Some(expected), "{}/{sync:?}", spec.name);
        }
    }
}

#[test]
fn ir_engines_observe_identically_to_the_stack_interpreter() {
    // The register IR is a cost plan, never an alternate executor:
    // every workload's full Observables — outcome, console output,
    // bytecode count, per-opcode histogram — must be bit-identical
    // between the stack interpreter and both IR engines.
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        let reference = Vm::new(&program, VmConfig::interpreter())
            .run_observed(&mut CountingSink::new())
            .observables;
        for (label, cfg) in [
            ("ir-interp", VmConfig::ir_interp()),
            ("ir-jit", VmConfig::ir_jit()),
        ] {
            let got = Vm::new(&program, cfg)
                .run_observed(&mut CountingSink::new())
                .observables;
            assert_eq!(
                reference, got,
                "{}/{label}: Observables diverged from the stack interpreter",
                spec.name
            );
        }
    }
}

#[test]
fn runs_are_bit_deterministic() {
    // Same program, same config => identical instruction counts and
    // per-phase breakdowns (the property every experiment relies on).
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        let ra = Vm::new(&program, VmConfig::jit()).run(&mut a).unwrap();
        let rb = Vm::new(&program, VmConfig::jit()).run(&mut b).unwrap();
        assert_eq!(a, b, "{}: trace diverged between runs", spec.name);
        assert_eq!(ra.exit_value, rb.exit_value);
        assert_eq!(ra.counters, rb.counters);
    }
}

#[test]
fn rebuilt_programs_are_identical() {
    // Program construction itself is deterministic.
    for spec in suite_with_hello() {
        let a = (spec.build)(Size::Tiny);
        let b = (spec.build)(Size::Tiny);
        assert_eq!(a.num_classes(), b.num_classes());
        for (ca, cb) in a.classes().iter().zip(b.classes()) {
            assert_eq!(ca, cb, "{}: class {} differs", spec.name, ca.name);
        }
    }
}
