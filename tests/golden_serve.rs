//! Golden-snapshot test for the multi-tenant fleet study.
//!
//! `tests/golden/serve_tiny.md` is the committed output of
//! `serve_study` at `Tiny` scale. Regenerating it must be
//! byte-identical — at one worker (the sequential path) and at
//! several worker counts — which pins down the traffic mix, the
//! measured cost model, the fleet-scaling simulation (throughput,
//! p50/p99/p999, shed counts, dedup rates), and the parallel
//! measurement phase's canonical-order merge.

use javart::experiments::{jobs, serve};
use javart::workloads::Size;

const GOLDEN: &str = include_str!("golden/serve_tiny.md");

#[test]
fn serve_study_tiny_is_byte_identical_at_any_worker_count() {
    for workers in [1, 2, 8] {
        jobs::set_jobs(workers);
        let md = serve::run(Size::Tiny).to_markdown();
        assert!(
            md == GOLDEN,
            "serve_study(Tiny) with {workers} worker(s) diverged from \
             tests/golden/serve_tiny.md (lengths: got {}, golden {}); \
             first differing byte at offset {:?}",
            md.len(),
            GOLDEN.len(),
            md.bytes().zip(GOLDEN.bytes()).position(|(a, b)| a != b),
        );
    }
    jobs::set_jobs(0);
}
