//! The one-pass stack-distance sweep engine must be *exactly*
//! equivalent to per-configuration `SplitCaches` simulation — not just
//! in aggregate, but per attribution slice (translate/rest and every
//! region) — for arbitrary synthetic streams and for every real
//! workload × mode at `tiny`.

use javart::cache::{CacheConfig, SplitCaches, SplitSweep};
use javart::experiments::runner::Mode;
use javart::experiments::{jobs::Workload, tape};
use javart::trace::{AccessKind, MemRef, NativeInst, Phase, Region, TraceSink};
use javart::workloads::{suite_with_hello, Size};
use jrt_testkit::forall;

/// The Figure 7 family: 8 KB, 32-byte lines, 1/2/4/8-way.
fn assoc_points() -> Vec<CacheConfig> {
    [1, 2, 4, 8]
        .iter()
        .map(|&a| CacheConfig::paper_assoc_sweep(a))
        .collect()
}

/// Asserts the sweep and the per-point caches agree on every counter
/// of every attribution slice, for both sides of the split.
fn assert_equivalent(sweep: &SplitSweep, pairs: &[SplitCaches], ctx: &str) {
    let iresults = sweep.icache().results();
    let dresults = sweep.dcache().results();
    for (k, pair) in pairs.iter().enumerate() {
        for (res, cache, side) in [
            (&iresults[k], pair.icache(), "I"),
            (&dresults[k], pair.dcache(), "D"),
        ] {
            let cfg = cache.config();
            assert_eq!(res.config(), cfg, "{ctx} {side} point {k}: config");
            assert_eq!(res.stats(), cache.stats(), "{ctx} {side} {cfg}: overall");
            assert_eq!(
                res.translate_stats(),
                cache.translate_stats(),
                "{ctx} {side} {cfg}: translate slice"
            );
            assert_eq!(
                res.rest_stats(),
                cache.rest_stats(),
                "{ctx} {side} {cfg}: rest slice"
            );
            for region in Region::ALL {
                assert_eq!(
                    res.region_stats(region),
                    cache.region_stats(region),
                    "{ctx} {side} {cfg}: {region} slice"
                );
            }
        }
    }
}

/// Draws an instruction whose pc and data address land in (or near)
/// the real regions, with enough aliasing to exercise conflict and
/// capacity misses at 8 KB.
fn arbitrary_access(rng: &mut jrt_testkit::Rng) -> NativeInst {
    // Mix region-resident addresses with out-of-region ones (which
    // attribute to no region slice) and way-stride aliases.
    let base = *rng.choose(&[
        javart::trace::layout::VM_TEXT_BASE,
        javart::trace::layout::CODE_CACHE_BASE,
        javart::trace::layout::CLASS_AREA_BASE,
        javart::trace::layout::HEAP_BASE,
        javart::trace::layout::STACK_BASE,
        0, // below every region
    ]);
    let addr = base + rng.u64_in(0..64 * 1024) / 4 * 4;
    let pc = javart::trace::layout::VM_TEXT_BASE + rng.u64_in(0..32 * 1024) / 4 * 4;
    let phase = *rng.choose(&Phase::ALL);
    let mut i = NativeInst::alu(pc, phase);
    if rng.bool() {
        i.mem = Some(MemRef {
            addr,
            size: 4,
            kind: if rng.bool() {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        });
    }
    i
}

/// Property: for arbitrary synthetic streams, the sweep matches one
/// `SplitCaches` per swept point on every attribution slice.
#[test]
fn sweep_matches_split_caches_on_synthetic_streams() {
    let points = assoc_points();
    forall!(cases = 48, seed = 0x5EE7, |rng| {
        let events = rng.vec(0..600, arbitrary_access);
        let mut sweep = SplitSweep::new(&points, &points);
        let mut pairs: Vec<SplitCaches> = points.iter().map(|&c| SplitCaches::new(c, c)).collect();
        for e in &events {
            sweep.accept(e);
            for p in &mut pairs {
                p.accept(e);
            }
        }
        assert_equivalent(&sweep, &pairs, "synthetic");
    });
}

/// Every workload × mode at `tiny`: the sweep consuming the decoded
/// blocks equals per-point `SplitCaches` replaying the tape, slice by
/// slice — the exactness guarantee behind the Figure 7 port.
#[test]
fn sweep_matches_split_caches_for_every_workload_and_mode() {
    let points = assoc_points();
    for spec in suite_with_hello() {
        let w: Workload = tape::workload(&spec, Size::Tiny);
        for mode in [Mode::Interp, Mode::Jit, Mode::Opt] {
            let mut sweep = SplitSweep::new(&points, &points);
            sweep.consume(&tape::decoded(&w, mode));
            let mut pairs: Vec<SplitCaches> =
                points.iter().map(|&c| SplitCaches::new(c, c)).collect();
            tape::replay(&w, mode, &mut pairs);
            assert_equivalent(&sweep, &pairs, &format!("{} {mode:?}", spec.name));
        }
    }
}

/// The line-size family used by Figure 8 (one pass per line size) must
/// also match, including the paper L1 geometry used by Table 3/Figure 5.
#[test]
fn sweep_matches_split_caches_across_line_sizes() {
    let spec = suite_with_hello().remove(0);
    let w = tape::workload(&spec, Size::Tiny);
    let blocks = tape::decoded(&w, Mode::Jit);
    let mut configs: Vec<(CacheConfig, CacheConfig)> = [16u32, 32, 64, 128]
        .iter()
        .map(|&l| {
            let c = CacheConfig::paper_line_sweep(l);
            (c, c)
        })
        .collect();
    configs.push((CacheConfig::paper_l1_inst(), CacheConfig::paper_l1_data()));
    for (icfg, dcfg) in configs {
        let mut sweep = SplitSweep::new(&[icfg], &[dcfg]);
        sweep.consume(&blocks);
        let mut pair = vec![SplitCaches::new(icfg, dcfg)];
        tape::replay(&w, Mode::Jit, &mut pair);
        assert_equivalent(&sweep, &pair, &format!("{icfg}/{dcfg}"));
    }
}
