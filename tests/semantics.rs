//! Opcode-level semantic coverage: every instruction of the ISA is
//! exercised end-to-end through small programs, under both engines.

use javart::bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};
use javart::trace::CountingSink;
use javart::vm::{Vm, VmConfig};

fn run_both(p: &Program) -> i32 {
    let a = Vm::new(p, VmConfig::interpreter())
        .run(&mut CountingSink::new())
        .expect("interp");
    let b = Vm::new(p, VmConfig::jit())
        .run(&mut CountingSink::new())
        .expect("jit");
    assert_eq!(a.exit_value, b.exit_value, "engines disagree");
    a.exit_value.expect("int result")
}

fn main_returning(body: impl FnOnce(&mut MethodAsm)) -> Program {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    body(&mut m);
    c.add_method(m);
    Program::build(vec![c], "Main", "main").expect("assembles")
}

#[test]
fn stack_shuffles() {
    // dup: 5 -> 5*5
    let p = main_returning(|m| {
        m.iconst(5).dup().imul().ireturn();
    });
    assert_eq!(run_both(&p), 25);

    // swap: 7 - 2 becomes 2 - 7
    let p = main_returning(|m| {
        m.iconst(7).iconst(2).swap().isub().ireturn();
    });
    assert_eq!(run_both(&p), 2 - 7);

    // dup_x1: a b -> b a b ; compute b - (a - b) = 2b - a
    let p = main_returning(|m| {
        m.iconst(10).iconst(3).dup_x1().isub().isub().ireturn();
    });
    assert_eq!(run_both(&p), 3 - (10 - 3));

    // pop discards
    let p = main_returning(|m| {
        m.iconst(1).iconst(99).pop().ireturn();
    });
    assert_eq!(run_both(&p), 1);
}

#[test]
fn shifts_and_logic_match_java() {
    // ishr on negatives is arithmetic
    let p = main_returning(|m| {
        m.iconst(-16).iconst(2).ishr().ireturn();
    });
    assert_eq!(run_both(&p), -4);

    // iushr on negatives is logical
    let p = main_returning(|m| {
        m.iconst(-1).iconst(28).iushr().ireturn();
    });
    assert_eq!(run_both(&p), 0xF);

    // shift counts mask to 5 bits
    let p = main_returning(|m| {
        m.iconst(1).iconst(33).ishl().ireturn();
    });
    assert_eq!(run_both(&p), 2);

    // irem keeps the dividend's sign
    let p = main_returning(|m| {
        m.iconst(-7).iconst(3).irem().ireturn();
    });
    assert_eq!(run_both(&p), -1);

    // ineg
    let p = main_returning(|m| {
        m.iconst(42).ineg().ireturn();
    });
    assert_eq!(run_both(&p), -42);

    // and / or / xor
    let p = main_returning(|m| {
        m.iconst(0b1100).iconst(0b1010).iand();
        m.iconst(0b0001).ior();
        m.iconst(0b1111).ixor();
        m.ireturn();
    });
    assert_eq!(run_both(&p), ((0b1100 & 0b1010) | 0b0001) ^ 0b1111);
}

#[test]
fn every_conditional_branch_direction() {
    // For each cond: (value, expect_taken). Branch to return 1 when
    // taken, 0 otherwise.
    type BranchFn = fn(&mut MethodAsm, javart::bytecode::Label);
    let cases: Vec<(BranchFn, i32, bool)> = vec![
        (
            |m, l| {
                m.if_eq(l);
            },
            0,
            true,
        ),
        (
            |m, l| {
                m.if_eq(l);
            },
            3,
            false,
        ),
        (
            |m, l| {
                m.if_ne(l);
            },
            3,
            true,
        ),
        (
            |m, l| {
                m.if_lt(l);
            },
            -1,
            true,
        ),
        (
            |m, l| {
                m.if_ge(l);
            },
            0,
            true,
        ),
        (
            |m, l| {
                m.if_gt(l);
            },
            0,
            false,
        ),
        (
            |m, l| {
                m.if_le(l);
            },
            0,
            true,
        ),
    ];
    for (k, (branch, value, expect_taken)) in cases.into_iter().enumerate() {
        let p = main_returning(|m| {
            let taken = m.new_label();
            m.iconst(value);
            branch(m, taken);
            m.iconst(0).ireturn();
            m.bind(taken);
            m.iconst(1).ireturn();
        });
        assert_eq!(run_both(&p), i32::from(expect_taken), "case {k}");
    }
}

#[test]
fn reference_comparisons() {
    let mut c = ClassAsm::new("Main");
    c.add_field("x");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    // Same object compares equal to itself; two objects differ;
    // null checks both ways. Encode results in bits.
    let (o1, o2, acc) = (0u8, 1u8, 2u8);
    m.iconst(0).istore(acc);
    m.new_obj("Main").astore(o1);
    m.new_obj("Main").astore(o2);
    let bit0 = m.new_label();
    let next1 = m.new_label();
    m.aload(o1).aload(o1).if_acmp_eq(bit0);
    m.goto(next1);
    m.bind(bit0);
    m.iload(acc).iconst(1).ior().istore(acc);
    m.bind(next1);
    let bit1 = m.new_label();
    let next2 = m.new_label();
    m.aload(o1).aload(o2).if_acmp_ne(bit1);
    m.goto(next2);
    m.bind(bit1);
    m.iload(acc).iconst(2).ior().istore(acc);
    m.bind(next2);
    let bit2 = m.new_label();
    let next3 = m.new_label();
    m.aconst_null().ifnull(bit2);
    m.goto(next3);
    m.bind(bit2);
    m.iload(acc).iconst(4).ior().istore(acc);
    m.bind(next3);
    let bit3 = m.new_label();
    let next4 = m.new_label();
    m.aload(o1).ifnonnull(bit3);
    m.goto(next4);
    m.bind(bit3);
    m.iload(acc).iconst(8).ior().istore(acc);
    m.bind(next4);
    m.iload(acc).ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    assert_eq!(run_both(&p), 0b1111);
}

#[test]
fn arrays_of_every_kind() {
    for (kind, store_val, expect) in [
        (ArrayKind::Byte, 200, 200), // raw slots (no sign narrowing model)
        (ArrayKind::Char, 0x41, 0x41),
        (ArrayKind::Int, -123456, -123456),
    ] {
        let p = main_returning(|m| {
            m.iconst(4).newarray(kind).astore(0);
            m.aload(0).iconst(2).iconst(store_val);
            m.op(javart::bytecode::Op::ArrStore(kind));
            m.aload(0).iconst(2);
            m.op(javart::bytecode::Op::ArrLoad(kind));
            m.aload(0).arraylength().iadd();
            m.ireturn();
        });
        assert_eq!(run_both(&p), expect + 4, "{kind:?}");
    }

    // Ref arrays hold objects.
    let mut c = ClassAsm::new("Main");
    c.add_field("v");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.iconst(3).newarray(ArrayKind::Ref).astore(0);
    m.new_obj("Main").astore(1);
    m.aload(1).iconst(77).putfield("Main", "v");
    m.aload(0).iconst(1).aload(1).aastore();
    m.aload(0).iconst(1).aaload().getfield("Main", "v");
    m.ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    assert_eq!(run_both(&p), 77);
}

#[test]
fn statics_and_instance_fields_through_inheritance() {
    let mut base = ClassAsm::new("Base");
    base.add_field("a");
    base.add_static_field("sa");
    let mut derived = ClassAsm::with_super("Derived", "Base");
    derived.add_field("b");

    let mut main = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.iconst(5).putstatic("Base", "sa");
    m.new_obj("Derived").astore(0);
    m.aload(0).iconst(11).putfield("Base", "a"); // inherited slot
    m.aload(0).iconst(17).putfield("Derived", "b");
    m.aload(0).getfield("Base", "a");
    m.aload(0).getfield("Derived", "b").iadd();
    m.getstatic("Base", "sa").iadd();
    m.ireturn();
    main.add_method(m);
    let p = Program::build(vec![base, derived, main], "Main", "main").unwrap();
    assert_eq!(run_both(&p), 5 + 11 + 17);
}

#[test]
fn invokespecial_bypasses_override() {
    let mut base = ClassAsm::new("Base");
    let mut f = MethodAsm::new_instance("f", 0).returns(RetKind::Int);
    f.iconst(1).ireturn();
    base.add_method(f);

    let mut derived = ClassAsm::with_super("Derived", "Base");
    let mut f2 = MethodAsm::new_instance("f", 0).returns(RetKind::Int);
    f2.iconst(2).ireturn();
    derived.add_method(f2);

    let mut main = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.new_obj("Derived").astore(0);
    // virtual -> 2 ; special (named class) -> 1 ; encode as 10*v + s
    m.aload(0).invokevirtual("Base", "f", 0, RetKind::Int);
    m.iconst(10).imul();
    m.aload(0).invokespecial("Base", "f", 0, RetKind::Int);
    m.iadd().ireturn();
    main.add_method(m);
    let p = Program::build(vec![base, derived, main], "Main", "main").unwrap();
    assert_eq!(run_both(&p), 21);
}

#[test]
fn tableswitch_default_and_bounds() {
    for (key, expect) in [(0, 100), (1, 200), (2, 300), (-5, -1), (99, -1)] {
        let p = main_returning(|m| {
            let (a, b, c) = (m.new_label(), m.new_label(), m.new_label());
            let d = m.new_label();
            m.iconst(key).tableswitch(0, d, &[a, b, c]);
            m.bind(a);
            m.iconst(100).ireturn();
            m.bind(b);
            m.iconst(200).ireturn();
            m.bind(c);
            m.iconst(300).ireturn();
            m.bind(d);
            m.iconst(-1).ireturn();
        });
        assert_eq!(run_both(&p), expect, "key {key}");
    }
}

#[test]
fn explicit_monitor_bytecodes() {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.new_obj("Main").astore(0);
    // Recursive enter/exit through the raw bytecodes.
    m.aload(0).monitorenter();
    m.aload(0).monitorenter();
    m.aload(0).monitorexit();
    m.aload(0).monitorexit();
    m.iconst(9).ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();

    let r = Vm::new(&p, VmConfig::jit())
        .run(&mut CountingSink::new())
        .unwrap();
    assert_eq!(r.exit_value, Some(9));
    assert_eq!(r.sync_stats.enters(), 2);
    assert_eq!(r.sync_stats.exits, 2);
    assert_eq!(
        r.sync_stats.case_counts[1], 1,
        "one shallow-recursive enter"
    );
}

#[test]
fn iinc_negative_and_wrapping_arithmetic() {
    let p = main_returning(|m| {
        m.iconst(i32::MAX).istore(0);
        m.iinc(0, 1); // wraps to i32::MIN
        m.iload(0).ireturn();
    });
    assert_eq!(run_both(&p), i32::MIN);

    let p = main_returning(|m| {
        m.iconst(10).istore(0);
        m.iinc(0, -25);
        m.iload(0).ireturn();
    });
    assert_eq!(run_both(&p), -15);
}
