//! The performance oracle's cost-model invariants, property-tested
//! over generated programs, plus the seeded-fault self-test proving
//! the oracle detects, attributes, and shrinks a perf regression.

use javart::fuzz::{
    fuzz_perf, gen_spec, lower, run_perf_case, spec_perf_violates, Coverage, PerfSabotage,
    MATRIX_LABELS, SIZED_LABEL,
};
use jrt_testkit::forall;

/// Every cost-model invariant holds on 256 generated cases across the
/// full engine matrix (plus the derived capacity-sized engine).
#[test]
fn cost_invariants_hold_on_generated_cases() {
    let cov = Coverage::new();
    forall!(cases = 256, seed = 0x9E4F_0001, |rng| {
        let spec = gen_spec(rng, &cov);
        let program = lower(&spec).expect("generated spec must lower");
        let pc = run_perf_case(&program, None);
        assert!(
            pc.base.divergent.is_empty(),
            "observable divergence: {:?}",
            pc.base.divergent
        );
        assert!(
            pc.violations.is_empty(),
            "cost-model violations:\n{}",
            pc.violations
                .iter()
                .map(|v| format!("  {} / {}: {}", v.label, v.invariant, v.detail))
                .collect::<Vec<_>>()
                .join("\n")
        );
    });
}

/// A corrupted cost vector on any engine is detected and attributed to
/// that engine, for every matrix label.
#[test]
fn seeded_fault_detected_on_every_label() {
    let cov = Coverage::new();
    let mut rng = jrt_testkit::Rng::for_case(0x9E4F_0002, 0);
    let spec = gen_spec(&mut rng, &cov);
    let program = lower(&spec).expect("generated spec must lower");
    assert!(run_perf_case(&program, None).violations.is_empty());
    for label in MATRIX_LABELS {
        let pc = run_perf_case(&program, Some(&PerfSabotage { mode: label }));
        assert!(
            pc.violations.iter().any(|v| v.label == label),
            "{label}: seeded fault not attributed; got {:?}",
            pc.violations
                .iter()
                .map(|v| (v.label, v.invariant))
                .collect::<Vec<_>>()
        );
    }
}

/// End-to-end seeded fault through [`fuzz_perf`]: the report carries
/// the violations, names the invariant, and the shrunken reproducer
/// still violates under the same sabotage.
#[test]
fn seeded_fault_shrinks_to_minimal_reproducer() {
    let sabotage = PerfSabotage { mode: "tiered" };
    let report = fuzz_perf(0x9E4F_0003, 4, 2, Some(sabotage));
    let perf = report.perf.as_ref().expect("perf section present");
    assert!(!perf.violations.is_empty(), "seeded fault went undetected");
    assert!(
        perf.violations
            .iter()
            .any(|v| v.label == "tiered" && v.invariant == "translate-attribution"),
        "expected a tiered translate-attribution violation: {:?}",
        perf.violations
            .iter()
            .map(|v| (v.label, v.invariant))
            .collect::<Vec<_>>()
    );
    for v in &perf.violations {
        assert!(
            v.minimized.size() <= v.original_size,
            "shrink grew the reproducer: {} -> {}",
            v.original_size,
            v.minimized.size()
        );
        assert!(
            spec_perf_violates(&v.minimized, Some(&sabotage)),
            "minimized reproducer no longer violates"
        );
    }
    // The render names the violation with replay coordinates.
    let text = report.render(0x9E4F_0003);
    assert!(text.contains("perf violation at case"), "{text}");
    assert!(text.contains("tiered: translate-attribution"), "{text}");
}

/// The perf report is byte-identical at any `--jobs` count, and its
/// totals section is populated for every engine, including the derived
/// capacity-sized one.
#[test]
fn perf_report_deterministic_and_totaled() {
    let a = fuzz_perf(0x9E4F_0004, 64, 1, None);
    let b = fuzz_perf(0x9E4F_0004, 64, 8, None);
    assert_eq!(a.render(0x9E4F_0004), b.render(0x9E4F_0004));
    assert!(a.divergences.is_empty());
    let perf = a.perf.as_ref().expect("perf section present");
    assert!(perf.violations.is_empty());
    let totals = &perf.totals;
    let get = |label: &str| {
        &totals
            .iter()
            .find(|(l, _)| *l == label)
            .unwrap_or_else(|| panic!("missing totals for {label}"))
            .1
    };
    // Interpreters execute but never translate; JIT engines translate;
    // the pathological bounded caches churn; the sized cache matches
    // the unbounded JIT exactly.
    assert!(get("interp").bytecodes > 0);
    assert_eq!(get("interp").translate_insts, 0);
    assert!(get("jit").translate_insts > 0);
    assert!(get("cc-lru").code_evictions > 0);
    assert_eq!(get(SIZED_LABEL), get("jit"));
    // 64 cases exercise the whole matrix: every engine saw work.
    for (label, c) in totals {
        assert!(c.bytecodes > 0, "{label}: no executed work in totals");
        assert!(c.icache_misses > 0, "{label}: cache sweep not wired");
    }
}
