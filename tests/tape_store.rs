//! On-disk tape store properties: persisting a tape as an append-only
//! segment file and streaming it back must reproduce the exact event
//! sequence, and corruption must be *detected* (an error, never a
//! panic or silently wrong events).

use std::path::PathBuf;

use javart::trace::{
    AccessKind, CtrlInfo, DiskTape, InstClass, MemRef, NativeInst, Phase, RecordingSink,
    StoreError, Tape, TraceSink,
};
use javart::workloads::Size;
use jrt_testkit::forall;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jrt-tape-store-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Draws a fully random instruction event — same adversarial
/// distribution as the in-memory round-trip suite.
fn arbitrary_inst(rng: &mut jrt_testkit::Rng) -> NativeInst {
    let mut i = NativeInst::new(
        rng.next_u64(),
        *rng.choose(&InstClass::ALL),
        *rng.choose(&Phase::ALL),
    );
    if rng.bool() {
        i.mem = Some(MemRef {
            addr: rng.next_u64(),
            size: rng.u8(),
            kind: if rng.bool() {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        });
    }
    if rng.bool() {
        i.ctrl = Some(CtrlInfo {
            target: rng.next_u64(),
            taken: rng.bool(),
        });
    }
    if rng.bool() {
        i.dst = Some(rng.u8());
    }
    if rng.bool() {
        i.src1 = Some(rng.u8());
    }
    if rng.bool() {
        i.src2 = Some(rng.u8());
    }
    i
}

/// Arbitrary streams survive record → persist → open → streamed
/// replay byte-for-byte: every event equals its in-memory twin.
#[test]
fn persisted_streams_replay_exactly() {
    let dir = tmp_dir("prop");
    forall!(cases = 48, seed = 0xD15C, |rng| {
        let events = rng.vec(0..500, arbitrary_inst);
        let tape = Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        });

        let path = dir.join("prop.tape");
        DiskTape::write(&path, &tape).expect("persist");
        let disk = DiskTape::open(&path).expect("reopen");
        assert_eq!(disk.len(), tape.len());
        assert_eq!(disk.fingerprint(), {
            javart::trace::store::fingerprint(tape.len(), tape.segments())
        });

        let mut mem = RecordingSink::new();
        tape.replay(&mut mem);
        let mut streamed = RecordingSink::new();
        disk.replay(&mut streamed).expect("streamed replay");
        assert_eq!(streamed.events, mem.events);
        assert_eq!(streamed.events, events);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// A multi-segment real-workload tape streams back exactly, both in
/// full and per segment range.
#[test]
fn workload_tape_streams_from_disk_exactly() {
    use javart::experiments::runner::{run_mode, Mode};

    let dir = tmp_dir("workload");
    let spec = javart::workloads::suite()
        .into_iter()
        .find(|s| s.name == "db")
        .unwrap();
    let program = (spec.build)(Size::Tiny);
    let tape = Tape::record(|rec| {
        run_mode(&program, Mode::Jit, rec);
    });
    // Tile it so the persisted tape has several segments to range over.
    let tiled = tape.tiled(3, 1 << 20);
    let path = dir.join("db.tape");
    let disk = DiskTape::write(&path, &tiled).expect("persist");
    assert!(disk.segments().len() >= 3);

    let mut mem = RecordingSink::new();
    tiled.replay(&mut mem);
    let mut streamed = RecordingSink::new();
    disk.replay(&mut streamed).expect("streamed replay");
    assert_eq!(streamed.events, mem.events);

    // Per-range replays concatenate to the full stream.
    let mut spliced = RecordingSink::new();
    let nsegs = disk.segments().len();
    for k in 0..nsegs {
        disk.replay_range(k..k + 1, &mut spliced).expect("range");
    }
    assert_eq!(spliced.events, mem.events);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipping one payload byte is detected by the per-segment content
/// hash: replay returns `StoreError::Corrupt`, it does not panic and
/// does not emit a wrong stream.
#[test]
fn corrupted_segment_is_detected_not_replayed() {
    let dir = tmp_dir("corrupt");
    let tape = Tape::record(|rec| {
        for k in 0u64..5000 {
            rec.accept(&NativeInst::load(
                0x1000 + 4 * k,
                0x2000_0000 + 8 * (k % 512),
                4,
                Phase::NativeExec,
            ));
        }
    });
    let path = dir.join("c.tape");
    let disk = DiskTape::write(&path, &tape).expect("persist");

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = 8 + (bytes.len() - 8) / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let mut sink = RecordingSink::new();
    match disk.replay(&mut sink) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("hash"), "message: {msg}"),
        other => panic!("corruption not detected: {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A truncated index file is rejected at `open` time with an error.
#[test]
fn truncated_index_is_rejected() {
    let dir = tmp_dir("trunc");
    let tape = Tape::record(|rec| {
        for k in 0u64..500 {
            rec.accept(&NativeInst::alu(0x1000 + 4 * k, Phase::NativeExec));
        }
    });
    let path = dir.join("t.tape");
    DiskTape::write(&path, &tape).expect("persist");

    let idx = path.with_file_name("t.tape.idx");
    let bytes = std::fs::read(&idx).unwrap();
    std::fs::write(&idx, &bytes[..bytes.len() - 9]).unwrap();
    assert!(DiskTape::open(&path).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
