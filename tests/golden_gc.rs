//! Golden-snapshot test for the generational-GC study.
//!
//! `tests/golden/gc_tiny.md` is the committed output of `gc_study` at
//! `Tiny` scale. Regenerating it must be byte-identical at several
//! worker counts, which pins down the collection schedule (minor
//! counts, copied bytes), the card-barrier instruction overhead, the
//! Gc/GcBarrier cache-slice miss attribution, and the cross-collector
//! equivalence verdict. The study's rows must also show real
//! collector work — a golden file full of zeros would pin nothing.

use javart::experiments::{gc_study, jobs};
use javart::workloads::Size;

const GOLDEN: &str = include_str!("golden/gc_tiny.md");

#[test]
fn gc_study_tiny_is_byte_identical_at_any_worker_count() {
    for workers in [1, 2, 8] {
        jobs::set_jobs(workers);
        let study = gc_study::run(Size::Tiny);
        for r in &study.rows {
            assert!(r.minors > 0, "{}: no minor collections", r.name);
            assert!(r.barrier_insts > 0, "{}: no write-barrier traffic", r.name);
        }
        assert!(
            study.all_equivalent(),
            "a collector configuration leaked into observables"
        );
        let md = study.to_markdown();
        assert!(
            md == GOLDEN,
            "gc_study(Tiny) with {workers} worker(s) diverged from \
             tests/golden/gc_tiny.md (lengths: got {}, golden {}); \
             first differing byte at offset {:?}",
            md.len(),
            GOLDEN.len(),
            md.bytes().zip(GOLDEN.bytes()).position(|(a, b)| a != b),
        );
    }
    jobs::set_jobs(0);
}
