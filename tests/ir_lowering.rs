//! Stack-to-register lowering over real workload programs.
//!
//! The `jrt-ir` unit tests pin micro-shapes (a quad fusing to one
//! instruction, constants folding through a store). This suite runs
//! the lowering pass over every method of every workload program and
//! checks the whole-program properties the IR engines rely on:
//! lowering is deterministic, the per-pc plan exactly partitions the
//! method, the encoded word stream matches the plan's offsets, and
//! each optimization pass actually fires somewhere in the suite.

use javart::ir::{lower, IrMethod, PcPlan};
use javart::workloads::{suite_with_hello, Size};

/// Every non-native method of every workload program, lowered.
fn lowered_suite() -> Vec<(String, Vec<u8>, IrMethod)> {
    let mut out = Vec::new();
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        for class in program.classes() {
            for m in &class.methods {
                if m.flags.is_native {
                    continue;
                }
                let ir = lower(&m.code)
                    .unwrap_or_else(|e| panic!("{}/{}.{}: {e}", spec.name, class.name, m.name));
                out.push((
                    format!("{}/{}.{}", spec.name, class.name, m.name),
                    m.code.clone(),
                    ir,
                ));
            }
        }
    }
    out
}

#[test]
fn lowering_is_deterministic() {
    // Same bytecode in => bit-identical IR out, down to the encoded
    // word stream and the disassembly listing.
    for (name, code, first) in lowered_suite() {
        let second = lower(&code).unwrap();
        assert_eq!(first.insts, second.insts, "{name}: instruction stream");
        assert_eq!(first.stats, second.stats, "{name}: stats");
        assert_eq!(
            first.encode_words(),
            second.encode_words(),
            "{name}: encoding"
        );
        assert_eq!(first.disasm(), second.disasm(), "{name}: disassembly");
    }
}

#[test]
fn plan_partitions_every_method() {
    for (name, code, ir) in lowered_suite() {
        let s = ir.stats;
        // The three plan kinds exactly partition the bytecodes.
        assert_eq!(
            s.bytecodes,
            s.ir_insts + s.covered + s.elided,
            "{name}: plan does not partition the method"
        );
        // One IR instruction per Exec pc, and the stats agree.
        assert_eq!(ir.insts.len() as u32, s.ir_insts, "{name}: inst count");
        // Walk the decoded instruction boundaries: every Exec pc must
        // carry an instruction, every non-Exec pc must not, and the
        // Exec word offsets must tile the encoded stream in order.
        let mut pc = 0u32;
        let mut expect_off = 0u32;
        while (pc as usize) < code.len() {
            let (op, len) = javart::bytecode::Op::decode(&code, pc as usize)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            match ir.plan_at(pc) {
                PcPlan::Exec { word_off, words } => {
                    assert_eq!(word_off, expect_off, "{name}@{pc}: {op:?} off");
                    assert!(words > 0, "{name}@{pc}: zero-width inst");
                    assert!(ir.inst_at(pc).is_some(), "{name}@{pc}: missing inst");
                    expect_off += u32::from(words);
                }
                PcPlan::Covered | PcPlan::Elided => {
                    assert!(ir.inst_at(pc).is_none(), "{name}@{pc}: stray inst");
                }
            }
            pc += len as u32;
        }
        assert_eq!(expect_off, s.total_words, "{name}: words don't tile");
        assert_eq!(
            ir.encode_words().len() as u32,
            s.total_words,
            "{name}: encoding length"
        );
        // Branch-target mapping is monotonic and in range.
        let mut last = 0u32;
        for p in 0..=pc {
            let t = ir.word_target(p);
            assert!(t >= last && t <= s.total_words, "{name}@{p}: target {t}");
            last = t;
        }
    }
}

#[test]
fn every_pass_fires_somewhere_in_the_suite() {
    let suite = lowered_suite();
    let sum = |f: fn(&IrMethod) -> u32| suite.iter().map(|(_, _, ir)| f(ir)).sum::<u32>();
    let bytecodes = sum(|ir| ir.stats.bytecodes);
    let ir_insts = sum(|ir| ir.stats.ir_insts);
    assert!(
        ir_insts < bytecodes,
        "lowering saved no dispatches: {ir_insts} >= {bytecodes}"
    );
    assert!(sum(|ir| ir.stats.fused) > 0, "no operand ever fused");
    assert!(sum(|ir| ir.stats.folded) > 0, "no constant ever folded");
    assert!(
        sum(|ir| ir.stats.loads_forwarded) > 0,
        "no redundant load ever eliminated"
    );
    assert!(sum(|ir| ir.stats.covered) > 0, "no pc ever covered");
    assert!(sum(|ir| ir.stats.elided) > 0, "no pc ever elided");
}
