//! Toolchain round-trip properties over *generated* programs, plus
//! the asserted negative suite.
//!
//! Every program the fuzzer's generator emits must assemble, verify,
//! lower deterministically, survive an encode → decode → encode
//! round-trip byte-for-byte, and disassemble stably. And the
//! verifier must reject each of its 13 documented error variants —
//! asserted one by one, not sampled.

use javart::bytecode::{disasm, ClassAsm, Op, Program};
use javart::fuzz::{gen_spec, lower, neg, Coverage};
use jrt_testkit::forall;

/// Decodes a method's code stream back into ops.
fn decode_all(code: &[u8]) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut pc = 0;
    while pc < code.len() {
        let (op, len) = Op::decode(code, pc).expect("verified code must decode");
        ops.push(op);
        pc += len;
    }
    ops
}

#[test]
fn generated_programs_roundtrip_through_the_toolchain() {
    forall!(cases = 64, seed = 0xD1FF_0001, |rng| {
        let spec = gen_spec(rng, &Coverage::new());

        // Lowering is a pure function of the spec.
        let once: Vec<_> = javart::fuzz::lower::lower_classes(&spec)
            .into_iter()
            .map(ClassAsm::finish)
            .collect();
        let twice: Vec<_> = javart::fuzz::lower::lower_classes(&spec)
            .into_iter()
            .map(ClassAsm::finish)
            .collect();
        assert_eq!(once, twice, "lowering is nondeterministic");

        // Every generated program verifies.
        let program = lower(&spec).expect("generated spec failed to verify");

        for class in program.classes() {
            for def in &class.methods {
                if def.flags.is_native {
                    continue;
                }
                // encode -> decode -> encode is a byte-level fixed
                // point: decode loses nothing the encoder needs.
                let ops = decode_all(&def.code);
                let mut reencoded = Vec::with_capacity(def.code.len());
                for op in &ops {
                    op.encode(&mut reencoded);
                }
                assert_eq!(
                    reencoded, def.code,
                    "re-encoding changed {}::{}",
                    class.name, def.name
                );
                // Disassembly succeeds on anything the verifier
                // accepted, and is stable.
                let text = disasm::disassemble(def, &class.pool)
                    .expect("verified method failed to disassemble");
                let again = disasm::disassemble(def, &class.pool).unwrap();
                assert_eq!(text, again);
                assert!(!text.is_empty());
            }
        }
    });
}

#[test]
fn reassembled_programs_link_and_verify_again() {
    // asm -> verify -> (decode/encode) -> link again: the relink of
    // the already-assembled classes reproduces the same program.
    forall!(cases = 16, seed = 0xD1FF_0002, |rng| {
        let spec = gen_spec(rng, &Coverage::new());
        let classes: Vec<_> = javart::fuzz::lower::lower_classes(&spec)
            .into_iter()
            .map(ClassAsm::finish)
            .collect();
        let relinked = Program::link(classes, "Main", "main");
        assert!(relinked.is_ok(), "relink failed: {:?}", relinked.err());
    });
}

#[test]
fn verifier_rejects_all_thirteen_error_variants() {
    let mut cov = Coverage::new();
    let hits = neg::exercise(&mut cov);
    let names: Vec<&str> = hits.iter().map(|(n, _)| *n).collect();
    assert_eq!(names, neg::VARIANTS.to_vec());
    assert_eq!(cov.verifier_errors.len(), 13);
    for v in neg::VARIANTS {
        assert_eq!(cov.verifier_errors.get(v), Some(&1), "missing {v}");
    }
}
