//! Sharded single-tape replay must be *exactly* equivalent to serial
//! replay — identical per-point, per-slice, per-region cache counters
//! and identical instruction-mix totals — for every workload × mode
//! at `tiny`, at every shard count, with shards cut at segment
//! boundaries exactly as the scale study cuts them.

use javart::cache::{CacheConfig, SplitSweep};
use javart::experiments::runner::{run_mode, Mode};
use javart::trace::{InstMix, Region, Tape};
use javart::workloads::{suite_with_hello, Size};

/// The Figure 7 family plus the paper's L1 points: several set-group
/// geometries so stitching is exercised across more than one shape.
fn points() -> (Vec<CacheConfig>, Vec<CacheConfig>) {
    let mut ipoints: Vec<CacheConfig> = [1, 2, 4, 8]
        .iter()
        .map(|&a| CacheConfig::paper_assoc_sweep(a))
        .collect();
    let mut dpoints = ipoints.clone();
    ipoints.push(CacheConfig::paper_l1_inst());
    dpoints.push(CacheConfig::paper_l1_data());
    (ipoints, dpoints)
}

/// Asserts two sweeps agree on every counter of every slice.
fn assert_sweeps_equal(a: &SplitSweep, b: &SplitSweep, ctx: &str) {
    for (x, y, side) in [
        (a.icache().results(), b.icache().results(), "I"),
        (a.dcache().results(), b.dcache().results(), "D"),
    ] {
        assert_eq!(x.len(), y.len(), "{ctx} {side}: point count");
        for (k, (r, s)) in x.iter().zip(y.iter()).enumerate() {
            assert_eq!(r.stats(), s.stats(), "{ctx} {side} point {k}: overall");
            assert_eq!(
                r.translate_stats(),
                s.translate_stats(),
                "{ctx} {side} point {k}: translate slice"
            );
            assert_eq!(
                r.rest_stats(),
                s.rest_stats(),
                "{ctx} {side} point {k}: rest slice"
            );
            for region in Region::ALL {
                assert_eq!(
                    r.region_stats(region),
                    s.region_stats(region),
                    "{ctx} {side} point {k}: {region} slice"
                );
            }
        }
    }
}

/// Splits `n` segments into `parts` contiguous ranges (the scale
/// study's partition rule).
fn partition(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.min(n).max(1);
    (0..parts)
        .map(|k| k * n / parts..(k + 1) * n / parts)
        .collect()
}

#[test]
fn sharded_replay_equals_serial_for_every_workload_and_mode() {
    let (ipoints, dpoints) = points();
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        for mode in [Mode::Interp, Mode::Jit, Mode::Opt] {
            let tape = Tape::record(|rec| {
                run_mode(&program, mode, rec);
            });

            let mut serial = (SplitSweep::new(&ipoints, &dpoints), InstMix::new());
            tape.replay(&mut serial);
            let (serial_sweep, serial_mix) = serial;

            let nsegs = tape.segments().len();
            for shards in [2usize, 4, 8] {
                let ctx = format!("{} {mode:?} x{shards}", spec.name);
                let mut stitched = SplitSweep::new(&ipoints, &dpoints);
                let mut mix = InstMix::new();
                for range in partition(nsegs, shards) {
                    let mut sink = (stitched.shard(), InstMix::new());
                    tape.replay_range(range, &mut sink);
                    stitched.absorb(&sink.0);
                    mix.merge(&sink.1);
                }
                assert_sweeps_equal(&stitched, &serial_sweep, &ctx);
                assert_eq!(mix, serial_mix, "{ctx}: instruction mix");
                assert_eq!(mix.total(), tape.len(), "{ctx}: mix total vs tape len");
            }
        }
    }
}
