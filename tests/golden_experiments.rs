//! Golden-snapshot test for the full experiment suite.
//!
//! `tests/golden/experiments_tiny.md` is the committed output of
//! `run_all` at `Tiny` scale. Regenerating it must be byte-identical
//! — at one worker (the sequential path) and at several worker
//! counts — which pins down both the experiment results themselves
//! and the parallel scheduler's canonical-order merge (DESIGN.md §5.4:
//! reports are bit-identical at any worker count).

use javart::experiments::{jobs, report};
use javart::workloads::Size;

const GOLDEN: &str = include_str!("golden/experiments_tiny.md");

#[test]
fn run_all_tiny_is_byte_identical_at_any_worker_count() {
    for workers in [1, 2, 8] {
        jobs::set_jobs(workers);
        let md = report::run_all(Size::Tiny).to_markdown();
        assert!(
            md == GOLDEN,
            "run_all(Tiny) with {workers} worker(s) diverged from \
             tests/golden/experiments_tiny.md (lengths: got {}, golden {}); \
             first differing byte at offset {:?}",
            md.len(),
            GOLDEN.len(),
            md.bytes().zip(GOLDEN.bytes()).position(|(a, b)| a != b),
        );
    }
    jobs::set_jobs(0);
}
