//! Property-based tests over the core invariants.

use javart::bytecode::{ClassAsm, MethodAsm, Program, RetKind};
use javart::cache::{Cache, CacheConfig};
use javart::sync::{EnterOutcome, FatLockEngine, OneBitLockEngine, SyncEngine, ThinLockEngine};
use javart::trace::{AccessKind, CountingSink, Phase};
use javart::vm::{Vm, VmConfig};
use jrt_testkit::forall;

/// A random arithmetic op on two stack values.
#[derive(Debug, Clone, Copy)]
enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

const ALL_BINOPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
];

impl BinOp {
    fn apply(self, a: i32, b: i32) -> i32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 31),
            BinOp::Shr => a.wrapping_shr(b as u32 & 31),
        }
    }

    fn emit(self, m: &mut MethodAsm) {
        match self {
            BinOp::Add => m.iadd(),
            BinOp::Sub => m.isub(),
            BinOp::Mul => m.imul(),
            BinOp::And => m.iand(),
            BinOp::Or => m.ior(),
            BinOp::Xor => m.ixor(),
            BinOp::Shl => m.ishl(),
            BinOp::Shr => m.ishr(),
        };
    }
}

/// Random expression chains evaluate identically on the host, the
/// interpreter, and the JIT.
#[test]
fn random_arithmetic_agrees_across_engines() {
    forall!(cases = 48, seed = 0xA1173, |rng| {
        let seed = rng.i32();
        let ops = rng.vec(1..40, |r| (*r.choose(&ALL_BINOPS), r.i32()));

        // Host evaluation.
        let mut host = seed;
        for (op, v) in &ops {
            host = op.apply(host, *v);
        }

        // Bytecode program.
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        m.iconst(seed);
        for (op, v) in &ops {
            m.iconst(*v);
            op.emit(&mut m);
        }
        m.ireturn();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").expect("assembles");

        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg)
                .run(&mut CountingSink::new())
                .expect("runs");
            assert_eq!(r.exit_value, Some(host));
        }
    });
}

/// The cache simulator agrees with a naive reference model
/// (fully-explicit LRU list) on an arbitrary access sequence.
#[test]
fn cache_matches_reference_model() {
    forall!(cases = 64, seed = 0xCAC4E, |rng| {
        let accesses = rng.vec(1..300, |r| (r.u64_in(0..4096), r.bool()));

        let cfg = CacheConfig::new(512, 32, 2); // 16 lines, 8 sets
        let mut cache = Cache::new(cfg);

        // Reference: per-set vector ordered most-recent-first.
        let sets = cfg.num_sets();
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        let mut model_misses = 0u64;

        for (addr, write) in &accesses {
            let kind = if *write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = cache.access(*addr, kind, Phase::Runtime);

            let line = addr / 32;
            let set = &mut model[(line % sets) as usize];
            match set.iter().position(|&l| l == line) {
                Some(i) => {
                    let l = set.remove(i);
                    set.insert(0, l);
                    assert!(out.hit, "model hit, cache missed at {addr:#x}");
                }
                None => {
                    model_misses += 1;
                    assert!(!out.hit, "model miss, cache hit at {addr:#x}");
                    set.insert(0, line);
                    if set.len() > cfg.assoc as usize {
                        set.pop();
                    }
                }
            }
        }
        assert_eq!(cache.stats().misses(), model_misses);
    });
}

/// All three lock engines agree on the *semantics* of an arbitrary
/// enter/exit sequence (who may proceed, recursion accounting),
/// differing only in cost.
#[test]
fn lock_engines_agree_semantically() {
    forall!(cases = 64, seed = 0x10C5, |rng| {
        let script = rng.vec(1..120, |r| {
            (r.u64_in(0..4) as u32, r.u64_in(0..3) as u16, r.bool())
        });

        let mut fat = FatLockEngine::new();
        let mut thin = ThinLockEngine::new();
        let mut onebit = OneBitLockEngine::new();

        // Host model of monitor state.
        let mut owner: std::collections::HashMap<u32, (u16, u32)> = Default::default();

        for (obj, thread, is_enter) in script {
            if is_enter {
                let expect_acquire = match owner.get(&obj) {
                    None => true,
                    Some((o, _)) => *o == thread,
                };
                let outcomes = [
                    fat.monitor_enter(obj, thread),
                    thin.monitor_enter(obj, thread),
                    onebit.monitor_enter(obj, thread),
                ];
                for out in outcomes {
                    match out {
                        EnterOutcome::Acquired { .. } => assert!(expect_acquire),
                        EnterOutcome::Blocked { .. } => assert!(!expect_acquire),
                    }
                }
                if expect_acquire {
                    let e = owner.entry(obj).or_insert((thread, 0));
                    e.1 += 1;
                }
            } else {
                let expect_ok = matches!(owner.get(&obj), Some((o, _)) if *o == thread);
                let results = [
                    fat.monitor_exit(obj, thread).is_ok(),
                    thin.monitor_exit(obj, thread).is_ok(),
                    onebit.monitor_exit(obj, thread).is_ok(),
                ];
                for ok in results {
                    assert_eq!(ok, expect_ok);
                }
                if expect_ok {
                    let e = owner.get_mut(&obj).expect("owned");
                    e.1 -= 1;
                    if e.1 == 0 {
                        owner.remove(&obj);
                    }
                }
            }
        }
    });
}

/// The assembler + verifier accept arbitrary loop bounds and the
/// result matches a host-computed sum.
#[test]
fn loops_compute_correct_sums() {
    forall!(cases = 48, seed = 0x1005, |rng| {
        let bound = rng.i32_in(0..500);
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(0).iconst(0).istore(1);
        m.bind(top);
        m.iload(1).iconst(bound).if_icmp_ge(done);
        m.iload(0).iload(1).iadd().istore(0);
        m.iinc(1, 1).goto(top);
        m.bind(done);
        m.iload(0).ireturn();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").expect("assembles");
        let host: i32 = (0..bound).sum();
        let r = Vm::new(&p, VmConfig::jit())
            .run(&mut CountingSink::new())
            .expect("runs");
        assert_eq!(r.exit_value, Some(host));
    });
}
