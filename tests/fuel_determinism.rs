//! Fuel metering is deterministic program semantics, not a wall-clock
//! guard: the same `(program, budget)` must trap `FuelExhausted` at
//! exactly the budgeted bytecode index on every engine configuration
//! in the differential matrix, and the result must not depend on how
//! many measurement workers ran the matrix.

use javart::experiments::jobs;
use javart::fuzz::{engine_configs, gen_case, lower, Coverage};
use javart::trace::NullSink;
use javart::vm::{Vm, VmConfig};
use javart::workloads::{compress, Size};
use jrt_bytecode::Program;

fn observables_under_fuel(program: &Program, cfg: &VmConfig, fuel: u64) -> javart::vm::Observables {
    let mut cfg = cfg.clone();
    cfg.fuel = Some(fuel);
    Vm::new(program, cfg)
        .run_observed(&mut NullSink)
        .observables
}

/// Asserts the whole engine matrix traps identically on `program`
/// with `budget`, at measurement worker counts 1 and 8.
fn assert_matrix_traps_identically(program: &Program, budget: u64) {
    let expected_msg = format!("fuel exhausted after {budget} bytecodes");
    let mut reference = None;
    for workers in [1usize, 8] {
        jobs::set_jobs(workers);
        let configs = engine_configs();
        let observed = jobs::par_map(&configs, |(label, cfg)| {
            (*label, observables_under_fuel(program, cfg, budget))
        });
        jobs::set_jobs(0);
        for (label, obs) in &observed {
            assert_eq!(
                obs.outcome.as_ref().err().map(String::as_str),
                Some(expected_msg.as_str()),
                "{label} (workers={workers}): wrong outcome {:?}",
                obs.outcome
            );
            assert_eq!(
                obs.bytecodes, budget,
                "{label} (workers={workers}): trapped at the wrong index"
            );
            match &reference {
                None => reference = Some(obs.clone()),
                Some(r) => assert_eq!(obs, r, "{label} (workers={workers}): observables diverged"),
            }
        }
    }
}

#[test]
fn fuel_traps_at_identical_index_across_all_engines() {
    // A real workload: compress runs far past this budget on every
    // engine, so all eleven must cut it off at the same bytecode.
    let program = compress::program(Size::Tiny);
    assert_matrix_traps_identically(&program, 10_000);
}

#[test]
fn fuel_traps_identically_on_a_generated_program() {
    // A fuzzer-generated program (the serving tier's long-tail tenant
    // code): scan the seed's cases for one that executes past the
    // budget, then pin the whole matrix to the same trap index.
    let budget = 1_000u64;
    let cov = Coverage::new();
    let program = (0..64)
        .find_map(|i| {
            let spec = gen_case(0x5EED_0001, i, &cov);
            let program = lower(&spec).ok()?;
            let cfg = VmConfig {
                max_bytecodes: 150_000,
                ..VmConfig::default()
            };
            let probe = Vm::new(&program, cfg).run_observed(&mut NullSink);
            (probe.observables.bytecodes > budget).then_some(program)
        })
        .expect("some corpus-seed case runs past the budget");
    assert_matrix_traps_identically(&program, budget);
}
