//! Cross-crate invariants behind the paper's headline claims, checked
//! end-to-end on the real workloads (quick `Tiny` inputs; the S1
//! numbers live in EXPERIMENTS.md).

use javart::cache::SplitCaches;
use javart::trace::{CountingSink, InstMix, Phase};
use javart::vm::{Vm, VmConfig};
use javart::workloads::{suite, suite_with_hello, Size};

/// Section 3: translated code executes far fewer native instructions
/// than interpretation of the same bytecodes. (At `Tiny` scale the
/// one-shot translation cost can exceed the total saving — that is
/// Figure 1's whole point — so the scale-invariant comparison is on
/// the execution portions.)
#[test]
fn translated_code_beats_interpretation() {
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        let mut i = CountingSink::new();
        Vm::new(&program, VmConfig::interpreter())
            .run(&mut i)
            .unwrap();
        let mut j = CountingSink::new();
        Vm::new(&program, VmConfig::jit()).run(&mut j).unwrap();
        let interp_exec = i.total() - i.phase(Phase::ClassLoad);
        let jit_exec = j.total() - j.phase(Phase::ClassLoad) - j.phase(Phase::Translate);
        assert!(
            interp_exec > 2 * jit_exec,
            "{}: interp-exec {} vs jit-exec {}",
            spec.name,
            interp_exec,
            jit_exec
        );
    }
}

/// Section 3: translation happens once per method — re-runs of hot
/// methods execute from the code cache (no Translate-phase growth
/// proportional to invocations).
#[test]
fn translation_is_one_shot() {
    // mpeg decodes many blocks through the same methods: translate
    // instructions must be a small fraction.
    let program = javart::workloads::mpeg::program(Size::Tiny);
    let mut sink = CountingSink::new();
    let r = Vm::new(&program, VmConfig::jit()).run(&mut sink).unwrap();
    assert!(r.counters.methods_translated > 0);
    let translate_frac = sink.phase(Phase::Translate) as f64 / sink.total() as f64;
    assert!(
        translate_frac < 0.5,
        "mpeg should amortize translation, got {translate_frac}"
    );
}

/// Section 4.1: the interpreter's memory-access share exceeds the
/// JIT's (stack-in-memory vs. stack-in-registers) on every benchmark.
#[test]
fn interpreter_memory_share_exceeds_jit_everywhere() {
    for spec in suite() {
        let program = (spec.build)(Size::Tiny);
        let mut i = InstMix::new();
        Vm::new(&program, VmConfig::interpreter())
            .run(&mut i)
            .unwrap();
        let mut j = InstMix::new();
        Vm::new(&program, VmConfig::jit()).run(&mut j).unwrap();
        assert!(
            i.memory_fraction() > j.memory_fraction(),
            "{}: {} vs {}",
            spec.name,
            i.memory_fraction(),
            j.memory_fraction()
        );
    }
}

/// Section 4.3: bytecode is data for the interpreter — its D-cache
/// sees class-area reads; the JIT's post-translation execution reads
/// bytecode only during translation.
#[test]
fn bytecode_is_data_only_for_the_interpreter() {
    use javart::trace::Region;

    let program = javart::workloads::jack::program(Size::Tiny);

    let mut caches = SplitCaches::paper_l1();
    Vm::new(&program, VmConfig::interpreter())
        .run(&mut caches)
        .unwrap();
    let interp_class_reads = caches.dcache().region_stats(Region::ClassArea).reads;

    let mut caches = SplitCaches::paper_l1();
    Vm::new(&program, VmConfig::jit()).run(&mut caches).unwrap();
    let jit_class_reads = caches.dcache().region_stats(Region::ClassArea).reads;

    assert!(
        interp_class_reads > 3 * jit_class_reads,
        "interp {interp_class_reads} vs jit {jit_class_reads}"
    );
}

/// Section 4.3: JIT-mode code-cache traffic exists and is written
/// exactly once per generated word (installation), then only fetched.
#[test]
fn code_cache_written_by_translation_only() {
    use javart::trace::Region;

    let program = javart::workloads::db::program(Size::Tiny);
    let mut caches = SplitCaches::paper_l1();
    Vm::new(&program, VmConfig::jit()).run(&mut caches).unwrap();
    let cc = caches.dcache().region_stats(Region::CodeCache);
    assert!(cc.writes > 0, "installation writes the code cache");
    // The only data reads of the code cache are embedded jump tables
    // (tableswitch) — true double-caching, tiny next to installation.
    assert!(
        cc.reads * 10 < cc.writes,
        "code-cache data reads {} should be rare vs writes {}",
        cc.reads,
        cc.writes
    );
    // And the I-cache fetches from the code cache.
    let icc = caches.icache().region_stats(Region::CodeCache);
    assert!(icc.reads > 0);
}

/// Table 1: the JIT's memory overhead comes from the code cache and
/// translator buffers; the interpreter never allocates either.
#[test]
fn footprint_delta_is_exactly_the_translator_side() {
    for spec in suite() {
        let program = (spec.build)(Size::Tiny);
        let i = Vm::new(&program, VmConfig::interpreter())
            .run(&mut CountingSink::new())
            .unwrap();
        let j = Vm::new(&program, VmConfig::jit())
            .run(&mut CountingSink::new())
            .unwrap();
        assert_eq!(i.footprint.code_cache_bytes, 0, "{}", spec.name);
        assert_eq!(i.footprint.translator_bytes, 0, "{}", spec.name);
        assert_eq!(
            i.footprint.class_bytes, j.footprint.class_bytes,
            "{}",
            spec.name
        );
        assert!(j.footprint.total() > i.footprint.total(), "{}", spec.name);
    }
}

/// Section 5: only the multithreaded benchmark sees contention.
#[test]
fn contention_only_in_mtrt() {
    for spec in suite() {
        let program = (spec.build)(Size::Tiny);
        let r = Vm::new(&program, VmConfig::jit())
            .run(&mut CountingSink::new())
            .unwrap();
        let contended = r.sync_stats.case_counts[3];
        if spec.multithreaded {
            // mtrt *may* contend (depends on interleaving, which is
            // deterministic, so assert it does at this size).
            assert!(r.sync_stats.enters() > 0, "{}", spec.name);
        } else {
            assert_eq!(contended, 0, "{}: single-threaded contention?", spec.name);
        }
    }
}

/// The suite exercises every execution phase the tracer defines.
#[test]
fn all_phases_appear_in_a_jit_run() {
    // mtrt covers translation, execution, runtime, sync, class load…
    let program = javart::workloads::mtrt::program(Size::Tiny);
    let mut sink = CountingSink::new();
    Vm::new(&program, VmConfig::jit()).run(&mut sink).unwrap();
    for phase in [
        Phase::Translate,
        Phase::NativeExec,
        Phase::Runtime,
        Phase::Sync,
        Phase::ClassLoad,
    ] {
        assert!(sink.phase(phase) > 0, "phase {phase} missing from trace");
    }
    // …and compress (dictionary-heavy allocation) exercises the GC
    // under a small threshold.
    let program = javart::workloads::compress::program(Size::Tiny);
    let cfg = VmConfig {
        gc_threshold: 16 * 1024,
        ..VmConfig::jit()
    };
    let mut sink = CountingSink::new();
    let r = Vm::new(&program, cfg).run(&mut sink).unwrap();
    assert_eq!(
        r.exit_value,
        Some(javart::workloads::compress::expected(Size::Tiny))
    );
    assert!(sink.phase(Phase::Gc) > 0, "phase gc missing from trace");
}
