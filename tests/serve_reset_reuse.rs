//! VM reuse correctness over the committed fuzz corpus.
//!
//! The serving pool's whole premise is that `Vm::reset_for` is
//! observationally free: a worker's resident VM, reset and pointed at
//! the next job's program, must produce exactly the `Observables` a
//! fresh VM would — across programs, traps, and the shared code
//! cache staying warm between jobs. This test replays the committed
//! corpus seeds (`tests/corpus/*.case`) through one long-lived VM
//! under the serving configuration and diffs every run against a
//! fresh-VM reference.

use javart::fuzz::{gen_case, lower, Coverage};
use javart::serve::serve_config;
use javart::trace::NullSink;
use javart::vm::Vm;
use std::path::{Path, PathBuf};

/// Matches the fuzzer matrix budget: runaway generated programs end
/// in the same deterministic `BudgetExceeded` on both VMs.
const CASE_BUDGET: u64 = 150_000;

/// Cap per corpus file so the full sweep stays test-suite friendly;
/// the corpus files themselves pin up to 96 cases.
const MAX_CASES_PER_FILE: u64 = 32;

fn corpus_seeds() -> Vec<(PathBuf, u64, u64)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus missing")
        .map(|e| e.expect("read_dir").path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).expect("unreadable corpus file");
            let field = |name: &str| {
                text.lines()
                    .filter_map(|l| l.trim().strip_prefix(name))
                    .map(str::trim)
                    .find(|v| !v.is_empty())
                    .map(|v| {
                        v.strip_prefix("0x")
                            .or_else(|| v.strip_prefix("0X"))
                            .map_or_else(
                                || v.parse().expect("bad number in corpus file"),
                                |hex| u64::from_str_radix(hex, 16).expect("bad hex"),
                            )
                    })
                    .unwrap_or_else(|| panic!("{}: missing {name}", p.display()))
            };
            (p.clone(), field("seed "), field("cases "))
        })
        .collect()
}

#[test]
fn reused_vm_reproduces_fresh_observables_across_the_corpus() {
    let cov = Coverage::new();
    let mut programs = Vec::new();
    for (_, seed, cases) in corpus_seeds() {
        for i in 0..cases.min(MAX_CASES_PER_FILE) {
            let spec = gen_case(seed, i, &cov);
            if let Ok(p) = lower(&spec) {
                programs.push(p);
            }
        }
    }
    assert!(
        programs.len() > 100,
        "corpus unexpectedly thin: {} programs",
        programs.len()
    );

    let mut cfg = serve_config();
    cfg.max_bytecodes = CASE_BUDGET;

    // One resident VM, reset between every case — the pool's exact
    // reuse pattern, shared cache warming across programs included.
    let mut resident = Vm::new(&programs[0], cfg.clone());
    let mut trapped = 0usize;
    for (i, p) in programs.iter().enumerate() {
        if i > 0 {
            resident.reset_for(p);
        }
        let reused = resident.run_observed(&mut NullSink);
        let fresh = Vm::new(p, cfg.clone()).run_observed(&mut NullSink);
        assert_eq!(
            reused.observables, fresh.observables,
            "case {i}: reused VM diverged from fresh VM"
        );
        if reused.observables.outcome.is_err() {
            trapped += 1;
        }
    }
    // The corpus must exercise the fault path of the reset too.
    assert!(
        trapped > 0,
        "corpus never trapped; reuse-after-error untested"
    );
}
