//! Golden-snapshot test for the out-of-core scale study.
//!
//! `tests/golden/scale_tiny.md` is the committed output of
//! `scale_study` at `Tiny` scale. Regenerating it must be
//! byte-identical — at one worker (the sequential path) and at
//! several worker counts — which pins down the tape tiling, the
//! on-disk segment layout (event and byte counts), and the sharded
//! replay's exact stitch at every shard count. Throughput numbers go
//! to stderr only, so nothing schedule-dependent reaches the report.

use javart::experiments::{jobs, scale};
use javart::workloads::Size;

const GOLDEN: &str = include_str!("golden/scale_tiny.md");

#[test]
fn scale_study_tiny_is_byte_identical_at_any_worker_count() {
    for workers in [1, 2, 8] {
        jobs::set_jobs(workers);
        let study = scale::run(Size::Tiny);
        assert!(
            study.rows.iter().all(|r| r.shards.iter().all(|p| p.exact)),
            "sharded replay diverged from the serial reference"
        );
        let md = study.to_markdown();
        assert!(
            md == GOLDEN,
            "scale_study(Tiny) with {workers} worker(s) diverged from \
             tests/golden/scale_tiny.md (lengths: got {}, golden {}); \
             first differing byte at offset {:?}",
            md.len(),
            GOLDEN.len(),
            md.bytes().zip(GOLDEN.bytes()).position(|(a, b)| a != b),
        );
    }
    jobs::set_jobs(0);
}
