//! Steady-state window classification and the `--check-against` gate
//! built on it: synthetic window-series shapes through
//! [`jrt_testkit::bench::classify`], and a JSON round-trip proving
//! that non-steady entries are annotated as warm-up drift rather than
//! failed while genuine steady-state regressions still trip the gate.

use jrt_bench::check::{check, parse_baseline};
use jrt_testkit::bench::{classify, BenchResult, Harness};

#[test]
fn flat_series_is_steady_from_window_zero() {
    let v = classify(&[500, 500, 500, 500, 500], &[0; 5]);
    assert!(v.steady_state);
    assert_eq!(v.warmup_windows, 0);
    assert_eq!(v.steady_median_ns, 500);
}

#[test]
fn monotone_warmup_settles_into_steady_tail() {
    // Classic JIT warm-up: expensive early windows converging onto a
    // plateau. The leading windows are warm-up, the tail is steady.
    let v = classify(&[9000, 4000, 1500, 1000, 1010, 990, 1000], &[0; 7]);
    assert!(v.steady_state);
    assert_eq!(v.warmup_windows, 3);
    assert!(!v.steady[0] && !v.steady[1] && !v.steady[2]);
    assert!(v.steady[3..].iter().all(|&s| s));
    assert!((990..=1010).contains(&v.steady_median_ns));
}

#[test]
fn bimodal_series_never_reaches_steady_state() {
    // Deopt/reopt flapping: alternating fast and slow windows. No
    // prefix removal makes the rest steady.
    let v = classify(&[1000, 3000, 1000, 3000, 1000, 3000], &[0; 6]);
    assert!(!v.steady_state);
}

#[test]
fn noisy_flat_series_within_band_is_steady() {
    // ±10% jitter around a flat mean stays inside the 15% band and
    // under the CoV ceiling.
    let v = classify(&[1080, 950, 1020, 980, 1050, 1000], &[0; 6]);
    assert!(v.steady_state);
    assert_eq!(v.warmup_windows, 0);
}

#[test]
fn translate_events_mark_windows_as_still_compiling() {
    // Timings alone look steady, but the first two windows carry
    // translate events: they are still-compiling warm-up.
    let v = classify(&[1000, 1000, 1000, 1000, 1000], &[12, 3, 0, 0, 0]);
    assert!(!v.steady[0]);
    assert!(!v.steady[1]);
    assert_eq!(v.warmup_windows, 2);
    assert!(v.steady_state);
}

fn measured(name: &str, steady: bool, steady_ns: u128, median_ns: u128) -> BenchResult {
    BenchResult {
        suite: "rt".into(),
        name: name.into(),
        iters: 8,
        samples_ns: vec![median_ns; 3],
        median_ns,
        steady_state: steady,
        warmup_iters: if steady { 0 } else { 9 },
        steady_median_ns: steady_ns,
    }
}

/// Round-trip: results serialized by [`BenchResult::to_json`] parse
/// back as a baseline, non-steady measurements are annotated (never
/// failed), and a steady regression still fails.
#[test]
fn check_against_annotates_warmup_drift_and_fails_steady_regressions() {
    // The committed baseline: one steady bench, one that never
    // stabilized when the baseline was recorded.
    let baseline_results = [
        measured("stable", true, 1000, 1000),
        measured("flappy", false, 1000, 1400),
    ];
    let json: String = baseline_results
        .iter()
        .map(|r| r.to_json() + "\n")
        .collect();
    let baseline = parse_baseline(&json);
    assert_eq!(baseline.len(), 2);
    // The steady baseline gates on its steady median; the non-steady
    // one falls back to its plain median.
    assert_eq!(baseline[0].gate_ns(), 1000);
    assert_eq!(baseline[1].gate_ns(), 1400);

    // Scenario 1: this run's `stable` drifted but never reached steady
    // state — warm-up drift, annotated, gate passes.
    let rep = check(&[measured("stable", false, 5000, 5000)], &baseline, 2.0);
    assert_eq!(rep.compared, 1);
    assert!(rep.regressions.is_empty());
    assert_eq!(rep.annotations.len(), 1);
    assert!(rep.annotations[0].contains("warm-up drift"), "{rep:?}");
    assert!(rep.ok());

    // Scenario 2: `stable` reached steady state *slower* — a real
    // regression, gate fails.
    let rep = check(&[measured("stable", true, 5000, 5000)], &baseline, 2.0);
    assert_eq!(rep.regressions.len(), 1);
    assert!(!rep.ok());

    // Scenario 3: both within limits — gate passes with no
    // annotations.
    let rep = check(
        &[
            measured("stable", true, 1100, 1100),
            measured("flappy", true, 1500, 1500),
        ],
        &baseline,
        2.0,
    );
    assert_eq!(rep.compared, 2);
    assert!(rep.annotations.is_empty());
    assert_eq!(rep.passes.len(), 2);
    assert!(rep.ok());
}

/// A harness-measured bench round-trips through JSON with the steady
/// fields intact and comparable.
#[test]
fn harness_results_round_trip_through_check() {
    let mut h = Harness::new("rt").with_samples(3).quiet();
    h.bench("busy", || {
        let mut acc = 0u64;
        for k in 0..4096u64 {
            acc = acc.wrapping_add(k * k);
        }
        std::hint::black_box(acc)
    });
    let results = h.into_results();
    let json: String = results.iter().map(|r| r.to_json() + "\n").collect();
    let baseline = parse_baseline(&json);
    assert_eq!(baseline.len(), 1);
    assert_eq!(baseline[0].steady_state, Some(results[0].steady_state));
    // Self-comparison is never a regression, whatever the verdict.
    let rep = check(&results, &baseline, 2.0);
    assert_eq!(rep.compared, 1);
    assert!(rep.ok());
}
