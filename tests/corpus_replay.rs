//! Replays every corpus case file through the full engine matrix with
//! the performance oracle on.
//!
//! Each `tests/corpus/*.case` file pins a `(seed, cases)` pair that
//! once mattered — the CI smoke seed plus seeds kept for the engine
//! behaviors they exercise (eviction thrash, tier promotion,
//! dispatch-heavy interpretation, call-dense translation). Replay must
//! stay divergence-free *and* cost-model-clean, the merged coverage
//! across the corpus must remain complete, and each file's `floor` /
//! `ceil` lines pin golden bounds on per-engine cost totals — floors
//! catch a regression that silently stops exercising a perf-sensitive
//! shape (an eviction path that no longer churns, a tier that no
//! longer promotes), ceilings pin optimization wins that must not
//! erode (register-IR fusion dispatching well under one dispatch per
//! bytecode, the IR translator's code density) — even while semantics
//! stay equivalent.

use javart::fuzz::{fuzz_perf, Coverage};
use std::path::{Path, PathBuf};

/// One golden bound on a cost total: `floor` lines require
/// `totals[label].metric >= value`, `ceil` lines require `<= value`.
#[derive(Debug)]
struct Bound {
    label: String,
    metric: String,
    value: u64,
}

/// One parsed corpus entry.
#[derive(Debug)]
struct CorpusCase {
    path: PathBuf,
    seed: u64,
    cases: u64,
    floors: Vec<Bound>,
    ceils: Vec<Bound>,
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).expect("bad hex in corpus file")
    } else {
        s.parse().expect("bad number in corpus file")
    }
}

fn parse_case(path: &Path) -> CorpusCase {
    let text = std::fs::read_to_string(path).expect("unreadable corpus file");
    let mut seed = None;
    let mut cases = None;
    let mut floors = Vec::new();
    let mut ceils = Vec::new();
    let parse_bound = |kind: &str, rest: &str, line: &str| {
        let (target, value) = rest
            .trim()
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("{}: bad {kind} line: {line}", path.display()));
        let (label, metric) = target
            .split_once('.')
            .unwrap_or_else(|| panic!("{}: {kind} needs label.metric: {line}", path.display()));
        Bound {
            label: label.to_string(),
            metric: metric.to_string(),
            value: parse_u64(value.trim()),
        }
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once(' ') {
            Some(("seed", v)) => seed = Some(parse_u64(v.trim())),
            Some(("cases", v)) => cases = Some(parse_u64(v.trim())),
            Some(("floor", rest)) => floors.push(parse_bound("floor", rest, line)),
            Some(("ceil", rest)) => ceils.push(parse_bound("ceil", rest, line)),
            _ => panic!("{}: unparsable line: {line}", path.display()),
        }
    }
    CorpusCase {
        path: path.to_owned(),
        seed: seed.unwrap_or_else(|| panic!("{}: missing seed", path.display())),
        cases: cases.unwrap_or_else(|| panic!("{}: missing cases", path.display())),
        floors,
        ceils,
    }
}

fn load_corpus() -> Vec<CorpusCase> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus missing")
        .map(|e| e.expect("read_dir").path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    paths.sort();
    paths.iter().map(|p| parse_case(p)).collect()
}

fn merge(into: &mut Coverage, from: &Coverage) {
    into.record_opcodes(&from.opcodes);
    for (k, n) in &from.transitions {
        *into.transitions.entry(k.clone()).or_insert(0) += n;
    }
    for (k, n) in &from.verifier_errors {
        *into.verifier_errors.entry(k.clone()).or_insert(0) += n;
    }
    into.cases += from.cases;
    into.error_outcomes += from.error_outcomes;
    into.divergences += from.divergences;
}

#[test]
fn corpus_replays_clean_with_full_merged_coverage_and_cost_floors() {
    let corpus = load_corpus();
    assert!(corpus.len() >= 8, "corpus unexpectedly small: {corpus:?}");
    assert!(
        corpus.iter().any(|c| !c.floors.is_empty()),
        "no corpus file pins cost floors"
    );
    let mut merged = Coverage::new();
    for case in &corpus {
        let report = fuzz_perf(case.seed, case.cases, 2, None);
        assert!(
            report.divergences.is_empty(),
            "{} diverged:\n{}",
            case.path.display(),
            report.render(case.seed)
        );
        let perf = report.perf.as_ref().expect("perf oracle ran");
        assert!(
            perf.violations.is_empty(),
            "{} violated cost invariants:\n{}",
            case.path.display(),
            report.render(case.seed)
        );
        assert_eq!(report.coverage.cases, case.cases);
        let measure = |bound: &Bound, kind: &str| {
            let (_, totals) = perf
                .totals
                .iter()
                .find(|(l, _)| *l == bound.label)
                .unwrap_or_else(|| {
                    panic!(
                        "{}: unknown {kind} label {}",
                        case.path.display(),
                        bound.label
                    )
                });
            totals.get(&bound.metric).unwrap_or_else(|| {
                panic!(
                    "{}: unknown {kind} metric {}",
                    case.path.display(),
                    bound.metric
                )
            })
        };
        for floor in &case.floors {
            let measured = measure(floor, "floor");
            assert!(
                measured >= floor.value,
                "{}: {}.{} fell below its golden floor: {} < {}",
                case.path.display(),
                floor.label,
                floor.metric,
                measured,
                floor.value
            );
        }
        for ceil in &case.ceils {
            let measured = measure(ceil, "ceil");
            assert!(
                measured <= ceil.value,
                "{}: {}.{} rose above its golden ceiling: {} > {}",
                case.path.display(),
                ceil.label,
                ceil.metric,
                measured,
                ceil.value
            );
        }
        merge(&mut merged, &report.coverage);
    }
    assert!(
        merged.is_full(),
        "merged corpus coverage incomplete; missing opcodes {:?}, transitions {:?}",
        merged.uncovered_opcodes(),
        merged.missing_transitions()
    );
}
