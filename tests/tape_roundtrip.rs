//! Tape round-trip properties: recording a native-instruction stream
//! and replaying it must reproduce the exact event sequence — for
//! arbitrary synthetic streams and for every real workload × mode.

use javart::experiments::runner::{run_mode, Mode};
use javart::trace::{
    AccessKind, CtrlInfo, InstClass, MemRef, NativeInst, Phase, RecordingSink, Tape, TraceSink,
};
use javart::vm::{GcConfig, Vm, VmConfig};
use javart::workloads::{gc_suite, suite_with_hello, Size};
use jrt_testkit::forall;

/// Draws a fully random instruction event: any class/phase pairing,
/// adversarial (non-local) addresses, and independently present
/// operand fields — deliberately harsher than anything the VM emits.
fn arbitrary_inst(rng: &mut jrt_testkit::Rng) -> NativeInst {
    let mut i = NativeInst::new(
        rng.next_u64(),
        *rng.choose(&InstClass::ALL),
        *rng.choose(&Phase::ALL),
    );
    if rng.bool() {
        i.mem = Some(MemRef {
            addr: rng.next_u64(),
            size: rng.u8(),
            kind: if rng.bool() {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        });
    }
    if rng.bool() {
        i.ctrl = Some(CtrlInfo {
            target: rng.next_u64(),
            taken: rng.bool(),
        });
    }
    if rng.bool() {
        i.dst = Some(rng.u8());
    }
    if rng.bool() {
        i.src1 = Some(rng.u8());
    }
    if rng.bool() {
        i.src2 = Some(rng.u8());
    }
    i
}

/// Arbitrary synthetic streams survive the pack/unpack cycle exactly.
#[test]
fn synthetic_streams_round_trip_exactly() {
    forall!(cases = 64, seed = 0x7A9E, |rng| {
        let events = rng.vec(0..400, arbitrary_inst);
        let tape = Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        });
        assert_eq!(tape.len(), events.len() as u64);

        let mut out = RecordingSink::new();
        tape.replay(&mut out);
        assert_eq!(out.events, events);
    });
}

/// `Tape::record` → `replay` reproduces the exact event sequence of a
/// direct VM run for every workload × mode at `tiny`, and the packed
/// encoding stays compact.
#[test]
fn tape_reproduces_vm_event_stream_for_every_workload_and_mode() {
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        for mode in [Mode::Interp, Mode::Jit, Mode::Opt] {
            let mut direct = RecordingSink::new();
            let r = run_mode(&program, mode, &mut direct);
            assert_eq!(r.exit_value, Some((spec.expected)(Size::Tiny)));

            let tape = Tape::record(|rec| {
                run_mode(&program, mode, rec);
            });
            let mut replayed = RecordingSink::new();
            tape.replay(&mut replayed);

            assert_eq!(
                replayed.events.len(),
                direct.events.len(),
                "{} {mode:?}: event count",
                spec.name
            );
            assert_eq!(
                replayed.events, direct.events,
                "{} {mode:?}: event sequence",
                spec.name
            );
            // Counter/trace equivalence: the run's counters and its
            // event stream are two views of the same execution and
            // must agree — Translate-phase events are exactly the
            // translator instructions the counters claim, and
            // ClassLoad events are exactly the class-loading work.
            let translate_events = direct
                .events
                .iter()
                .filter(|e| e.phase.is_translate())
                .count() as u64;
            assert_eq!(
                translate_events, r.counters.translate_insts,
                "{} {mode:?}: translate events vs counter",
                spec.name
            );
            let classload_events = direct
                .events
                .iter()
                .filter(|e| e.phase == Phase::ClassLoad)
                .count() as u64;
            assert_eq!(
                classload_events, r.counters.classload_insts,
                "{} {mode:?}: classload events vs counter",
                spec.name
            );
            if matches!(mode, Mode::Interp) {
                // The non-folded dispatch loop emits exactly 6
                // InterpDispatch events per executed bytecode.
                let dispatches = direct
                    .events
                    .iter()
                    .filter(|e| e.phase == Phase::InterpDispatch)
                    .count() as u64;
                assert_eq!(
                    dispatches,
                    6 * r.counters.bytecodes,
                    "{} {mode:?}: dispatch events vs bytecode counter",
                    spec.name
                );
            }
            // Real traces are pc-sequential and spatially local; the
            // delta encoding should stay well under the 64-byte
            // in-memory event.
            let bytes_per_event = tape.size_bytes() as f64 / tape.len().max(1) as f64;
            assert!(
                bytes_per_event < 8.0,
                "{} {mode:?}: {bytes_per_event} bytes/event",
                spec.name
            );
        }
    }
}

/// GC trace/counter equivalence: [`Phase::Gc`] events are exactly the
/// collector instructions the counters claim, [`Phase::GcBarrier`]
/// events exactly the barrier instructions — for every GC workload
/// under a forcing nursery, across the emitter families. The tape
/// must also round-trip the collector phases losslessly.
#[test]
fn gc_events_match_counters_and_round_trip() {
    for spec in gc_suite() {
        let program = (spec.build)(Size::Tiny);
        for (label, cfg) in [
            ("interp", VmConfig::interpreter()),
            ("jit", VmConfig::jit()),
            ("ir-interp", VmConfig::ir_interp()),
            ("ir-jit", VmConfig::ir_jit()),
        ] {
            let cfg = cfg.with_gc(GcConfig::tiny_nursery());
            let mut direct = RecordingSink::new();
            let r = Vm::new(&program, cfg.clone())
                .run(&mut direct)
                .unwrap_or_else(|e| panic!("{}/{label}: {e}", spec.name));
            assert_eq!(r.exit_value, Some((spec.expected)(Size::Tiny)));

            let gc_events = direct
                .events
                .iter()
                .filter(|e| e.phase == Phase::Gc)
                .count() as u64;
            let barrier_events = direct
                .events
                .iter()
                .filter(|e| e.phase == Phase::GcBarrier)
                .count() as u64;
            assert_eq!(
                gc_events, r.counters.gc_insts,
                "{}/{label}: Gc events vs counter",
                spec.name
            );
            assert_eq!(
                barrier_events, r.counters.gc_barrier_insts,
                "{}/{label}: GcBarrier events vs counter",
                spec.name
            );
            assert!(
                gc_events > 0 && barrier_events > 0,
                "{}/{label}: the tiny nursery must exercise both phases",
                spec.name
            );
            assert!(r.counters.gc_minor > 0, "{}/{label}: minors", spec.name);

            let tape = Tape::record(|rec| {
                Vm::new(&program, cfg.clone()).run(rec).unwrap();
            });
            let mut replayed = RecordingSink::new();
            tape.replay(&mut replayed);
            assert_eq!(
                replayed.events, direct.events,
                "{}/{label}: GC-phase events must survive the tape",
                spec.name
            );
        }
    }
}
