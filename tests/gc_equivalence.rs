//! The GC-equivalence test layer: collection schedules must be
//! semantically invisible.
//!
//! The generational collector moves objects, rewrites addresses, and
//! interleaves collections at allocation-driven points that differ
//! per engine (the JIT reaches an allocation site after different
//! bytecode counts than the interpreter reaches it). The handle
//! indirection plus the reachable-only heap digest are supposed to
//! make all of that unobservable. This suite holds the collector to
//! that bar three ways:
//!
//! * every workload (the SpecJVM98 analogs *and* the allocation-heavy
//!   GC suite) across all eleven fuzz engine configurations × three
//!   GC configurations produces byte-equal [`Observables`];
//! * generated fuzz-corpus programs get the same treatment;
//! * a `forall!` property test proves the remembered set never misses
//!   a tenured→nursery edge, cross-checked against a full-heap scan.
//!
//! [`Observables`]: javart::vm::Observables

use javart::fuzz::coverage::Coverage;
use javart::fuzz::{engine_configs, gen_case, lower, run_case_gc, GcSabotage};
use javart::trace::NullSink;
use javart::vm::{GcConfig, Handle, Heap, Value, Vm};
use javart::workloads::{gc_suite, stream, suite_with_hello, Size};
use jrt_testkit::forall;

/// The three collector configurations under test: GC effectively
/// disabled (legacy mark-sweep below its threshold), the default
/// generational geometry, and the forced-collection tiny nursery.
fn gc_configs() -> [(&'static str, GcConfig); 3] {
    [
        ("legacy", GcConfig::Legacy),
        ("gen", GcConfig::generational()),
        ("tiny", GcConfig::tiny_nursery()),
    ]
}

/// Every workload, every engine, every GC config: observables must be
/// byte-equal to the interpreter-under-legacy reference.
#[test]
fn workloads_observe_identically_under_every_gc_config() {
    let specs: Vec<_> = suite_with_hello().into_iter().chain(gc_suite()).collect();
    for spec in specs {
        let program = (spec.build)(Size::Tiny);
        let mut reference = None;
        for (gc_label, gc) in gc_configs() {
            for (label, mut cfg) in engine_configs() {
                cfg.max_bytecodes = u64::MAX;
                cfg = cfg.with_gc(gc);
                let run = Vm::new(&program, cfg).run_observed(&mut NullSink);
                match &reference {
                    None => reference = Some(run.observables),
                    Some(want) => assert_eq!(
                        &run.observables, want,
                        "{}/{label}/{gc_label} diverged from interp/legacy",
                        spec.name
                    ),
                }
            }
        }
    }
}

/// The GC workloads must actually exercise the collector under the
/// tiny nursery — a vacuous equivalence pass proves nothing.
#[test]
fn gc_suite_exercises_collector_on_every_engine() {
    for spec in gc_suite() {
        let program = (spec.build)(Size::Tiny);
        for (label, mut cfg) in engine_configs() {
            cfg.max_bytecodes = u64::MAX;
            cfg = cfg.with_gc(GcConfig::tiny_nursery());
            let run = Vm::new(&program, cfg).run_observed(&mut NullSink);
            assert!(
                run.counters.gc_minor > 0,
                "{}/{label}: no minor collection under the tiny nursery",
                spec.name
            );
            assert!(
                run.counters.gc_barrier_insts > 0,
                "{}/{label}: no write-barrier traffic",
                spec.name
            );
        }
    }
}

/// Generated fuzz programs — the adversarial input space — under the
/// same engine × GC matrix. Each corpus seed contributes its round-0
/// prefix, exactly as `fuzz` would generate it.
#[test]
fn fuzz_corpus_observes_identically_under_every_gc_config() {
    // Seeds from tests/corpus/*.case.
    let seeds: [u64; 10] = [
        0xDEC0DE99, 0xBADCA11, 0xC0FFEE, 0x7157ED5, 0xE71C701, 0xFEEDFACE, 0xC0FFEE11, 0xF0E60042,
        0x1A2B0007, 0x5EED0001,
    ];
    let cov = Coverage::new();
    for seed in seeds {
        for index in 0..8u64 {
            let spec = gen_case(seed, index, &cov);
            let program = match lower(&spec) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let mut reference = None;
            for (gc_label, gc) in gc_configs() {
                for (label, cfg) in engine_configs() {
                    let run = Vm::new(&program, cfg.with_gc(gc)).run_observed(&mut NullSink);
                    match &reference {
                        None => reference = Some(run.observables),
                        Some(want) => assert_eq!(
                            &run.observables, want,
                            "seed {seed:#x} case {index}: {label}/{gc_label} diverged",
                        ),
                    }
                }
            }
        }
    }
}

/// A single silently dropped write barrier is an observable bug, and
/// the GC differential catches it: under
/// [`VmConfig::gc_sabotage_drop_barrier`](javart::vm::VmConfig), the
/// `stream` workload's very first remembered-set enrollment guards a
/// kept array that the next minor collection then wrongly reclaims.
/// This pins the (engine, drop) pair the CI must-fail job uses —
/// whether a given drop diverges depends on whether any later store
/// re-enrolls the container before the collection, so the pair is
/// empirical, not universal.
#[test]
fn a_single_dropped_write_barrier_is_detected() {
    let program = stream::program(Size::Tiny);
    let clean = run_case_gc(&program, None);
    assert!(
        clean.divergent.is_empty(),
        "unsabotaged GC matrix diverged: {:?}",
        clean.divergent
    );
    let sabotaged = run_case_gc(
        &program,
        Some(&GcSabotage {
            mode: "jit",
            drop: 0,
        }),
    );
    assert!(
        sabotaged.divergent.contains(&"jit"),
        "dropping stream's first remset enrollment on jit must diverge; got {:?}",
        sabotaged.divergent
    );
}

/// The remembered-set sufficiency property: after an arbitrary
/// sequence of allocations and reference stores on a generational
/// heap, every tenured container holding a nursery reference is
/// enrolled in the remembered set. Cross-checked against a full scan
/// of every handle the test ever allocated (generational mode never
/// recycles handles, so the list is exhaustive).
#[test]
fn remembered_set_never_misses_an_old_to_young_edge() {
    forall!(cases = 64, seed = 0x6C5E7, |rng| {
        let mut heap = Heap::with_config(GcConfig::tiny_nursery());
        let mut objects: Vec<(Handle, usize)> = Vec::new(); // (handle, nfields)
        let mut ref_arrays: Vec<(Handle, i32)> = Vec::new(); // (handle, len)
        let nops = rng.u64_in(10..120);

        for _ in 0..nops {
            match rng.u64_in(0..6) {
                // Small object: nursery while it fits.
                0 | 1 => {
                    let nfields = rng.u64_in(1..8) as usize;
                    let h = heap
                        .alloc_object(javart::bytecode::ClassId(0), nfields)
                        .expect("alloc");
                    objects.push((h, nfields));
                }
                // Large int array: overflows the 2 KiB nursery fast,
                // forcing pretenured (old) containers into existence.
                2 => {
                    let len = rng.u64_in(64..200) as i32;
                    heap.alloc_array(javart::bytecode::ArrayKind::Int, len)
                        .expect("alloc");
                }
                // Ref array, occasionally large enough to pretenure.
                3 => {
                    let len = rng.u64_in(1..100) as i32;
                    let h = heap
                        .alloc_array(javart::bytecode::ArrayKind::Ref, len)
                        .expect("alloc");
                    ref_arrays.push((h, len));
                }
                // Object field store: random source → random target.
                4 => {
                    if !objects.is_empty() {
                        let &(c, nf) = rng.choose(&objects);
                        let &(t, _) = rng.choose(&objects);
                        let idx = rng.u64_in(0..nf as u64) as usize;
                        heap.set_field(c, idx, Value::Ref(t)).expect("set_field");
                    }
                }
                // Ref-array element store.
                _ => {
                    if !ref_arrays.is_empty() && !objects.is_empty() {
                        let &(c, len) = rng.choose(&ref_arrays);
                        let &(t, _) = rng.choose(&objects);
                        let idx = rng.u64_in(0..len as u64) as i32;
                        heap.array_set(c, idx, Value::Ref(t).to_raw())
                            .expect("array_set");
                    }
                }
            }
        }

        // Full-heap scan: every old→young edge must be remembered.
        let remset = heap.remset().to_vec();
        let containers = objects
            .iter()
            .map(|&(h, _)| h)
            .chain(ref_arrays.iter().map(|&(h, _)| h));
        for c in containers {
            if heap.is_nursery(c) {
                continue; // young containers need no barrier
            }
            let holds_young = heap.refs_in(c).iter().any(|&r| heap.is_nursery(r));
            if holds_young {
                assert!(
                    remset.contains(&c),
                    "tenured container {c} holds a nursery ref but is not remembered"
                );
            }
        }
        // Soundness of the set itself: only live tenured handles.
        for &c in &remset {
            assert!(
                !heap.is_nursery(c),
                "remembered container {c} is a nursery object"
            );
        }
    });
}
