//! Differential fuzzing smoke tests: a fixed-seed run through the
//! full engine matrix must finish inside the `cargo test` budget with
//! zero divergences and a *complete* coverage map, the report must be
//! byte-identical at any thread count, and a seeded fault must be
//! caught and shrunk (the harness's own self-test).

use javart::fuzz::{fuzz, gen_case, lower, spec_diverges, Coverage, Sabotage};

/// The CI smoke seed (also the `fuzz_run` default).
const SMOKE_SEED: u64 = 0x5EED_0001;

#[test]
fn smoke_256_cases_no_divergence_full_coverage() {
    let report = fuzz(SMOKE_SEED, 256, 4, None);
    assert!(
        report.divergences.is_empty(),
        "engines diverged:\n{}",
        report.render(SMOKE_SEED)
    );
    assert_eq!(report.coverage.cases, 256);
    assert!(
        report.coverage.is_full(),
        "coverage incomplete; missing opcodes {:?}, missing transitions {:?}",
        report.coverage.uncovered_opcodes(),
        report.coverage.missing_transitions()
    );
    // The generator also has to reach the runtime fault paths (null
    // deref, raw division, out-of-bounds): faults are observables too.
    assert!(
        report.coverage.error_outcomes > 0,
        "no case exercised a deterministic runtime fault"
    );
}

#[test]
fn report_is_identical_at_any_jobs_count() {
    let sequential = fuzz(SMOKE_SEED, 48, 1, None).render(SMOKE_SEED);
    let parallel = fuzz(SMOKE_SEED, 48, 4, None).render(SMOKE_SEED);
    assert_eq!(sequential, parallel);
}

/// Satellite 3's self-test: no real divergence survived the matrix,
/// so this proves the oracle *would* catch one — a seeded corruption
/// of the JIT's observables is detected on every case, attributed to
/// the sabotaged engine only, and shrunk to a minimal reproducer that
/// still diverges.
#[test]
fn seeded_divergence_is_detected_and_shrunk() {
    let sabotage = Sabotage { mode: "jit" };
    let report = fuzz(SMOKE_SEED, 4, 2, Some(sabotage));
    assert_eq!(
        report.divergences.len(),
        4,
        "sabotaged engine not flagged on every case"
    );
    for d in &report.divergences {
        assert_eq!(d.modes, vec!["jit"], "divergence misattributed");
        // The reproducer is genuinely minimal-ish: shrinking emptied
        // every method body, and it still reproduces.
        assert_eq!(d.minimized.size(), 0, "shrinker left dead statements");
        assert!(lower(&d.minimized).is_ok(), "minimized spec must verify");
        assert!(
            spec_diverges(&d.minimized, Some(&sabotage)),
            "minimized spec no longer reproduces"
        );
        assert!(
            !spec_diverges(&d.minimized, None),
            "minimized spec diverges even without the seeded fault"
        );
    }
}

#[test]
fn cases_replay_individually_from_seed_and_index() {
    // Round 0 cases are generated from an empty coverage snapshot, so
    // `gen_case` with `Coverage::new()` reproduces them exactly.
    let report = fuzz(SMOKE_SEED, 8, 2, None);
    assert!(report.divergences.is_empty());
    let empty = Coverage::new();
    for case in 0..8 {
        let spec = gen_case(SMOKE_SEED, case, &empty);
        let respec = gen_case(SMOKE_SEED, case, &empty);
        assert_eq!(spec, respec, "case {case} generation not reproducible");
        assert!(
            !spec_diverges(&spec, None),
            "case {case} diverges on replay but not in the run"
        );
    }
}
