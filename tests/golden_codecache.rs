//! Golden-snapshot test for the managed-code-cache study.
//!
//! `tests/golden/codecache_tiny.md` is the committed output of
//! `codecache_study` at `Tiny` scale. Regenerating it must be
//! byte-identical — at one worker (the sequential path) and at
//! several worker counts — which pins down the capacity sweep,
//! sharing comparison, tiering table, and thrash-crossover numbers
//! as well as the parallel scheduler's canonical-order merge.

use javart::experiments::{codecache, jobs};
use javart::workloads::Size;

const GOLDEN: &str = include_str!("golden/codecache_tiny.md");

#[test]
fn codecache_study_tiny_is_byte_identical_at_any_worker_count() {
    for workers in [1, 2, 8] {
        jobs::set_jobs(workers);
        let md = codecache::run(Size::Tiny).to_markdown();
        assert!(
            md == GOLDEN,
            "codecache_study(Tiny) with {workers} worker(s) diverged from \
             tests/golden/codecache_tiny.md (lengths: got {}, golden {}); \
             first differing byte at offset {:?}",
            md.len(),
            GOLDEN.len(),
            md.bytes().zip(GOLDEN.bytes()).position(|(a, b)| a != b),
        );
    }
    jobs::set_jobs(0);
}
