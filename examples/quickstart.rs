//! Quickstart: assemble a small program, run it under both engines,
//! and watch the architectural difference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use javart::bytecode::{ClassAsm, MethodAsm, Program, RetKind};
use javart::cache::SplitCaches;
use javart::trace::InstMix;
use javart::vm::{Vm, VmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A method that sums the first 10,000 integers, invoked once per
    // outer iteration so the JIT can amortize its translation.
    let mut class = ClassAsm::new("Main");

    let mut sum = MethodAsm::new("sum", 1).returns(RetKind::Int);
    let (n, acc, i) = (0u8, 1u8, 2u8);
    let top = sum.new_label();
    let done = sum.new_label();
    sum.iconst(0).istore(acc).iconst(1).istore(i);
    sum.bind(top);
    sum.iload(i).iload(n).if_icmp_gt(done);
    sum.iload(acc).iload(i).iadd().istore(acc);
    sum.iinc(i, 1).goto(top);
    sum.bind(done);
    sum.iload(acc).ireturn();
    class.add_method(sum);

    let mut main = MethodAsm::new("main", 0).returns(RetKind::Int);
    let (k, last) = (0u8, 1u8);
    let top = main.new_label();
    let done = main.new_label();
    main.iconst(0).istore(k);
    main.bind(top);
    main.iload(k).iconst(50).if_icmp_ge(done);
    main.iconst(10_000)
        .invokestatic("Main", "sum", 1, RetKind::Int)
        .istore(last);
    main.iinc(k, 1).goto(top);
    main.bind(done);
    main.iload(last).ireturn();
    class.add_method(main);

    let program = Program::build(vec![class], "Main", "main")?;

    for (label, cfg) in [
        ("interpreter", VmConfig::interpreter()),
        ("JIT        ", VmConfig::jit()),
    ] {
        let mut sinks = (InstMix::new(), SplitCaches::paper_l1());
        let result = Vm::new(&program, cfg).run(&mut sinks)?;
        let (mix, caches) = sinks;
        println!(
            "{label}: result={} native-insts={} mem={:5.1}% indirect-of-transfers={:5.1}% \
             I-miss={:.3}% D-miss={:.3}%",
            result.exit_value.unwrap_or(-1),
            mix.total(),
            mix.memory_fraction() * 100.0,
            mix.indirect_share_of_transfers() * 100.0,
            caches.icache().stats().miss_rate() * 100.0,
            caches.dcache().stats().miss_rate() * 100.0,
        );
    }
    Ok(())
}
