//! Adaptive-JIT policy study: the design space Section 3 of the paper
//! opens (when, or whether, to translate a method).
//!
//! Compares four policies on every benchmark:
//! * pure interpretation,
//! * translate on first invocation (the Kaffe/JDK-1.2 heuristic),
//! * count-threshold translation (the HotSpot-style descendant of the
//!   paper's question),
//! * the paper's per-method oracle (`opt`).
//!
//! ```sh
//! cargo run --release --example adaptive_jit [tiny|s1]
//! ```

use javart::experiments::runner::derive_oracle;
use javart::trace::CountingSink;
use javart::vm::{ExecMode, JitPolicy, Vm, VmConfig};
use javart::workloads::{suite_with_hello, Size};

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("s1") => Size::S1,
        _ => Size::Tiny,
    };
    println!(
        "{:10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "interp", "jit-first", "thresh(8)", "opt", "opt-saves"
    );
    for spec in suite_with_hello() {
        let program = (spec.build)(size);
        let run = |cfg: VmConfig| -> u64 {
            let mut sink = CountingSink::new();
            let r = Vm::new(&program, cfg).run(&mut sink).expect("clean run");
            assert_eq!(r.exit_value, Some((spec.expected)(size)), "{}", spec.name);
            sink.total()
        };
        let interp = run(VmConfig::interpreter());
        let jit = run(VmConfig::jit());
        let thresh = run(VmConfig {
            mode: ExecMode::Jit(JitPolicy::Threshold(8)),
            ..VmConfig::default()
        });
        let opt = run(VmConfig::oracle(derive_oracle(&program)));
        println!(
            "{:10} {:>12} {:>12} {:>12} {:>12} {:>9.1}%",
            spec.name,
            interp,
            jit,
            thresh,
            opt,
            (1.0 - opt as f64 / jit as f64) * 100.0
        );
    }
}
