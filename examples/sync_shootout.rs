//! Synchronization shoot-out: the Section 5 comparison, live.
//!
//! Runs the multithreaded ray tracer (the suite's contended workload)
//! and the `db` record store (synchronized `Vector`-style container)
//! under all three monitor implementations and prints the case mix
//! and cost comparison.
//!
//! ```sh
//! cargo run --release --example sync_shootout [tiny|s1]
//! ```

use javart::sync::SyncCase;
use javart::trace::NullSink;
use javart::vm::{SyncKind, Vm, VmConfig};
use javart::workloads::{db, mtrt, Size};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = match std::env::args().nth(1).as_deref() {
        Some("s1") => Size::S1,
        _ => Size::Tiny,
    };

    for (name, program, expected) in [
        ("mtrt", mtrt::program(size), mtrt::expected(size)),
        ("db", db::program(size), db::expected(size)),
    ] {
        println!("== {name} ==");
        let mut baseline = 0u64;
        for kind in SyncKind::ALL {
            let r = Vm::new(&program, VmConfig::jit().with_sync(kind)).run(&mut NullSink)?;
            assert_eq!(r.exit_value, Some(expected));
            let s = r.sync_stats;
            if kind == SyncKind::MonitorCache {
                baseline = s.total_cycles;
            }
            println!(
                "  {:13?}: enters={:7} cycles={:9} cyc/op={:6.1} speedup={:4.2}x  \
                 cases a/b/c/d = {:.0}%/{:.0}%/{:.0}%/{:.0}%",
                kind,
                s.enters(),
                s.total_cycles,
                s.cycles_per_op(),
                baseline as f64 / s.total_cycles as f64,
                s.case_fraction(SyncCase::Unlocked) * 100.0,
                s.case_fraction(SyncCase::ShallowRecursive) * 100.0,
                s.case_fraction(SyncCase::DeepRecursive) * 100.0,
                s.case_fraction(SyncCase::Contended) * 100.0,
            );
        }
    }
    Ok(())
}
