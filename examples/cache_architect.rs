//! Cache-architect study: sweep geometry for a JVM workload the way
//! Section 4.3 of the paper does, all from one execution per mode
//! (the trace fans out to every configuration) — and the two modes
//! themselves fan out on the experiment crate's parallel job
//! scheduler (`--jobs N` / `JRT_JOBS` set the worker count).
//!
//! ```sh
//! cargo run --release --example cache_architect [tiny|s1] [--jobs N]
//! ```

use javart::cache::{CacheConfig, SplitCaches};
use javart::experiments::jobs;
use javart::vm::{Vm, VmConfig};
use javart::workloads::{db, Size};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = jobs::cli_args();
    let size = match args.first().map(String::as_str) {
        Some("s1") => Size::S1,
        _ => Size::Tiny,
    };
    let program = db::program(size);

    let modes = [
        ("interp", VmConfig::interpreter()),
        ("jit", VmConfig::jit()),
    ];
    // One job per mode; within a job one run drives 8 cache
    // configurations (a size sweep and the paper's associativity
    // sweep). Results come back in mode order regardless of which
    // worker finished first.
    let sizes = [8 * 1024u64, 16 * 1024, 32 * 1024, 64 * 1024];
    let measured = jobs::par_map(&modes, |(_, cfg)| {
        let sweep: Vec<SplitCaches> = sizes
            .iter()
            .map(|&s| SplitCaches::new(CacheConfig::new(s, 32, 2), CacheConfig::new(s, 32, 4)))
            .collect();
        let assoc: Vec<SplitCaches> = [1u32, 2, 4, 8]
            .iter()
            .map(|&a| {
                SplitCaches::new(
                    CacheConfig::paper_assoc_sweep(a),
                    CacheConfig::paper_assoc_sweep(a),
                )
            })
            .collect();
        let mut sinks = (sweep, assoc);
        let r = Vm::new(&program, cfg.clone())
            .run(&mut sinks)
            .expect("clean run");
        assert_eq!(r.exit_value, Some(db::expected(size)));
        sinks
    });

    for ((label, _), sinks) in modes.iter().zip(&measured) {
        println!("-- db, {label} mode --");
        println!("  capacity sweep (32B lines):");
        for (s, caches) in sizes.iter().zip(&sinks.0) {
            println!(
                "    {:>3}K: I-miss {:6.3}%  D-miss {:6.3}%",
                s / 1024,
                caches.icache().stats().miss_rate() * 100.0,
                caches.dcache().stats().miss_rate() * 100.0
            );
        }
        println!("  associativity sweep (8K, 32B):");
        for (a, caches) in [1, 2, 4, 8].iter().zip(&sinks.1) {
            println!(
                "    {a}-way: I-miss {:6.3}%  D-miss {:6.3}%",
                caches.icache().stats().miss_rate() * 100.0,
                caches.dcache().stats().miss_rate() * 100.0
            );
        }
    }
    Ok(())
}
