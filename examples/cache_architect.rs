//! Cache-architect study: sweep geometry for a JVM workload the way
//! Section 4.3 of the paper does, all from one execution per mode
//! (the trace fans out to every configuration).
//!
//! ```sh
//! cargo run --release --example cache_architect [tiny|s1]
//! ```

use javart::cache::{CacheConfig, SplitCaches};
use javart::vm::{Vm, VmConfig};
use javart::workloads::{db, Size};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = match std::env::args().nth(1).as_deref() {
        Some("s1") => Size::S1,
        _ => Size::Tiny,
    };
    let program = db::program(size);

    for (label, cfg) in [
        ("interp", VmConfig::interpreter()),
        ("jit", VmConfig::jit()),
    ] {
        // One run drives 8 cache configurations: a size sweep and the
        // paper's associativity sweep.
        let sizes = [8 * 1024u64, 16 * 1024, 32 * 1024, 64 * 1024];
        let mut sweep: Vec<SplitCaches> = sizes
            .iter()
            .map(|&s| SplitCaches::new(CacheConfig::new(s, 32, 2), CacheConfig::new(s, 32, 4)))
            .collect();
        let assoc: Vec<SplitCaches> = [1u32, 2, 4, 8]
            .iter()
            .map(|&a| {
                SplitCaches::new(
                    CacheConfig::paper_assoc_sweep(a),
                    CacheConfig::paper_assoc_sweep(a),
                )
            })
            .collect();
        let mut sinks = (std::mem::take(&mut sweep), assoc);
        let r = Vm::new(&program, cfg).run(&mut sinks)?;
        assert_eq!(r.exit_value, Some(db::expected(size)));

        println!("-- db, {label} mode --");
        println!("  capacity sweep (32B lines):");
        for (s, caches) in sizes.iter().zip(&sinks.0) {
            println!(
                "    {:>3}K: I-miss {:6.3}%  D-miss {:6.3}%",
                s / 1024,
                caches.icache().stats().miss_rate() * 100.0,
                caches.dcache().stats().miss_rate() * 100.0
            );
        }
        println!("  associativity sweep (8K, 32B):");
        for (a, caches) in [1, 2, 4, 8].iter().zip(&sinks.1) {
            println!(
                "    {a}-way: I-miss {:6.3}%  D-miss {:6.3}%",
                caches.icache().stats().miss_rate() * 100.0,
                caches.dcache().stats().miss_rate() * 100.0
            );
        }
    }
    Ok(())
}
