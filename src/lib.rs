//! `javart` — a research reproduction of *Architectural Issues in
//! Java Runtime Systems* (HPCA 2000).
//!
//! The paper characterizes how the two dominant JVM execution
//! techniques of the era — bytecode **interpretation** and
//! **just-in-time translation** — interact with processor hardware:
//! instruction mix, branch prediction, cache behaviour,
//! instruction-level parallelism, and monitor synchronization, using
//! SpecJVM98 traces collected with Shade on UltraSPARC machines.
//!
//! This workspace rebuilds that entire experimental apparatus in Rust:
//!
//! * [`bytecode`] — a miniature JVM instruction set, class format,
//!   assembler, and verifier;
//! * [`vm`] — the runtime: heap + GC, green threads, lazy class
//!   loading, an interpreter engine and a JIT translation engine that
//!   share one semantic core while emitting the distinct SPARC-like
//!   native instruction traces a real machine would execute, plus the
//!   paper's translate-or-interpret policies (including the Figure 1
//!   oracle) and a register-IR tier ([`ir`]) with its own interpreter
//!   and JIT path;
//! * [`ir`] — the stack-to-register lowering pass: abstract
//!   interpretation of the operand stack, constant folding,
//!   redundant-load elimination, and superinstruction fusion into a
//!   packed register instruction set;
//! * [`trace`] — the synthetic Shade: the native-instruction event
//!   model and trace-sink plumbing;
//! * [`cache`], [`bpred`], [`ilp`] — the architectural simulators
//!   (set-associative caches, the four Table 2 branch predictors, a
//!   trace-driven out-of-order core);
//! * [`sync`] — the Section 5 monitor substrates: JDK 1.1.6 monitor
//!   cache, Bacon thin locks, and the proposed 1-bit lock;
//! * [`workloads`] — deterministic SpecJVM98-analog programs written
//!   in the bytecode ISA, self-checked against host-side reference
//!   implementations;
//! * [`experiments`] — one driver per paper table/figure and the
//!   EXPERIMENTS.md report generator;
//! * [`fuzz`] — the coverage-guided differential fuzzer that checks
//!   every engine configuration against the interpreter on generated
//!   programs, shrinking any divergence to a minimal reproducer;
//! * [`serve`] — the multi-tenant serving tier: a work-stealing fleet
//!   of reusable VM instances with admission control, per-tenant fuel
//!   budgets, a shared deduplicating code cache, and a deterministic
//!   virtual-clock fleet simulator.
//!
//! # Quickstart
//!
//! ```
//! use javart::vm::{Vm, VmConfig};
//! use javart::workloads::{compress, Size};
//! use javart::trace::CountingSink;
//! use javart::cache::SplitCaches;
//!
//! // Build the LZW benchmark and run it under the JIT while a
//! // cache model watches the native trace.
//! let program = compress::program(Size::Tiny);
//! let mut sinks = (CountingSink::new(), SplitCaches::paper_l1());
//! let result = Vm::new(&program, VmConfig::jit()).run(&mut sinks)?;
//!
//! assert_eq!(result.exit_value, Some(compress::expected(Size::Tiny)));
//! println!(
//!     "{} native instructions, D-miss rate {:.2}%",
//!     sinks.0.total(),
//!     sinks.1.dcache().stats().miss_rate() * 100.0
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jrt_bpred as bpred;
pub use jrt_bytecode as bytecode;
pub use jrt_cache as cache;
pub use jrt_experiments as experiments;
pub use jrt_fuzz as fuzz;
pub use jrt_ilp as ilp;
pub use jrt_ir as ir;
pub use jrt_serve as serve;
pub use jrt_sync as sync;
pub use jrt_trace as trace;
pub use jrt_vm as vm;
pub use jrt_workloads as workloads;
