//! The register IR instruction set and its packed word encoding.
//!
//! Every instruction encodes as a flat opcode byte followed by
//! operand bytes, padded to a 4-byte word boundary; most fused ALU
//! instructions fit one word (`[op][dst][a][b]`). Small immediates
//! (-32..=31) and the first 64 locals pack into a single operand
//! byte; wider values spill into trailing bytes. Branch targets stay
//! bytecode pcs — the lowering plan maps them to word offsets.

use jrt_bytecode::{ArrayKind, Cond};
use std::fmt;

/// Value type of a register operand, as recovered by the stack map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit integer.
    Int,
    /// Object reference.
    Ref,
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Top-of-stack register (popped).
    Stack,
    /// Frame local `n`, read in place (a fused load).
    Local(u16),
    /// Immediate carried in the instruction word (a fused constant).
    Imm(i32),
    /// The null reference immediate.
    Null,
}

/// A destination operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dst {
    /// Push onto the operand stack register file.
    Stack,
    /// Retire straight into frame local `n` (a fused store).
    Local(u16),
}

/// Binary ALU operation (unary negate is [`IrInst::Neg`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Wrapping divide (traps on zero divisor at execution time).
    Div,
    /// Wrapping remainder (traps on zero divisor at execution time).
    Rem,
    /// Shift left, count masked to 5 bits.
    Shl,
    /// Arithmetic shift right, count masked to 5 bits.
    Shr,
    /// Logical shift right, count masked to 5 bits.
    Ushr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl AluOp {
    /// Mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Ushr => "ushr",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
        }
    }

    fn code(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Mul => 2,
            AluOp::Div => 3,
            AluOp::Rem => 4,
            AluOp::Shl => 5,
            AluOp::Shr => 6,
            AluOp::Ushr => 7,
            AluOp::And => 8,
            AluOp::Or => 9,
            AluOp::Xor => 10,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::Div,
            4 => AluOp::Rem,
            5 => AluOp::Shl,
            6 => AluOp::Shr,
            7 => AluOp::Ushr,
            8 => AluOp::And,
            9 => AluOp::Or,
            10 => AluOp::Xor,
            _ => return None,
        })
    }
}

/// Reference-comparison condition for [`IrInst::RefBr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefCond {
    /// Branch when the operand is null.
    IsNull,
    /// Branch when the operand is non-null.
    NonNull,
    /// Branch when the two references are identical.
    CmpEq,
    /// Branch when the two references differ.
    CmpNe,
}

/// Call kind for [`IrInst::Call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// Static dispatch.
    Static,
    /// Virtual dispatch on the receiver's class.
    Virtual,
    /// Direct dispatch (constructors, private methods).
    Special,
}

/// One register IR instruction.
///
/// Stack-manipulation bytecodes (`pop`, `dup`, `swap`) have no IR
/// counterpart: on a register machine they are renames and lower to
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IrInst {
    /// Materialize an integer constant onto the stack register file.
    LoadImm {
        /// The constant.
        imm: i32,
    },
    /// Materialize the null reference.
    LoadNull,
    /// Read frame local `n` onto the stack register file.
    LoadLocal {
        /// Operand type.
        ty: Ty,
        /// Local index.
        n: u16,
    },
    /// Write into frame local `n`.
    StoreLocal {
        /// Operand type.
        ty: Ty,
        /// Local index.
        n: u16,
        /// Stored value (a fused constant or local, or the stack).
        src: Src,
    },
    /// Binary ALU op.
    Alu {
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
        /// Where the result retires.
        dst: Dst,
    },
    /// Integer negate.
    Neg {
        /// Operand.
        a: Src,
        /// Where the result retires.
        dst: Dst,
    },
    /// Add an immediate to a local in place.
    Inc {
        /// Local index.
        n: u16,
        /// Signed delta.
        delta: i16,
    },
    /// Compare-and-branch on integers (`if<cond>` fuses `b = #0`).
    CmpBr {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
        /// Bytecode pc of the taken target.
        target: u32,
    },
    /// Compare-and-branch on references.
    RefBr {
        /// Condition.
        cond: RefCond,
        /// Left operand.
        a: Src,
        /// Right operand (`Null` for the unary forms).
        b: Src,
        /// Bytecode pc of the taken target.
        target: u32,
    },
    /// Unconditional branch.
    Br {
        /// Bytecode pc of the target.
        target: u32,
    },
    /// Indexed jump table.
    Switch {
        /// Lowest key covered.
        low: i32,
        /// Out-of-range target pc.
        default: u32,
        /// Per-key target pcs.
        targets: Vec<u32>,
        /// The key operand.
        key: Src,
    },
    /// Allocate an instance.
    New {
        /// Constant-pool class index.
        cp: u16,
    },
    /// Allocate an array.
    NewArray {
        /// Element kind.
        kind: ArrayKind,
        /// Length operand.
        len: Src,
    },
    /// Read an instance field.
    GetField {
        /// Constant-pool field index.
        cp: u16,
        /// Receiver operand.
        obj: Src,
    },
    /// Write an instance field.
    PutField {
        /// Constant-pool field index.
        cp: u16,
        /// Receiver operand.
        obj: Src,
        /// Stored value.
        val: Src,
    },
    /// Read a static field.
    GetStatic {
        /// Constant-pool field index.
        cp: u16,
    },
    /// Write a static field.
    PutStatic {
        /// Constant-pool field index.
        cp: u16,
        /// Stored value.
        val: Src,
    },
    /// Push an array's length.
    ArrayLength {
        /// Array operand.
        arr: Src,
    },
    /// Array element read.
    ArrLoad {
        /// Element kind.
        kind: ArrayKind,
        /// Array operand.
        arr: Src,
        /// Index operand.
        idx: Src,
    },
    /// Array element write.
    ArrStore {
        /// Element kind.
        kind: ArrayKind,
        /// Array operand.
        arr: Src,
        /// Index operand.
        idx: Src,
        /// Stored value.
        val: Src,
    },
    /// Method call.
    Call {
        /// Dispatch kind.
        kind: CallKind,
        /// Constant-pool method index.
        cp: u16,
    },
    /// Return, optionally carrying a typed value operand.
    Ret {
        /// Returned value, if any.
        val: Option<(Ty, Src)>,
    },
    /// Monitor enter/exit.
    Monitor {
        /// True for enter, false for exit.
        enter: bool,
        /// Monitored object operand.
        obj: Src,
    },
}

// Flat IR opcode bytes. ALU ops get one opcode each so the common
// fused form `[op][dst][a][b]` packs into a single word.
const IR_LOAD_IMM: u8 = 0;
const IR_LOAD_NULL: u8 = 1;
const IR_LOAD_LOCAL_I: u8 = 2;
const IR_LOAD_LOCAL_A: u8 = 3;
const IR_STORE_LOCAL_I: u8 = 4;
const IR_STORE_LOCAL_A: u8 = 5;
const IR_ALU_BASE: u8 = 6; // 6..=16: Add..Xor in AluOp::code order
const IR_NEG: u8 = 17;
const IR_INC: u8 = 18;
const IR_CMP_BR: u8 = 19;
const IR_REF_BR: u8 = 20;
const IR_BR: u8 = 21;
const IR_SWITCH: u8 = 22;
const IR_NEW: u8 = 23;
const IR_NEW_ARRAY: u8 = 24;
const IR_GET_FIELD: u8 = 25;
const IR_PUT_FIELD: u8 = 26;
const IR_GET_STATIC: u8 = 27;
const IR_PUT_STATIC: u8 = 28;
const IR_ARRAY_LENGTH: u8 = 29;
const IR_ARR_LOAD: u8 = 30;
const IR_ARR_STORE: u8 = 31;
const IR_CALL_STATIC: u8 = 32;
const IR_CALL_VIRTUAL: u8 = 33;
const IR_CALL_SPECIAL: u8 = 34;
const IR_RET: u8 = 35;
const IR_RET_VAL_I: u8 = 36;
const IR_RET_VAL_A: u8 = 37;
const IR_MON_ENTER: u8 = 38;
const IR_MON_EXIT: u8 = 39;

// Operand byte space: [0x00] stack; [0x40..0x7F] local n < 64;
// [0x80..0xBF] immediate -32..=31; escapes for everything wider.
const OPB_STACK: u8 = 0x00;
const OPB_LOCAL_BASE: u8 = 0x40;
const OPB_IMM_BASE: u8 = 0x80;
const OPB_WIDE_IMM: u8 = 0xC0;
const OPB_NULL: u8 = 0xC1;
const OPB_WIDE_LOCAL: u8 = 0xC2;

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Gt => 4,
        Cond::Le => 5,
    }
}

fn cond_from(c: u8) -> Option<Cond> {
    Some(match c {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Gt,
        5 => Cond::Le,
        _ => return None,
    })
}

fn refcond_code(c: RefCond) -> u8 {
    match c {
        RefCond::IsNull => 0,
        RefCond::NonNull => 1,
        RefCond::CmpEq => 2,
        RefCond::CmpNe => 3,
    }
}

fn refcond_from(c: u8) -> Option<RefCond> {
    Some(match c {
        0 => RefCond::IsNull,
        1 => RefCond::NonNull,
        2 => RefCond::CmpEq,
        3 => RefCond::CmpNe,
        _ => return None,
    })
}

fn kind_code(k: ArrayKind) -> u8 {
    match k {
        ArrayKind::Byte => 0,
        ArrayKind::Char => 1,
        ArrayKind::Int => 2,
        ArrayKind::Ref => 3,
    }
}

fn kind_from(c: u8) -> Option<ArrayKind> {
    Some(match c {
        0 => ArrayKind::Byte,
        1 => ArrayKind::Char,
        2 => ArrayKind::Int,
        3 => ArrayKind::Ref,
        _ => return None,
    })
}

fn put_src(out: &mut Vec<u8>, s: Src) {
    match s {
        Src::Stack => out.push(OPB_STACK),
        Src::Local(n) if n < 64 => out.push(OPB_LOCAL_BASE + n as u8),
        Src::Local(n) => {
            out.push(OPB_WIDE_LOCAL);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Src::Imm(v) if (-32..=31).contains(&v) => out.push(OPB_IMM_BASE + (v + 32) as u8),
        Src::Imm(v) => {
            out.push(OPB_WIDE_IMM);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Src::Null => out.push(OPB_NULL),
    }
}

fn put_dst(out: &mut Vec<u8>, d: Dst) {
    match d {
        Dst::Stack => put_src(out, Src::Stack),
        Dst::Local(n) => put_src(out, Src::Local(n)),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn src(&mut self) -> Option<Src> {
        let b = self.u8()?;
        Some(match b {
            OPB_STACK => Src::Stack,
            OPB_NULL => Src::Null,
            OPB_WIDE_IMM => Src::Imm(self.u32()? as i32),
            OPB_WIDE_LOCAL => Src::Local(self.u16()?),
            _ if (OPB_LOCAL_BASE..OPB_IMM_BASE).contains(&b) => {
                Src::Local(u16::from(b - OPB_LOCAL_BASE))
            }
            _ if (OPB_IMM_BASE..OPB_WIDE_IMM).contains(&b) => {
                Src::Imm(i32::from(b - OPB_IMM_BASE) - 32)
            }
            _ => return None,
        })
    }

    fn dst(&mut self) -> Option<Dst> {
        Some(match self.src()? {
            Src::Stack => Dst::Stack,
            Src::Local(n) => Dst::Local(n),
            _ => return None,
        })
    }
}

impl IrInst {
    /// Appends the byte encoding to `out` and pads it to a 4-byte
    /// word boundary.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        match self {
            IrInst::LoadImm { imm } => {
                out.push(IR_LOAD_IMM);
                put_src(out, Src::Imm(*imm));
            }
            IrInst::LoadNull => out.push(IR_LOAD_NULL),
            IrInst::LoadLocal { ty, n } => {
                out.push(match ty {
                    Ty::Int => IR_LOAD_LOCAL_I,
                    Ty::Ref => IR_LOAD_LOCAL_A,
                });
                put_src(out, Src::Local(*n));
            }
            IrInst::StoreLocal { ty, n, src } => {
                out.push(match ty {
                    Ty::Int => IR_STORE_LOCAL_I,
                    Ty::Ref => IR_STORE_LOCAL_A,
                });
                put_src(out, Src::Local(*n));
                put_src(out, *src);
            }
            IrInst::Alu { op, a, b, dst } => {
                out.push(IR_ALU_BASE + op.code());
                put_dst(out, *dst);
                put_src(out, *a);
                put_src(out, *b);
            }
            IrInst::Neg { a, dst } => {
                out.push(IR_NEG);
                put_dst(out, *dst);
                put_src(out, *a);
            }
            IrInst::Inc { n, delta } => {
                out.push(IR_INC);
                put_src(out, Src::Local(*n));
                out.extend_from_slice(&delta.to_le_bytes());
            }
            IrInst::CmpBr { cond, a, b, target } => {
                out.push(IR_CMP_BR);
                out.push(cond_code(*cond));
                put_src(out, *a);
                put_src(out, *b);
                out.extend_from_slice(&target.to_le_bytes());
            }
            IrInst::RefBr { cond, a, b, target } => {
                out.push(IR_REF_BR);
                out.push(refcond_code(*cond));
                put_src(out, *a);
                put_src(out, *b);
                out.extend_from_slice(&target.to_le_bytes());
            }
            IrInst::Br { target } => {
                out.push(IR_BR);
                out.extend_from_slice(&target.to_le_bytes());
            }
            IrInst::Switch {
                low,
                default,
                targets,
                key,
            } => {
                out.push(IR_SWITCH);
                put_src(out, *key);
                out.extend_from_slice(&low.to_le_bytes());
                let count = u16::try_from(targets.len()).expect("switch table too large");
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(&default.to_le_bytes());
                for t in targets {
                    out.extend_from_slice(&t.to_le_bytes());
                }
            }
            IrInst::New { cp } => {
                out.push(IR_NEW);
                out.extend_from_slice(&cp.to_le_bytes());
            }
            IrInst::NewArray { kind, len } => {
                out.push(IR_NEW_ARRAY);
                out.push(kind_code(*kind));
                put_src(out, *len);
            }
            IrInst::GetField { cp, obj } => {
                out.push(IR_GET_FIELD);
                out.extend_from_slice(&cp.to_le_bytes());
                put_src(out, *obj);
            }
            IrInst::PutField { cp, obj, val } => {
                out.push(IR_PUT_FIELD);
                out.extend_from_slice(&cp.to_le_bytes());
                put_src(out, *obj);
                put_src(out, *val);
            }
            IrInst::GetStatic { cp } => {
                out.push(IR_GET_STATIC);
                out.extend_from_slice(&cp.to_le_bytes());
            }
            IrInst::PutStatic { cp, val } => {
                out.push(IR_PUT_STATIC);
                out.extend_from_slice(&cp.to_le_bytes());
                put_src(out, *val);
            }
            IrInst::ArrayLength { arr } => {
                out.push(IR_ARRAY_LENGTH);
                put_src(out, *arr);
            }
            IrInst::ArrLoad { kind, arr, idx } => {
                out.push(IR_ARR_LOAD);
                out.push(kind_code(*kind));
                put_src(out, *arr);
                put_src(out, *idx);
            }
            IrInst::ArrStore {
                kind,
                arr,
                idx,
                val,
            } => {
                out.push(IR_ARR_STORE);
                out.push(kind_code(*kind));
                put_src(out, *arr);
                put_src(out, *idx);
                put_src(out, *val);
            }
            IrInst::Call { kind, cp } => {
                out.push(match kind {
                    CallKind::Static => IR_CALL_STATIC,
                    CallKind::Virtual => IR_CALL_VIRTUAL,
                    CallKind::Special => IR_CALL_SPECIAL,
                });
                out.extend_from_slice(&cp.to_le_bytes());
            }
            IrInst::Ret { val: None } => out.push(IR_RET),
            IrInst::Ret { val: Some((ty, s)) } => {
                out.push(match ty {
                    Ty::Int => IR_RET_VAL_I,
                    Ty::Ref => IR_RET_VAL_A,
                });
                put_src(out, *s);
            }
            IrInst::Monitor { enter, obj } => {
                out.push(if *enter { IR_MON_ENTER } else { IR_MON_EXIT });
                put_src(out, *obj);
            }
        }
        // Word-align so the next instruction starts on a word
        // boundary; 0xFF never begins a valid operand byte.
        while !(out.len() - start).is_multiple_of(4) {
            out.push(0xFF);
        }
    }

    /// Decodes the instruction starting at `off`.
    ///
    /// Returns the instruction and the number of bytes consumed
    /// (including alignment padding), or `None` on malformed input.
    pub fn decode(bytes: &[u8], off: usize) -> Option<(IrInst, usize)> {
        let mut r = Reader { bytes, pos: off };
        let opcode = r.u8()?;
        let inst = match opcode {
            IR_LOAD_IMM => match r.src()? {
                Src::Imm(imm) => IrInst::LoadImm { imm },
                _ => return None,
            },
            IR_LOAD_NULL => IrInst::LoadNull,
            IR_LOAD_LOCAL_I | IR_LOAD_LOCAL_A => {
                let ty = if opcode == IR_LOAD_LOCAL_I {
                    Ty::Int
                } else {
                    Ty::Ref
                };
                match r.src()? {
                    Src::Local(n) => IrInst::LoadLocal { ty, n },
                    _ => return None,
                }
            }
            IR_STORE_LOCAL_I | IR_STORE_LOCAL_A => {
                let ty = if opcode == IR_STORE_LOCAL_I {
                    Ty::Int
                } else {
                    Ty::Ref
                };
                let n = match r.src()? {
                    Src::Local(n) => n,
                    _ => return None,
                };
                IrInst::StoreLocal {
                    ty,
                    n,
                    src: r.src()?,
                }
            }
            c if (IR_ALU_BASE..IR_NEG).contains(&c) => IrInst::Alu {
                op: AluOp::from_code(c - IR_ALU_BASE)?,
                dst: r.dst()?,
                a: r.src()?,
                b: r.src()?,
            },
            IR_NEG => IrInst::Neg {
                dst: r.dst()?,
                a: r.src()?,
            },
            IR_INC => {
                let n = match r.src()? {
                    Src::Local(n) => n,
                    _ => return None,
                };
                IrInst::Inc {
                    n,
                    delta: r.u16()? as i16,
                }
            }
            IR_CMP_BR => IrInst::CmpBr {
                cond: cond_from(r.u8()?)?,
                a: r.src()?,
                b: r.src()?,
                target: r.u32()?,
            },
            IR_REF_BR => IrInst::RefBr {
                cond: refcond_from(r.u8()?)?,
                a: r.src()?,
                b: r.src()?,
                target: r.u32()?,
            },
            IR_BR => IrInst::Br { target: r.u32()? },
            IR_SWITCH => {
                let key = r.src()?;
                let low = r.u32()? as i32;
                let count = r.u16()? as usize;
                let default = r.u32()?;
                let mut targets = Vec::with_capacity(count);
                for _ in 0..count {
                    targets.push(r.u32()?);
                }
                IrInst::Switch {
                    low,
                    default,
                    targets,
                    key,
                }
            }
            IR_NEW => IrInst::New { cp: r.u16()? },
            IR_NEW_ARRAY => IrInst::NewArray {
                kind: kind_from(r.u8()?)?,
                len: r.src()?,
            },
            IR_GET_FIELD => IrInst::GetField {
                cp: r.u16()?,
                obj: r.src()?,
            },
            IR_PUT_FIELD => IrInst::PutField {
                cp: r.u16()?,
                obj: r.src()?,
                val: r.src()?,
            },
            IR_GET_STATIC => IrInst::GetStatic { cp: r.u16()? },
            IR_PUT_STATIC => IrInst::PutStatic {
                cp: r.u16()?,
                val: r.src()?,
            },
            IR_ARRAY_LENGTH => IrInst::ArrayLength { arr: r.src()? },
            IR_ARR_LOAD => IrInst::ArrLoad {
                kind: kind_from(r.u8()?)?,
                arr: r.src()?,
                idx: r.src()?,
            },
            IR_ARR_STORE => IrInst::ArrStore {
                kind: kind_from(r.u8()?)?,
                arr: r.src()?,
                idx: r.src()?,
                val: r.src()?,
            },
            IR_CALL_STATIC => IrInst::Call {
                kind: CallKind::Static,
                cp: r.u16()?,
            },
            IR_CALL_VIRTUAL => IrInst::Call {
                kind: CallKind::Virtual,
                cp: r.u16()?,
            },
            IR_CALL_SPECIAL => IrInst::Call {
                kind: CallKind::Special,
                cp: r.u16()?,
            },
            IR_RET => IrInst::Ret { val: None },
            IR_RET_VAL_I => IrInst::Ret {
                val: Some((Ty::Int, r.src()?)),
            },
            IR_RET_VAL_A => IrInst::Ret {
                val: Some((Ty::Ref, r.src()?)),
            },
            IR_MON_ENTER => IrInst::Monitor {
                enter: true,
                obj: r.src()?,
            },
            IR_MON_EXIT => IrInst::Monitor {
                enter: false,
                obj: r.src()?,
            },
            _ => return None,
        };
        let mut used = r.pos - off;
        used += (4 - used % 4) % 4;
        Some((inst, used))
    }

    /// Encoded size in 4-byte words.
    pub fn words(&self) -> u16 {
        let mut buf = Vec::with_capacity(8);
        self.encode_into(&mut buf);
        (buf.len() / 4) as u16
    }

    /// The flat opcode byte that begins this instruction's encoding —
    /// the IR interpreter's handler index.
    pub fn opcode(&self) -> u8 {
        match self {
            IrInst::LoadImm { .. } => IR_LOAD_IMM,
            IrInst::LoadNull => IR_LOAD_NULL,
            IrInst::LoadLocal { ty: Ty::Int, .. } => IR_LOAD_LOCAL_I,
            IrInst::LoadLocal { ty: Ty::Ref, .. } => IR_LOAD_LOCAL_A,
            IrInst::StoreLocal { ty: Ty::Int, .. } => IR_STORE_LOCAL_I,
            IrInst::StoreLocal { ty: Ty::Ref, .. } => IR_STORE_LOCAL_A,
            IrInst::Alu { op, .. } => IR_ALU_BASE + op.code(),
            IrInst::Neg { .. } => IR_NEG,
            IrInst::Inc { .. } => IR_INC,
            IrInst::CmpBr { .. } => IR_CMP_BR,
            IrInst::RefBr { .. } => IR_REF_BR,
            IrInst::Br { .. } => IR_BR,
            IrInst::Switch { .. } => IR_SWITCH,
            IrInst::New { .. } => IR_NEW,
            IrInst::NewArray { .. } => IR_NEW_ARRAY,
            IrInst::GetField { .. } => IR_GET_FIELD,
            IrInst::PutField { .. } => IR_PUT_FIELD,
            IrInst::GetStatic { .. } => IR_GET_STATIC,
            IrInst::PutStatic { .. } => IR_PUT_STATIC,
            IrInst::ArrayLength { .. } => IR_ARRAY_LENGTH,
            IrInst::ArrLoad { .. } => IR_ARR_LOAD,
            IrInst::ArrStore { .. } => IR_ARR_STORE,
            IrInst::Call {
                kind: CallKind::Static,
                ..
            } => IR_CALL_STATIC,
            IrInst::Call {
                kind: CallKind::Virtual,
                ..
            } => IR_CALL_VIRTUAL,
            IrInst::Call {
                kind: CallKind::Special,
                ..
            } => IR_CALL_SPECIAL,
            IrInst::Ret { val: None } => IR_RET,
            IrInst::Ret {
                val: Some((Ty::Int, _)),
            } => IR_RET_VAL_I,
            IrInst::Ret {
                val: Some((Ty::Ref, _)),
            } => IR_RET_VAL_A,
            IrInst::Monitor { enter: true, .. } => IR_MON_ENTER,
            IrInst::Monitor { enter: false, .. } => IR_MON_EXIT,
        }
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Stack => write!(f, "s"),
            Src::Local(n) => write!(f, "l{n}"),
            Src::Imm(v) => write!(f, "#{v}"),
            Src::Null => write!(f, "null"),
        }
    }
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dst::Stack => write!(f, "s"),
            Dst::Local(n) => write!(f, "l{n}"),
        }
    }
}

impl fmt::Display for IrInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrInst::LoadImm { imm } => write!(f, "ldi #{imm}"),
            IrInst::LoadNull => write!(f, "ldnull"),
            IrInst::LoadLocal { ty: Ty::Int, n } => write!(f, "ld.i l{n}"),
            IrInst::LoadLocal { ty: Ty::Ref, n } => write!(f, "ld.a l{n}"),
            IrInst::StoreLocal {
                ty: Ty::Int,
                n,
                src,
            } => write!(f, "st.i {src} -> l{n}"),
            IrInst::StoreLocal {
                ty: Ty::Ref,
                n,
                src,
            } => write!(f, "st.a {src} -> l{n}"),
            IrInst::Alu { op, a, b, dst } => write!(f, "{} {a}, {b} -> {dst}", op.mnemonic()),
            IrInst::Neg { a, dst } => write!(f, "neg {a} -> {dst}"),
            IrInst::Inc { n, delta } => write!(f, "inc l{n}, #{delta}"),
            IrInst::CmpBr { cond, a, b, target } => {
                write!(f, "br.{} {a}, {b} -> @{target}", cond.suffix())
            }
            IrInst::RefBr { cond, a, b, target } => {
                let name = match cond {
                    RefCond::IsNull => "null",
                    RefCond::NonNull => "nonnull",
                    RefCond::CmpEq => "aeq",
                    RefCond::CmpNe => "ane",
                };
                write!(f, "br.{name} {a}, {b} -> @{target}")
            }
            IrInst::Br { target } => write!(f, "br @{target}"),
            IrInst::Switch {
                low,
                default,
                targets,
                key,
            } => {
                write!(f, "switch {key}, low #{low}, default @{default}, [")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "@{t}")?;
                }
                write!(f, "]")
            }
            IrInst::New { cp } => write!(f, "new cp{cp}"),
            IrInst::NewArray { kind, len } => write!(f, "newarr.{} {len}", kind.prefix()),
            IrInst::GetField { cp, obj } => write!(f, "getf cp{cp}, {obj}"),
            IrInst::PutField { cp, obj, val } => write!(f, "putf cp{cp}, {obj}, {val}"),
            IrInst::GetStatic { cp } => write!(f, "gets cp{cp}"),
            IrInst::PutStatic { cp, val } => write!(f, "puts cp{cp}, {val}"),
            IrInst::ArrayLength { arr } => write!(f, "arrlen {arr}"),
            IrInst::ArrLoad { kind, arr, idx } => {
                write!(f, "aload.{} {arr}[{idx}]", kind.prefix())
            }
            IrInst::ArrStore {
                kind,
                arr,
                idx,
                val,
            } => write!(f, "astore.{} {arr}[{idx}] <- {val}", kind.prefix()),
            IrInst::Call { kind, cp } => {
                let name = match kind {
                    CallKind::Static => "static",
                    CallKind::Virtual => "virtual",
                    CallKind::Special => "special",
                };
                write!(f, "call.{name} cp{cp}")
            }
            IrInst::Ret { val: None } => write!(f, "ret"),
            IrInst::Ret {
                val: Some((Ty::Int, s)),
            } => write!(f, "ret.i {s}"),
            IrInst::Ret {
                val: Some((Ty::Ref, s)),
            } => write!(f, "ret.a {s}"),
            IrInst::Monitor { enter: true, obj } => write!(f, "monenter {obj}"),
            IrInst::Monitor { enter: false, obj } => write!(f, "monexit {obj}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: IrInst) {
        let mut buf = Vec::new();
        inst.encode_into(&mut buf);
        assert_eq!(buf.len() % 4, 0, "{inst:?} not word-aligned");
        let (decoded, used) = IrInst::decode(&buf, 0).expect("decode");
        assert_eq!(decoded, inst);
        assert_eq!(used, buf.len());
        assert_eq!(inst.words() as usize, buf.len() / 4);
        assert_eq!(inst.opcode(), buf[0], "{inst:?} opcode mismatch");
    }

    #[test]
    fn roundtrip_all_variants() {
        for inst in [
            IrInst::LoadImm { imm: 5 },
            IrInst::LoadImm { imm: -123456 },
            IrInst::LoadNull,
            IrInst::LoadLocal { ty: Ty::Int, n: 3 },
            IrInst::LoadLocal {
                ty: Ty::Ref,
                n: 200,
            },
            IrInst::StoreLocal {
                ty: Ty::Int,
                n: 0,
                src: Src::Imm(31),
            },
            IrInst::StoreLocal {
                ty: Ty::Ref,
                n: 90,
                src: Src::Null,
            },
            IrInst::Alu {
                op: AluOp::Add,
                a: Src::Local(0),
                b: Src::Local(1),
                dst: Dst::Local(2),
            },
            IrInst::Alu {
                op: AluOp::Ushr,
                a: Src::Stack,
                b: Src::Imm(1 << 20),
                dst: Dst::Stack,
            },
            IrInst::Neg {
                a: Src::Imm(-32),
                dst: Dst::Stack,
            },
            IrInst::Inc { n: 7, delta: -500 },
            IrInst::CmpBr {
                cond: Cond::Lt,
                a: Src::Local(1),
                b: Src::Imm(0),
                target: 42,
            },
            IrInst::RefBr {
                cond: RefCond::NonNull,
                a: Src::Stack,
                b: Src::Null,
                target: 9,
            },
            IrInst::Br { target: 0xDEAD },
            IrInst::Switch {
                low: -2,
                default: 99,
                targets: vec![10, 20, 30],
                key: Src::Local(4),
            },
            IrInst::New { cp: 12 },
            IrInst::NewArray {
                kind: ArrayKind::Char,
                len: Src::Imm(16),
            },
            IrInst::GetField {
                cp: 3,
                obj: Src::Local(0),
            },
            IrInst::PutField {
                cp: 4,
                obj: Src::Stack,
                val: Src::Imm(1),
            },
            IrInst::GetStatic { cp: 5 },
            IrInst::PutStatic {
                cp: 6,
                val: Src::Stack,
            },
            IrInst::ArrayLength { arr: Src::Local(2) },
            IrInst::ArrLoad {
                kind: ArrayKind::Int,
                arr: Src::Local(1),
                idx: Src::Stack,
            },
            IrInst::ArrStore {
                kind: ArrayKind::Ref,
                arr: Src::Stack,
                idx: Src::Imm(0),
                val: Src::Null,
            },
            IrInst::Call {
                kind: CallKind::Virtual,
                cp: 17,
            },
            IrInst::Ret { val: None },
            IrInst::Ret {
                val: Some((Ty::Int, Src::Imm(7))),
            },
            IrInst::Ret {
                val: Some((Ty::Ref, Src::Stack)),
            },
            IrInst::Monitor {
                enter: true,
                obj: Src::Local(0),
            },
            IrInst::Monitor {
                enter: false,
                obj: Src::Stack,
            },
        ] {
            roundtrip(inst);
        }
    }

    #[test]
    fn fused_alu_packs_into_one_word() {
        // The headline superinstruction: load+load+add+store in a
        // single 4-byte word.
        let inst = IrInst::Alu {
            op: AluOp::Add,
            a: Src::Local(0),
            b: Src::Local(1),
            dst: Dst::Local(2),
        };
        assert_eq!(inst.words(), 1);
        // Small immediates fuse without widening.
        let imm = IrInst::Alu {
            op: AluOp::Mul,
            a: Src::Stack,
            b: Src::Imm(-32),
            dst: Dst::Stack,
        };
        assert_eq!(imm.words(), 1);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(IrInst::decode(&[0xFE, 0, 0, 0], 0).is_none());
        // ALU with an immediate destination byte is malformed.
        assert!(IrInst::decode(&[IR_ALU_BASE, OPB_IMM_BASE, 0, 0], 0).is_none());
        // Truncated wide immediate.
        assert!(IrInst::decode(&[IR_LOAD_IMM, OPB_WIDE_IMM, 1, 2], 0).is_none());
    }

    #[test]
    fn disasm_is_stable() {
        let inst = IrInst::Alu {
            op: AluOp::Add,
            a: Src::Local(0),
            b: Src::Imm(5),
            dst: Dst::Local(2),
        };
        assert_eq!(inst.to_string(), "add l0, #5 -> l2");
        assert_eq!(
            IrInst::CmpBr {
                cond: Cond::Ge,
                a: Src::Stack,
                b: Src::Imm(0),
                target: 12,
            }
            .to_string(),
            "br.ge s, #0 -> @12"
        );
    }
}
