//! Stack-to-register lowering for the 49-opcode stack ISA.
//!
//! The paper's instruction-mix analysis (Fig 2, Table 1) is framed
//! around a stack machine, where every value flows through push/pop
//! traffic and every bytecode pays a full dispatch. This crate lowers
//! verified stack bytecode into a register IR — the design point the
//! paper could not study in 2000 — so the VM can grow execution
//! engines whose dispatch and memory-traffic characteristics are
//! measurably different while the *semantic core stays the stack
//! machine's*: lowering produces a per-bytecode cost plan consumed by
//! the IR emitters, never an alternate executor, so `Observables`
//! are identical by construction.
//!
//! The pipeline (see [`lower`]):
//!
//! 1. **Stack map** — a single forward pass abstractly interprets the
//!    operand stack per extended basic block, tracking which stack
//!    slots hold deferrable producers (constants, local loads) and
//!    which integer locals hold known constants.
//! 2. **Constant folding** — ALU ops over two known constants fold at
//!    lowering time; the operand producers are elided and the ALU pc
//!    itself becomes a deferred constant.
//! 3. **Redundant-load elimination** — a load of a local whose value
//!    is a known constant within the block becomes a deferred
//!    constant instead of a memory read.
//! 4. **Superinstruction fusion** — deferred operands fuse into their
//!    consumer as typed [`Src`] operands (`load+load+add+store`
//!    collapses into one `add l0, l1 -> l2` IR instruction), and an
//!    ALU immediately followed by a store retires straight to the
//!    local.
//!
//! The result is an [`IrMethod`]: a pc-ordered list of [`IrInst`]
//! register instructions with a packed 4-byte-word encoding (flat
//! opcode byte plus operand bytes, in the style of rwasm's flat
//! `InstructionSet` and eval-rs's packed register words — see
//! SNIPPETS.md §1 and §3), and a dense per-pc [`PcPlan`] that tells
//! an execution engine, for every bytecode pc, whether it dispatches
//! an IR instruction ([`PcPlan::Exec`]), rides along inside a fused
//! neighbour ([`PcPlan::Covered`]), or was optimized away entirely
//! ([`PcPlan::Elided`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inst;
mod lower;

pub use inst::{AluOp, CallKind, Dst, IrInst, RefCond, Src, Ty};
pub use lower::{lower, IrMethod, LowerStats, PcPlan};
