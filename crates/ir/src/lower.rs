//! Single-pass stack-to-register lowering.
//!
//! The pass abstractly interprets the operand stack over one linear
//! scan of the method. Within an extended basic block (leaders =
//! entry plus every branch target) it defers *producers* — constants
//! and local loads — instead of emitting them, and fuses them into
//! their consumer as typed operands. Deferral never crosses a block
//! boundary, so the plan is a pure static property of each pc: the
//! same bytecode always carries the same cost no matter which path
//! reached it, which is what lets the IR engines stay in lockstep
//! with the stack interpreter's semantics.

use crate::inst::{AluOp, CallKind, Dst, IrInst, RefCond, Src, Ty};
use jrt_bytecode::{BytecodeError, Op};

/// What a bytecode pc costs under the register IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcPlan {
    /// The pc dispatches its own IR instruction: `words` 4-byte words
    /// starting at word offset `word_off` in the method's IR buffer.
    Exec {
        /// Word offset of the instruction in the encoded IR.
        word_off: u32,
        /// Encoded size in words.
        words: u16,
    },
    /// The pc's work rides inside a fused neighbour (e.g. a local
    /// load absorbed as a register operand): no dispatch, but its
    /// own memory micro-ops still happen.
    Covered,
    /// The pc was optimized away entirely (folded constant, dead
    /// value, stack rename): no dispatch, no micro-ops.
    Elided,
}

/// Aggregate statistics from one lowering, surfaced to the
/// experiments layer and to `LowerStats`-driven golden tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Decoded bytecode instructions.
    pub bytecodes: u32,
    /// IR instructions emitted (`Exec` pcs).
    pub ir_insts: u32,
    /// Pcs fused into a neighbour (`Covered`).
    pub covered: u32,
    /// Pcs optimized away (`Elided`).
    pub elided: u32,
    /// Constant-folding events (ALU over two known constants).
    pub folded: u32,
    /// Operands fused into a consumer (immediates and locals).
    pub fused: u32,
    /// Loads of a local whose constant value was forwarded.
    pub loads_forwarded: u32,
    /// Total encoded IR size in 4-byte words.
    pub total_words: u32,
}

/// A lowered method: the IR instruction stream plus the per-pc plan.
#[derive(Debug, Clone)]
pub struct IrMethod {
    /// IR instructions, sorted by the bytecode pc they replace (at
    /// most one per pc).
    pub insts: Vec<(u32, IrInst)>,
    /// Lowering statistics.
    pub stats: LowerStats,
    plan: Vec<PcPlan>,
    exec_word: Vec<u32>,
}

impl IrMethod {
    /// The plan for the bytecode instruction starting at `pc`.
    pub fn plan_at(&self, pc: u32) -> PcPlan {
        self.plan
            .get(pc as usize)
            .copied()
            .unwrap_or(PcPlan::Elided)
    }

    /// The IR instruction dispatched at `pc`, if the pc's plan is
    /// [`PcPlan::Exec`].
    pub fn inst_at(&self, pc: u32) -> Option<&IrInst> {
        self.insts
            .binary_search_by_key(&pc, |(p, _)| *p)
            .ok()
            .map(|i| &self.insts[i].1)
    }

    /// Word offset of the first executable IR instruction at or
    /// after bytecode `pc` — the branch-target mapping.
    pub fn word_target(&self, pc: u32) -> u32 {
        self.exec_word
            .get(pc as usize)
            .copied()
            .unwrap_or(self.stats.total_words)
    }

    /// Total encoded size in 4-byte words.
    pub fn total_words(&self) -> u32 {
        self.stats.total_words
    }

    /// Packs the instruction stream into its word encoding.
    pub fn encode_words(&self) -> Vec<u32> {
        let mut bytes = Vec::with_capacity(self.stats.total_words as usize * 4);
        for (_, inst) in &self.insts {
            inst.encode_into(&mut bytes);
        }
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Renders a stable disassembly listing, one line per IR
    /// instruction: `@pc+word: inst`.
    pub fn disasm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pc, inst) in &self.insts {
            let PcPlan::Exec { word_off, .. } = self.plan_at(*pc) else {
                unreachable!("inst at non-exec pc");
            };
            let _ = writeln!(out, "@{pc}+{word_off}: {inst}");
        }
        out
    }
}

/// Abstract value on the modelled operand stack.
enum Abs {
    /// A value in a register whose producer is not rewritable.
    Opaque,
    /// Deferred integer constant produced at `pc`.
    Const { pc: u32, val: i32 },
    /// Deferred null produced at `pc`.
    Null { pc: u32 },
    /// Deferred int local load produced at `pc`.
    LoadI { pc: u32, n: u8 },
    /// Deferred ref local load produced at `pc`.
    LoadA { pc: u32, n: u8 },
}

/// Internal per-pc classification before word offsets are known.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Exec,
    Covered,
    Elided,
}

/// Known integer constants per local slot. Locals are `u8`-indexed,
/// so a direct-index table plus a dirty list beats hashing on the
/// lowering hot loop; block-boundary clears touch only written slots.
struct LocalConsts {
    vals: [Option<i32>; 256],
    dirty: Vec<u8>,
}

impl LocalConsts {
    fn new() -> Self {
        LocalConsts {
            vals: [None; 256],
            dirty: Vec::new(),
        }
    }

    fn get(&self, n: u8) -> Option<i32> {
        self.vals[usize::from(n)]
    }

    fn set(&mut self, n: u8, v: i32) {
        if self.vals[usize::from(n)].is_none() {
            self.dirty.push(n);
        }
        self.vals[usize::from(n)] = Some(v);
    }

    fn kill(&mut self, n: u8) {
        self.vals[usize::from(n)] = None;
    }

    fn clear(&mut self) {
        for n in self.dirty.drain(..) {
            self.vals[usize::from(n)] = None;
        }
    }
}

struct Lowerer<'a> {
    ops: &'a [(u32, Op, usize)],
    leader: Vec<bool>,
    kind: Vec<Kind>,
    insts: Vec<(u32, IrInst)>,
    stack: Vec<Abs>,
    local_ints: LocalConsts,
    skip_next_store: bool,
    stats: LowerStats,
}

impl Lowerer<'_> {
    fn pop(&mut self) -> Abs {
        // Values flowing in across a block boundary are opaque.
        self.stack.pop().unwrap_or(Abs::Opaque)
    }

    /// Turns a deferred producer into its own IR instruction at the
    /// producer's pc.
    fn materialize(&mut self, e: &Abs) {
        let (pc, inst) = match *e {
            Abs::Opaque => return,
            Abs::Const { pc, val } => (pc, IrInst::LoadImm { imm: val }),
            Abs::Null { pc } => (pc, IrInst::LoadNull),
            Abs::LoadI { pc, n } => (
                pc,
                IrInst::LoadLocal {
                    ty: Ty::Int,
                    n: n.into(),
                },
            ),
            Abs::LoadA { pc, n } => (
                pc,
                IrInst::LoadLocal {
                    ty: Ty::Ref,
                    n: n.into(),
                },
            ),
        };
        self.kind[pc as usize] = Kind::Exec;
        self.insts.push((pc, inst));
    }

    /// Materializes every deferred entry in place (the values stay
    /// on the stack, now opaque).
    fn flush(&mut self) {
        for i in 0..self.stack.len() {
            if !matches!(self.stack[i], Abs::Opaque) {
                let e = std::mem::replace(&mut self.stack[i], Abs::Opaque);
                self.materialize(&e);
            }
        }
    }

    /// Consumes an abstract value as a fused operand: deferred
    /// constants become immediates (producer elided), deferred loads
    /// become in-place local reads (producer covered).
    fn fuse(&mut self, e: Abs) -> Src {
        match e {
            Abs::Opaque => Src::Stack,
            Abs::Const { val, .. } => {
                self.stats.fused += 1;
                Src::Imm(val)
            }
            Abs::Null { .. } => {
                self.stats.fused += 1;
                Src::Null
            }
            Abs::LoadI { pc, n } | Abs::LoadA { pc, n } => {
                self.kind[pc as usize] = Kind::Covered;
                self.stats.fused += 1;
                Src::Local(n.into())
            }
        }
    }

    fn exec(&mut self, pc: u32, inst: IrInst) {
        self.kind[pc as usize] = Kind::Exec;
        self.insts.push((pc, inst));
    }

    /// Peek-ahead store fusion: if the next instruction is an
    /// `istore` in the same block, the ALU retires straight to the
    /// local and the store pc is covered.
    fn fused_store_dst(&mut self, i: usize) -> Dst {
        if let Some((npc, Op::IStore(n), _)) = self.ops.get(i + 1) {
            if !self.leader[*npc as usize] {
                self.kind[*npc as usize] = Kind::Covered;
                self.skip_next_store = true;
                self.local_ints.kill(*n);
                self.stats.fused += 1;
                return Dst::Local(u16::from(*n));
            }
        }
        Dst::Stack
    }

    /// Mirrors the interpreter's ALU semantics exactly; `None` when
    /// the operation would trap (never folded).
    fn fold(op: &Op, a: i32, b: i32) -> Option<i32> {
        Some(match op {
            Op::IAdd => a.wrapping_add(b),
            Op::ISub => a.wrapping_sub(b),
            Op::IMul => a.wrapping_mul(b),
            Op::IDiv if b != 0 => a.wrapping_div(b),
            Op::IRem if b != 0 => a.wrapping_rem(b),
            Op::IShl => a.wrapping_shl(b as u32 & 31),
            Op::IShr => a.wrapping_shr(b as u32 & 31),
            Op::IUshr => ((a as u32) >> (b as u32 & 31)) as i32,
            Op::IAnd => a & b,
            Op::IOr => a | b,
            Op::IXor => a ^ b,
            _ => return None,
        })
    }

    fn alu_op(op: &Op) -> AluOp {
        match op {
            Op::IAdd => AluOp::Add,
            Op::ISub => AluOp::Sub,
            Op::IMul => AluOp::Mul,
            Op::IDiv => AluOp::Div,
            Op::IRem => AluOp::Rem,
            Op::IShl => AluOp::Shl,
            Op::IShr => AluOp::Shr,
            Op::IUshr => AluOp::Ushr,
            Op::IAnd => AluOp::And,
            Op::IOr => AluOp::Or,
            Op::IXor => AluOp::Xor,
            _ => unreachable!("not a binary ALU op"),
        }
    }

    fn run(&mut self) {
        for i in 0..self.ops.len() {
            let (pc, ref op, _) = self.ops[i];
            if self.leader[pc as usize] {
                // Values live across an incoming edge must exist in
                // registers before the merge; constant facts about
                // locals do not survive a merge.
                self.flush();
                self.stack.clear();
                self.local_ints.clear();
            }
            if self.skip_next_store {
                // This store was fused into the preceding ALU
                // instruction (kind already set to Covered).
                self.skip_next_store = false;
                continue;
            }
            match *op {
                Op::Nop => {}
                Op::IConst(v) => self.stack.push(Abs::Const { pc, val: v }),
                Op::AConstNull => self.stack.push(Abs::Null { pc }),
                Op::ILoad(n) => {
                    if let Some(v) = self.local_ints.get(n) {
                        // Redundant-load elimination: the local's
                        // value is known in this block.
                        self.stats.loads_forwarded += 1;
                        self.stack.push(Abs::Const { pc, val: v });
                    } else {
                        self.stack.push(Abs::LoadI { pc, n });
                    }
                }
                Op::ALoad(n) => self.stack.push(Abs::LoadA { pc, n }),
                Op::IStore(n) => {
                    let e = self.pop();
                    let known = match &e {
                        Abs::Const { val, .. } => Some(*val),
                        _ => None,
                    };
                    let src = self.fuse(e);
                    self.exec(
                        pc,
                        IrInst::StoreLocal {
                            ty: Ty::Int,
                            n: n.into(),
                            src,
                        },
                    );
                    match known {
                        Some(v) => self.local_ints.set(n, v),
                        None => self.local_ints.kill(n),
                    }
                }
                Op::AStore(n) => {
                    let e = self.pop();
                    let src = self.fuse(e);
                    self.exec(
                        pc,
                        IrInst::StoreLocal {
                            ty: Ty::Ref,
                            n: n.into(),
                            src,
                        },
                    );
                    // Locals share one slot space; a ref store kills
                    // any known int constant in that slot.
                    self.local_ints.kill(n);
                }
                Op::Pop => {
                    // Dropping a register is free; a dropped deferred
                    // producer is dead code and stays elided.
                    let _ = self.pop();
                }
                Op::Dup => {
                    let e = self.pop();
                    self.materialize(&e);
                    self.stack.push(Abs::Opaque);
                    self.stack.push(Abs::Opaque);
                }
                Op::DupX1 => {
                    let top = self.pop();
                    let under = self.pop();
                    self.materialize(&under);
                    self.materialize(&top);
                    self.stack.push(Abs::Opaque);
                    self.stack.push(Abs::Opaque);
                    self.stack.push(Abs::Opaque);
                }
                Op::Swap => {
                    let top = self.pop();
                    let under = self.pop();
                    self.materialize(&under);
                    self.materialize(&top);
                    self.stack.push(Abs::Opaque);
                    self.stack.push(Abs::Opaque);
                }
                Op::IAdd
                | Op::ISub
                | Op::IMul
                | Op::IDiv
                | Op::IRem
                | Op::IShl
                | Op::IShr
                | Op::IUshr
                | Op::IAnd
                | Op::IOr
                | Op::IXor => {
                    let b = self.pop();
                    let a = self.pop();
                    if let (Abs::Const { val: av, .. }, Abs::Const { val: bv, .. }) = (&a, &b) {
                        if let Some(val) = Self::fold(op, *av, *bv) {
                            // Both producers die elided; this pc
                            // becomes the deferred folded constant.
                            self.stats.folded += 1;
                            self.stack.push(Abs::Const { pc, val });
                            continue;
                        }
                    }
                    let bsrc = self.fuse(b);
                    let asrc = self.fuse(a);
                    let dst = self.fused_store_dst(i);
                    self.exec(
                        pc,
                        IrInst::Alu {
                            op: Self::alu_op(op),
                            a: asrc,
                            b: bsrc,
                            dst,
                        },
                    );
                    if dst == Dst::Stack {
                        self.stack.push(Abs::Opaque);
                    }
                }
                Op::INeg => {
                    let a = self.pop();
                    if let Abs::Const { val, .. } = a {
                        self.stats.folded += 1;
                        self.stack.push(Abs::Const {
                            pc,
                            val: val.wrapping_neg(),
                        });
                        continue;
                    }
                    let asrc = self.fuse(a);
                    let dst = self.fused_store_dst(i);
                    self.exec(pc, IrInst::Neg { a: asrc, dst });
                    if dst == Dst::Stack {
                        self.stack.push(Abs::Opaque);
                    }
                }
                Op::IInc(n, d) => {
                    self.exec(
                        pc,
                        IrInst::Inc {
                            n: n.into(),
                            delta: d,
                        },
                    );
                    if let Some(v) = self.local_ints.get(n) {
                        self.local_ints.set(n, v.wrapping_add(i32::from(d)));
                    }
                }
                Op::If(cond, target) => {
                    let a = self.pop();
                    let asrc = self.fuse(a);
                    self.exec(
                        pc,
                        IrInst::CmpBr {
                            cond,
                            a: asrc,
                            b: Src::Imm(0),
                            target,
                        },
                    );
                    self.flush();
                }
                Op::IfICmp(cond, target) => {
                    let b = self.pop();
                    let a = self.pop();
                    let bsrc = self.fuse(b);
                    let asrc = self.fuse(a);
                    self.exec(
                        pc,
                        IrInst::CmpBr {
                            cond,
                            a: asrc,
                            b: bsrc,
                            target,
                        },
                    );
                    self.flush();
                }
                Op::IfNull(target) | Op::IfNonNull(target) => {
                    let cond = if matches!(op, Op::IfNull(_)) {
                        RefCond::IsNull
                    } else {
                        RefCond::NonNull
                    };
                    let a = self.pop();
                    let asrc = self.fuse(a);
                    self.exec(
                        pc,
                        IrInst::RefBr {
                            cond,
                            a: asrc,
                            b: Src::Null,
                            target,
                        },
                    );
                    self.flush();
                }
                Op::IfACmpEq(target) | Op::IfACmpNe(target) => {
                    let cond = if matches!(op, Op::IfACmpEq(_)) {
                        RefCond::CmpEq
                    } else {
                        RefCond::CmpNe
                    };
                    let b = self.pop();
                    let a = self.pop();
                    let bsrc = self.fuse(b);
                    let asrc = self.fuse(a);
                    self.exec(
                        pc,
                        IrInst::RefBr {
                            cond,
                            a: asrc,
                            b: bsrc,
                            target,
                        },
                    );
                    self.flush();
                }
                Op::Goto(target) => {
                    // Deferred values are live across the jump.
                    self.flush();
                    self.exec(pc, IrInst::Br { target });
                }
                Op::TableSwitch {
                    low,
                    default,
                    ref targets,
                } => {
                    let k = self.pop();
                    let key = self.fuse(k);
                    self.flush();
                    self.exec(
                        pc,
                        IrInst::Switch {
                            low,
                            default,
                            targets: targets.clone(),
                            key,
                        },
                    );
                }
                Op::New(cp) => {
                    self.exec(pc, IrInst::New { cp: cp.0 });
                    self.stack.push(Abs::Opaque);
                }
                Op::NewArray(kind) => {
                    let l = self.pop();
                    let len = self.fuse(l);
                    self.exec(pc, IrInst::NewArray { kind, len });
                    self.stack.push(Abs::Opaque);
                }
                Op::GetField(cp) => {
                    let o = self.pop();
                    let obj = self.fuse(o);
                    self.exec(pc, IrInst::GetField { cp: cp.0, obj });
                    self.stack.push(Abs::Opaque);
                }
                Op::PutField(cp) => {
                    let v = self.pop();
                    let o = self.pop();
                    let val = self.fuse(v);
                    let obj = self.fuse(o);
                    self.exec(pc, IrInst::PutField { cp: cp.0, obj, val });
                }
                Op::GetStatic(cp) => {
                    self.exec(pc, IrInst::GetStatic { cp: cp.0 });
                    self.stack.push(Abs::Opaque);
                }
                Op::PutStatic(cp) => {
                    let v = self.pop();
                    let val = self.fuse(v);
                    self.exec(pc, IrInst::PutStatic { cp: cp.0, val });
                }
                Op::ArrayLength => {
                    let a = self.pop();
                    let arr = self.fuse(a);
                    self.exec(pc, IrInst::ArrayLength { arr });
                    self.stack.push(Abs::Opaque);
                }
                Op::ArrLoad(kind) => {
                    let i_ = self.pop();
                    let a = self.pop();
                    let idx = self.fuse(i_);
                    let arr = self.fuse(a);
                    self.exec(pc, IrInst::ArrLoad { kind, arr, idx });
                    self.stack.push(Abs::Opaque);
                }
                Op::ArrStore(kind) => {
                    let v = self.pop();
                    let i_ = self.pop();
                    let a = self.pop();
                    let val = self.fuse(v);
                    let idx = self.fuse(i_);
                    let arr = self.fuse(a);
                    self.exec(
                        pc,
                        IrInst::ArrStore {
                            kind,
                            arr,
                            idx,
                            val,
                        },
                    );
                }
                Op::InvokeStatic(cp) | Op::InvokeVirtual(cp) | Op::InvokeSpecial(cp) => {
                    let kind = match op {
                        Op::InvokeStatic(_) => CallKind::Static,
                        Op::InvokeVirtual(_) => CallKind::Virtual,
                        _ => CallKind::Special,
                    };
                    // Arguments must be materialized for the call;
                    // the callee cannot touch caller locals, so
                    // constant facts survive. Argument count is a
                    // pool property, so the abstract stack resets
                    // (everything on it is opaque by now anyway).
                    self.flush();
                    self.stack.clear();
                    self.exec(pc, IrInst::Call { kind, cp: cp.0 });
                }
                Op::Return => {
                    // Anything still deferred dies with the frame.
                    self.exec(pc, IrInst::Ret { val: None });
                }
                Op::IReturn | Op::AReturn => {
                    let ty = if matches!(op, Op::IReturn) {
                        Ty::Int
                    } else {
                        Ty::Ref
                    };
                    let v = self.pop();
                    let src = self.fuse(v);
                    self.exec(
                        pc,
                        IrInst::Ret {
                            val: Some((ty, src)),
                        },
                    );
                }
                Op::MonitorEnter | Op::MonitorExit => {
                    // Synchronization is a block boundary for the
                    // optimizer: materialize everything first.
                    self.flush();
                    let _ = self.pop();
                    self.exec(
                        pc,
                        IrInst::Monitor {
                            enter: matches!(op, Op::MonitorEnter),
                            obj: Src::Stack,
                        },
                    );
                }
            }
            if !op.falls_through() {
                self.stack.clear();
                self.local_ints.clear();
            }
        }
    }
}

/// Lowers a verified method body into its register IR.
///
/// # Errors
///
/// Returns an error only when `code` is not decodable; verified
/// methods always lower.
pub fn lower(code: &[u8]) -> Result<IrMethod, BytecodeError> {
    let mut ops = Vec::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let (op, len) = Op::decode(code, pc)?;
        ops.push((pc as u32, op, len));
        pc += len;
    }
    let mut leader = vec![false; code.len().max(1)];
    leader[0] = true;
    for (_, op, _) in &ops {
        for t in op.branch_targets() {
            if let Some(slot) = leader.get_mut(t as usize) {
                *slot = true;
            }
        }
    }
    let mut l = Lowerer {
        ops: &ops,
        leader,
        kind: vec![Kind::Elided; code.len()],
        insts: Vec::new(),
        stack: Vec::new(),
        local_ints: LocalConsts::new(),
        skip_next_store: false,
        stats: LowerStats::default(),
    };
    l.run();
    let mut stats = l.stats;
    let kind = l.kind;
    let mut insts = l.insts;

    // Materialization can emit a producer's instruction after later
    // pcs already emitted theirs; restore pc order (one inst per pc).
    insts.sort_by_key(|(pc, _)| *pc);

    // Assign word offsets and build the dense plan.
    let mut plan = vec![PcPlan::Elided; code.len()];
    let mut word = 0u32;
    for (pc, inst) in &insts {
        let words = inst.words();
        plan[*pc as usize] = PcPlan::Exec {
            word_off: word,
            words,
        };
        word += u32::from(words);
    }
    for (pc, _, _) in &ops {
        if kind[*pc as usize] == Kind::Covered {
            plan[*pc as usize] = PcPlan::Covered;
        }
    }
    stats.bytecodes = ops.len() as u32;
    stats.total_words = word;
    for (pc, _, _) in &ops {
        match plan[*pc as usize] {
            PcPlan::Exec { .. } => stats.ir_insts += 1,
            PcPlan::Covered => stats.covered += 1,
            PcPlan::Elided => stats.elided += 1,
        }
    }

    // Branch-target map: word offset of the first Exec pc >= each pc.
    let mut exec_word = vec![word; code.len()];
    let mut next = word;
    for p in (0..code.len()).rev() {
        if let PcPlan::Exec { word_off, .. } = plan[p] {
            next = word_off;
        }
        exec_word[p] = next;
    }

    Ok(IrMethod {
        insts,
        stats,
        plan,
        exec_word,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::Cond;

    fn asm(ops: &[Op]) -> Vec<u8> {
        let mut code = Vec::new();
        for op in ops {
            op.encode(&mut code);
        }
        code
    }

    /// pc of the `i`th instruction in `ops`.
    fn pc_of(ops: &[Op], i: usize) -> u32 {
        let mut buf = Vec::new();
        let mut pc = 0u32;
        for op in &ops[..i] {
            buf.clear();
            op.encode(&mut buf);
            pc += buf.len() as u32;
        }
        pc
    }

    #[test]
    fn quad_fuses_to_one_inst() {
        // iload 0; iload 1; iadd; istore 2 -> add l0, l1 -> l2
        let ops = [
            Op::ILoad(0),
            Op::ILoad(1),
            Op::IAdd,
            Op::IStore(2),
            Op::Return,
        ];
        let ir = lower(&asm(&ops)).unwrap();
        assert_eq!(ir.insts.len(), 2);
        assert_eq!(
            ir.insts[0].1,
            IrInst::Alu {
                op: AluOp::Add,
                a: Src::Local(0),
                b: Src::Local(1),
                dst: Dst::Local(2),
            }
        );
        assert_eq!(ir.insts[1].1, IrInst::Ret { val: None });
        // Loads are covered (their memory reads still happen); the
        // store is covered by the ALU's fused destination.
        assert_eq!(ir.plan_at(pc_of(&ops, 0)), PcPlan::Covered);
        assert_eq!(ir.plan_at(pc_of(&ops, 1)), PcPlan::Covered);
        assert!(matches!(ir.plan_at(pc_of(&ops, 2)), PcPlan::Exec { .. }));
        assert_eq!(ir.plan_at(pc_of(&ops, 3)), PcPlan::Covered);
        assert_eq!(ir.stats.ir_insts, 2);
        assert_eq!(ir.stats.covered, 3);
    }

    #[test]
    fn constants_fold_and_forward() {
        // iconst 6; iconst 7; imul; istore 0; iload 0; ireturn
        // folds to: st.i #42 -> l0; ret.i #42
        let ops = [
            Op::IConst(6),
            Op::IConst(7),
            Op::IMul,
            Op::IStore(0),
            Op::ILoad(0),
            Op::IReturn,
        ];
        let ir = lower(&asm(&ops)).unwrap();
        assert_eq!(ir.insts.len(), 2);
        assert_eq!(
            ir.insts[0].1,
            IrInst::StoreLocal {
                ty: Ty::Int,
                n: 0,
                src: Src::Imm(42),
            }
        );
        assert_eq!(
            ir.insts[1].1,
            IrInst::Ret {
                val: Some((Ty::Int, Src::Imm(42))),
            }
        );
        assert_eq!(ir.stats.folded, 1);
        assert_eq!(ir.stats.loads_forwarded, 1);
        // Both iconst pcs and the imul and iload pcs are gone.
        assert_eq!(ir.stats.elided, 4);
    }

    #[test]
    fn division_by_zero_never_folds() {
        let ops = [Op::IConst(1), Op::IConst(0), Op::IDiv, Op::Pop, Op::Return];
        let ir = lower(&asm(&ops)).unwrap();
        // The div must remain an executable instruction (it traps).
        assert!(ir
            .insts
            .iter()
            .any(|(_, i)| matches!(i, IrInst::Alu { op: AluOp::Div, .. })));
        assert_eq!(ir.stats.folded, 0);
    }

    #[test]
    fn deferral_stops_at_leaders() {
        // iconst 5; L(goto target): istore 0 — the constant cannot
        // fuse across the leader, so it materializes.
        let ops = [
            Op::IConst(5),
            Op::Goto(10), // pc 5, len 5 -> target 10 = istore pc
            Op::IStore(0),
            Op::Return,
        ];
        let ir = lower(&asm(&ops)).unwrap();
        assert_eq!(
            ir.insts.iter().map(|(_, i)| i.clone()).collect::<Vec<_>>(),
            vec![
                IrInst::LoadImm { imm: 5 },
                IrInst::Br { target: 10 },
                IrInst::StoreLocal {
                    ty: Ty::Int,
                    n: 0,
                    src: Src::Stack,
                },
                IrInst::Ret { val: None },
            ]
        );
    }

    #[test]
    fn branch_operands_fuse() {
        // iload 0; iconst 10; if_icmplt T -> br.lt l0, #10
        let ops = [
            Op::ILoad(0),
            Op::IConst(10),
            Op::IfICmp(Cond::Lt, 0),
            Op::Return,
        ];
        let ir = lower(&asm(&ops)).unwrap();
        assert_eq!(
            ir.insts[0].1,
            IrInst::CmpBr {
                cond: Cond::Lt,
                a: Src::Local(0),
                b: Src::Imm(10),
                target: 0,
            }
        );
    }

    #[test]
    fn dead_constant_is_elided() {
        let ops = [Op::IConst(99), Op::Pop, Op::Return];
        let ir = lower(&asm(&ops)).unwrap();
        assert_eq!(ir.insts.len(), 1);
        assert_eq!(ir.plan_at(0), PcPlan::Elided);
        assert_eq!(ir.plan_at(pc_of(&ops, 1)), PcPlan::Elided);
    }

    #[test]
    fn lowering_is_deterministic() {
        let ops = [
            Op::ILoad(0),
            Op::IConst(3),
            Op::IAdd,
            Op::IStore(1),
            Op::ILoad(1),
            Op::If(Cond::Gt, 0),
            Op::Return,
        ];
        let code = asm(&ops);
        let a = lower(&code).unwrap();
        let b = lower(&code).unwrap();
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.encode_words(), b.encode_words());
        assert_eq!(a.disasm(), b.disasm());
    }

    #[test]
    fn every_pc_has_exactly_one_plan_state() {
        let ops = [
            Op::IConst(1),
            Op::IStore(0),
            Op::ILoad(0),
            Op::IConst(100),
            Op::IfICmp(Cond::Ge, 29),
            Op::IInc(0, 1),
            Op::Goto(7),
            Op::Return,
        ];
        let code = asm(&ops);
        let ir = lower(&code).unwrap();
        let mut pc = 0usize;
        let mut seen = 0;
        while pc < code.len() {
            let (_, len) = Op::decode(&code, pc).unwrap();
            // plan_at never panics and each pc maps to one state.
            let _ = ir.plan_at(pc as u32);
            seen += 1;
            pc += len;
        }
        assert_eq!(seen as u32, ir.stats.bytecodes);
        assert_eq!(
            ir.stats.ir_insts + ir.stats.covered + ir.stats.elided,
            ir.stats.bytecodes
        );
        assert_eq!(ir.stats.ir_insts as usize, ir.insts.len());
    }

    #[test]
    fn word_offsets_are_dense_and_targets_resolve() {
        let ops = [
            Op::ILoad(0),
            Op::If(Cond::Eq, 8), // target = pc of iinc
            Op::IInc(0, -1),
            Op::Return,
        ];
        let ir = lower(&asm(&ops)).unwrap();
        let words = ir.encode_words();
        assert_eq!(words.len() as u32, ir.total_words());
        let mut expect = 0u32;
        for (pc, inst) in &ir.insts {
            let PcPlan::Exec { word_off, words } = ir.plan_at(*pc) else {
                panic!("inst pc must be Exec");
            };
            assert_eq!(word_off, expect);
            assert_eq!(words, inst.words());
            expect += u32::from(words);
        }
        // The branch target (pc 8, the iinc) resolves to its word.
        let PcPlan::Exec { word_off, .. } = ir.plan_at(8) else {
            panic!("iinc must be Exec");
        };
        assert_eq!(ir.word_target(8), word_off);
        // Past the end resolves to total_words.
        assert_eq!(ir.word_target(1000), ir.total_words());
    }

    #[test]
    fn encoded_stream_decodes_back() {
        let ops = [
            Op::ILoad(0),
            Op::ILoad(1),
            Op::IAdd,
            Op::IStore(2),
            Op::ILoad(2),
            Op::TableSwitch {
                low: 0,
                default: 28,
                targets: vec![28, 28],
            },
            Op::Return,
        ];
        let ir = lower(&asm(&ops)).unwrap();
        let mut bytes = Vec::new();
        for (_, inst) in &ir.insts {
            inst.encode_into(&mut bytes);
        }
        let mut off = 0usize;
        let mut decoded = Vec::new();
        while off < bytes.len() {
            let (inst, used) = IrInst::decode(&bytes, off).expect("stream decodes");
            decoded.push(inst);
            off += used;
        }
        assert_eq!(
            decoded,
            ir.insts.iter().map(|(_, i)| i.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dup_materializes_then_renames() {
        // iconst 4; dup; istore 0; istore 1 — the dup forces the
        // constant into a register; both stores are plain.
        let ops = [
            Op::IConst(4),
            Op::Dup,
            Op::IStore(0),
            Op::IStore(1),
            Op::Return,
        ];
        let ir = lower(&asm(&ops)).unwrap();
        assert_eq!(ir.insts[0].1, IrInst::LoadImm { imm: 4 });
        assert_eq!(ir.plan_at(pc_of(&ops, 1)), PcPlan::Elided);
        assert_eq!(
            ir.insts[1].1,
            IrInst::StoreLocal {
                ty: Ty::Int,
                n: 0,
                src: Src::Stack,
            }
        );
    }
}
