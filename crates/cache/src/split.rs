//! Split L1 instruction/data cache pair driven by a native trace.

use crate::config::CacheConfig;
use crate::sim::Cache;
use crate::timeline::Timeline;
use jrt_trace::{AccessKind, NativeInst, TraceSink};

/// An L1 I-cache + D-cache pair implementing [`TraceSink`].
///
/// Every instruction event performs one instruction fetch (a read of
/// the event's `pc` in the I-cache); loads and stores additionally
/// perform the data access in the D-cache. An optional [`Timeline`]
/// samples windowed miss counts for the Figure 6 study.
///
/// # Examples
///
/// ```
/// use jrt_cache::{CacheConfig, SplitCaches};
/// use jrt_trace::{NativeInst, Phase, TraceSink};
///
/// let mut l1 = SplitCaches::paper_l1();
/// l1.accept(&NativeInst::load(0x1_0000, 0x2000_0000, 4, Phase::NativeExec));
/// assert_eq!(l1.icache().stats().refs(), 1);
/// assert_eq!(l1.dcache().stats().refs(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SplitCaches {
    icache: Cache,
    dcache: Cache,
    timeline: Option<Timeline>,
    install_into_icache: bool,
}

impl SplitCaches {
    /// Creates a pair from explicit configurations.
    pub fn new(icfg: CacheConfig, dcfg: CacheConfig) -> Self {
        SplitCaches {
            icache: Cache::new(icfg),
            dcache: Cache::new(dcfg),
            timeline: None,
            install_into_icache: false,
        }
    }

    /// The paper's Table 3 configuration: 64 KB each, 32-byte lines,
    /// I-cache 2-way, D-cache 4-way.
    pub fn paper_l1() -> Self {
        Self::new(CacheConfig::paper_l1_inst(), CacheConfig::paper_l1_data())
    }

    /// Enables windowed sampling with the given window size
    /// (instructions per sample), for the Figure 6 time-series study.
    pub fn with_timeline(mut self, window: u64) -> Self {
        self.timeline = Some(Timeline::new(window));
        self
    }

    /// The instruction cache.
    pub fn icache(&self) -> &Cache {
        &self.icache
    }

    /// The data cache.
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// The sampled timeline, if enabled with [`with_timeline`].
    ///
    /// [`with_timeline`]: SplitCaches::with_timeline
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Enables the paper's Section 6 proposal: the JIT generates code
    /// *directly into the I-cache* (which must therefore accept
    /// writes, preferably write-back). Translate-phase stores to the
    /// code-cache region bypass the D-cache and install into the
    /// I-cache, removing both the redundant fill of a write-allocate
    /// D-cache and the double-caching of freshly generated code.
    pub fn with_install_into_icache(mut self) -> Self {
        self.install_into_icache = true;
        self
    }

    /// Consumes the pair, returning the two caches `(icache, dcache)`.
    pub fn into_inner(self) -> (Cache, Cache) {
        (self.icache, self.dcache)
    }
}

impl TraceSink for SplitCaches {
    fn accept(&mut self, inst: &NativeInst) {
        let i = self.icache.access(inst.pc, AccessKind::Read, inst.phase);
        let d = match inst.mem {
            Some(m)
                if self.install_into_icache
                    && m.kind == AccessKind::Write
                    && inst.phase.is_translate()
                    && jrt_trace::Region::classify(m.addr)
                        == Some(jrt_trace::Region::CodeCache) =>
            {
                // Section 6 proposal: install generated code straight
                // into the I-cache.
                Some(self.icache.access(m.addr, AccessKind::Write, inst.phase))
            }
            Some(m) => Some(self.dcache.access(m.addr, m.kind, inst.phase)),
            None => None,
        };
        if let Some(t) = &mut self.timeline {
            t.record(i.hit, d.map(|o| o.hit), inst.phase.is_translate());
        }
    }

    fn finish(&mut self) {
        if let Some(t) = &mut self.timeline {
            t.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::{NativeInst, Phase};

    #[test]
    fn instruction_fetch_always_touches_icache() {
        let mut s = SplitCaches::paper_l1();
        for pc in (0x1_0000..0x1_0040u64).step_by(4) {
            s.accept(&NativeInst::alu(pc, Phase::Runtime));
        }
        assert_eq!(s.icache().stats().refs(), 16);
        assert_eq!(s.dcache().stats().refs(), 0);
        // 64 bytes of straight-line code = 2 lines = 2 compulsory misses.
        assert_eq!(s.icache().stats().misses(), 2);
    }

    #[test]
    fn stores_reach_dcache_as_writes() {
        let mut s = SplitCaches::paper_l1();
        s.accept(&NativeInst::store(
            0x1_0000,
            0x2000_0000,
            4,
            Phase::Translate,
        ));
        assert_eq!(s.dcache().stats().writes, 1);
        assert_eq!(s.dcache().stats().write_misses, 1);
        assert_eq!(s.dcache().translate_stats().write_misses, 1);
    }

    #[test]
    fn timeline_collects_samples() {
        let mut s = SplitCaches::paper_l1().with_timeline(2);
        for k in 0..5 {
            s.accept(&NativeInst::load(
                0x1_0000 + k * 4096,
                0x2000_0000 + k * 4096,
                4,
                Phase::Runtime,
            ));
        }
        s.finish();
        let t = s.timeline().expect("timeline enabled");
        assert_eq!(t.samples().len(), 3); // 2+2+1
    }

    #[test]
    fn install_into_icache_redirects_translate_writes() {
        use jrt_trace::layout;
        let mut base = SplitCaches::paper_l1();
        let mut prop = SplitCaches::paper_l1().with_install_into_icache();
        let inst = NativeInst::store(
            0x0100_0000, // translator text
            layout::CODE_CACHE_BASE + 0x10_0000,
            4,
            Phase::Translate,
        );
        base.accept(&inst);
        prop.accept(&inst);
        // Baseline: the store hits the D-cache.
        assert_eq!(base.dcache().stats().writes, 1);
        assert_eq!(base.icache().stats().writes, 0);
        // Proposal: it installs into the I-cache instead.
        assert_eq!(prop.dcache().stats().writes, 0);
        assert_eq!(prop.icache().stats().writes, 1);
        // A later fetch of the installed line hits under the proposal
        // (no double-caching), but misses at baseline.
        let fetch = NativeInst::alu(layout::CODE_CACHE_BASE + 0x10_0000, Phase::NativeExec);
        base.accept(&fetch);
        prop.accept(&fetch);
        assert_eq!(base.icache().stats().read_misses, 1 + 1); // store-pc + fetch
        assert_eq!(prop.icache().stats().read_misses, 1); // fetch hits
    }

    #[test]
    fn non_translate_writes_stay_in_dcache_under_proposal() {
        use jrt_trace::layout;
        let mut prop = SplitCaches::paper_l1().with_install_into_icache();
        prop.accept(&NativeInst::store(
            0x0200_0000,
            layout::HEAP_BASE,
            4,
            Phase::NativeExec,
        ));
        assert_eq!(prop.dcache().stats().writes, 1);
        assert_eq!(prop.icache().stats().writes, 0);
    }

    #[test]
    fn into_inner_returns_both() {
        let mut s = SplitCaches::paper_l1();
        s.accept(&NativeInst::alu(0x1_0000, Phase::Runtime));
        let (i, d) = s.into_inner();
        assert_eq!(i.stats().refs(), 1);
        assert_eq!(d.stats().refs(), 0);
    }
}
