//! One-pass multi-configuration cache simulation (stack distances).
//!
//! The configuration sweeps of Figures 7 and 8 historically simulated
//! one full [`Cache`](crate::Cache) per swept point, paying the whole
//! trace once per configuration. This module implements the classic
//! fix from the simulation literature the paper builds on — Mattson's
//! stack algorithms and Hill & Smith's all-associativity simulation,
//! the cachesim5 lineage: because LRU has the *inclusion property*,
//! the content of an `A`-way set is exactly the top `A` entries of
//! that set's unbounded LRU stack, so a single pass that maintains
//! per-set LRU stacks and histograms each access's **stack distance**
//! yields exact hit/miss counts for every associativity at once.
//!
//! [`CacheSweep`] generalizes this to an arbitrary mix of
//! `(size, line, ways)` points: points are first grouped by line size
//! into *families* (line ids are `addr >> log2(line)`, so stack state
//! cannot be shared across line sizes), then within a family by set
//! count (each group keeps per-set stacks truncated at the group's
//! largest way count). Every access is classified — phase slice plus
//! [`Region`] — exactly once and then fanned out to all families, so
//! Figure 8's four line sizes cost four cheap stack touches per event,
//! not four classification passes. Compulsory misses are
//! config-independent within a family — a first-touch line is absent
//! from every configuration — so one seen-set per family serves all
//! its points, probed only when the access missed every group (a line
//! present in any stack was necessarily seen before). Attribution
//! mirrors [`Cache`](crate::Cache) exactly: translate/rest phase
//! slices and per-[`Region`] slices, each with read/write/compulsory
//! splits, so Figure 5's category breakdown falls out of the same
//! pass.
//!
//! Restriction: all points must use write-allocate (no-write-allocate
//! breaks the inclusion property: a non-allocating write would have to
//! update some stacks and not others).
//!
//! # Examples
//!
//! ```
//! use jrt_cache::{CacheConfig, CacheSweep};
//! use jrt_trace::{AccessKind, Phase};
//!
//! // Figure 7's four points, one pass.
//! let points: Vec<CacheConfig> = [1, 2, 4, 8]
//!     .map(CacheConfig::paper_assoc_sweep)
//!     .to_vec();
//! let mut sweep = CacheSweep::new(&points);
//! sweep.access(0x2000_0000, AccessKind::Read, Phase::NativeExec);
//! sweep.access(0x2000_0000, AccessKind::Read, Phase::NativeExec);
//! let r = sweep.results();
//! assert_eq!(r[0].stats().refs(), 2);
//! assert_eq!(r[0].stats().misses(), 1); // second access hits everywhere
//! assert_eq!(r[3].stats().compulsory_misses, 1);
//! ```

use crate::config::CacheConfig;
use crate::sim::CacheStats;
use jrt_trace::blocks::{KIND_NONE, KIND_WRITE, REGION_NONE};
use jrt_trace::{AccessBlocks, AccessKind, Addr, IdHashSet, NativeInst, Phase, Region, TraceSink};

/// Attribution slices: translate, rest (everything else), then one per
/// region. The overall figures are derived as translate + rest.
const SLICE_TRANSLATE: usize = 0;
const SLICE_REST: usize = 1;
const SLICE_REGION0: usize = 2;
const NSLICES: usize = SLICE_REGION0 + Region::ALL.len();

/// Sentinel for an empty stack slot. Line ids are `addr >> line_shift`
/// with `line >= 2`, so a real line id can never equal it.
const EMPTY: u64 = u64::MAX;

/// One set-count group: per-set LRU stacks truncated at the largest
/// way count any point in the group sweeps, plus stack-distance
/// histograms per attribution slice and access kind.
#[derive(Debug, Clone)]
struct SetGroup {
    set_mask: u64,
    depth: usize,
    /// `num_sets * depth` line ids, set-major, MRU first.
    stacks: Vec<u64>,
    /// `hist[(slice * 2 + is_write) * (depth + 1) + bucket]`; bucket
    /// `d < depth` is the exact stack distance, bucket `depth` is
    /// "deeper than any swept associativity" (a miss for all points).
    hist: Vec<u64>,
}

impl SetGroup {
    fn new(num_sets: u64, depth: usize) -> Self {
        SetGroup {
            set_mask: num_sets - 1,
            depth,
            stacks: vec![EMPTY; num_sets as usize * depth],
            hist: vec![0; NSLICES * 2 * (depth + 1)],
        }
    }

    /// Moves `line` to the MRU position of its set, returning the
    /// 0-based stack distance (`depth` when absent from the truncated
    /// stack — a miss for every swept associativity).
    #[inline]
    fn touch(&mut self, line: u64) -> usize {
        let set = (line & self.set_mask) as usize;
        let stack = &mut self.stacks[set * self.depth..(set + 1) * self.depth];
        let mut shifted = line;
        for (d, slot) in stack.iter_mut().enumerate() {
            let cur = *slot;
            *slot = shifted;
            if cur == line {
                return d;
            }
            shifted = cur;
        }
        self.depth
    }

    #[inline]
    fn record(&mut self, slice: usize, is_write: usize, bucket: usize) {
        self.hist[(slice * 2 + is_write) * (self.depth + 1) + bucket] += 1;
    }

    /// Reads one `CacheStats` slice for associativity `ways` off the
    /// histograms (`compulsory` is supplied by the sweep — it is
    /// config-independent).
    fn slice_stats(&self, slice: usize, ways: usize, compulsory: u64) -> CacheStats {
        let row = |is_write: usize| {
            let base = (slice * 2 + is_write) * (self.depth + 1);
            let buckets = &self.hist[base..base + self.depth + 1];
            let total: u64 = buckets.iter().sum();
            let hits: u64 = buckets[..ways.min(self.depth)].iter().sum();
            (total, total - hits)
        };
        let (reads, read_misses) = row(0);
        let (writes, write_misses) = row(1);
        CacheStats {
            reads,
            writes,
            read_misses,
            write_misses,
            compulsory_misses: compulsory,
        }
    }
}

/// Statistics for one swept configuration, with the same attribution
/// surface as [`Cache`](crate::Cache).
#[derive(Debug, Clone)]
pub struct SweepResult {
    config: CacheConfig,
    stats: CacheStats,
    translate: CacheStats,
    rest: CacheStats,
    region: [CacheStats; Region::ALL.len()],
}

impl SweepResult {
    /// The configuration this result describes.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Overall statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Statistics attributed to the JIT translate phase.
    pub fn translate_stats(&self) -> &CacheStats {
        &self.translate
    }

    /// Statistics attributed to everything except translation.
    pub fn rest_stats(&self) -> &CacheStats {
        &self.rest
    }

    /// Statistics for accesses falling into `region`.
    pub fn region_stats(&self, region: Region) -> &CacheStats {
        &self.region[region as usize]
    }
}

/// All sweep state tied to one line size: the set-count groups, the
/// first-touch seen-set, and the (config-independent within the
/// family) compulsory counters.
#[derive(Debug, Clone)]
struct Family {
    line_shift: u32,
    groups: Vec<SetGroup>,
    seen: IdHashSet<u64>,
    compulsory: [u64; NSLICES],
}

impl Family {
    /// Runs one pre-classified access through every group, then the
    /// shared first-touch accounting.
    #[inline]
    fn access(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        let line = addr >> self.line_shift;
        let mut resident = false;
        for g in &mut self.groups {
            let bucket = g.touch(line);
            resident |= bucket < g.depth;
            g.record(phase_slice, is_write, bucket);
            if let Some(rs) = region_slice {
                g.record(rs, is_write, bucket);
            }
        }
        // First-touch tracking runs only when the line sits in no
        // stack (a resident line was inserted on an earlier access).
        if !resident && self.seen.insert(line) {
            self.compulsory[phase_slice] += 1;
            if let Some(rs) = region_slice {
                self.compulsory[rs] += 1;
            }
        }
    }
}

/// A one-pass simulator for an arbitrary family of write-allocate
/// configurations (see the module docs).
#[derive(Debug, Clone)]
pub struct CacheSweep {
    points: Vec<(CacheConfig, usize, usize)>, // (config, family, group)
    families: Vec<Family>,
}

impl CacheSweep {
    /// Creates a sweep over `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, uses a line size below 2 bytes, or
    /// contains a no-write-allocate configuration.
    pub fn new(points: &[CacheConfig]) -> Self {
        assert!(!points.is_empty(), "at least one sweep point");
        let mut families: Vec<Family> = Vec::new();
        let mut indexed = Vec::with_capacity(points.len());
        for cfg in points {
            assert!(cfg.line >= 2, "sweep needs a line size of at least 2 bytes");
            assert!(
                cfg.write_allocate,
                "the stack-distance sweep requires write-allocate"
            );
            let shift = cfg.line.trailing_zeros();
            let f = match families.iter().position(|f| f.line_shift == shift) {
                Some(f) => f,
                None => {
                    families.push(Family {
                        line_shift: shift,
                        groups: Vec::new(),
                        seen: IdHashSet::default(),
                        compulsory: [0; NSLICES],
                    });
                    families.len() - 1
                }
            };
            let sets = cfg.num_sets();
            let groups = &mut families[f].groups;
            let g = match groups.iter().position(|g| g.set_mask == sets - 1) {
                Some(g) => {
                    let depth = groups[g].depth.max(cfg.assoc as usize);
                    if depth > groups[g].depth {
                        groups[g] = SetGroup::new(sets, depth);
                    }
                    g
                }
                None => {
                    groups.push(SetGroup::new(sets, cfg.assoc as usize));
                    groups.len() - 1
                }
            };
            indexed.push((*cfg, f, g));
        }
        CacheSweep {
            points: indexed,
            families,
        }
    }

    /// Performs one access against every swept configuration. The
    /// phase/region classification happens once, here, no matter how
    /// many line sizes, set counts, or way counts are in flight.
    #[inline]
    pub fn access(&mut self, addr: Addr, kind: AccessKind, phase: Phase) {
        let is_write = usize::from(kind == AccessKind::Write);
        let phase_slice = if phase.is_translate() {
            SLICE_TRANSLATE
        } else {
            SLICE_REST
        };
        let region_slice = Region::classify(addr).map(|r| SLICE_REGION0 + r as usize);
        self.access_classified(addr, is_write, phase_slice, region_slice);
    }

    /// The pre-classified fast path: the decoded-block consumer reads
    /// the slice indices straight off the memoized arrays.
    #[inline]
    fn access_classified(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        for f in &mut self.families {
            f.access(addr, is_write, phase_slice, region_slice);
        }
    }

    /// Derives the per-configuration statistics, in the order the
    /// points were supplied to [`CacheSweep::new`].
    pub fn results(&self) -> Vec<SweepResult> {
        self.points
            .iter()
            .map(|&(config, fi, gi)| {
                let f = &self.families[fi];
                let g = &f.groups[gi];
                let ways = config.assoc as usize;
                let slice = |s: usize| g.slice_stats(s, ways, f.compulsory[s]);
                let translate = slice(SLICE_TRANSLATE);
                let rest = slice(SLICE_REST);
                let mut stats = translate;
                stats.merge(&rest);
                let mut region = [CacheStats::default(); Region::ALL.len()];
                for (k, r) in region.iter_mut().enumerate() {
                    *r = slice(SLICE_REGION0 + k);
                }
                SweepResult {
                    config,
                    stats,
                    translate,
                    rest,
                    region,
                }
            })
            .collect()
    }

    /// Number of swept configurations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points (never true: `new` requires one).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// An L1 I-cache + D-cache sweep pair: the one-pass counterpart of
/// [`SplitCaches`](crate::SplitCaches). Every event fetches its `pc`
/// through the instruction sweep; loads and stores additionally drive
/// the data sweep. Consumes decoded [`AccessBlocks`] on the fast path
/// and implements [`TraceSink`] for event-level use.
#[derive(Debug, Clone)]
pub struct SplitSweep {
    icache: CacheSweep,
    dcache: CacheSweep,
}

impl SplitSweep {
    /// Creates a pair of sweeps from the two point families.
    pub fn new(ipoints: &[CacheConfig], dpoints: &[CacheConfig]) -> Self {
        SplitSweep {
            icache: CacheSweep::new(ipoints),
            dcache: CacheSweep::new(dpoints),
        }
    }

    /// Drives the whole decoded stream through both sweeps. Region
    /// classification comes straight off the blocks' memoized region
    /// bytes and the translate test off a hoisted per-phase table, so
    /// the per-event work is just the stack touches.
    pub fn consume(&mut self, blocks: &AccessBlocks) {
        let translate: [bool; Phase::ALL.len()] =
            std::array::from_fn(|k| Phase::ALL[k].is_translate());
        let slice_of =
            |region: u8| (region != REGION_NONE).then(|| SLICE_REGION0 + usize::from(region));
        for b in blocks.blocks() {
            let rows =
                b.pc.iter()
                    .zip(&b.phase)
                    .zip(&b.pc_region)
                    .zip(&b.kind)
                    .zip(&b.addr)
                    .zip(&b.addr_region);
            for (((((&pc, &phase), &pc_region), &kind), &addr), &addr_region) in rows {
                let phase_slice = if translate[usize::from(phase)] {
                    SLICE_TRANSLATE
                } else {
                    SLICE_REST
                };
                self.icache
                    .access_classified(pc, 0, phase_slice, slice_of(pc_region));
                if kind != KIND_NONE {
                    self.dcache.access_classified(
                        addr,
                        usize::from(kind == KIND_WRITE),
                        phase_slice,
                        slice_of(addr_region),
                    );
                }
            }
        }
    }

    /// The instruction-side sweep.
    pub fn icache(&self) -> &CacheSweep {
        &self.icache
    }

    /// The data-side sweep.
    pub fn dcache(&self) -> &CacheSweep {
        &self.dcache
    }
}

impl TraceSink for SplitSweep {
    fn accept(&mut self, inst: &NativeInst) {
        self.icache.access(inst.pc, AccessKind::Read, inst.phase);
        if let Some(m) = inst.mem {
            self.dcache.access(m.addr, m.kind, inst.phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Cache;

    /// Replays `accesses` through both the sweep and one `Cache` per
    /// point, asserting every attribution slice matches exactly.
    fn assert_matches_cache(points: &[CacheConfig], accesses: &[(Addr, AccessKind, Phase)]) {
        let mut sweep = CacheSweep::new(points);
        let mut caches: Vec<Cache> = points.iter().map(|&c| Cache::new(c)).collect();
        for &(addr, kind, phase) in accesses {
            sweep.access(addr, kind, phase);
            for c in &mut caches {
                c.access(addr, kind, phase);
            }
        }
        for (r, c) in sweep.results().iter().zip(&caches) {
            assert_eq!(r.stats(), c.stats(), "{}: overall", c.config());
            assert_eq!(r.translate_stats(), c.translate_stats(), "translate");
            assert_eq!(r.rest_stats(), c.rest_stats(), "rest");
            for region in Region::ALL {
                assert_eq!(r.region_stats(region), c.region_stats(region), "{region}");
            }
        }
    }

    #[test]
    fn matches_cache_on_a_conflict_pattern() {
        let points: Vec<CacheConfig> = [1, 2, 4, 8].map(CacheConfig::paper_assoc_sweep).to_vec();
        // Way-stride conflicts plus some locality, spanning phases.
        let mut accesses = Vec::new();
        for round in 0..6u64 {
            for k in 0..12u64 {
                let addr = jrt_trace::layout::HEAP_BASE + k * 8 * 1024 + round * 32;
                let kind = if k % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let phase = if k % 2 == 0 {
                    Phase::Translate
                } else {
                    Phase::NativeExec
                };
                accesses.push((addr, kind, phase));
            }
        }
        assert_matches_cache(&points, &accesses);
    }

    #[test]
    fn shared_compulsory_counts_across_points() {
        let points: Vec<CacheConfig> = [1, 2, 4, 8].map(CacheConfig::paper_assoc_sweep).to_vec();
        let mut sweep = CacheSweep::new(&points);
        for k in 0..100u64 {
            sweep.access(k * 32, AccessKind::Read, Phase::Runtime);
        }
        // 100 distinct lines: all compulsory, identical in every point.
        for r in sweep.results() {
            assert_eq!(r.stats().compulsory_misses, 100);
            assert_eq!(r.stats().misses(), 100);
        }
    }

    #[test]
    fn conflict_miss_is_not_compulsory() {
        // Mirror of the sim.rs test: 2-set direct-mapped, ping-pong.
        let points = [CacheConfig::new(32, 16, 1)];
        let mut sweep = CacheSweep::new(&points);
        sweep.access(0, AccessKind::Read, Phase::Runtime);
        sweep.access(32, AccessKind::Read, Phase::Runtime);
        sweep.access(0, AccessKind::Read, Phase::Runtime);
        let r = &sweep.results()[0];
        assert_eq!(r.stats().misses(), 3);
        assert_eq!(r.stats().compulsory_misses, 2);
    }

    #[test]
    fn duplicate_points_agree() {
        let cfg = CacheConfig::new(8 * 1024, 32, 2);
        let mut sweep = CacheSweep::new(&[cfg, cfg]);
        for k in 0..50u64 {
            sweep.access(k * 64, AccessKind::Write, Phase::Gc);
        }
        let r = sweep.results();
        assert_eq!(r[0].stats(), r[1].stats());
    }

    #[test]
    fn split_sweep_matches_split_caches_via_sink() {
        use crate::split::SplitCaches;
        let ipoints: Vec<CacheConfig> = [1, 2, 4, 8].map(CacheConfig::paper_assoc_sweep).to_vec();
        let dpoints = ipoints.clone();
        let mut sweep = SplitSweep::new(&ipoints, &dpoints);
        let mut pairs: Vec<SplitCaches> = ipoints.iter().map(|&c| SplitCaches::new(c, c)).collect();
        let events = [
            NativeInst::alu(0x1_0000, Phase::Runtime),
            NativeInst::load(0x1_0004, jrt_trace::layout::HEAP_BASE, 4, Phase::NativeExec),
            NativeInst::store(
                0x1_0008,
                jrt_trace::layout::CODE_CACHE_BASE,
                4,
                Phase::Translate,
            ),
            NativeInst::load(
                0x1_0004,
                jrt_trace::layout::HEAP_BASE + 64,
                8,
                Phase::NativeExec,
            ),
        ];
        for e in &events {
            sweep.accept(e);
            for p in &mut pairs {
                p.accept(e);
            }
        }
        for ((i, d), p) in sweep
            .icache()
            .results()
            .iter()
            .zip(sweep.dcache().results())
            .zip(&pairs)
        {
            assert_eq!(i.stats(), p.icache().stats());
            assert_eq!(d.stats(), p.dcache().stats());
        }
    }

    #[test]
    fn consume_blocks_equals_accept_events() {
        use jrt_trace::Tape;
        let tape = Tape::record(|rec| {
            for k in 0..500u64 {
                rec.accept(&NativeInst::load(
                    0x1_0000 + (k % 7) * 4,
                    jrt_trace::layout::HEAP_BASE + (k % 97) * 24,
                    4,
                    if k % 5 == 0 {
                        Phase::Translate
                    } else {
                        Phase::InterpHandler
                    },
                ));
            }
        });
        let points = [CacheConfig::paper_l1_data()];
        let mut via_blocks = SplitSweep::new(&points, &points);
        via_blocks.consume(&AccessBlocks::from_tape(&tape));
        let mut via_events = SplitSweep::new(&points, &points);
        tape.replay(&mut via_events);
        assert_eq!(
            via_blocks.dcache().results()[0].stats(),
            via_events.dcache().results()[0].stats()
        );
        assert_eq!(
            via_blocks.icache().results()[0].translate_stats(),
            via_events.icache().results()[0].translate_stats()
        );
    }

    #[test]
    fn mixed_line_sizes_match_per_config_caches() {
        // The Figure 8 family in a single sweep: four line sizes, each
        // its own family with its own compulsory accounting.
        let points: Vec<CacheConfig> = [16, 32, 64, 128]
            .map(CacheConfig::paper_line_sweep)
            .to_vec();
        let mut accesses = Vec::new();
        for round in 0..5u64 {
            for k in 0..40u64 {
                let addr = jrt_trace::layout::HEAP_BASE + k * 112 + round * 16;
                let kind = if k % 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                accesses.push((addr, kind, Phase::NativeExec));
            }
        }
        assert_matches_cache(&points, &accesses);
    }

    #[test]
    #[should_panic(expected = "write-allocate")]
    fn rejects_no_write_allocate() {
        CacheSweep::new(&[CacheConfig::new(1024, 16, 1).no_write_allocate()]);
    }
}
