//! One-pass multi-configuration cache simulation (stack distances).
//!
//! The configuration sweeps of Figures 7 and 8 historically simulated
//! one full [`Cache`](crate::Cache) per swept point, paying the whole
//! trace once per configuration. This module implements the classic
//! fix from the simulation literature the paper builds on — Mattson's
//! stack algorithms and Hill & Smith's all-associativity simulation,
//! the cachesim5 lineage: because LRU has the *inclusion property*,
//! the content of an `A`-way set is exactly the top `A` entries of
//! that set's unbounded LRU stack, so a single pass that maintains
//! per-set LRU stacks and histograms each access's **stack distance**
//! yields exact hit/miss counts for every associativity at once.
//!
//! [`CacheSweep`] generalizes this to an arbitrary mix of
//! `(size, line, ways)` points: points are first grouped by line size
//! into *families* (line ids are `addr >> log2(line)`, so stack state
//! cannot be shared across line sizes), then within a family by set
//! count (each group keeps per-set stacks truncated at the group's
//! largest way count). Every access is classified — phase slice plus
//! [`Region`] — exactly once and then fanned out to all families, so
//! Figure 8's four line sizes cost four cheap stack touches per event,
//! not four classification passes. Compulsory misses are
//! config-independent within a family — a first-touch line is absent
//! from every configuration — so one seen-set per family serves all
//! its points, probed only when the access missed every group (a line
//! present in any stack was necessarily seen before). Attribution
//! mirrors [`Cache`](crate::Cache) exactly: translate/rest phase
//! slices and per-[`Region`] slices, each with read/write/compulsory
//! splits, so Figure 5's category breakdown falls out of the same
//! pass.
//!
//! Restriction: all points must use write-allocate (no-write-allocate
//! breaks the inclusion property: a non-allocating write would have to
//! update some stacks and not others).
//!
//! # Examples
//!
//! ```
//! use jrt_cache::{CacheConfig, CacheSweep};
//! use jrt_trace::{AccessKind, Phase};
//!
//! // Figure 7's four points, one pass.
//! let points: Vec<CacheConfig> = [1, 2, 4, 8]
//!     .map(CacheConfig::paper_assoc_sweep)
//!     .to_vec();
//! let mut sweep = CacheSweep::new(&points);
//! sweep.access(0x2000_0000, AccessKind::Read, Phase::NativeExec);
//! sweep.access(0x2000_0000, AccessKind::Read, Phase::NativeExec);
//! let r = sweep.results();
//! assert_eq!(r[0].stats().refs(), 2);
//! assert_eq!(r[0].stats().misses(), 1); // second access hits everywhere
//! assert_eq!(r[3].stats().compulsory_misses, 1);
//! ```

use crate::config::CacheConfig;
use crate::sim::CacheStats;
use jrt_trace::blocks::{KIND_NONE, KIND_WRITE, REGION_NONE};
use jrt_trace::{
    AccessBlock, AccessBlocks, AccessKind, Addr, IdHashSet, NativeInst, Phase, Region, TraceSink,
};

/// Attribution slices: translate, rest (everything else), one per
/// region, then the two collector slices ([`Phase::Gc`] evacuation and
/// [`Phase::GcBarrier`] write-barrier traffic). The overall figures
/// are derived as translate + rest, where the reported "rest" folds
/// the collector slices back in — so adding the GC split changed no
/// pre-existing number.
const SLICE_TRANSLATE: usize = 0;
const SLICE_REST: usize = 1;
const SLICE_REGION0: usize = 2;
const SLICE_GC: usize = SLICE_REGION0 + Region::ALL.len();
const SLICE_GCBARRIER: usize = SLICE_GC + 1;
const NSLICES: usize = SLICE_GCBARRIER + 1;

/// Phase-slice classification shared by every entry point: translate
/// phases, the two collector phases, and everything else.
#[inline]
fn phase_slice_of(phase: Phase) -> usize {
    if phase.is_translate() {
        SLICE_TRANSLATE
    } else {
        match phase {
            Phase::Gc => SLICE_GC,
            Phase::GcBarrier => SLICE_GCBARRIER,
            _ => SLICE_REST,
        }
    }
}

/// Sentinel for an empty stack slot. Line ids are `addr >> line_shift`
/// with `line >= 2`, so a real line id can never equal it.
const EMPTY: u64 = u64::MAX;

/// One set-count group: per-set LRU stacks truncated at the largest
/// way count any point in the group sweeps, plus stack-distance
/// histograms per attribution slice and access kind.
#[derive(Debug, Clone)]
struct SetGroup {
    set_mask: u64,
    depth: usize,
    /// `num_sets * depth` line ids, set-major, MRU first.
    stacks: Vec<u64>,
    /// `hist[(slice * 2 + is_write) * (depth + 1) + bucket]`; bucket
    /// `d < depth` is the exact stack distance, bucket `depth` is
    /// "deeper than any swept associativity" (a miss for all points).
    hist: Vec<u64>,
}

impl SetGroup {
    fn new(num_sets: u64, depth: usize) -> Self {
        SetGroup {
            set_mask: num_sets - 1,
            depth,
            stacks: vec![EMPTY; num_sets as usize * depth],
            hist: vec![0; NSLICES * 2 * (depth + 1)],
        }
    }

    /// Number of occupied (non-[`EMPTY`]) slots in `line`'s set —
    /// exact while below `depth`, clamped at `depth` once full.
    /// Occupied slots always form a prefix, so the first empty slot
    /// ends the count.
    #[inline]
    fn occupancy(&self, line: u64) -> usize {
        let set = (line & self.set_mask) as usize;
        let stack = &self.stacks[set * self.depth..(set + 1) * self.depth];
        stack.iter().position(|&v| v == EMPTY).unwrap_or(self.depth)
    }

    /// Reconciliation step for one shard-cold access (see
    /// [`SweepShard`]): `occ` is the shard-local occupancy before the
    /// access. Removes `line` from this (carried, pre-shard) stack if
    /// present at position `p` and returns the exact global bucket
    /// `min(occ + p, depth)` — or `depth` when absent, because a line
    /// evicted from (or never in) a depth-truncated stack has at least
    /// `depth` distinct more-recent lines in front of it.
    #[inline]
    fn consume_cold(&mut self, line: u64, occ: usize) -> usize {
        let set = (line & self.set_mask) as usize;
        let stack = &mut self.stacks[set * self.depth..(set + 1) * self.depth];
        match stack.iter().position(|&v| v == line) {
            Some(p) => {
                // Remove the consumed line so (a) later cold accesses
                // in this shard don't double-count it and (b) the
                // final splice doesn't duplicate it.
                stack.copy_within(p + 1.., p);
                stack[self.depth - 1] = EMPTY;
                (occ + p).min(self.depth)
            }
            None => self.depth,
        }
    }

    /// Installs the post-shard stacks and merges the shard's (exact,
    /// warm-access) histogram rows. For every set, the true post-shard
    /// LRU order is the shard-local stack (all lines touched in the
    /// shard, MRU first) followed by whatever survives of the carried
    /// pre-shard stack — every carried line also touched in the shard
    /// was already removed by [`SetGroup::consume_cold`], so the
    /// concatenation is duplicate-free.
    fn splice(&mut self, shard: &SetGroup) {
        debug_assert_eq!(self.set_mask, shard.set_mask);
        debug_assert_eq!(self.depth, shard.depth);
        let mut merged = vec![EMPTY; self.depth];
        for set in 0..=(self.set_mask as usize) {
            let span = set * self.depth..(set + 1) * self.depth;
            {
                let local = &shard.stacks[span.clone()];
                let carried = &self.stacks[span.clone()];
                let mut it = local
                    .iter()
                    .chain(carried.iter())
                    .filter(|&&v| v != EMPTY)
                    .copied();
                for slot in merged.iter_mut() {
                    *slot = it.next().unwrap_or(EMPTY);
                }
            }
            self.stacks[span].copy_from_slice(&merged);
        }
        for (h, sh) in self.hist.iter_mut().zip(&shard.hist) {
            *h += sh;
        }
    }

    /// Moves `line` to the MRU position of its set, returning the
    /// 0-based stack distance (`depth` when absent from the truncated
    /// stack — a miss for every swept associativity).
    #[inline]
    fn touch(&mut self, line: u64) -> usize {
        let set = (line & self.set_mask) as usize;
        let stack = &mut self.stacks[set * self.depth..(set + 1) * self.depth];
        let mut shifted = line;
        for (d, slot) in stack.iter_mut().enumerate() {
            let cur = *slot;
            *slot = shifted;
            if cur == line {
                return d;
            }
            shifted = cur;
        }
        self.depth
    }

    #[inline]
    fn record(&mut self, slice: usize, is_write: usize, bucket: usize) {
        self.hist[(slice * 2 + is_write) * (self.depth + 1) + bucket] += 1;
    }

    /// Reads one `CacheStats` slice for associativity `ways` off the
    /// histograms (`compulsory` is supplied by the sweep — it is
    /// config-independent).
    fn slice_stats(&self, slice: usize, ways: usize, compulsory: u64) -> CacheStats {
        let row = |is_write: usize| {
            let base = (slice * 2 + is_write) * (self.depth + 1);
            let buckets = &self.hist[base..base + self.depth + 1];
            let total: u64 = buckets.iter().sum();
            let hits: u64 = buckets[..ways.min(self.depth)].iter().sum();
            (total, total - hits)
        };
        let (reads, read_misses) = row(0);
        let (writes, write_misses) = row(1);
        CacheStats {
            reads,
            writes,
            read_misses,
            write_misses,
            compulsory_misses: compulsory,
        }
    }
}

/// Statistics for one swept configuration, with the same attribution
/// surface as [`Cache`](crate::Cache).
#[derive(Debug, Clone)]
pub struct SweepResult {
    config: CacheConfig,
    stats: CacheStats,
    translate: CacheStats,
    rest: CacheStats,
    gc: CacheStats,
    gc_barrier: CacheStats,
    region: [CacheStats; Region::ALL.len()],
}

impl SweepResult {
    /// The configuration this result describes.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Overall statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Statistics attributed to the JIT translate phase.
    pub fn translate_stats(&self) -> &CacheStats {
        &self.translate
    }

    /// Statistics attributed to everything except translation. GC
    /// evacuation and barrier traffic are included here (they are
    /// subsets, broken out by [`SweepResult::gc_stats`] and
    /// [`SweepResult::gc_barrier_stats`]).
    pub fn rest_stats(&self) -> &CacheStats {
        &self.rest
    }

    /// Statistics attributed to [`Phase::Gc`] (collector mark and
    /// evacuation traffic). A subset of [`SweepResult::rest_stats`].
    pub fn gc_stats(&self) -> &CacheStats {
        &self.gc
    }

    /// Statistics attributed to [`Phase::GcBarrier`] (card-marking
    /// write barriers). A subset of [`SweepResult::rest_stats`].
    pub fn gc_barrier_stats(&self) -> &CacheStats {
        &self.gc_barrier
    }

    /// Statistics for accesses falling into `region`.
    pub fn region_stats(&self, region: Region) -> &CacheStats {
        &self.region[region as usize]
    }
}

/// All sweep state tied to one line size: the set-count groups, the
/// first-touch seen-set, and the (config-independent within the
/// family) compulsory counters.
#[derive(Debug, Clone)]
struct Family {
    line_shift: u32,
    groups: Vec<SetGroup>,
    seen: IdHashSet<u64>,
    compulsory: [u64; NSLICES],
}

impl Family {
    /// Runs one pre-classified access through every group, then the
    /// shared first-touch accounting.
    #[inline]
    fn access(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        let line = addr >> self.line_shift;
        let mut resident = false;
        for g in &mut self.groups {
            let bucket = g.touch(line);
            resident |= bucket < g.depth;
            g.record(phase_slice, is_write, bucket);
            if let Some(rs) = region_slice {
                g.record(rs, is_write, bucket);
            }
        }
        // First-touch tracking runs only when the line sits in no
        // stack (a resident line was inserted on an earlier access).
        if !resident && self.seen.insert(line) {
            self.compulsory[phase_slice] += 1;
            if let Some(rs) = region_slice {
                self.compulsory[rs] += 1;
            }
        }
    }

    /// Reconciles one shard into this (serial, carried) family state.
    /// See [`SweepShard`] for the algorithm.
    fn absorb(&mut self, shard: &ShardFamily) {
        debug_assert_eq!(self.line_shift, shard.line_shift);
        debug_assert_eq!(self.groups.len(), shard.groups.len());
        let ngroups = self.groups.len();
        for (k, cold) in shard.cold.iter().enumerate() {
            // `seen` holds every line ever accessed before this point
            // (pre-shard lines plus this shard's earlier cold lines),
            // so a successful insert is exactly a first-ever access.
            if self.seen.insert(cold.line) {
                self.compulsory[usize::from(cold.phase_slice)] += 1;
                if cold.region_slice != SLICE_NONE {
                    self.compulsory[usize::from(cold.region_slice)] += 1;
                }
            }
            for (gi, g) in self.groups.iter_mut().enumerate() {
                let occ = shard.cold_before[k * ngroups + gi] as usize;
                let bucket = g.consume_cold(cold.line, occ);
                g.record(
                    usize::from(cold.phase_slice),
                    usize::from(cold.is_write),
                    bucket,
                );
                if cold.region_slice != SLICE_NONE {
                    g.record(
                        usize::from(cold.region_slice),
                        usize::from(cold.is_write),
                        bucket,
                    );
                }
            }
        }
        for (g, sg) in self.groups.iter_mut().zip(&shard.groups) {
            g.splice(sg);
        }
    }
}

/// `region_slice` byte value for "no region" in [`ColdMeta`]; real
/// slice indices are tiny (`NSLICES` ≤ a dozen), so `u8::MAX` is free.
const SLICE_NONE: u8 = u8::MAX;

/// One shard-cold access (first in-shard touch of its line), queued
/// for serial reconciliation: the access's classification plus — in
/// the parallel `cold_before` array — each group's shard-local set
/// occupancy at the time of the access.
#[derive(Debug, Clone, Copy)]
struct ColdMeta {
    line: u64,
    is_write: u8,
    phase_slice: u8,
    /// Region slice index, or [`SLICE_NONE`].
    region_slice: u8,
}

/// Per-family shard state: shard-local stacks/histograms plus the
/// cold-access queue.
#[derive(Debug, Clone)]
struct ShardFamily {
    line_shift: u32,
    groups: Vec<SetGroup>,
    /// Lines touched in this shard.
    seen: IdHashSet<u64>,
    cold: Vec<ColdMeta>,
    /// `cold.len() * groups.len()` occupancies, cold-access-major.
    cold_before: Vec<u32>,
}

impl ShardFamily {
    #[inline]
    fn access(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        let line = addr >> self.line_shift;
        if self.seen.insert(line) {
            // Cold: the global stack distance depends on pre-shard
            // state, so defer the histogram update to reconciliation.
            // The touch still installs the line — later warm accesses
            // measure against it.
            for g in &mut self.groups {
                let occ = g.occupancy(line) as u32;
                self.cold_before.push(occ);
                g.touch(line);
            }
            self.cold.push(ColdMeta {
                line,
                is_write: is_write as u8,
                phase_slice: phase_slice as u8,
                region_slice: region_slice.map_or(SLICE_NONE, |rs| rs as u8),
            });
        } else {
            // Warm: every line accessed since this line's previous
            // touch lives in this shard, so the shard-local stack
            // distance *is* the global stack distance — record it
            // directly, exactly as the serial sweep would.
            for g in &mut self.groups {
                let bucket = g.touch(line);
                g.record(phase_slice, is_write, bucket);
                if let Some(rs) = region_slice {
                    g.record(rs, is_write, bucket);
                }
            }
        }
    }
}

/// Resumable shard state for one [`CacheSweep`]: the parallel half of
/// exact sharded single-tape simulation.
///
/// N workers each stream a disjoint contiguous run of tape segments
/// through their own `SweepShard` (no shared state, no locks). The
/// trick that keeps the result *exact* rather than approximate: an
/// access whose line was touched earlier in the same shard ("warm")
/// has a shard-local stack distance equal to its global one — every
/// intervening distinct line is in-shard by definition — so warm
/// accesses (the overwhelming majority) are histogrammed in parallel
/// with zero coordination. Only each line's *first* in-shard touch
/// ("cold") depends on pre-shard state; shards queue those (with the
/// shard-local set occupancy at access time) and
/// [`CacheSweep::absorb`] later replays the queue serially against
/// the carried pre-shard stacks:
///
/// * cold line found at position `p` of the carried set stack →
///   exact distance `occupancy + p` (the carried entry is removed so
///   later cold accesses and the final stack splice never count it
///   twice);
/// * cold line absent (or occupancy already at `depth`) → at least
///   `depth` distinct lines intervened, which is bucket `depth`
///   ("miss at every swept associativity") exactly;
/// * first-*ever* accesses are the compulsory misses, decided against
///   the carried seen-set.
///
/// Afterwards each set's stack becomes shard-local lines (MRU first)
/// followed by surviving carried lines — exactly the serial stack —
/// so absorption chains across any number of shards. Absorb shards
/// **in tape order**; results then equal the serial sweep bit for bit
/// at any worker count.
#[derive(Debug, Clone)]
pub struct SweepShard {
    families: Vec<ShardFamily>,
}

impl SweepShard {
    /// Performs one access, exactly like [`CacheSweep::access`].
    #[inline]
    pub fn access(&mut self, addr: Addr, kind: AccessKind, phase: Phase) {
        let is_write = usize::from(kind == AccessKind::Write);
        let phase_slice = phase_slice_of(phase);
        let region_slice = Region::classify(addr).map(|r| SLICE_REGION0 + r as usize);
        self.access_classified(addr, is_write, phase_slice, region_slice);
    }

    #[inline]
    fn access_classified(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        for f in &mut self.families {
            f.access(addr, is_write, phase_slice, region_slice);
        }
    }

    /// Accesses recorded as cold (deferred to reconciliation).
    pub fn cold_accesses(&self) -> u64 {
        self.families.iter().map(|f| f.cold.len() as u64).sum()
    }
}

/// A one-pass simulator for an arbitrary family of write-allocate
/// configurations (see the module docs).
#[derive(Debug, Clone)]
pub struct CacheSweep {
    points: Vec<(CacheConfig, usize, usize)>, // (config, family, group)
    families: Vec<Family>,
}

impl CacheSweep {
    /// Creates a sweep over `points`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, uses a line size below 2 bytes, or
    /// contains a no-write-allocate configuration.
    pub fn new(points: &[CacheConfig]) -> Self {
        assert!(!points.is_empty(), "at least one sweep point");
        let mut families: Vec<Family> = Vec::new();
        let mut indexed = Vec::with_capacity(points.len());
        for cfg in points {
            assert!(cfg.line >= 2, "sweep needs a line size of at least 2 bytes");
            assert!(
                cfg.write_allocate,
                "the stack-distance sweep requires write-allocate"
            );
            let shift = cfg.line.trailing_zeros();
            let f = match families.iter().position(|f| f.line_shift == shift) {
                Some(f) => f,
                None => {
                    families.push(Family {
                        line_shift: shift,
                        groups: Vec::new(),
                        seen: IdHashSet::default(),
                        compulsory: [0; NSLICES],
                    });
                    families.len() - 1
                }
            };
            let sets = cfg.num_sets();
            let groups = &mut families[f].groups;
            let g = match groups.iter().position(|g| g.set_mask == sets - 1) {
                Some(g) => {
                    let depth = groups[g].depth.max(cfg.assoc as usize);
                    if depth > groups[g].depth {
                        groups[g] = SetGroup::new(sets, depth);
                    }
                    g
                }
                None => {
                    groups.push(SetGroup::new(sets, cfg.assoc as usize));
                    groups.len() - 1
                }
            };
            indexed.push((*cfg, f, g));
        }
        CacheSweep {
            points: indexed,
            families,
        }
    }

    /// Performs one access against every swept configuration. The
    /// phase/region classification happens once, here, no matter how
    /// many line sizes, set counts, or way counts are in flight.
    #[inline]
    pub fn access(&mut self, addr: Addr, kind: AccessKind, phase: Phase) {
        let is_write = usize::from(kind == AccessKind::Write);
        let phase_slice = phase_slice_of(phase);
        let region_slice = Region::classify(addr).map(|r| SLICE_REGION0 + r as usize);
        self.access_classified(addr, is_write, phase_slice, region_slice);
    }

    /// The pre-classified fast path: the decoded-block consumer reads
    /// the slice indices straight off the memoized arrays.
    #[inline]
    fn access_classified(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        for f in &mut self.families {
            f.access(addr, is_write, phase_slice, region_slice);
        }
    }

    /// Derives the per-configuration statistics, in the order the
    /// points were supplied to [`CacheSweep::new`].
    pub fn results(&self) -> Vec<SweepResult> {
        self.points
            .iter()
            .map(|&(config, fi, gi)| {
                let f = &self.families[fi];
                let g = &f.groups[gi];
                let ways = config.assoc as usize;
                let slice = |s: usize| g.slice_stats(s, ways, f.compulsory[s]);
                let translate = slice(SLICE_TRANSLATE);
                let gc = slice(SLICE_GC);
                let gc_barrier = slice(SLICE_GCBARRIER);
                // "Rest" keeps its historical meaning — everything
                // that is not translation — so the collector slices
                // fold back into it.
                let mut rest = slice(SLICE_REST);
                rest.merge(&gc);
                rest.merge(&gc_barrier);
                let mut stats = translate;
                stats.merge(&rest);
                let mut region = [CacheStats::default(); Region::ALL.len()];
                for (k, r) in region.iter_mut().enumerate() {
                    *r = slice(SLICE_REGION0 + k);
                }
                SweepResult {
                    config,
                    stats,
                    translate,
                    rest,
                    gc,
                    gc_barrier,
                    region,
                }
            })
            .collect()
    }

    /// Number of swept configurations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points (never true: `new` requires one).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Creates an empty [`SweepShard`] with this sweep's geometry,
    /// ready for a worker to stream one contiguous run of the trace
    /// into.
    pub fn shard(&self) -> SweepShard {
        SweepShard {
            families: self
                .families
                .iter()
                .map(|f| ShardFamily {
                    line_shift: f.line_shift,
                    groups: f
                        .groups
                        .iter()
                        .map(|g| SetGroup::new(g.set_mask + 1, g.depth))
                        .collect(),
                    seen: IdHashSet::default(),
                    cold: Vec::new(),
                    cold_before: Vec::new(),
                })
                .collect(),
        }
    }

    /// Reconciles `shard` into this sweep. Shards must be created by
    /// [`CacheSweep::shard`] on this sweep (same geometry) and
    /// absorbed in trace order; the result then equals running the
    /// whole trace through this sweep serially — see [`SweepShard`].
    pub fn absorb(&mut self, shard: &SweepShard) {
        assert_eq!(
            self.families.len(),
            shard.families.len(),
            "shard geometry must come from this sweep"
        );
        for (f, sf) in self.families.iter_mut().zip(&shard.families) {
            f.absorb(sf);
        }
    }
}

/// An L1 I-cache + D-cache sweep pair: the one-pass counterpart of
/// [`SplitCaches`](crate::SplitCaches). Every event fetches its `pc`
/// through the instruction sweep; loads and stores additionally drive
/// the data sweep. Consumes decoded [`AccessBlocks`] on the fast path
/// and implements [`TraceSink`] for event-level use.
#[derive(Debug, Clone)]
pub struct SplitSweep {
    icache: CacheSweep,
    dcache: CacheSweep,
}

impl SplitSweep {
    /// Creates a pair of sweeps from the two point families.
    pub fn new(ipoints: &[CacheConfig], dpoints: &[CacheConfig]) -> Self {
        SplitSweep {
            icache: CacheSweep::new(ipoints),
            dcache: CacheSweep::new(dpoints),
        }
    }

    /// Drives the whole decoded stream through both sweeps.
    pub fn consume(&mut self, blocks: &AccessBlocks) {
        for b in blocks.blocks() {
            self.consume_block(b);
        }
    }

    /// Drives one decoded block through both sweeps — the streaming
    /// unit: out-of-core replay hands blocks here one at a time.
    /// Region classification comes straight off the block's memoized
    /// region bytes and the translate test off a hoisted per-phase
    /// table, so the per-event work is just the stack touches.
    pub fn consume_block(&mut self, block: &AccessBlock) {
        consume_block_into(&mut self.icache, &mut self.dcache, block);
    }

    /// Creates an empty shard pair with this sweep's geometry.
    pub fn shard(&self) -> SplitSweepShard {
        SplitSweepShard {
            icache: self.icache.shard(),
            dcache: self.dcache.shard(),
        }
    }

    /// Reconciles a shard pair (in trace order) — see
    /// [`CacheSweep::absorb`].
    pub fn absorb(&mut self, shard: &SplitSweepShard) {
        self.icache.absorb(&shard.icache);
        self.dcache.absorb(&shard.dcache);
    }

    /// The instruction-side sweep.
    pub fn icache(&self) -> &CacheSweep {
        &self.icache
    }

    /// The data-side sweep.
    pub fn dcache(&self) -> &CacheSweep {
        &self.dcache
    }
}

/// The shared block-row walk behind [`SplitSweep::consume_block`] and
/// [`SplitSweepShard::consume_block`]: every event fetches its pc
/// through `icache`, data accesses additionally drive `dcache`.
fn consume_block_into<S: ClassifiedAccess>(icache: &mut S, dcache: &mut S, b: &AccessBlock) {
    let phase_slices: [usize; Phase::ALL.len()] =
        std::array::from_fn(|k| phase_slice_of(Phase::ALL[k]));
    let slice_of =
        |region: u8| (region != REGION_NONE).then(|| SLICE_REGION0 + usize::from(region));
    let rows =
        b.pc.iter()
            .zip(&b.phase)
            .zip(&b.pc_region)
            .zip(&b.kind)
            .zip(&b.addr)
            .zip(&b.addr_region);
    for (((((&pc, &phase), &pc_region), &kind), &addr), &addr_region) in rows {
        let phase_slice = phase_slices[usize::from(phase)];
        icache.classified(pc, 0, phase_slice, slice_of(pc_region));
        if kind != KIND_NONE {
            dcache.classified(
                addr,
                usize::from(kind == KIND_WRITE),
                phase_slice,
                slice_of(addr_region),
            );
        }
    }
}

/// Internal dispatch letting the block walk drive either the serial
/// sweep or a shard.
trait ClassifiedAccess {
    fn classified(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    );
}

impl ClassifiedAccess for CacheSweep {
    #[inline]
    fn classified(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        self.access_classified(addr, is_write, phase_slice, region_slice);
    }
}

impl ClassifiedAccess for SweepShard {
    #[inline]
    fn classified(
        &mut self,
        addr: Addr,
        is_write: usize,
        phase_slice: usize,
        region_slice: Option<usize>,
    ) {
        self.access_classified(addr, is_write, phase_slice, region_slice);
    }
}

/// Shard state for a [`SplitSweep`]: an instruction-side and a
/// data-side [`SweepShard`]. Stream a contiguous run of the trace in
/// (via [`TraceSink`] or [`SplitSweepShard::consume_block`]), then
/// hand it to [`SplitSweep::absorb`] in trace order.
#[derive(Debug, Clone)]
pub struct SplitSweepShard {
    icache: SweepShard,
    dcache: SweepShard,
}

impl SplitSweepShard {
    /// Drives one decoded block through both shard sweeps.
    pub fn consume_block(&mut self, block: &AccessBlock) {
        consume_block_into(&mut self.icache, &mut self.dcache, block);
    }

    /// Accesses deferred to reconciliation (first in-shard line
    /// touches), across both sides.
    pub fn cold_accesses(&self) -> u64 {
        self.icache.cold_accesses() + self.dcache.cold_accesses()
    }
}

impl TraceSink for SplitSweepShard {
    fn accept(&mut self, inst: &NativeInst) {
        self.icache.access(inst.pc, AccessKind::Read, inst.phase);
        if let Some(m) = inst.mem {
            self.dcache.access(m.addr, m.kind, inst.phase);
        }
    }
}

impl TraceSink for SplitSweep {
    fn accept(&mut self, inst: &NativeInst) {
        self.icache.access(inst.pc, AccessKind::Read, inst.phase);
        if let Some(m) = inst.mem {
            self.dcache.access(m.addr, m.kind, inst.phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Cache;

    /// Replays `accesses` through both the sweep and one `Cache` per
    /// point, asserting every attribution slice matches exactly.
    fn assert_matches_cache(points: &[CacheConfig], accesses: &[(Addr, AccessKind, Phase)]) {
        let mut sweep = CacheSweep::new(points);
        let mut caches: Vec<Cache> = points.iter().map(|&c| Cache::new(c)).collect();
        for &(addr, kind, phase) in accesses {
            sweep.access(addr, kind, phase);
            for c in &mut caches {
                c.access(addr, kind, phase);
            }
        }
        for (r, c) in sweep.results().iter().zip(&caches) {
            assert_eq!(r.stats(), c.stats(), "{}: overall", c.config());
            assert_eq!(r.translate_stats(), c.translate_stats(), "translate");
            assert_eq!(r.rest_stats(), c.rest_stats(), "rest");
            for region in Region::ALL {
                assert_eq!(r.region_stats(region), c.region_stats(region), "{region}");
            }
        }
    }

    #[test]
    fn matches_cache_on_a_conflict_pattern() {
        let points: Vec<CacheConfig> = [1, 2, 4, 8].map(CacheConfig::paper_assoc_sweep).to_vec();
        // Way-stride conflicts plus some locality, spanning phases.
        let mut accesses = Vec::new();
        for round in 0..6u64 {
            for k in 0..12u64 {
                let addr = jrt_trace::layout::HEAP_BASE + k * 8 * 1024 + round * 32;
                let kind = if k % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let phase = if k % 2 == 0 {
                    Phase::Translate
                } else {
                    Phase::NativeExec
                };
                accesses.push((addr, kind, phase));
            }
        }
        assert_matches_cache(&points, &accesses);
    }

    #[test]
    fn shared_compulsory_counts_across_points() {
        let points: Vec<CacheConfig> = [1, 2, 4, 8].map(CacheConfig::paper_assoc_sweep).to_vec();
        let mut sweep = CacheSweep::new(&points);
        for k in 0..100u64 {
            sweep.access(k * 32, AccessKind::Read, Phase::Runtime);
        }
        // 100 distinct lines: all compulsory, identical in every point.
        for r in sweep.results() {
            assert_eq!(r.stats().compulsory_misses, 100);
            assert_eq!(r.stats().misses(), 100);
        }
    }

    #[test]
    fn conflict_miss_is_not_compulsory() {
        // Mirror of the sim.rs test: 2-set direct-mapped, ping-pong.
        let points = [CacheConfig::new(32, 16, 1)];
        let mut sweep = CacheSweep::new(&points);
        sweep.access(0, AccessKind::Read, Phase::Runtime);
        sweep.access(32, AccessKind::Read, Phase::Runtime);
        sweep.access(0, AccessKind::Read, Phase::Runtime);
        let r = &sweep.results()[0];
        assert_eq!(r.stats().misses(), 3);
        assert_eq!(r.stats().compulsory_misses, 2);
    }

    #[test]
    fn duplicate_points_agree() {
        let cfg = CacheConfig::new(8 * 1024, 32, 2);
        let mut sweep = CacheSweep::new(&[cfg, cfg]);
        for k in 0..50u64 {
            sweep.access(k * 64, AccessKind::Write, Phase::Gc);
        }
        let r = sweep.results();
        assert_eq!(r[0].stats(), r[1].stats());
    }

    #[test]
    fn split_sweep_matches_split_caches_via_sink() {
        use crate::split::SplitCaches;
        let ipoints: Vec<CacheConfig> = [1, 2, 4, 8].map(CacheConfig::paper_assoc_sweep).to_vec();
        let dpoints = ipoints.clone();
        let mut sweep = SplitSweep::new(&ipoints, &dpoints);
        let mut pairs: Vec<SplitCaches> = ipoints.iter().map(|&c| SplitCaches::new(c, c)).collect();
        let events = [
            NativeInst::alu(0x1_0000, Phase::Runtime),
            NativeInst::load(0x1_0004, jrt_trace::layout::HEAP_BASE, 4, Phase::NativeExec),
            NativeInst::store(
                0x1_0008,
                jrt_trace::layout::CODE_CACHE_BASE,
                4,
                Phase::Translate,
            ),
            NativeInst::load(
                0x1_0004,
                jrt_trace::layout::HEAP_BASE + 64,
                8,
                Phase::NativeExec,
            ),
        ];
        for e in &events {
            sweep.accept(e);
            for p in &mut pairs {
                p.accept(e);
            }
        }
        for ((i, d), p) in sweep
            .icache()
            .results()
            .iter()
            .zip(sweep.dcache().results())
            .zip(&pairs)
        {
            assert_eq!(i.stats(), p.icache().stats());
            assert_eq!(d.stats(), p.dcache().stats());
        }
    }

    #[test]
    fn consume_blocks_equals_accept_events() {
        use jrt_trace::Tape;
        let tape = Tape::record(|rec| {
            for k in 0..500u64 {
                rec.accept(&NativeInst::load(
                    0x1_0000 + (k % 7) * 4,
                    jrt_trace::layout::HEAP_BASE + (k % 97) * 24,
                    4,
                    if k % 5 == 0 {
                        Phase::Translate
                    } else {
                        Phase::InterpHandler
                    },
                ));
            }
        });
        let points = [CacheConfig::paper_l1_data()];
        let mut via_blocks = SplitSweep::new(&points, &points);
        via_blocks.consume(&AccessBlocks::from_tape(&tape));
        let mut via_events = SplitSweep::new(&points, &points);
        tape.replay(&mut via_events);
        assert_eq!(
            via_blocks.dcache().results()[0].stats(),
            via_events.dcache().results()[0].stats()
        );
        assert_eq!(
            via_blocks.icache().results()[0].translate_stats(),
            via_events.icache().results()[0].translate_stats()
        );
    }

    #[test]
    fn mixed_line_sizes_match_per_config_caches() {
        // The Figure 8 family in a single sweep: four line sizes, each
        // its own family with its own compulsory accounting.
        let points: Vec<CacheConfig> = [16, 32, 64, 128]
            .map(CacheConfig::paper_line_sweep)
            .to_vec();
        let mut accesses = Vec::new();
        for round in 0..5u64 {
            for k in 0..40u64 {
                let addr = jrt_trace::layout::HEAP_BASE + k * 112 + round * 16;
                let kind = if k % 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                accesses.push((addr, kind, Phase::NativeExec));
            }
        }
        assert_matches_cache(&points, &accesses);
    }

    #[test]
    #[should_panic(expected = "write-allocate")]
    fn rejects_no_write_allocate() {
        CacheSweep::new(&[CacheConfig::new(1024, 16, 1).no_write_allocate()]);
    }

    /// A deterministic access pattern with plenty of reuse across any
    /// shard boundary: strided conflicts, revisits, phase and region
    /// variety.
    fn shard_torture_accesses(n: u64) -> Vec<(Addr, AccessKind, Phase)> {
        let mut accesses = Vec::with_capacity(n as usize);
        let mut x = 0x9e37_79b9u64;
        for k in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = match k % 4 {
                // Tight reuse: revisits within a few accesses.
                0 => jrt_trace::layout::HEAP_BASE + (k % 64) * 32,
                // Way-stride conflicts.
                1 => jrt_trace::layout::HEAP_BASE + (x % 24) * 8 * 1024,
                // Long-distance reuse across shard boundaries.
                2 => jrt_trace::layout::CODE_CACHE_BASE + (k % 4096) * 16,
                // Cold-heavy tail: mostly-new lines.
                _ => jrt_trace::layout::STACK_BASE + k * 128 + (x % 8),
            };
            let kind = if x.is_multiple_of(3) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let phase = Phase::ALL[(x % Phase::ALL.len() as u64) as usize];
            accesses.push((addr, kind, phase));
        }
        accesses
    }

    fn assert_results_equal(a: &CacheSweep, b: &CacheSweep) {
        for (ra, rb) in a.results().iter().zip(b.results()) {
            assert_eq!(ra.stats(), rb.stats(), "overall {}", ra.config());
            assert_eq!(ra.translate_stats(), rb.translate_stats(), "translate");
            assert_eq!(ra.rest_stats(), rb.rest_stats(), "rest");
            assert_eq!(ra.gc_stats(), rb.gc_stats(), "gc");
            assert_eq!(ra.gc_barrier_stats(), rb.gc_barrier_stats(), "gc-barrier");
            for region in Region::ALL {
                assert_eq!(ra.region_stats(region), rb.region_stats(region), "{region}");
            }
        }
    }

    #[test]
    fn gc_slices_split_out_of_rest() {
        let points = [CacheConfig::paper_assoc_sweep(1)];
        let mut sweep = CacheSweep::new(&points);
        let base = jrt_trace::layout::HEAP_BASE;
        sweep.access(base, AccessKind::Read, Phase::Gc);
        sweep.access(base + 64, AccessKind::Write, Phase::GcBarrier);
        sweep.access(base, AccessKind::Read, Phase::NativeExec);
        sweep.access(base, AccessKind::Read, Phase::Translate);
        let r = &sweep.results()[0];
        assert_eq!(r.gc_stats().refs(), 1);
        assert_eq!(r.gc_stats().reads, 1);
        assert_eq!(r.gc_barrier_stats().refs(), 1);
        assert_eq!(r.gc_barrier_stats().writes, 1);
        // The collector slices stay subsets of "rest": rest covers the
        // three non-translate accesses, overall covers all four.
        assert_eq!(r.rest_stats().refs(), 3);
        assert_eq!(r.translate_stats().refs(), 1);
        assert_eq!(r.stats().refs(), 4);
    }

    #[test]
    fn sharded_sweep_equals_serial_at_any_split() {
        let points: Vec<CacheConfig> = [1, 2, 4, 8].map(CacheConfig::paper_assoc_sweep).to_vec();
        let accesses = shard_torture_accesses(6000);

        let mut serial = CacheSweep::new(&points);
        for &(addr, kind, phase) in &accesses {
            serial.access(addr, kind, phase);
        }

        for nshards in [1usize, 2, 3, 4, 8] {
            let mut sharded = CacheSweep::new(&points);
            let chunk = accesses.len().div_ceil(nshards);
            for part in accesses.chunks(chunk) {
                let mut shard = sharded.shard();
                for &(addr, kind, phase) in part {
                    shard.access(addr, kind, phase);
                }
                sharded.absorb(&shard);
            }
            assert_results_equal(&serial, &sharded);
        }
    }

    #[test]
    fn sharding_preserves_state_for_later_serial_use() {
        // Absorbing must leave the sweep's stacks exactly as the
        // serial run would, so accesses *after* absorption also agree.
        let points = [CacheConfig::paper_l1_data()];
        let accesses = shard_torture_accesses(2000);
        let (head, tail) = accesses.split_at(1200);

        let mut serial = CacheSweep::new(&points);
        for &(addr, kind, phase) in &accesses {
            serial.access(addr, kind, phase);
        }

        let mut mixed = CacheSweep::new(&points);
        let mut shard = mixed.shard();
        for &(addr, kind, phase) in head {
            shard.access(addr, kind, phase);
        }
        mixed.absorb(&shard);
        for &(addr, kind, phase) in tail {
            mixed.access(addr, kind, phase);
        }
        assert_results_equal(&serial, &mixed);
    }

    #[test]
    fn sharded_mixed_line_sizes_equal_serial() {
        let points: Vec<CacheConfig> = [16, 32, 64, 128]
            .map(CacheConfig::paper_line_sweep)
            .to_vec();
        let accesses = shard_torture_accesses(3000);

        let mut serial = CacheSweep::new(&points);
        for &(addr, kind, phase) in &accesses {
            serial.access(addr, kind, phase);
        }
        let mut sharded = CacheSweep::new(&points);
        for part in accesses.chunks(700) {
            let mut shard = sharded.shard();
            for &(addr, kind, phase) in part {
                shard.access(addr, kind, phase);
            }
            sharded.absorb(&shard);
        }
        assert_results_equal(&serial, &sharded);
    }

    #[test]
    fn split_sweep_shards_consume_blocks_exactly() {
        use jrt_trace::Tape;
        let tape = Tape::record(|rec| {
            for (addr, kind, phase) in shard_torture_accesses(4000) {
                let pc = 0x1_0000 + (addr % 509) * 4;
                rec.accept(&match kind {
                    AccessKind::Write => NativeInst::store(pc, addr, 4, phase),
                    AccessKind::Read => NativeInst::load(pc, addr, 4, phase),
                });
            }
        });
        let points = [CacheConfig::paper_l1_data()];
        let blocks = AccessBlocks::from_tape(&tape);

        let mut serial = SplitSweep::new(&points, &points);
        serial.consume(&blocks);

        let mut sharded = SplitSweep::new(&points, &points);
        for chunk in blocks.blocks().chunks(1) {
            let mut shard = sharded.shard();
            for b in chunk {
                shard.consume_block(b);
            }
            sharded.absorb(&shard);
        }
        assert_eq!(
            serial.icache().results()[0].stats(),
            sharded.icache().results()[0].stats()
        );
        assert_eq!(
            serial.dcache().results()[0].stats(),
            sharded.dcache().results()[0].stats()
        );
        for region in Region::ALL {
            assert_eq!(
                serial.dcache().results()[0].region_stats(region),
                sharded.dcache().results()[0].region_stats(region)
            );
        }
    }

    #[test]
    fn empty_shard_absorbs_as_noop() {
        let points = [CacheConfig::paper_l1_data()];
        let mut a = CacheSweep::new(&points);
        let mut b = CacheSweep::new(&points);
        for &(addr, kind, phase) in &shard_torture_accesses(500) {
            a.access(addr, kind, phase);
            b.access(addr, kind, phase);
        }
        let shard = b.shard();
        assert_eq!(shard.cold_accesses(), 0);
        b.absorb(&shard);
        assert_results_equal(&a, &b);
    }
}
