//! Cache geometry and policy configuration.

use std::fmt;

/// Configuration of one cache.
///
/// Constructed either with [`CacheConfig::new`] or one of the named
/// constructors matching the parameter points used in the paper.
///
/// # Examples
///
/// ```
/// use jrt_cache::CacheConfig;
///
/// let cfg = CacheConfig::new(8 * 1024, 32, 1); // 8K direct-mapped
/// assert_eq!(cfg.num_sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size: u64,
    /// Line (block) size in bytes. Must be a power of two.
    pub line: u32,
    /// Associativity (1 = direct mapped). Must divide `size / line`.
    pub assoc: u32,
    /// Allocate a line on a write miss (write-allocate). The paper
    /// notes write-allocate is the predominant policy; it is the
    /// default.
    pub write_allocate: bool,
}

impl CacheConfig {
    /// Creates a write-allocate configuration.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `line` is not a power of two, if `line`
    /// does not divide `size`, or if `assoc` does not divide the
    /// number of lines.
    pub fn new(size: u64, line: u32, assoc: u32) -> Self {
        let cfg = CacheConfig {
            size,
            line,
            assoc,
            write_allocate: true,
        };
        cfg.validate();
        cfg
    }

    /// Disables write-allocate (builder style).
    pub fn no_write_allocate(mut self) -> Self {
        self.write_allocate = false;
        self
    }

    fn validate(&self) {
        assert!(
            self.size.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            self.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.assoc >= 1, "associativity must be at least 1");
        let lines = self.size / u64::from(self.line);
        assert!(lines >= 1, "cache must hold at least one line");
        assert_eq!(
            lines % u64::from(self.assoc),
            0,
            "associativity must divide the number of lines"
        );
    }

    /// The paper's L1 instruction cache: 64 KB, 32-byte lines, 2-way.
    pub fn paper_l1_inst() -> Self {
        Self::new(64 * 1024, 32, 2)
    }

    /// The paper's L1 data cache: 64 KB, 32-byte lines, 4-way.
    pub fn paper_l1_data() -> Self {
        Self::new(64 * 1024, 32, 4)
    }

    /// The direct-mapped 64 KB / 32 B cache used for the write-miss
    /// study (Figure 3).
    pub fn paper_write_study() -> Self {
        Self::new(64 * 1024, 32, 1)
    }

    /// The 8 KB / 32 B cache whose associativity is swept 1–8 in
    /// Figure 7.
    pub fn paper_assoc_sweep(assoc: u32) -> Self {
        Self::new(8 * 1024, 32, assoc)
    }

    /// The 8 KB direct-mapped cache whose line size is swept
    /// 16–128 bytes in Figure 8.
    pub fn paper_line_sweep(line: u32) -> Self {
        Self::new(8 * 1024, line, 1)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size / u64::from(self.line) / u64::from(self.assoc)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> u64 {
        self.size / u64::from(self.line)
    }

    /// Maps an address to its line-aligned tag (address / line size).
    pub fn line_id(&self, addr: u64) -> u64 {
        addr / u64::from(self.line)
    }

    /// Maps an address to its set index.
    pub fn set_index(&self, addr: u64) -> u64 {
        self.line_id(addr) % self.num_sets()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}K/{}B/{}-way{}",
            self.size / 1024,
            self.line,
            self.assoc,
            if self.write_allocate { "" } else { "/nwa" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let cfg = CacheConfig::paper_l1_data();
        assert_eq!(cfg.num_lines(), 2048);
        assert_eq!(cfg.num_sets(), 512);
        assert_eq!(cfg.set_index(0), 0);
        assert_eq!(cfg.set_index(32), 1);
        // addresses one "way stride" apart map to the same set
        let stride = cfg.num_sets() * u64::from(cfg.line);
        assert_eq!(cfg.set_index(64), cfg.set_index(64 + stride));
    }

    #[test]
    fn named_constructors_match_paper() {
        assert_eq!(CacheConfig::paper_l1_inst().assoc, 2);
        assert_eq!(CacheConfig::paper_l1_data().assoc, 4);
        assert_eq!(CacheConfig::paper_write_study().assoc, 1);
        assert_eq!(CacheConfig::paper_assoc_sweep(8).size, 8 * 1024);
        assert_eq!(CacheConfig::paper_line_sweep(128).line, 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        CacheConfig::new(1000, 32, 1);
    }

    #[test]
    #[should_panic(expected = "associativity must divide")]
    fn rejects_bad_assoc() {
        CacheConfig::new(1024, 32, 5);
    }

    #[test]
    fn display_roundtrip() {
        assert_eq!(CacheConfig::paper_l1_data().to_string(), "64K/32B/4-way");
    }
}
