//! Trace-driven cache simulation for the `javart` project.
//!
//! This crate is the stand-in for the `cachesim5` simulator the paper
//! used from the Shade suite. It provides:
//!
//! * [`Cache`]: a single set-associative cache with LRU replacement,
//!   configurable size / line size / associativity / write policy,
//!   miss classification (read vs. write vs. compulsory), and
//!   per-phase and per-region attribution;
//! * [`CacheConfig`]: builder-style configuration with the paper's
//!   parameter points as named constructors;
//! * [`SplitCaches`]: an L1 I-cache + D-cache pair that consumes a
//!   native instruction trace (instruction fetch per event, data access
//!   per load/store) — the configuration used for Table 3, Figures 3–8;
//! * [`Timeline`]: windowed miss-rate sampling for the time-series
//!   study of Figure 6;
//! * [`CacheSweep`] / [`SplitSweep`]: one-pass stack-distance
//!   simulation of whole configuration families (the Hill & Smith
//!   all-associativity technique), exact against [`Cache`] and used by
//!   the Figure 7/8 sweeps.
//!
//! # Examples
//!
//! ```
//! use jrt_cache::{Cache, CacheConfig};
//! use jrt_trace::{AccessKind, Phase};
//!
//! // The paper's L1 D-cache: 64 KB, 32-byte lines, 4-way.
//! let mut dcache = Cache::new(CacheConfig::paper_l1_data());
//! dcache.access(0x2000_0000, AccessKind::Read, Phase::NativeExec);
//! dcache.access(0x2000_0004, AccessKind::Read, Phase::NativeExec);
//! assert_eq!(dcache.stats().refs(), 2);
//! assert_eq!(dcache.stats().misses(), 1); // second access hits the line
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod sim;
mod split;
mod sweep;
mod timeline;

pub use config::CacheConfig;
pub use sim::{AccessOutcome, Cache, CacheStats};
pub use split::SplitCaches;
pub use sweep::{CacheSweep, SplitSweep, SplitSweepShard, SweepResult, SweepShard};
pub use timeline::{Timeline, TimelineSample};
