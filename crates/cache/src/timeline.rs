//! Windowed miss-rate sampling (Figure 6 of the paper).
//!
//! The paper plots the number of cache misses over the course of
//! execution for `db` in interpreter and JIT modes, showing class-load
//! spikes at startup for the interpreter and clustered
//! translation-write-miss spikes for the JIT. [`Timeline`] reproduces
//! that measurement: it divides the instruction stream into fixed-size
//! windows and records per-window reference and miss counts.

/// One sampled window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineSample {
    /// Instructions retired in this window.
    pub instructions: u64,
    /// I-cache misses in this window.
    pub i_misses: u64,
    /// D-cache references in this window.
    pub d_refs: u64,
    /// D-cache misses in this window.
    pub d_misses: u64,
    /// Misses (I + D) attributed to the JIT translate phase.
    pub translate_misses: u64,
}

impl TimelineSample {
    /// D-cache miss rate within the window.
    pub fn d_miss_rate(&self) -> f64 {
        if self.d_refs == 0 {
            0.0
        } else {
            self.d_misses as f64 / self.d_refs as f64
        }
    }
}

/// Windowed sampler of cache behaviour over time.
#[derive(Debug, Clone)]
pub struct Timeline {
    window: u64,
    current: TimelineSample,
    samples: Vec<TimelineSample>,
}

impl Timeline {
    /// Creates a sampler with the given window size (instructions).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Timeline {
            window,
            current: TimelineSample::default(),
            samples: Vec::new(),
        }
    }

    /// Records one instruction's outcomes: I-fetch hit/miss, the
    /// D-access hit/miss for memory instructions, and whether the
    /// instruction belongs to the translate phase.
    pub fn record(&mut self, i_hit: bool, d_hit: Option<bool>, translate: bool) {
        self.current.instructions += 1;
        if !i_hit {
            self.current.i_misses += 1;
            if translate {
                self.current.translate_misses += 1;
            }
        }
        if let Some(h) = d_hit {
            self.current.d_refs += 1;
            if !h {
                self.current.d_misses += 1;
                if translate {
                    self.current.translate_misses += 1;
                }
            }
        }
        if self.current.instructions == self.window {
            self.samples.push(self.current);
            self.current = TimelineSample::default();
        }
    }

    /// Pushes a trailing partial window, if any.
    pub fn flush(&mut self) {
        if self.current.instructions > 0 {
            self.samples.push(self.current);
            self.current = TimelineSample::default();
        }
    }

    /// The collected samples.
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// Number of windows whose misses are dominated (>50%) by the
    /// translate phase — the clustered translation spikes the paper
    /// observes in JIT mode (always zero under interpretation).
    pub fn translate_clusters(&self) -> usize {
        self.samples
            .iter()
            .filter(|s| {
                let total = s.i_misses + s.d_misses;
                total > 0 && s.translate_misses * 2 > total
            })
            .count()
    }

    /// Number of "spike" windows: windows whose miss count exceeds
    /// `factor` times the mean miss count. The paper's qualitative
    /// observation is that the JIT mode shows many more such spikes
    /// (clustered translations) than the interpreter.
    pub fn spike_count(&self, factor: f64) -> usize {
        let n = self.samples.len();
        if n == 0 {
            return 0;
        }
        let mean: f64 = self
            .samples
            .iter()
            .map(|s| (s.i_misses + s.d_misses) as f64)
            .sum::<f64>()
            / n as f64;
        self.samples
            .iter()
            .filter(|s| (s.i_misses + s.d_misses) as f64 > factor * mean)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_split_correctly() {
        let mut t = Timeline::new(3);
        for k in 0..7 {
            t.record(k % 2 == 0, Some(k % 3 == 0), false);
        }
        t.flush();
        assert_eq!(t.samples().len(), 3);
        assert_eq!(t.samples()[0].instructions, 3);
        assert_eq!(t.samples()[2].instructions, 1);
        let total_d: u64 = t.samples().iter().map(|s| s.d_refs).sum();
        assert_eq!(total_d, 7);
    }

    #[test]
    fn miss_rate_within_window() {
        let mut t = Timeline::new(2);
        t.record(true, Some(false), false);
        t.record(true, Some(true), false);
        t.flush();
        assert!((t.samples()[0].d_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spikes_detected() {
        let mut t = Timeline::new(1);
        // 9 quiet windows, 1 spike.
        for _ in 0..9 {
            t.record(true, Some(true), false);
        }
        t.record(false, Some(false), true);
        t.flush();
        assert_eq!(t.spike_count(2.0), 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        Timeline::new(0);
    }

    #[test]
    fn translate_clusters_counted() {
        let mut t = Timeline::new(2);
        t.record(false, Some(false), true); // 2 translate misses
        t.record(true, None, false);
        t.record(false, None, false); // 1 non-translate miss
        t.record(true, None, false);
        t.flush();
        assert_eq!(t.translate_clusters(), 1);
    }

    #[test]
    fn empty_timeline_has_no_spikes() {
        let t = Timeline::new(10);
        assert_eq!(t.spike_count(2.0), 0);
        assert!(t.samples().is_empty());
    }
}
