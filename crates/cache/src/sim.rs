//! The set-associative cache model.

use crate::config::CacheConfig;
use jrt_trace::{AccessKind, Addr, IdHashSet, Phase, Region};
use std::fmt;

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a miss was compulsory (first touch of the line ever).
    pub compulsory: bool,
}

/// Aggregated statistics for one cache (or one attribution slice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Compulsory (cold) misses, a subset of all misses.
    pub compulsory_misses: u64,
}

impl CacheStats {
    /// Total references.
    pub fn refs(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate in [0, 1]; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        if self.refs() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.refs() as f64
        }
    }

    /// Of all misses, the fraction that are write misses (Figure 3).
    pub fn write_miss_fraction(&self) -> f64 {
        if self.misses() == 0 {
            0.0
        } else {
            self.write_misses as f64 / self.misses() as f64
        }
    }

    /// Adds another slice into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.compulsory_misses += other.compulsory_misses;
    }

    fn record(&mut self, kind: AccessKind, outcome: AccessOutcome) {
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                if !outcome.hit {
                    self.read_misses += 1;
                }
            }
            AccessKind::Write => {
                self.writes += 1;
                if !outcome.hit {
                    self.write_misses += 1;
                }
            }
        }
        if !outcome.hit && outcome.compulsory {
            self.compulsory_misses += 1;
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} misses={} ({:.3}%) wr-miss={:.1}%",
            self.refs(),
            self.misses(),
            self.miss_rate() * 100.0,
            self.write_miss_fraction() * 100.0
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    stamp: u64,
}

/// A set-associative, LRU, write-allocate (optionally no-write-allocate)
/// cache with miss classification and per-phase / per-region
/// attribution.
///
/// Timing is not modelled here; the ILP simulator layers latencies on
/// top of hit/miss outcomes.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // Hot-path geometry, precomputed: every dimension is a power of
    // two (validated by `CacheConfig`), so indexing is shift + mask.
    line_shift: u32,
    set_mask: u64,
    lines: Vec<Line>, // num_sets * assoc, set-major
    tick: u64,
    stats: CacheStats,
    translate_stats: CacheStats,
    rest_stats: CacheStats,
    region_stats: [CacheStats; Region::ALL.len()], // indexed by discriminant
    // Line ids are already well-distributed integers; the shared
    // SplitMix64-finalizer hasher keeps SipHash off the miss path.
    seen: IdHashSet<u64>,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let n = (cfg.num_lines()) as usize;
        Cache {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            set_mask: cfg.num_sets() - 1,
            lines: vec![Line::default(); n],
            tick: 0,
            stats: CacheStats::default(),
            translate_stats: CacheStats::default(),
            rest_stats: CacheStats::default(),
            region_stats: [CacheStats::default(); Region::ALL.len()],
            seen: IdHashSet::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Performs one access and updates statistics.
    pub fn access(&mut self, addr: Addr, kind: AccessKind, phase: Phase) -> AccessOutcome {
        let line_id = addr >> self.line_shift;
        let outcome = self.probe(line_id, kind);
        self.stats.record(kind, outcome);
        if phase.is_translate() {
            self.translate_stats.record(kind, outcome);
        } else {
            self.rest_stats.record(kind, outcome);
        }
        if let Some(region) = Region::classify(addr) {
            self.region_stats[region as usize].record(kind, outcome);
        }
        outcome
    }

    fn probe(&mut self, line_id: u64, kind: AccessKind) -> AccessOutcome {
        self.tick += 1;
        let set = (line_id & self.set_mask) as usize;
        let assoc = self.cfg.assoc as usize;
        let ways = &mut self.lines[set * assoc..(set + 1) * assoc];

        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == line_id) {
            way.stamp = self.tick;
            return AccessOutcome {
                hit: true,
                compulsory: false,
            };
        }

        // Miss. A hit line is always in `seen` (it was inserted when
        // the line was filled, or on the write miss that skipped the
        // fill), so first-touch tracking only needs to run here.
        let compulsory = self.seen.insert(line_id);

        // Allocate unless this is a write under no-write-allocate.
        let allocate = self.cfg.write_allocate || kind == AccessKind::Read;
        if allocate {
            let victim = ways
                .iter_mut()
                .min_by_key(|w| if w.valid { w.stamp } else { 0 })
                .expect("associativity >= 1");
            victim.tag = line_id;
            victim.valid = true;
            victim.stamp = self.tick;
        }
        AccessOutcome {
            hit: false,
            compulsory,
        }
    }

    /// Overall statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Statistics attributed to the JIT translate phase.
    pub fn translate_stats(&self) -> &CacheStats {
        &self.translate_stats
    }

    /// Statistics attributed to everything except translation.
    pub fn rest_stats(&self) -> &CacheStats {
        &self.rest_stats
    }

    /// Statistics for accesses falling into `region`.
    pub fn region_stats(&self, region: Region) -> &CacheStats {
        &self.region_stats[region as usize]
    }

    /// Invalidates all lines but keeps statistics.
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 16 bytes, 2-way: 2 sets.
        Cache::new(CacheConfig::new(64, 16, 2))
    }

    #[test]
    fn first_touch_is_compulsory_miss() {
        let mut c = tiny();
        let o = c.access(0, AccessKind::Read, Phase::Runtime);
        assert!(!o.hit);
        assert!(o.compulsory);
        let o = c.access(4, AccessKind::Read, Phase::Runtime);
        assert!(o.hit, "same line must hit");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set 0 holds lines with even line_id (16-byte lines, 2 sets).
        c.access(0, AccessKind::Read, Phase::Runtime); // line 0 -> set 0
        c.access(32, AccessKind::Read, Phase::Runtime); // line 2 -> set 0
        c.access(0, AccessKind::Read, Phase::Runtime); // touch line 0 (MRU)
        c.access(64, AccessKind::Read, Phase::Runtime); // line 4 -> evicts line 2
        assert!(c.access(0, AccessKind::Read, Phase::Runtime).hit);
        let o = c.access(32, AccessKind::Read, Phase::Runtime);
        assert!(!o.hit, "line 2 was evicted");
        assert!(!o.compulsory, "it was seen before");
    }

    #[test]
    fn conflict_miss_is_not_compulsory() {
        let mut c = Cache::new(CacheConfig::new(32, 16, 1)); // 2 sets DM
        c.access(0, AccessKind::Read, Phase::Runtime);
        c.access(32, AccessKind::Read, Phase::Runtime); // evict
        let o = c.access(0, AccessKind::Read, Phase::Runtime);
        assert!(!o.hit);
        assert!(!o.compulsory);
        assert_eq!(c.stats().compulsory_misses, 2);
        assert_eq!(c.stats().misses(), 3);
    }

    #[test]
    fn write_miss_classification() {
        let mut c = tiny();
        c.access(0, AccessKind::Write, Phase::Translate);
        c.access(16, AccessKind::Read, Phase::Runtime);
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.stats().read_misses, 1);
        assert!((c.stats().write_miss_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(c.translate_stats().write_misses, 1);
        assert_eq!(c.rest_stats().read_misses, 1);
    }

    #[test]
    fn no_write_allocate_skips_fill() {
        let mut c = Cache::new(CacheConfig::new(64, 16, 2).no_write_allocate());
        c.access(0, AccessKind::Write, Phase::Runtime);
        // Line was not allocated, so a read now still misses.
        let o = c.access(0, AccessKind::Read, Phase::Runtime);
        assert!(!o.hit);
    }

    #[test]
    fn higher_associativity_removes_conflicts() {
        // Two addresses that conflict direct-mapped but fit 2-way.
        let mut dm = Cache::new(CacheConfig::new(32, 16, 1));
        let mut w2 = Cache::new(CacheConfig::new(32, 16, 2));
        for _ in 0..10 {
            for &a in &[0u64, 32u64] {
                dm.access(a, AccessKind::Read, Phase::Runtime);
                w2.access(a, AccessKind::Read, Phase::Runtime);
            }
        }
        assert!(w2.stats().misses() < dm.stats().misses());
        assert_eq!(w2.stats().misses(), 2); // compulsory only
    }

    #[test]
    fn region_attribution() {
        let mut c = tiny();
        c.access(
            jrt_trace::layout::HEAP_BASE,
            AccessKind::Read,
            Phase::Runtime,
        );
        c.access(
            jrt_trace::layout::STACK_BASE,
            AccessKind::Write,
            Phase::Runtime,
        );
        assert_eq!(c.region_stats(Region::Heap).reads, 1);
        assert_eq!(c.region_stats(Region::Stack).writes, 1);
        assert_eq!(c.region_stats(Region::CodeCache).refs(), 0);
    }

    #[test]
    fn flush_keeps_stats_but_invalidates() {
        let mut c = tiny();
        c.access(0, AccessKind::Read, Phase::Runtime);
        c.flush();
        let o = c.access(0, AccessKind::Read, Phase::Runtime);
        assert!(!o.hit);
        assert!(!o.compulsory, "seen-set survives flush");
        assert_eq!(c.stats().refs(), 2);
    }

    #[test]
    fn untouched_stats_rates_are_zero() {
        // Degenerate denominators must not produce NaN: an untouched
        // slice reports 0.0 for both derived rates.
        let s = CacheStats::default();
        assert_eq!(s.refs(), 0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.write_miss_fraction(), 0.0);
    }

    #[test]
    fn write_miss_fraction_with_zero_misses_is_zero() {
        let s = CacheStats {
            reads: 10,
            writes: 5,
            read_misses: 0,
            write_misses: 0,
            compulsory_misses: 0,
        };
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.write_miss_fraction(), 0.0);
        assert!(s.to_string().contains("misses=0"));
    }

    #[test]
    fn stats_merge() {
        let mut a = CacheStats {
            reads: 1,
            writes: 2,
            read_misses: 1,
            write_misses: 1,
            compulsory_misses: 2,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.refs(), 6);
        assert_eq!(a.misses(), 4);
    }
}
