//! Differential fuzzing driver.
//!
//! ```text
//! fuzz_run [--seed N|0xN] [--cases N] [--jobs N] [--out FILE]
//!          [--require-full-coverage] [--sabotage MODE]
//!          [--perf] [--perf-sabotage MODE]
//!          [--gc] [--gc-sabotage MODE:N]
//! ```
//!
//! Prints the deterministic coverage report (same bytes at any
//! `--jobs` count) and exits nonzero on any divergence, or — with
//! `--require-full-coverage` — when the opcode/transition map is not
//! fully exercised. `--perf` turns the performance oracle on: every
//! case also collects per-engine cost vectors under the one-pass cache
//! sweep, checks the cost-model invariants, appends per-engine cost
//! totals to the report, and exits nonzero on any violation.
//! `--perf-sabotage MODE` (implies `--perf`) corrupts that engine's
//! cost vector per case — the harness self-test. `--gc` runs the
//! matrix under the forcing tiny nursery instead (every engine
//! collecting, observables still compared); `--gc-sabotage MODE:N`
//! (implies `--gc`) drops that engine's `N`-th remembered-set
//! enrollment — a real injected collector bug the differential must
//! catch. `JRT_FUZZ_SEED` / `JRT_FUZZ_CASES` override the defaults;
//! explicit flags override the environment.

use jrt_fuzz::{fuzz, fuzz_gc, fuzz_perf, GcSabotage, PerfSabotage, Sabotage, MATRIX_LABELS};

fn parse_u64(s: &str) -> u64 {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("fuzz_run: not a number: {s}");
        std::process::exit(2);
    })
}

fn main() {
    let mut seed = 0x5EED_0001_u64;
    let mut cases = 256u64;
    let mut jobs = 1usize;
    let mut out: Option<String> = None;
    let mut require_full = false;
    let mut sabotage: Option<Sabotage> = None;
    let mut perf = false;
    let mut perf_sabotage: Option<PerfSabotage> = None;
    let mut gc = false;
    let mut gc_sabotage: Option<GcSabotage> = None;

    // Environment first; explicit flags below override it.
    (cases, seed) = jrt_testkit::effective_cases_seed(cases, seed);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("fuzz_run: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seed" => seed = parse_u64(&value("--seed")),
            "--cases" => cases = parse_u64(&value("--cases")),
            "--jobs" => jobs = parse_u64(&value("--jobs")) as usize,
            "--out" => out = Some(value("--out")),
            "--require-full-coverage" => require_full = true,
            "--sabotage" => {
                let mode = value("--sabotage");
                let Some(label) = MATRIX_LABELS.iter().find(|l| **l == mode) else {
                    eprintln!(
                        "fuzz_run: unknown mode {mode}; matrix: {}",
                        MATRIX_LABELS.join(" ")
                    );
                    std::process::exit(2);
                };
                sabotage = Some(Sabotage { mode: label });
            }
            "--perf" => perf = true,
            "--perf-sabotage" => {
                let mode = value("--perf-sabotage");
                let Some(label) = MATRIX_LABELS.iter().find(|l| **l == mode) else {
                    eprintln!(
                        "fuzz_run: unknown mode {mode}; matrix: {}",
                        MATRIX_LABELS.join(" ")
                    );
                    std::process::exit(2);
                };
                perf = true;
                perf_sabotage = Some(PerfSabotage { mode: label });
            }
            "--gc" => gc = true,
            "--gc-sabotage" => {
                let spec = value("--gc-sabotage");
                let Some((mode, n)) = spec.split_once(':') else {
                    eprintln!("fuzz_run: --gc-sabotage wants MODE:N (e.g. jit:0)");
                    std::process::exit(2);
                };
                let Some(label) = MATRIX_LABELS.iter().find(|l| **l == mode) else {
                    eprintln!(
                        "fuzz_run: unknown mode {mode}; matrix: {}",
                        MATRIX_LABELS.join(" ")
                    );
                    std::process::exit(2);
                };
                gc = true;
                gc_sabotage = Some(GcSabotage {
                    mode: label,
                    drop: parse_u64(n),
                });
            }
            other => {
                eprintln!("fuzz_run: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    if perf && sabotage.is_some() {
        eprintln!("fuzz_run: --sabotage and --perf are mutually exclusive");
        std::process::exit(2);
    }
    if gc && (perf || sabotage.is_some()) {
        eprintln!("fuzz_run: --gc excludes --perf and --sabotage");
        std::process::exit(2);
    }
    let report = if gc {
        fuzz_gc(seed, cases, jobs, gc_sabotage)
    } else if perf {
        fuzz_perf(seed, cases, jobs, perf_sabotage)
    } else {
        fuzz(seed, cases, jobs, sabotage)
    };
    let text = report.render(seed);
    print!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("fuzz_run: writing {path}: {e}");
            std::process::exit(2);
        }
    }
    if !report.divergences.is_empty() {
        eprintln!("fuzz_run: {} divergence(s)", report.divergences.len());
        std::process::exit(1);
    }
    if let Some(p) = &report.perf {
        if !p.violations.is_empty() {
            eprintln!("fuzz_run: {} perf violation(s)", p.violations.len());
            std::process::exit(1);
        }
    }
    if require_full && !report.coverage.is_full() {
        eprintln!(
            "fuzz_run: coverage incomplete; missing opcodes: {:?}; missing transitions: {:?}",
            report.coverage.uncovered_opcodes(),
            report.coverage.missing_transitions()
        );
        std::process::exit(1);
    }
}
