//! Differential fuzzing driver.
//!
//! ```text
//! fuzz_run [--seed N|0xN] [--cases N] [--jobs N] [--out FILE]
//!          [--require-full-coverage] [--sabotage MODE]
//! ```
//!
//! Prints the deterministic coverage report (same bytes at any
//! `--jobs` count) and exits nonzero on any divergence, or — with
//! `--require-full-coverage` — when the opcode/transition map is not
//! fully exercised. `JRT_FUZZ_SEED` / `JRT_FUZZ_CASES` override the
//! defaults; explicit flags override the environment.

use jrt_fuzz::{fuzz, Sabotage, MATRIX_LABELS};

fn parse_u64(s: &str) -> u64 {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("fuzz_run: not a number: {s}");
        std::process::exit(2);
    })
}

fn main() {
    let mut seed = 0x5EED_0001_u64;
    let mut cases = 256u64;
    let mut jobs = 1usize;
    let mut out: Option<String> = None;
    let mut require_full = false;
    let mut sabotage: Option<Sabotage> = None;

    // Environment first; explicit flags below override it.
    (cases, seed) = jrt_testkit::effective_cases_seed(cases, seed);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("fuzz_run: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seed" => seed = parse_u64(&value("--seed")),
            "--cases" => cases = parse_u64(&value("--cases")),
            "--jobs" => jobs = parse_u64(&value("--jobs")) as usize,
            "--out" => out = Some(value("--out")),
            "--require-full-coverage" => require_full = true,
            "--sabotage" => {
                let mode = value("--sabotage");
                let Some(label) = MATRIX_LABELS.iter().find(|l| **l == mode) else {
                    eprintln!(
                        "fuzz_run: unknown mode {mode}; matrix: {}",
                        MATRIX_LABELS.join(" ")
                    );
                    std::process::exit(2);
                };
                sabotage = Some(Sabotage { mode: label });
            }
            other => {
                eprintln!("fuzz_run: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let report = fuzz(seed, cases, jobs, sabotage);
    let text = report.render(seed);
    print!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("fuzz_run: writing {path}: {e}");
            std::process::exit(2);
        }
    }
    if !report.divergences.is_empty() {
        eprintln!("fuzz_run: {} divergence(s)", report.divergences.len());
        std::process::exit(1);
    }
    if require_full && !report.coverage.is_full() {
        eprintln!(
            "fuzz_run: coverage incomplete; missing opcodes: {:?}; missing transitions: {:?}",
            report.coverage.uncovered_opcodes(),
            report.coverage.missing_transitions()
        );
        std::process::exit(1);
    }
}
