//! The negative suite: one deterministic construction per
//! [`BytecodeError`] variant.
//!
//! Where the generator only ever produces *valid* programs (so the
//! differential oracle can demand identical observables), this module
//! walks the toolchain's rejection paths: hand-encoded byte streams
//! for decode errors, hand-built [`MethodDef`]s for dataflow errors,
//! and whole mis-linked programs for resolution errors. Every variant
//! is *asserted*, not sampled — [`exercise`] panics if any path
//! produces the wrong error.

use crate::coverage::Coverage;
use jrt_bytecode::verify::verify_method;
use jrt_bytecode::{
    BytecodeError, ClassAsm, ConstPool, MethodAsm, MethodDef, MethodFlags, Program, RetKind,
};
use std::sync::Mutex;

/// All 13 error-path names, in declaration order.
pub const VARIANTS: [&str; 13] = [
    "Truncated",
    "BadOpcode",
    "BadCond",
    "BadArrayKind",
    "BadConstant",
    "BadBranchTarget",
    "BadStack",
    "BadLocal",
    "FallsOffEnd",
    "BadReturn",
    "Unresolved",
    "DuplicateClass",
    "UnboundLabel",
];

/// Variant name of a [`BytecodeError`].
pub fn variant_name(e: &BytecodeError) -> &'static str {
    match e {
        BytecodeError::Truncated(_) => "Truncated",
        BytecodeError::BadOpcode { .. } => "BadOpcode",
        BytecodeError::BadCond(_) => "BadCond",
        BytecodeError::BadArrayKind(_) => "BadArrayKind",
        BytecodeError::BadConstant { .. } => "BadConstant",
        BytecodeError::BadBranchTarget { .. } => "BadBranchTarget",
        BytecodeError::BadStack { .. } => "BadStack",
        BytecodeError::BadLocal { .. } => "BadLocal",
        BytecodeError::FallsOffEnd => "FallsOffEnd",
        BytecodeError::BadReturn { .. } => "BadReturn",
        BytecodeError::Unresolved(_) => "Unresolved",
        BytecodeError::DuplicateClass(_) => "DuplicateClass",
        BytecodeError::UnboundLabel(_) => "UnboundLabel",
    }
}

/// A raw method definition for hand-encoded negative cases. The
/// assembler's `finish` is crate-private by design (it enforces the
/// invariants we are deliberately violating), so these are built
/// directly.
fn raw(code: Vec<u8>, max_locals: u16, ret: RetKind) -> MethodDef {
    MethodDef {
        name: "bad".to_owned(),
        nargs: 0,
        ret,
        max_locals,
        max_stack: 0,
        code,
        flags: MethodFlags {
            is_static: true,
            ..MethodFlags::default()
        },
    }
}

fn verify_raw(code: Vec<u8>, max_locals: u16, ret: RetKind) -> BytecodeError {
    verify_method(&raw(code, max_locals, ret), &ConstPool::new())
        .expect_err("negative case unexpectedly verified")
}

/// A trivially valid `main` for the link-level cases.
fn valid_main() -> MethodAsm {
    let mut m = MethodAsm::new("main", 0);
    m.ret();
    m
}

/// Serializes panic-hook swaps so parallel tests can run [`exercise`]
/// concurrently.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Runs the assembler with an unbound label and captures its panic
/// message (the one rejection that is an assembler invariant, not a
/// verifier result).
fn unbound_label_panic() -> String {
    let _guard = HOOK_LOCK.lock().unwrap();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(|| {
        let mut class = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        let dangling = m.new_label();
        m.goto(dangling).ret();
        class.add_method(m);
        let _ = Program::build(vec![class], "Main", "main");
    });
    std::panic::set_hook(prev);
    let payload = result.expect_err("unbound label did not panic");
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// Exercises every rejection path once, asserting the exact variant
/// each construction produces, and records them into `cov`. Returns
/// `(variant, rendered error)` pairs for reporting.
pub fn exercise(cov: &mut Coverage) -> Vec<(&'static str, String)> {
    let mut out: Vec<(&'static str, String)> = Vec::new();
    {
        let mut hit = |expected: &'static str, e: BytecodeError| {
            assert_eq!(
                variant_name(&e),
                expected,
                "negative case for {expected} produced: {e}"
            );
            out.push((expected, e.to_string()));
        };

        // iconst opcode with its 4 operand bytes missing.
        hit("Truncated", verify_raw(vec![1], 0, RetKind::Void));
        // 200 is not an opcode.
        hit("BadOpcode", verify_raw(vec![200], 0, RetKind::Void));
        // `if` with condition code 9 (valid codes are 0..=5).
        hit(
            "BadCond",
            verify_raw(vec![24, 9, 0, 0, 0, 0], 0, RetKind::Void),
        );
        // newarray with kind code 7 (valid kinds are 0..=3).
        hit("BadArrayKind", verify_raw(vec![37, 7], 0, RetKind::Void));
        // getstatic #5 against an empty constant pool.
        hit(
            "BadConstant",
            verify_raw(vec![35, 0, 5, 45], 0, RetKind::Int),
        );
        // goto into the middle of its own encoding (offset 2 is not an
        // instruction boundary).
        hit(
            "BadBranchTarget",
            verify_raw(vec![30, 0, 0, 0, 2], 0, RetKind::Void),
        );
        // iadd on an empty operand stack.
        hit("BadStack", verify_raw(vec![11, 44], 0, RetKind::Void));
        // iload of local 5 in a frame with zero locals.
        hit("BadLocal", verify_raw(vec![3, 5, 45], 0, RetKind::Int));
        // iconst; pop; then execution falls off the end of the code.
        hit(
            "FallsOffEnd",
            verify_raw(vec![1, 0, 0, 0, 7, 7], 0, RetKind::Void),
        );
        // ireturn from a method declared void.
        hit(
            "BadReturn",
            verify_raw(vec![1, 0, 0, 0, 7, 45], 0, RetKind::Void),
        );

        // Call into a class that does not exist.
        let mut class = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        m.invokestatic("Ghost", "m", 0, RetKind::Int).ireturn();
        class.add_method(m);
        hit(
            "Unresolved",
            Program::build(vec![class], "Main", "main")
                .expect_err("ghost call unexpectedly linked"),
        );

        // Two classes both named Main.
        let mut a = ClassAsm::new("Main");
        a.add_method(valid_main());
        let mut b = ClassAsm::new("Main");
        b.add_method(valid_main());
        hit(
            "DuplicateClass",
            Program::build(vec![a, b], "Main", "main")
                .expect_err("duplicate class unexpectedly linked"),
        );
    }

    // A label used but never bound: rejected by assembler panic.
    let msg = unbound_label_panic();
    assert!(
        msg.contains("used but never bound"),
        "unexpected unbound-label panic: {msg}"
    );
    out.push(("UnboundLabel", msg));

    assert_eq!(out.len(), VARIANTS.len());
    for (i, (got, _)) in out.iter().enumerate() {
        assert_eq!(*got, VARIANTS[i]);
        cov.record_verifier_error(got);
    }
    out
}
