//! Greedy spec shrinking: reduce a diverging program to a minimal
//! reproducer.
//!
//! Candidates only ever *remove or simplify* — drop a statement,
//! splice a compound statement's body in its place, replace an
//! expression with a literal, drop an override or a whole unreferenced
//! class — so every candidate preserves the generator's structural
//! invariants and still lowers/verifies. The greedy descent itself is
//! [`jrt_testkit::minimize`]; the failure predicate is "the matrix
//! still diverges" ([`crate::diff::spec_diverges`]).

use crate::diff::{spec_diverges, Sabotage};
use crate::spec::{Expr, MethodSpec, ProgramSpec, Resources, Stmt};

/// Shrinks `spec` while it keeps diverging; returns a local minimum.
pub fn shrink(spec: &ProgramSpec, sabotage: Option<&Sabotage>) -> ProgramSpec {
    jrt_testkit::minimize(spec.clone(), |s| spec_diverges(s, sabotage), candidates)
}

/// Applies `f` to method number `target` (canonical order) of a clone.
fn mutate(spec: &ProgramSpec, target: usize, f: impl FnOnce(&mut MethodSpec)) -> ProgramSpec {
    let mut s = spec.clone();
    let mut i = 0usize;
    let mut f = Some(f);
    s.for_each_method_mut(|m| {
        if i == target {
            if let Some(f) = f.take() {
                f(m);
            }
        }
        i += 1;
    });
    s
}

fn method_count(spec: &ProgramSpec) -> usize {
    let mut n = 0;
    spec.for_each_method(|_| n += 1);
    n
}

fn nth_body_len(spec: &ProgramSpec, target: usize) -> usize {
    let mut n = 0;
    let mut i = 0usize;
    spec.for_each_method(|m| {
        if i == target {
            n = m.body.len();
        }
        i += 1;
    });
    n
}

/// Replaces a compound statement with its spliced-in child bodies;
/// `None` for leaf statements.
fn flattened(s: &Stmt) -> Option<Vec<Stmt>> {
    match s {
        Stmt::If { then, els, .. } => {
            let mut v = then.clone();
            v.extend(els.iter().cloned());
            Some(v)
        }
        Stmt::Loop { body, .. } => Some(body.clone()),
        Stmt::Switch { arms, default, .. } => {
            let mut v: Vec<Stmt> = arms.iter().flatten().cloned().collect();
            v.extend(default.iter().cloned());
            Some(v)
        }
        Stmt::Locked(body) => Some(body.clone()),
        _ => None,
    }
}

/// Replaces the statement's own expressions with literals (bodies of
/// compound statements are left alone — flattening handles those).
/// Returns `false` when nothing would change.
fn simplify_stmt(s: &mut Stmt) -> bool {
    let one = Expr::Const(1);
    let simplify = |e: &mut Expr| {
        if matches!(e, Expr::Const(_)) {
            false
        } else {
            *e = one.clone();
            true
        }
    };
    match s {
        Stmt::StoreTemp(_, e)
        | Stmt::StoreStatic(_, e)
        | Stmt::StoreField(_, e)
        | Stmt::Print(e)
        | Stmt::PrintChar(e) => simplify(e),
        Stmt::StoreArr(_, idx, val) => {
            let a = simplify(idx);
            simplify(val) || a
        }
        Stmt::If { a, b, .. } => {
            let changed = simplify(a) || b.is_some();
            *b = None;
            changed
        }
        Stmt::Switch { key, .. } => simplify(key),
        Stmt::Loop { n, .. } => {
            let changed = *n > 1;
            *n = 1;
            changed
        }
        Stmt::RefOps { flag, .. } => simplify(flag),
        Stmt::Nop | Stmt::IncTemp(..) | Stmt::Locked(_) => false,
    }
}

fn expr_references_class(e: &Expr, class: u8) -> bool {
    let sub = |e: &Expr| expr_references_class(e, class);
    match e {
        Expr::Const(_)
        | Expr::Arg(_)
        | Expr::Temp(_)
        | Expr::GetStatic(_)
        | Expr::GetField(_)
        | Expr::ArrLen(_) => false,
        Expr::Bin(_, a, b) | Expr::RawDiv(a, b) | Expr::Shuffle(_, a, b) => sub(a) || sub(b),
        Expr::Neg(a) | Expr::ArrElem(_, a) | Expr::ArrElemRaw(a) => sub(a),
        Expr::CallStatic { class: c, args, .. } => *c == class || args.iter().any(sub),
        Expr::CallVirtual { arg, .. } => sub(arg),
        Expr::CallSpecial { class: c, arg, .. } => *c == class || sub(arg),
    }
}

fn stmt_references_class(s: &Stmt, class: u8) -> bool {
    let e = |e: &Expr| expr_references_class(e, class);
    let body = |b: &[Stmt]| b.iter().any(|s| stmt_references_class(s, class));
    match s {
        Stmt::Nop | Stmt::IncTemp(..) => false,
        Stmt::StoreTemp(_, x)
        | Stmt::StoreStatic(_, x)
        | Stmt::StoreField(_, x)
        | Stmt::Print(x)
        | Stmt::PrintChar(x) => e(x),
        Stmt::StoreArr(_, a, b) => e(a) || e(b),
        Stmt::If {
            a, b, then, els, ..
        } => e(a) || b.as_ref().is_some_and(e) || body(then) || body(els),
        Stmt::Loop { body: b, .. } => body(b),
        Stmt::Switch { key, arms, default } => {
            e(key) || arms.iter().any(|a| body(a)) || body(default)
        }
        Stmt::Locked(b) => body(b),
        Stmt::RefOps { flag, .. } => e(flag),
    }
}

fn spec_references_class(spec: &ProgramSpec, class: u8) -> bool {
    let mut found = false;
    spec.for_each_method(|m| {
        if m.res.obj_class == Some(class)
            || m.body.iter().any(|s| stmt_references_class(s, class))
            || expr_references_class(&m.ret, class)
        {
            found = true;
        }
    });
    found
}

/// All one-step shrink candidates of `spec`, biggest cuts first.
pub fn candidates(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();

    // Drop the last class when nothing refers to it.
    let last = (spec.classes.len() - 1) as u8;
    if last > 0 && !spec_references_class(spec, last) {
        let mut s = spec.clone();
        s.classes.pop();
        out.push(s);
    }

    // Drop subclass overrides (dispatch falls back to Main's impl).
    for (ci, c) in spec.classes.iter().enumerate().skip(1) {
        for (k, ov) in c.overrides.iter().enumerate() {
            if ov.is_some() {
                let mut s = spec.clone();
                s.classes[ci].overrides[k] = None;
                out.push(s);
            }
        }
    }

    let n_methods = method_count(spec);
    // Clear the resources of emptied methods: a body-less method with
    // a literal return can't touch its object/arrays, and dropping
    // `obj_class` unblocks whole-class removal.
    for mi in 0..n_methods {
        let unused = Resources {
            obj_class: None,
            int_arr: false,
            char_arr: false,
            byte_arr: false,
            ref_arr: false,
            ref_tmp: false,
        };
        let mut did = false;
        let cand = mutate(spec, mi, |m| {
            if m.body.is_empty() && matches!(m.ret, Expr::Const(_)) && m.res != unused {
                m.res = unused;
                did = true;
            }
        });
        if did {
            out.push(cand);
        }
    }
    // Remove single statements.
    for mi in 0..n_methods {
        for si in 0..nth_body_len(spec, mi) {
            out.push(mutate(spec, mi, |m| {
                m.body.remove(si);
            }));
        }
    }
    // Splice compound statements' bodies in their place.
    for mi in 0..n_methods {
        for si in 0..nth_body_len(spec, mi) {
            let mut did = false;
            let cand = mutate(spec, mi, |m| {
                if let Some(children) = flattened(&m.body[si]) {
                    m.body.splice(si..=si, children);
                    did = true;
                }
            });
            if did {
                out.push(cand);
            }
        }
    }
    // Literal-ize statement expressions; simplify returns.
    for mi in 0..n_methods {
        for si in 0..nth_body_len(spec, mi) {
            let mut did = false;
            let cand = mutate(spec, mi, |m| did = simplify_stmt(&mut m.body[si]));
            if did {
                out.push(cand);
            }
        }
        let mut did = false;
        let cand = mutate(spec, mi, |m| {
            if m.ret != Expr::Const(0) {
                m.ret = Expr::Const(0);
                did = true;
            }
        });
        if did {
            out.push(cand);
        }
        let mut did = false;
        let cand = mutate(spec, mi, |m| {
            if m.synchronized {
                m.synchronized = false;
                did = true;
            }
        });
        if did {
            out.push(cand);
        }
    }
    out
}
