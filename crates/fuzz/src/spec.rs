//! The generated-program representation.
//!
//! A [`ProgramSpec`] is a small AST that is **verifiable by
//! construction**: every spec the generator can produce lowers
//! (`lower` module) to a program that passes the bytecode verifier.
//! Runtime faults, on the other hand, are allowed — the generator
//! deliberately injects *unguarded* divisions, array indices, and
//! field accesses at a low rate, because `VmError`s are deterministic
//! (they name the method and bytecode pc) and therefore first-class
//! observables for the differential oracle.
//!
//! Structural safety invariants, maintained by the generator and
//! preserved by the shrinker:
//!
//! * **Acyclic call graph** — virtual slot `k` (every override of it)
//!   may only call virtual slots `< k`; static method `j` (in global
//!   declaration order) may call any virtual slot and statics `< j`;
//!   `main` may call anything. No recursion, bounded stack depth.
//! * **Bounded loops** — `Stmt::Loop` always counts a dedicated
//!   counter local from 0 to a literal bound; nesting is capped at
//!   [`MAX_LOOP_DEPTH`].
//! * **Closed class hierarchy** — class 0 (`Main`) declares all
//!   fields, statics, and all [`NUM_VSLOTS`] virtual methods; every
//!   further class extends `Main`, so field slots and vtable lookups
//!   always resolve.

use jrt_bytecode::{ArrayKind, Cond};

/// Instance fields declared by class 0 (`f0..`).
pub const NUM_FIELDS: u8 = 3;
/// Static fields declared by class 0 (`s0..`).
pub const NUM_STATICS: u8 = 4;
/// Scratch int locals per method (`t0..`), initialized in the prologue.
pub const NUM_TEMPS: u8 = 4;
/// Length of every generated value array; a power of two so indices
/// can be masked in range with a single `iand`.
pub const VALUE_ARR_LEN: i32 = 8;
/// Length of the generated reference array (also a power of two).
pub const REF_ARR_LEN: i32 = 4;
/// Maximum `Stmt::Loop` nesting depth.
pub const MAX_LOOP_DEPTH: u8 = 2;
/// Virtual-method slots (`v0..`) in the shared vtable rooted at class 0.
pub const NUM_VSLOTS: u8 = 2;

/// Binary int operators (`Div`/`Rem` lower with a `| 1` guard on the
/// divisor; the *unguarded* form is [`Expr::RawDiv`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Guarded divide.
    Div,
    /// Guarded remainder.
    Rem,
    /// Shift left (count masked to 5 bits by the VM).
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Logical shift right.
    Ushr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Operand-stack shuffle shapes; each lowers to a value-producing
/// instruction sequence exercising one shuffle opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleKind {
    /// `a dup iadd` — doubles `a`.
    Dup,
    /// `a b dup_x1 iadd ixor` — `b ^ (a + b)`.
    DupX1,
    /// `a b swap isub` — `b - a`.
    Swap,
    /// `a b pop` — discards `b`, yields `a`.
    Pop,
}

/// An int-valued expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal constant.
    Const(i32),
    /// Int argument `k` of the enclosing method.
    Arg(u8),
    /// Scratch temp `k`.
    Temp(u8),
    /// Binary operation (divisor guarded for `Div`/`Rem`).
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// **Unguarded** divide — fault injection; traps deterministically
    /// when the divisor evaluates to zero.
    RawDiv(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Stack-shuffle sequence.
    Shuffle(ShuffleKind, Box<Expr>, Box<Expr>),
    /// Static field `s{k}` of `Main`.
    GetStatic(u8),
    /// Instance field `f{k}` of the method's object.
    GetField(u8),
    /// Element of the method's value array of `kind`, index masked in
    /// range.
    ArrElem(ArrayKind, Box<Expr>),
    /// **Unguarded** int-array element — fault injection; traps when
    /// the index is out of bounds.
    ArrElemRaw(Box<Expr>),
    /// Length of the method's value array of `kind`.
    ArrLen(ArrayKind),
    /// Call static `m{method}` of class `class`.
    CallStatic {
        /// Callee class index.
        class: u8,
        /// Callee static-method index within the class.
        method: u8,
        /// Int arguments (length matches the callee's `nargs`).
        args: Vec<Expr>,
    },
    /// Call virtual slot `v{vslot}` on the method's object.
    CallVirtual {
        /// Vtable slot.
        vslot: u8,
        /// The single int argument every virtual method takes.
        arg: Box<Expr>,
    },
    /// Directly call class `class`'s implementation of `v{vslot}` on
    /// the method's object (no dispatch — `invokespecial`).
    CallSpecial {
        /// Implementation owner (resolution walks its ancestry).
        class: u8,
        /// Vtable slot.
        vslot: u8,
        /// The single int argument.
        arg: Box<Expr>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// No-op (also keeps shrinking honest: a body is never empty).
    Nop,
    /// `t{k} = e`.
    StoreTemp(u8, Expr),
    /// `t{k} += d` via `iinc`.
    IncTemp(u8, i16),
    /// `Main.s{k} = e`.
    StoreStatic(u8, Expr),
    /// `obj.f{k} = e`.
    StoreField(u8, Expr),
    /// `arr[idx & mask] = val` into the value array of `kind`.
    StoreArr(ArrayKind, Expr, Expr),
    /// `Sys.print_int(e)`.
    Print(Expr),
    /// `Sys.print_char(e)` (any int is printable — unmapped code
    /// points render as `'?'`, deterministically).
    PrintChar(Expr),
    /// Two-armed conditional.
    If {
        /// Comparison condition.
        cond: Cond,
        /// Left operand.
        a: Expr,
        /// Right operand: `Some` lowers to `if_icmp<cond>`, `None`
        /// compares `a` against zero with `if<cond>`.
        b: Option<Expr>,
        /// Taken-branch body.
        then: Vec<Stmt>,
        /// Fall-through body.
        els: Vec<Stmt>,
    },
    /// Bounded counted loop: `for c in 0..n { body }`.
    Loop {
        /// Literal iteration count (small by construction).
        n: u8,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `tableswitch` over `key & (arms.len()-1)`-style masked key.
    Switch {
        /// Switch key (masked in lowering to hit arms and default).
        key: Expr,
        /// Consecutive-key arms starting at 0.
        arms: Vec<Vec<Stmt>>,
        /// Default body.
        default: Vec<Stmt>,
    },
    /// `synchronized (obj) { body }` — monitorenter/exit around the
    /// body on the method's object.
    Locked(Vec<Stmt>),
    /// Composite reference-operations block: calls `Main::ref0` (which
    /// returns `this` or null depending on `flag`), stores the result
    /// in a reference temp, then exercises null tests, reference
    /// comparisons, and the reference array.
    RefOps {
        /// Argument to `ref0`; zero ⇒ null comes back.
        flag: Expr,
        /// Also compare the ref against the method's object
        /// (`if_acmpeq`/`if_acmpne`).
        use_acmp: bool,
        /// Also store/load the ref through the reference array.
        use_arr: bool,
        /// Selects `if_acmpeq` (true) vs `if_acmpne` (false).
        acmp_eq: bool,
        /// **Unguarded** `getfield` on the maybe-null ref — fault
        /// injection; NPEs deterministically when `flag` is zero.
        unchecked_field: bool,
        /// Reference-array index seed (masked in range).
        arr_idx: u8,
    },
}

/// Per-method resource requirements: which locals the prologue must
/// materialize before the body runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Resources {
    /// For static methods: allocate a fresh instance of this class
    /// into the object local. Instance methods use `this` and leave
    /// this `None`.
    pub obj_class: Option<u8>,
    /// Allocate the int value array.
    pub int_arr: bool,
    /// Allocate the char value array.
    pub char_arr: bool,
    /// Allocate the byte value array.
    pub byte_arr: bool,
    /// Allocate the reference array.
    pub ref_arr: bool,
    /// Reserve the reference temp local (needed by any `RefOps`).
    pub ref_tmp: bool,
}

/// One generated method body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Int arguments (0–2 for statics; virtual methods always take 1).
    pub nargs: u8,
    /// Prologue resources.
    pub res: Resources,
    /// Initial values of the scratch temps.
    pub temp_init: [i32; NUM_TEMPS as usize],
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Return expression.
    pub ret: Expr,
    /// Declare the method `synchronized`.
    pub synchronized: bool,
}

/// One generated class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// Virtual-slot implementations: class 0 must fill every slot;
    /// subclasses override a subset (`None` = inherit).
    pub overrides: Vec<Option<MethodSpec>>,
    /// Static methods `m0..`.
    pub statics: Vec<MethodSpec>,
}

/// A whole generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// `classes[0]` is `Main`; the rest extend it.
    pub classes: Vec<ClassSpec>,
    /// The static entry method (`Main::main`, no args, returns int).
    pub main: MethodSpec,
}

impl ProgramSpec {
    /// Visits every method spec (entry, overrides, statics) in a
    /// canonical order.
    pub fn for_each_method(&self, mut f: impl FnMut(&MethodSpec)) {
        f(&self.main);
        for c in &self.classes {
            for m in c.overrides.iter().flatten() {
                f(m);
            }
            for m in &c.statics {
                f(m);
            }
        }
    }

    /// Mutable canonical-order visit of every method spec.
    pub fn for_each_method_mut(&mut self, mut f: impl FnMut(&mut MethodSpec)) {
        f(&mut self.main);
        for c in &mut self.classes {
            for m in c.overrides.iter_mut().flatten() {
                f(m);
            }
            for m in &mut c.statics {
                f(m);
            }
        }
    }

    /// Total statement count across all bodies (the shrinker's size
    /// metric).
    pub fn size(&self) -> usize {
        fn stmts(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| {
                    1 + match s {
                        Stmt::If { then, els, .. } => stmts(then) + stmts(els),
                        Stmt::Loop { body, .. } => stmts(body),
                        Stmt::Switch { arms, default, .. } => {
                            arms.iter().map(|a| stmts(a)).sum::<usize>() + stmts(default)
                        }
                        Stmt::Locked(body) => stmts(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        let mut n = 0;
        self.for_each_method(|m| n += stmts(&m.body));
        n
    }
}
