//! The differential executor: one generated program through every
//! engine configuration, observables compared against the
//! interpreter.
//!
//! The matrix spans the paper's engine space: pure interpretation
//! (with and without picoJava-style folding), translate-on-first-
//! invocation JIT, a threshold policy, the tiered policy, the
//! bounded code cache at a pathological capacity under each eviction
//! policy — the configurations where eviction demotes running frames
//! mid-flight and re-translation churns, which is exactly where a
//! semantic bug would hide — plus the register-IR tier: the IR
//! interpreter, the IR-backed JIT, and the IR-backed JIT under the
//! pathological bounded cache (lowering + translation + eviction all
//! interacting).

use crate::coverage::Coverage;
use crate::lower;
use crate::spec::ProgramSpec;
use jrt_bytecode::Program;
use jrt_trace::NullSink;
use jrt_vm::{
    CodeCacheConfig, EvictionPolicy, ExecMode, GcConfig, JitPolicy, ObservedRun, Vm, VmConfig,
};

/// Pathological code-cache capacity in bytes — small enough that a
/// handful of translated methods already evict each other (mirrors
/// the capacity-sweep knee in the codecache study).
pub const PATHOLOGICAL_CAPACITY: u64 = 384;

/// Per-case bytecode budget: runaway programs end in the same
/// deterministic `BudgetExceeded` on every engine.
pub const CASE_BUDGET: u64 = 150_000;

/// Matrix labels in execution order; index 0 is the reference engine.
pub const MATRIX_LABELS: [&str; 11] = [
    "interp",
    "interp-fold",
    "jit",
    "thresh",
    "tiered",
    "cc-lru",
    "cc-swlru",
    "cc-hot",
    "ir-interp",
    "ir-jit",
    "ir-cc",
];

/// Builds the engine matrix. All configs share the same bytecode
/// budget so nonterminating cases stay comparable.
pub fn engine_configs() -> Vec<(&'static str, VmConfig)> {
    let base = |mode: ExecMode| VmConfig {
        mode,
        max_bytecodes: CASE_BUDGET,
        ..VmConfig::default()
    };
    let bounded = |policy: EvictionPolicy| {
        let mut cfg = base(ExecMode::Jit(JitPolicy::FirstInvocation));
        cfg.code_cache = CodeCacheConfig::bounded(PATHOLOGICAL_CAPACITY, policy);
        cfg
    };
    vec![
        ("interp", base(ExecMode::Interp)),
        ("interp-fold", {
            let mut c = base(ExecMode::Interp);
            c.folding = true;
            c
        }),
        ("jit", base(ExecMode::Jit(JitPolicy::FirstInvocation))),
        ("thresh", base(ExecMode::Jit(JitPolicy::Threshold(2)))),
        (
            "tiered",
            base(ExecMode::Jit(JitPolicy::Tiered { t1: 1, t2: 4 })),
        ),
        ("cc-lru", bounded(EvictionPolicy::Lru)),
        ("cc-swlru", bounded(EvictionPolicy::SizeWeightedLru)),
        ("cc-hot", bounded(EvictionPolicy::HotnessDecay)),
        ("ir-interp", base(ExecMode::IrInterp)),
        ("ir-jit", base(ExecMode::IrJit(JitPolicy::FirstInvocation))),
        ("ir-cc", {
            // The IR translator installs denser code, so the bounded
            // cache only churns at a proportionally smaller capacity.
            let mut cfg = base(ExecMode::IrJit(JitPolicy::FirstInvocation));
            cfg.code_cache =
                CodeCacheConfig::bounded(PATHOLOGICAL_CAPACITY * 3 / 4, EvictionPolicy::Lru);
            cfg
        }),
    ]
}

/// The same engine matrix under the forcing tiny nursery
/// ([`GcConfig::tiny_nursery`]): every engine runs the generational
/// collector with collections every couple of KiB of allocation, so
/// each engine interleaves minor/major collections at *different*
/// allocation-driven points — and the observables must still all
/// match the interpreter's. Same labels as [`MATRIX_LABELS`], so
/// coverage and reports stay comparable.
pub fn engine_configs_gc() -> Vec<(&'static str, VmConfig)> {
    engine_configs()
        .into_iter()
        .map(|(label, cfg)| (label, cfg.with_gc(GcConfig::tiny_nursery())))
        .collect()
}

/// A harness self-test hook: corrupt the named engine's observables
/// after its run, proving the oracle detects a seeded divergence.
#[derive(Debug, Clone, Copy)]
pub struct Sabotage {
    /// Matrix label whose result gets corrupted.
    pub mode: &'static str,
}

/// The GC-matrix self-test hook: a *real* seeded collector bug, not a
/// result corruption. The named engine's VM silently drops its
/// `drop`-th remembered-set enrollment
/// ([`jrt_vm::VmConfig::gc_sabotage_drop_barrier`]), so a minor
/// collection can reclaim a live nursery object — the differential
/// must surface that as an observable divergence against the
/// (unsabotaged) interpreter reference.
#[derive(Debug, Clone, Copy)]
pub struct GcSabotage {
    /// Matrix label whose VM loses a write barrier.
    pub mode: &'static str,
    /// Which remembered-set enrollment (0-based) to drop.
    pub drop: u64,
}

/// The full differential result of one case.
#[derive(Debug)]
pub struct CaseResult {
    /// Every engine's observed run, in matrix order.
    pub observed: Vec<(&'static str, ObservedRun)>,
    /// Labels whose observables differ from the interpreter's.
    pub divergent: Vec<&'static str>,
}

impl CaseResult {
    /// Reference (interpreter) run.
    pub fn reference(&self) -> &ObservedRun {
        &self.observed[0].1
    }
}

/// Runs `program` through the whole matrix and compares observables.
pub fn run_case(program: &Program, sabotage: Option<&Sabotage>) -> CaseResult {
    let mut observed = Vec::new();
    for (label, cfg) in engine_configs() {
        let mut sink = NullSink;
        let mut run = Vm::new(program, cfg).run_observed(&mut sink);
        if let Some(s) = sabotage {
            if s.mode == label {
                // Corrupt the exit value (or fabricate one on error):
                // the smallest possible observable lie.
                run.observables.outcome = match run.observables.outcome {
                    Ok(v) => Ok(Some(v.unwrap_or(0) ^ 1)),
                    Err(_) => Ok(Some(0)),
                };
            }
        }
        observed.push((label, run));
    }
    let reference = observed[0].1.observables.clone();
    let divergent = observed
        .iter()
        .skip(1)
        .filter(|(_, run)| run.observables != reference)
        .map(|(label, _)| *label)
        .collect();
    CaseResult {
        observed,
        divergent,
    }
}

/// Whether `spec` still diverges under the matrix (the shrinker's
/// failure predicate). Specs that no longer lower/verify don't count.
pub fn spec_diverges(spec: &ProgramSpec, sabotage: Option<&Sabotage>) -> bool {
    match lower::lower(spec) {
        Ok(program) => !run_case(&program, sabotage).divergent.is_empty(),
        Err(_) => false,
    }
}

/// Runs `program` through the GC matrix ([`engine_configs_gc`]) and
/// compares observables, optionally dropping one write barrier on one
/// engine ([`GcSabotage`]). A dropped barrier is a real VM fault
/// injected *before* the run, so whether it diverges depends on
/// whether a minor collection actually exploits the missing
/// remembered-set entry — exactly the property the must-fail CI job
/// pins down with a known-diverging `(seed, case, drop)`.
pub fn run_case_gc(program: &Program, sabotage: Option<&GcSabotage>) -> CaseResult {
    let mut observed = Vec::new();
    for (label, mut cfg) in engine_configs_gc() {
        if let Some(s) = sabotage {
            if s.mode == label {
                cfg.gc_sabotage_drop_barrier = Some(s.drop);
            }
        }
        let mut sink = NullSink;
        let run = Vm::new(program, cfg).run_observed(&mut sink);
        observed.push((label, run));
    }
    let reference = observed[0].1.observables.clone();
    let divergent = observed
        .iter()
        .skip(1)
        .filter(|(_, run)| run.observables != reference)
        .map(|(label, _)| *label)
        .collect();
    CaseResult {
        observed,
        divergent,
    }
}

/// Whether `spec` still diverges under the GC matrix (the GC
/// shrinker's failure predicate).
pub fn spec_diverges_gc(spec: &ProgramSpec, sabotage: Option<&GcSabotage>) -> bool {
    match lower::lower(spec) {
        Ok(program) => !run_case_gc(&program, sabotage).divergent.is_empty(),
        Err(_) => false,
    }
}

/// Folds one case's results into the coverage map.
pub fn record_case(cov: &mut Coverage, cr: &CaseResult) {
    cov.cases += 1;
    cov.record_opcodes(&cr.reference().observables.opcode_counts);
    if cr.reference().observables.outcome.is_err() {
        cov.error_outcomes += 1;
    }
    for (label, run) in &cr.observed {
        cov.record_transitions(label, &run.counters);
    }
    cov.divergences += cr.divergent.len() as u64;
}
