//! Lowers a [`ProgramSpec`] to assembled classes and a verified
//! [`Program`].
//!
//! Lowering is deterministic (same spec ⇒ byte-identical classes) and
//! total for generator-produced specs: every structural invariant the
//! generator maintains (see the `spec` module docs) is exactly what
//! makes the emitted bytecode pass the verifier. A lowering or
//! verification failure on a generated spec is therefore itself a
//! fuzzing *finding* — the harness reports it like a divergence.

use crate::spec::{
    BinOp, Expr, MethodSpec, ProgramSpec, ShuffleKind, Stmt, MAX_LOOP_DEPTH, NUM_TEMPS,
    REF_ARR_LEN, VALUE_ARR_LEN,
};
use jrt_bytecode::{ArrayKind, BytecodeError, ClassAsm, Cond, MethodAsm, Program, RetKind};

/// Name of generated class `i` (`Main`, `C1`, `C2`, …).
pub fn class_name(i: u8) -> String {
    if i == 0 {
        "Main".to_owned()
    } else {
        format!("C{i}")
    }
}

/// Local-slot map of one method being lowered.
struct Frame {
    /// Slot holding the method's object (`this`, or a fresh instance
    /// for static methods that need one).
    obj_slot: Option<u8>,
    /// Pool class name for virtual calls on the object.
    obj_class: Option<String>,
    int_arr: Option<u8>,
    char_arr: Option<u8>,
    byte_arr: Option<u8>,
    ref_arr: Option<u8>,
    ref_tmp: Option<u8>,
    temp_base: u8,
    loop_base: u8,
    arg_base: u8,
}

impl Frame {
    fn obj(&self) -> u8 {
        self.obj_slot.expect("spec uses an object the method lacks")
    }

    fn arr(&self, kind: ArrayKind) -> u8 {
        match kind {
            ArrayKind::Int => self.int_arr,
            ArrayKind::Char => self.char_arr,
            ArrayKind::Byte => self.byte_arr,
            ArrayKind::Ref => self.ref_arr,
        }
        .expect("spec uses an array the method lacks")
    }
}

/// Lowers one method spec into assembly.
fn lower_method(name: &str, class_idx: u8, is_instance: bool, ms: &MethodSpec) -> MethodAsm {
    let mut m = if is_instance {
        MethodAsm::new_instance(name, ms.nargs)
    } else {
        MethodAsm::new(name, ms.nargs)
    }
    .returns(RetKind::Int);
    if ms.synchronized {
        m = m.synchronized();
    }

    // Slot layout: [this?] args | obj? | arrays… | ref_tmp? | temps | loop counters.
    let arg_base = u8::from(is_instance);
    let mut cursor = arg_base + ms.nargs;
    let mut alloc = |flag: bool| {
        flag.then(|| {
            cursor += 1;
            cursor - 1
        })
    };
    let obj_slot = if is_instance {
        Some(0)
    } else {
        alloc(ms.res.obj_class.is_some())
    };
    let int_arr = alloc(ms.res.int_arr);
    let char_arr = alloc(ms.res.char_arr);
    let byte_arr = alloc(ms.res.byte_arr);
    let ref_arr = alloc(ms.res.ref_arr);
    let ref_tmp = alloc(ms.res.ref_tmp);
    let temp_base = cursor;
    let loop_base = temp_base + NUM_TEMPS;
    let f = Frame {
        obj_slot,
        obj_class: if is_instance {
            Some(class_name(class_idx))
        } else {
            ms.res.obj_class.map(class_name)
        },
        int_arr,
        char_arr,
        byte_arr,
        ref_arr,
        ref_tmp,
        temp_base,
        loop_base,
        arg_base,
    };

    // Prologue: materialize resources and temps.
    if !is_instance {
        if let (Some(slot), Some(cls)) = (f.obj_slot, &f.obj_class) {
            m.new_obj(cls).astore(slot);
        }
    }
    for (kind, slot) in [
        (ArrayKind::Int, f.int_arr),
        (ArrayKind::Char, f.char_arr),
        (ArrayKind::Byte, f.byte_arr),
    ] {
        if let Some(slot) = slot {
            m.iconst(VALUE_ARR_LEN).newarray(kind).astore(slot);
        }
    }
    if let Some(slot) = f.ref_arr {
        m.iconst(REF_ARR_LEN).newarray(ArrayKind::Ref).astore(slot);
    }
    if name == "main" {
        // The only void call site: keeps the `return` opcode (and a
        // void invocation record) in every case's footprint.
        m.invokestatic("Main", "tick", 0, RetKind::Void);
    }
    if let Some(slot) = f.ref_tmp {
        m.aconst_null().astore(slot);
    }
    for (k, v) in ms.temp_init.iter().enumerate() {
        m.iconst(*v).istore(f.temp_base + k as u8);
    }

    emit_body(&mut m, &f, &ms.body, 0);
    emit_expr(&mut m, &f, &ms.ret);
    m.ireturn();
    m
}

fn emit_body(m: &mut MethodAsm, f: &Frame, body: &[Stmt], loop_depth: u8) {
    for s in body {
        emit_stmt(m, f, s, loop_depth);
    }
}

fn emit_stmt(m: &mut MethodAsm, f: &Frame, s: &Stmt, loop_depth: u8) {
    match s {
        Stmt::Nop => {
            m.op(jrt_bytecode::Op::Nop);
        }
        Stmt::StoreTemp(k, e) => {
            emit_expr(m, f, e);
            m.istore(f.temp_base + k);
        }
        Stmt::IncTemp(k, d) => {
            m.iinc(f.temp_base + k, *d);
        }
        Stmt::StoreStatic(k, e) => {
            emit_expr(m, f, e);
            m.putstatic("Main", &format!("s{k}"));
        }
        Stmt::StoreField(k, e) => {
            m.aload(f.obj());
            emit_expr(m, f, e);
            m.putfield("Main", &format!("f{k}"));
        }
        Stmt::StoreArr(kind, idx, val) => {
            m.aload(f.arr(*kind));
            emit_expr(m, f, idx);
            m.iconst(VALUE_ARR_LEN - 1).iand();
            emit_expr(m, f, val);
            arr_store(m, *kind);
        }
        Stmt::Print(e) => {
            emit_expr(m, f, e);
            m.invokestatic("Sys", "print_int", 1, RetKind::Void);
        }
        Stmt::PrintChar(e) => {
            emit_expr(m, f, e);
            m.invokestatic("Sys", "print_char", 1, RetKind::Void);
        }
        Stmt::If {
            cond,
            a,
            b,
            then,
            els,
        } => {
            let l_then = m.new_label();
            let l_end = m.new_label();
            emit_expr(m, f, a);
            match b {
                Some(b) => {
                    emit_expr(m, f, b);
                    branch_icmp(m, *cond, l_then);
                }
                None => branch_if(m, *cond, l_then),
            }
            emit_body(m, f, els, loop_depth);
            m.goto(l_end);
            m.bind(l_then);
            emit_body(m, f, then, loop_depth);
            m.bind(l_end);
        }
        Stmt::Loop { n, body } => {
            assert!(loop_depth < MAX_LOOP_DEPTH, "loop nesting exceeds bound");
            let c = f.loop_base + loop_depth;
            let l_head = m.new_label();
            let l_end = m.new_label();
            m.iconst(0).istore(c);
            m.bind(l_head);
            m.iload(c).iconst(i32::from(*n)).if_icmp_ge(l_end);
            emit_body(m, f, body, loop_depth + 1);
            m.iinc(c, 1).goto(l_head);
            m.bind(l_end);
        }
        Stmt::Switch { key, arms, default } => {
            let l_end = m.new_label();
            let l_default = m.new_label();
            let arm_labels: Vec<_> = arms.iter().map(|_| m.new_label()).collect();
            emit_expr(m, f, key);
            // Mask the key into a small non-negative range so both the
            // arms and (when arms < the mask range) the default are
            // reachable.
            m.iconst(VALUE_ARR_LEN - 1).iand();
            m.tableswitch(0, l_default, &arm_labels);
            for (l, arm) in arm_labels.iter().zip(arms) {
                m.bind(*l);
                emit_body(m, f, arm, loop_depth);
                m.goto(l_end);
            }
            m.bind(l_default);
            emit_body(m, f, default, loop_depth);
            m.bind(l_end);
        }
        Stmt::Locked(body) => {
            m.aload(f.obj()).monitorenter();
            emit_body(m, f, body, loop_depth);
            m.aload(f.obj()).monitorexit();
        }
        Stmt::RefOps {
            flag,
            use_acmp,
            use_arr,
            acmp_eq,
            unchecked_field,
            arr_idx,
        } => emit_ref_ops(
            m,
            f,
            flag,
            *use_acmp,
            *use_arr,
            *acmp_eq,
            *unchecked_field,
            *arr_idx,
        ),
    }
}

/// The composite reference block; see [`Stmt::RefOps`].
#[allow(clippy::too_many_arguments)]
fn emit_ref_ops(
    m: &mut MethodAsm,
    f: &Frame,
    flag: &Expr,
    use_acmp: bool,
    use_arr: bool,
    acmp_eq: bool,
    unchecked_field: bool,
    arr_idx: u8,
) {
    let obj = f.obj();
    let cls = f.obj_class.clone().expect("RefOps requires an object");
    let rtmp = f.ref_tmp.expect("RefOps requires the ref temp");

    // r = obj.ref0(flag)  — null when flag == 0.
    m.aload(obj);
    emit_expr(m, f, flag);
    m.invokevirtual(&cls, "ref0", 1, RetKind::Ref).astore(rtmp);

    if unchecked_field {
        // Fault injection: NPE (deterministically) when r is null.
        m.aload(rtmp).getfield("Main", "f1").istore(f.temp_base);
    } else {
        let l_null = m.new_label();
        let l_end = m.new_label();
        m.aload(rtmp).ifnull(l_null);
        m.aload(rtmp)
            .getfield("Main", "f0")
            .istore(f.temp_base)
            .goto(l_end);
        m.bind(l_null);
        m.iconst(7).istore(f.temp_base);
        m.bind(l_end);
    }

    if use_acmp {
        let l_taken = m.new_label();
        let l_end = m.new_label();
        m.aload(rtmp).aload(obj);
        if acmp_eq {
            m.if_acmp_eq(l_taken);
        } else {
            m.if_acmp_ne(l_taken);
        }
        m.iinc(f.temp_base + 1, 1).goto(l_end);
        m.bind(l_taken);
        m.iinc(f.temp_base + 1, -1);
        m.bind(l_end);
    }

    if use_arr {
        let arr = f.arr(ArrayKind::Ref);
        let mask = REF_ARR_LEN - 1;
        m.aload(arr)
            .iconst(i32::from(arr_idx) & mask)
            .aload(rtmp)
            .aastore();
        let l_skip = m.new_label();
        m.aload(arr)
            .iconst((i32::from(arr_idx) + 1) & mask)
            .aaload()
            .ifnonnull(l_skip);
        m.iinc(f.temp_base + 2, 3);
        m.bind(l_skip);
    }
}

fn emit_expr(m: &mut MethodAsm, f: &Frame, e: &Expr) {
    match e {
        Expr::Const(v) => {
            m.iconst(*v);
        }
        Expr::Arg(k) => {
            m.iload(f.arg_base + k);
        }
        Expr::Temp(k) => {
            m.iload(f.temp_base + k);
        }
        Expr::Bin(op, a, b) => {
            emit_expr(m, f, a);
            emit_expr(m, f, b);
            if matches!(op, BinOp::Div | BinOp::Rem) {
                // Guard: divisor | 1 is never zero.
                m.iconst(1).ior();
            }
            match op {
                BinOp::Add => m.iadd(),
                BinOp::Sub => m.isub(),
                BinOp::Mul => m.imul(),
                BinOp::Div => m.idiv(),
                BinOp::Rem => m.irem(),
                BinOp::Shl => m.ishl(),
                BinOp::Shr => m.ishr(),
                BinOp::Ushr => m.iushr(),
                BinOp::And => m.iand(),
                BinOp::Or => m.ior(),
                BinOp::Xor => m.ixor(),
            };
        }
        Expr::RawDiv(a, b) => {
            emit_expr(m, f, a);
            emit_expr(m, f, b);
            m.idiv();
        }
        Expr::Neg(a) => {
            emit_expr(m, f, a);
            m.ineg();
        }
        Expr::Shuffle(kind, a, b) => {
            match kind {
                ShuffleKind::Dup => {
                    emit_expr(m, f, a);
                    m.dup().iadd();
                }
                ShuffleKind::DupX1 => {
                    emit_expr(m, f, a);
                    emit_expr(m, f, b);
                    m.dup_x1().iadd().ixor();
                }
                ShuffleKind::Swap => {
                    emit_expr(m, f, a);
                    emit_expr(m, f, b);
                    m.swap().isub();
                }
                ShuffleKind::Pop => {
                    emit_expr(m, f, a);
                    emit_expr(m, f, b);
                    m.pop();
                }
            };
        }
        Expr::GetStatic(k) => {
            m.getstatic("Main", &format!("s{k}"));
        }
        Expr::GetField(k) => {
            m.aload(f.obj()).getfield("Main", &format!("f{k}"));
        }
        Expr::ArrElem(kind, idx) => {
            m.aload(f.arr(*kind));
            emit_expr(m, f, idx);
            m.iconst(VALUE_ARR_LEN - 1).iand();
            arr_load(m, *kind);
        }
        Expr::ArrElemRaw(idx) => {
            m.aload(f.arr(ArrayKind::Int));
            emit_expr(m, f, idx);
            m.iaload();
        }
        Expr::ArrLen(kind) => {
            m.aload(f.arr(*kind)).arraylength();
        }
        Expr::CallStatic {
            class,
            method,
            args,
        } => {
            for a in args {
                emit_expr(m, f, a);
            }
            m.invokestatic(
                &class_name(*class),
                &format!("m{method}"),
                args.len() as u8,
                RetKind::Int,
            );
        }
        Expr::CallVirtual { vslot, arg } => {
            let cls = f.obj_class.clone().expect("virtual call needs an object");
            m.aload(f.obj());
            emit_expr(m, f, arg);
            m.invokevirtual(&cls, &format!("v{vslot}"), 1, RetKind::Int);
        }
        Expr::CallSpecial { class, vslot, arg } => {
            m.aload(f.obj());
            emit_expr(m, f, arg);
            m.invokespecial(&class_name(*class), &format!("v{vslot}"), 1, RetKind::Int);
        }
    }
}

fn arr_load(m: &mut MethodAsm, kind: ArrayKind) {
    match kind {
        ArrayKind::Int => m.iaload(),
        ArrayKind::Char => m.caload(),
        ArrayKind::Byte => m.baload(),
        ArrayKind::Ref => unreachable!("value-array op on Ref"),
    };
}

fn arr_store(m: &mut MethodAsm, kind: ArrayKind) {
    match kind {
        ArrayKind::Int => m.iastore(),
        ArrayKind::Char => m.castore(),
        ArrayKind::Byte => m.bastore(),
        ArrayKind::Ref => unreachable!("value-array op on Ref"),
    };
}

/// `if<cond>` with a dynamically chosen condition.
fn branch_if(m: &mut MethodAsm, cond: Cond, l: jrt_bytecode::Label) {
    match cond {
        Cond::Eq => m.if_eq(l),
        Cond::Ne => m.if_ne(l),
        Cond::Lt => m.if_lt(l),
        Cond::Ge => m.if_ge(l),
        Cond::Gt => m.if_gt(l),
        Cond::Le => m.if_le(l),
    };
}

/// `if_icmp<cond>` with a dynamically chosen condition.
fn branch_icmp(m: &mut MethodAsm, cond: Cond, l: jrt_bytecode::Label) {
    match cond {
        Cond::Eq => m.if_icmp_eq(l),
        Cond::Ne => m.if_icmp_ne(l),
        Cond::Lt => m.if_icmp_lt(l),
        Cond::Ge => m.if_icmp_ge(l),
        Cond::Gt => m.if_icmp_gt(l),
        Cond::Le => m.if_icmp_le(l),
    };
}

/// `Main::ref0(flag)` — returns `this` when `flag != 0`, else null.
/// Fixed body; the only generated method returning a reference.
fn ref0_method() -> MethodAsm {
    let mut m = MethodAsm::new_instance("ref0", 1).returns(RetKind::Ref);
    let l_null = m.new_label();
    m.iload(1).if_eq(l_null);
    m.aload(0).areturn();
    m.bind(l_null);
    m.aconst_null().areturn();
    m
}

/// `Main::tick()` — static void: bumps static `s0`. The one method
/// whose bytecode executes the void `return` opcode.
fn tick_method() -> MethodAsm {
    let mut m = MethodAsm::new("tick", 0);
    m.getstatic("Main", "s0")
        .iconst(1)
        .iadd()
        .putstatic("Main", "s0");
    m.ret();
    m
}

/// Lowers the spec to assembled classes (Sys intrinsics included).
pub fn lower_classes(spec: &ProgramSpec) -> Vec<ClassAsm> {
    let mut sys = ClassAsm::new("Sys");
    sys.add_method(MethodAsm::native("print_int", 1, RetKind::Void));
    sys.add_method(MethodAsm::native("print_char", 1, RetKind::Void));
    let mut classes = vec![sys];

    for (i, cs) in spec.classes.iter().enumerate() {
        let i = i as u8;
        let mut c = if i == 0 {
            ClassAsm::new("Main")
        } else {
            ClassAsm::with_super(&class_name(i), "Main")
        };
        if i == 0 {
            for k in 0..crate::spec::NUM_FIELDS {
                c.add_field(&format!("f{k}"));
            }
            for k in 0..crate::spec::NUM_STATICS {
                c.add_static_field(&format!("s{k}"));
            }
            c.add_method(ref0_method());
            c.add_method(tick_method());
        }
        for (k, ov) in cs.overrides.iter().enumerate() {
            if let Some(ms) = ov {
                c.add_method(lower_method(&format!("v{k}"), i, true, ms));
            } else {
                assert!(i != 0, "class 0 must implement every virtual slot");
            }
        }
        for (j, ms) in cs.statics.iter().enumerate() {
            c.add_method(lower_method(&format!("m{j}"), i, false, ms));
        }
        if i == 0 {
            c.add_method(lower_method("main", 0, false, &spec.main));
        }
        classes.push(c);
    }
    classes
}

/// Lowers and links the spec into a verified [`Program`].
///
/// # Errors
///
/// Propagates any [`BytecodeError`] from linking/verification. For
/// generator-produced specs this never fires; the differential driver
/// treats a failure as a finding.
pub fn lower(spec: &ProgramSpec) -> Result<Program, BytecodeError> {
    Program::build(lower_classes(spec), "Main", "main")
}
