//! The coverage map: which opcodes, verifier error paths, and
//! codecache/tier transitions the fuzzing run has exercised.
//!
//! Coverage does double duty: it *guides* generation (the generator
//! boosts the weight of program features mapped to still-uncovered
//! opcodes) and it *gates* the run (the smoke test and the CI job
//! require the full map). The rendered report is deterministic — a
//! plain sorted text block — so CI can diff it across `--jobs`
//! counts.

use jrt_bytecode::Op;
use jrt_vm::VmCounters;
use std::collections::BTreeMap;

/// Mnemonics indexed by [`Op::dispatch_index`].
pub const OPCODE_NAMES: [&str; Op::NUM_OPCODES] = [
    "nop",
    "iconst",
    "aconst_null",
    "iload",
    "istore",
    "aload",
    "astore",
    "pop",
    "dup",
    "dup_x1",
    "swap",
    "iadd",
    "isub",
    "imul",
    "idiv",
    "irem",
    "ineg",
    "ishl",
    "ishr",
    "iushr",
    "iand",
    "ior",
    "ixor",
    "iinc",
    "if",
    "if_icmp",
    "ifnull",
    "ifnonnull",
    "if_acmpeq",
    "if_acmpne",
    "goto",
    "tableswitch",
    "new",
    "getfield",
    "putfield",
    "getstatic",
    "putstatic",
    "newarray",
    "arraylength",
    "arrload",
    "arrstore",
    "invokestatic",
    "invokevirtual",
    "invokespecial",
    "return",
    "ireturn",
    "areturn",
    "monitorenter",
    "monitorexit",
];

/// The eviction-policy × tier transition keys the differential matrix
/// can exercise; [`Coverage::missing_transitions`] reports which are
/// still unseen. One entry per engine-specific event class:
/// translations at each policy, evictions + post-eviction
/// re-translations per bounded policy, the tiered engine's
/// optimizing recompiles, and the register-IR tier's stack→register
/// lowerings plus IR-backed translation and cache churn.
pub const TRANSITION_KEYS: [&str; 20] = [
    "translate:jit",
    "translate:thresh",
    "translate:tiered",
    "translate:cc-lru",
    "translate:cc-swlru",
    "translate:cc-hot",
    "tier2-recompile:tiered",
    "evict:cc-lru",
    "evict:cc-swlru",
    "evict:cc-hot",
    "retranslate:cc-lru",
    "retranslate:cc-swlru",
    "retranslate:cc-hot",
    "lower:ir-interp",
    "lower:ir-jit",
    "lower:ir-cc",
    "translate:ir-jit",
    "translate:ir-cc",
    "evict:ir-cc",
    "retranslate:ir-cc",
];

/// Accumulated coverage over a fuzzing run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Executed-opcode histogram (indexed by dispatch index), summed
    /// over the reference engine's runs.
    pub opcodes: Vec<u64>,
    /// Verifier error variants exercised by the negative suite.
    pub verifier_errors: BTreeMap<String, u64>,
    /// Eviction/tier transition events, keyed per [`TRANSITION_KEYS`].
    pub transitions: BTreeMap<String, u64>,
    /// Generated cases executed.
    pub cases: u64,
    /// Cases whose reference outcome was a (deterministic) runtime
    /// fault — the fault-injection paths.
    pub error_outcomes: u64,
    /// Divergences detected.
    pub divergences: u64,
}

impl Coverage {
    /// Empty map.
    pub fn new() -> Self {
        Coverage {
            opcodes: vec![0; Op::NUM_OPCODES],
            ..Coverage::default()
        }
    }

    /// Whether the opcode at `dispatch` has executed at least once.
    pub fn opcode_covered(&self, dispatch: u8) -> bool {
        self.opcodes[usize::from(dispatch)] > 0
    }

    /// Folds one run's opcode histogram in.
    pub fn record_opcodes(&mut self, counts: &[u64]) {
        for (acc, c) in self.opcodes.iter_mut().zip(counts) {
            *acc += c;
        }
    }

    /// Records the engine-specific transition events of one run under
    /// the engine's matrix label.
    pub fn record_transitions(&mut self, label: &str, counters: &VmCounters) {
        let mut add = |key: String, n: u64| {
            if n > 0 {
                *self.transitions.entry(key).or_insert(0) += n;
            }
        };
        add(
            format!("translate:{label}"),
            u64::from(counters.methods_translated),
        );
        add(
            format!("lower:{label}"),
            u64::from(counters.methods_lowered),
        );
        add(format!("evict:{label}"), counters.code_evictions);
        add(format!("retranslate:{label}"), counters.retranslations);
        add(
            format!("tier2-recompile:{label}"),
            u64::from(counters.tier2_recompiles),
        );
    }

    /// Records one exercised verifier error path.
    pub fn record_verifier_error(&mut self, variant: &str) {
        *self.verifier_errors.entry(variant.to_owned()).or_insert(0) += 1;
    }

    /// Opcodes that have never executed.
    pub fn uncovered_opcodes(&self) -> Vec<&'static str> {
        OPCODE_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| self.opcodes[*i] == 0)
            .map(|(_, n)| *n)
            .collect()
    }

    /// Required transition keys not yet seen.
    pub fn missing_transitions(&self) -> Vec<&'static str> {
        TRANSITION_KEYS
            .iter()
            .filter(|k| !self.transitions.contains_key(**k))
            .copied()
            .collect()
    }

    /// Full coverage: every opcode and every required transition.
    pub fn is_full(&self) -> bool {
        self.uncovered_opcodes().is_empty() && self.missing_transitions().is_empty()
    }

    /// Deterministic text report (CI diffs this across `--jobs`
    /// counts).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let covered = Op::NUM_OPCODES - self.uncovered_opcodes().len();
        writeln!(out, "# jrt-fuzz coverage report").unwrap();
        writeln!(out, "cases: {}", self.cases).unwrap();
        writeln!(out, "error-outcome cases: {}", self.error_outcomes).unwrap();
        writeln!(out, "divergences: {}", self.divergences).unwrap();
        writeln!(out, "opcodes covered: {covered}/{}", Op::NUM_OPCODES).unwrap();
        for (i, name) in OPCODE_NAMES.iter().enumerate() {
            writeln!(out, "  opcode {name:<14} {}", self.opcodes[i]).unwrap();
        }
        writeln!(
            out,
            "transitions covered: {}/{}",
            TRANSITION_KEYS.len() - self.missing_transitions().len(),
            TRANSITION_KEYS.len()
        )
        .unwrap();
        for (k, n) in &self.transitions {
            writeln!(out, "  transition {k:<24} {n}").unwrap();
        }
        writeln!(
            out,
            "verifier error paths: {}/13",
            self.verifier_errors.len()
        )
        .unwrap();
        for (k, n) in &self.verifier_errors {
            writeln!(out, "  verifier {k:<18} {n}").unwrap();
        }
        out
    }
}
