//! Coverage-guided differential fuzzer for the bytecode toolchain and
//! every execution engine.
//!
//! The whole-system invariant behind the paper's methodology is that
//! all execution techniques — interpretation (plain and folding),
//! translate-on-first-invocation JIT, threshold and tiered
//! compilation, and the bounded code cache under every eviction
//! policy — implement the *same* bytecode semantics; the performance
//! studies only make sense if the engines are observationally
//! equivalent. This crate checks that invariant mechanically:
//!
//! * [`gen`] — a structured generator producing *always-verifiable*
//!   programs (bounded loops by construction, guarded or
//!   deterministically-faulting arithmetic, rank-ordered acyclic call
//!   graphs over classes/fields/virtual slots) from a replayable
//!   [`jrt_testkit::Rng`] seed;
//! * [`diff`] — the differential executor: each program runs through
//!   the full engine matrix and every engine's
//!   [`jrt_vm::Observables`] must equal the interpreter's;
//! * [`coverage`] — the coverage map over executed opcodes, verifier
//!   error paths, and eviction/tier transitions; generation weights
//!   boost features whose opcodes are still uncovered;
//! * [`neg`] — the negative suite asserting all 13 toolchain
//!   rejection paths;
//! * [`shrink`] — greedy minimization of any diverging program to a
//!   small reproducer.
//!
//! # Determinism
//!
//! [`fuzz`] generates cases in fixed-size rounds: the whole round is
//! generated sequentially from the round-start coverage snapshot,
//! executed in parallel, then folded back into coverage in case-index
//! order. The report is therefore byte-identical at any `jobs` count,
//! and any case replays alone from `(seed, index)` via
//! [`jrt_testkit::Rng::for_case`].
//!
//! ```
//! let report = jrt_fuzz::fuzz(0x5EED, 8, 2, None);
//! assert_eq!(report.divergences.len(), 0);
//! assert_eq!(report.coverage.cases, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod diff;
pub mod gen;
pub mod lower;
pub mod neg;
pub mod shrink;
pub mod spec;

pub use coverage::{Coverage, OPCODE_NAMES, TRANSITION_KEYS};
pub use diff::{engine_configs, run_case, spec_diverges, CaseResult, Sabotage, MATRIX_LABELS};
pub use gen::gen_spec;
pub use lower::lower;
pub use spec::ProgramSpec;

use jrt_testkit::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Cases generated per round. Generation is sequential within a
/// round; execution is parallel; coverage merges at the round
/// boundary. Smaller rounds track coverage more closely, larger
/// rounds parallelize better.
pub const ROUND: u64 = 32;

/// One detected divergence, already minimized.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The run seed.
    pub seed: u64,
    /// Case index within the run; replay with
    /// `Rng::for_case(seed, case)`.
    pub case: u64,
    /// Engine labels that disagreed with the interpreter.
    pub modes: Vec<&'static str>,
    /// Statement/expression size of the spec as generated.
    pub original_size: usize,
    /// The shrunken reproducer.
    pub minimized: ProgramSpec,
}

/// Outcome of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Accumulated coverage (opcodes, verifier errors, transitions).
    pub coverage: Coverage,
    /// All divergences, in case order.
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// Deterministic rendering: the coverage report plus one block per
    /// divergence with replay instructions. CI diffs this across
    /// `--jobs` counts.
    pub fn render(&self, seed: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "seed: {seed:#x}").unwrap();
        out.push_str(&self.coverage.report());
        for d in &self.divergences {
            writeln!(
                out,
                "divergence at case {} (modes: {}); replay: JRT_FUZZ_SEED={:#x} case {}",
                d.case,
                d.modes.join(","),
                d.seed,
                d.case
            )
            .unwrap();
            writeln!(
                out,
                "  minimized ({} -> {} nodes): {:?}",
                d.original_size,
                d.minimized.size(),
                d.minimized
            )
            .unwrap();
        }
        out
    }
}

/// Generates and lowers case `index` of a run exactly as [`fuzz`]
/// would, given the coverage snapshot `cov` at its round start. With
/// an empty snapshot this reproduces any case of round 0.
pub fn gen_case(seed: u64, index: u64, cov: &Coverage) -> ProgramSpec {
    let mut rng = Rng::for_case(seed, index);
    gen::gen_spec(&mut rng, cov)
}

fn run_one(seed: u64, case: u64, spec: &ProgramSpec, sabotage: Option<&Sabotage>) -> CaseResult {
    let program = lower::lower(spec).unwrap_or_else(|e| {
        panic!("seed {seed:#x} case {case}: generated spec failed to lower/verify: {e}\n{spec:?}")
    });
    diff::run_case(&program, sabotage)
}

/// Executes one round's specs across `jobs` worker threads; results
/// come back in case order regardless of scheduling.
fn run_batch(
    seed: u64,
    specs: &[(u64, ProgramSpec)],
    jobs: usize,
    sabotage: Option<&Sabotage>,
) -> Vec<CaseResult> {
    let jobs = jobs.max(1).min(specs.len().max(1));
    if jobs == 1 {
        return specs
            .iter()
            .map(|(case, s)| run_one(seed, *case, s, sabotage))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CaseResult)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((case, spec)) = specs.get(i) else {
                    break;
                };
                let result = run_one(seed, *case, spec, sabotage);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<CaseResult>> = specs.iter().map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker dropped a case"))
        .collect()
}

/// Runs the fuzzer: `cases` generated programs through the full
/// engine matrix on `jobs` threads, preceded by the negative suite.
/// Any diverging case is shrunk to a minimal reproducer.
///
/// Deterministic in `(seed, cases)`: the same inputs produce the same
/// programs, coverage, and verdicts at any `jobs` count. Callers
/// honouring the `JRT_FUZZ_SEED` / `JRT_FUZZ_CASES` environment
/// overrides should map them via
/// [`jrt_testkit::effective_cases_seed`] *before* calling.
pub fn fuzz(seed: u64, cases: u64, jobs: usize, sabotage: Option<Sabotage>) -> FuzzReport {
    let mut cov = Coverage::new();
    neg::exercise(&mut cov);
    let mut divergences = Vec::new();
    let mut start = 0u64;
    while start < cases {
        let n = ROUND.min(cases - start);
        // Sequential generation from the round-start snapshot keeps
        // coverage guidance deterministic under parallel execution.
        let snapshot = cov.clone();
        let specs: Vec<(u64, ProgramSpec)> = (start..start + n)
            .map(|i| (i, gen_case(seed, i, &snapshot)))
            .collect();
        let results = run_batch(seed, &specs, jobs, sabotage.as_ref());
        for ((case, spec), cr) in specs.iter().zip(&results) {
            diff::record_case(&mut cov, cr);
            if !cr.divergent.is_empty() {
                let minimized = shrink::shrink(spec, sabotage.as_ref());
                divergences.push(Divergence {
                    seed,
                    case: *case,
                    modes: cr.divergent.clone(),
                    original_size: spec.size(),
                    minimized,
                });
            }
        }
        start += n;
    }
    FuzzReport {
        coverage: cov,
        divergences,
    }
}
