//! Coverage-guided differential fuzzer for the bytecode toolchain and
//! every execution engine.
//!
//! The whole-system invariant behind the paper's methodology is that
//! all execution techniques — interpretation (plain and folding),
//! translate-on-first-invocation JIT, threshold and tiered
//! compilation, and the bounded code cache under every eviction
//! policy — implement the *same* bytecode semantics; the performance
//! studies only make sense if the engines are observationally
//! equivalent. This crate checks that invariant mechanically:
//!
//! * [`gen`] — a structured generator producing *always-verifiable*
//!   programs (bounded loops by construction, guarded or
//!   deterministically-faulting arithmetic, rank-ordered acyclic call
//!   graphs over classes/fields/virtual slots) from a replayable
//!   [`jrt_testkit::Rng`] seed;
//! * [`diff`] — the differential executor: each program runs through
//!   the full engine matrix and every engine's
//!   [`jrt_vm::Observables`] must equal the interpreter's;
//! * [`coverage`] — the coverage map over executed opcodes, verifier
//!   error paths, and eviction/tier transitions; generation weights
//!   boost features whose opcodes are still uncovered;
//! * [`neg`] — the negative suite asserting all 13 toolchain
//!   rejection paths;
//! * [`shrink`] — greedy minimization of any diverging program to a
//!   small reproducer.
//!
//! # Determinism
//!
//! [`fuzz`] generates cases in fixed-size rounds: the whole round is
//! generated sequentially from the round-start coverage snapshot,
//! executed in parallel, then folded back into coverage in case-index
//! order. The report is therefore byte-identical at any `jobs` count,
//! and any case replays alone from `(seed, index)` via
//! [`jrt_testkit::Rng::for_case`].
//!
//! ```
//! let report = jrt_fuzz::fuzz(0x5EED, 8, 2, None);
//! assert_eq!(report.divergences.len(), 0);
//! assert_eq!(report.coverage.cases, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod diff;
pub mod gen;
pub mod lower;
pub mod neg;
pub mod perf;
pub mod shrink;
pub mod spec;

pub use coverage::{Coverage, OPCODE_NAMES, TRANSITION_KEYS};
pub use diff::{
    engine_configs, engine_configs_gc, run_case, run_case_gc, spec_diverges, spec_diverges_gc,
    CaseResult, GcSabotage, Sabotage, MATRIX_LABELS,
};
pub use gen::gen_spec;
pub use lower::lower;
pub use perf::{
    run_perf_case, spec_perf_violates, CostVector, PerfCase, PerfFinding, PerfSabotage, GC_LABEL,
    PERF_LABELS, SIZED_LABEL,
};
pub use spec::ProgramSpec;

use jrt_testkit::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Cases generated per round. Generation is sequential within a
/// round; execution is parallel; coverage merges at the round
/// boundary. Smaller rounds track coverage more closely, larger
/// rounds parallelize better.
pub const ROUND: u64 = 32;

/// One detected divergence, already minimized.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The run seed.
    pub seed: u64,
    /// Case index within the run; replay with
    /// `Rng::for_case(seed, case)`.
    pub case: u64,
    /// Engine labels that disagreed with the interpreter.
    pub modes: Vec<&'static str>,
    /// Statement/expression size of the spec as generated.
    pub original_size: usize,
    /// The shrunken reproducer.
    pub minimized: ProgramSpec,
}

/// One detected cost-model violation, attributed and minimized.
#[derive(Debug, Clone)]
pub struct PerfViolation {
    /// The run seed.
    pub seed: u64,
    /// Case index within the run; replay with
    /// `Rng::for_case(seed, case)`.
    pub case: u64,
    /// Engine label the violation is attributed to.
    pub label: &'static str,
    /// Violated invariant name (see [`perf`] module docs).
    pub invariant: &'static str,
    /// Deterministic evidence string.
    pub detail: String,
    /// Statement/expression size of the spec as generated.
    pub original_size: usize,
    /// The shrunken reproducer (still violating *some* cost
    /// invariant).
    pub minimized: ProgramSpec,
}

/// The perf-oracle section of a [`FuzzReport`], present when the run
/// used [`fuzz_perf`].
#[derive(Debug)]
pub struct PerfReport {
    /// Per-engine cost totals over all cases, in [`PERF_LABELS`]
    /// order.
    pub totals: Vec<(&'static str, CostVector)>,
    /// All cost-model violations, in case order.
    pub violations: Vec<PerfViolation>,
}

/// Outcome of a fuzzing run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Accumulated coverage (opcodes, verifier errors, transitions).
    pub coverage: Coverage,
    /// All divergences, in case order.
    pub divergences: Vec<Divergence>,
    /// Cost totals and violations ([`fuzz_perf`] runs only).
    pub perf: Option<PerfReport>,
}

impl FuzzReport {
    /// Deterministic rendering: the coverage report plus one block per
    /// divergence with replay instructions. CI diffs this across
    /// `--jobs` counts.
    pub fn render(&self, seed: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "seed: {seed:#x}").unwrap();
        out.push_str(&self.coverage.report());
        for d in &self.divergences {
            writeln!(
                out,
                "divergence at case {} (modes: {}); replay: JRT_FUZZ_SEED={:#x} case {}",
                d.case,
                d.modes.join(","),
                d.seed,
                d.case
            )
            .unwrap();
            writeln!(
                out,
                "  minimized ({} -> {} nodes): {:?}",
                d.original_size,
                d.minimized.size(),
                d.minimized
            )
            .unwrap();
        }
        if let Some(perf) = &self.perf {
            out.push_str("perf totals:\n");
            for (label, c) in &perf.totals {
                write!(out, "  {label}:").unwrap();
                for (name, value) in c.metrics() {
                    write!(out, " {name}={value}").unwrap();
                }
                out.push('\n');
            }
            for v in &perf.violations {
                writeln!(
                    out,
                    "perf violation at case {} ({}: {}): {}; replay: JRT_FUZZ_SEED={:#x} case {}",
                    v.case, v.label, v.invariant, v.detail, v.seed, v.case
                )
                .unwrap();
                writeln!(
                    out,
                    "  minimized ({} -> {} nodes): {:?}",
                    v.original_size,
                    v.minimized.size(),
                    v.minimized
                )
                .unwrap();
            }
        }
        out
    }
}

/// Generates and lowers case `index` of a run exactly as [`fuzz`]
/// would, given the coverage snapshot `cov` at its round start. With
/// an empty snapshot this reproduces any case of round 0.
pub fn gen_case(seed: u64, index: u64, cov: &Coverage) -> ProgramSpec {
    let mut rng = Rng::for_case(seed, index);
    gen::gen_spec(&mut rng, cov)
}

fn run_one(seed: u64, case: u64, spec: &ProgramSpec, sabotage: Option<&Sabotage>) -> CaseResult {
    let program = lower::lower(spec).unwrap_or_else(|e| {
        panic!("seed {seed:#x} case {case}: generated spec failed to lower/verify: {e}\n{spec:?}")
    });
    diff::run_case(&program, sabotage)
}

/// Executes one round's specs across `jobs` worker threads with an
/// arbitrary per-case runner; results come back in case order
/// regardless of scheduling.
fn run_batch<R: Send>(
    specs: &[(u64, ProgramSpec)],
    jobs: usize,
    runner: impl Fn(u64, &ProgramSpec) -> R + Sync,
) -> Vec<R> {
    let jobs = jobs.max(1).min(specs.len().max(1));
    if jobs == 1 {
        return specs.iter().map(|(case, s)| runner(*case, s)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let runner = &runner;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((case, spec)) = specs.get(i) else {
                    break;
                };
                let result = runner(*case, spec);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<R>> = specs.iter().map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker dropped a case"))
        .collect()
}

/// Runs the fuzzer: `cases` generated programs through the full
/// engine matrix on `jobs` threads, preceded by the negative suite.
/// Any diverging case is shrunk to a minimal reproducer.
///
/// Deterministic in `(seed, cases)`: the same inputs produce the same
/// programs, coverage, and verdicts at any `jobs` count. Callers
/// honouring the `JRT_FUZZ_SEED` / `JRT_FUZZ_CASES` environment
/// overrides should map them via
/// [`jrt_testkit::effective_cases_seed`] *before* calling.
pub fn fuzz(seed: u64, cases: u64, jobs: usize, sabotage: Option<Sabotage>) -> FuzzReport {
    let mut cov = Coverage::new();
    neg::exercise(&mut cov);
    let mut divergences = Vec::new();
    let mut start = 0u64;
    while start < cases {
        let n = ROUND.min(cases - start);
        // Sequential generation from the round-start snapshot keeps
        // coverage guidance deterministic under parallel execution.
        let snapshot = cov.clone();
        let specs: Vec<(u64, ProgramSpec)> = (start..start + n)
            .map(|i| (i, gen_case(seed, i, &snapshot)))
            .collect();
        let results = run_batch(&specs, jobs, |case, spec| {
            run_one(seed, case, spec, sabotage.as_ref())
        });
        for ((case, spec), cr) in specs.iter().zip(&results) {
            diff::record_case(&mut cov, cr);
            if !cr.divergent.is_empty() {
                let minimized = shrink::shrink(spec, sabotage.as_ref());
                divergences.push(Divergence {
                    seed,
                    case: *case,
                    modes: cr.divergent.clone(),
                    original_size: spec.size(),
                    minimized,
                });
            }
        }
        start += n;
    }
    FuzzReport {
        coverage: cov,
        divergences,
        perf: None,
    }
}

/// Runs the fuzzer over the GC engine matrix: every generated program
/// through all eleven engines under the forcing tiny nursery
/// ([`diff::engine_configs_gc`]), observables compared against the
/// (equally GC-stressed) interpreter. `gc_sabotage` injects a real
/// collector bug — one silently dropped remembered-set enrollment on
/// one engine — which must surface as a divergence for the must-fail
/// CI job's pinned parameters.
///
/// Deterministic in `(seed, cases, gc_sabotage)` at any `jobs` count,
/// exactly like [`fuzz`].
pub fn fuzz_gc(seed: u64, cases: u64, jobs: usize, gc_sabotage: Option<GcSabotage>) -> FuzzReport {
    let mut cov = Coverage::new();
    neg::exercise(&mut cov);
    let mut divergences = Vec::new();
    let mut start = 0u64;
    while start < cases {
        let n = ROUND.min(cases - start);
        let snapshot = cov.clone();
        let specs: Vec<(u64, ProgramSpec)> = (start..start + n)
            .map(|i| (i, gen_case(seed, i, &snapshot)))
            .collect();
        let results = run_batch(&specs, jobs, |case, spec| {
            let program = lower::lower(spec).unwrap_or_else(|e| {
                panic!(
                    "seed {seed:#x} case {case}: generated spec failed to lower/verify: {e}\n{spec:?}"
                )
            });
            diff::run_case_gc(&program, gc_sabotage.as_ref())
        });
        for ((case, spec), cr) in specs.iter().zip(&results) {
            diff::record_case(&mut cov, cr);
            if !cr.divergent.is_empty() {
                let minimized = jrt_testkit::minimize(
                    spec.clone(),
                    |s| diff::spec_diverges_gc(s, gc_sabotage.as_ref()),
                    shrink::candidates,
                );
                divergences.push(Divergence {
                    seed,
                    case: *case,
                    modes: cr.divergent.clone(),
                    original_size: spec.size(),
                    minimized,
                });
            }
        }
        start += n;
    }
    FuzzReport {
        coverage: cov,
        divergences,
        perf: None,
    }
}

/// Runs the fuzzer with the performance oracle on: every case's engine
/// matrix is measured under the one-pass cache sweep, cost vectors are
/// checked against the cost-model invariants (see [`perf`]), and both
/// correctness divergences and cost violations are shrunk to minimal
/// reproducers. The returned report carries [`FuzzReport::perf`].
///
/// Deterministic in `(seed, cases, perf_sabotage)` at any `jobs`
/// count, exactly like [`fuzz`].
pub fn fuzz_perf(
    seed: u64,
    cases: u64,
    jobs: usize,
    perf_sabotage: Option<PerfSabotage>,
) -> FuzzReport {
    let mut cov = Coverage::new();
    neg::exercise(&mut cov);
    let mut divergences = Vec::new();
    let mut violations = Vec::new();
    let mut totals: Vec<(&'static str, CostVector)> = PERF_LABELS
        .iter()
        .map(|l| (*l, CostVector::default()))
        .collect();
    let mut start = 0u64;
    while start < cases {
        let n = ROUND.min(cases - start);
        let snapshot = cov.clone();
        let specs: Vec<(u64, ProgramSpec)> = (start..start + n)
            .map(|i| (i, gen_case(seed, i, &snapshot)))
            .collect();
        let results = run_batch(&specs, jobs, |case, spec| {
            let program = lower::lower(spec).unwrap_or_else(|e| {
                panic!(
                    "seed {seed:#x} case {case}: generated spec failed to lower/verify: {e}\n{spec:?}"
                )
            });
            perf::run_perf_case(&program, perf_sabotage.as_ref())
        });
        for ((case, spec), pc) in specs.iter().zip(&results) {
            diff::record_case(&mut cov, &pc.base);
            for (label, cost) in &pc.costs {
                if let Some(slot) = totals.iter_mut().find(|(l, _)| l == label) {
                    slot.1.add(cost);
                }
            }
            if !pc.base.divergent.is_empty() {
                let minimized = shrink::shrink(spec, None);
                divergences.push(Divergence {
                    seed,
                    case: *case,
                    modes: pc.base.divergent.clone(),
                    original_size: spec.size(),
                    minimized,
                });
            }
            if !pc.violations.is_empty() {
                // One shrink per case, shared by its findings: the
                // predicate is "still violates some cost invariant".
                let minimized = perf::shrink_perf(spec, perf_sabotage.as_ref());
                for f in &pc.violations {
                    violations.push(PerfViolation {
                        seed,
                        case: *case,
                        label: f.label,
                        invariant: f.invariant,
                        detail: f.detail.clone(),
                        original_size: spec.size(),
                        minimized: minimized.clone(),
                    });
                }
            }
        }
        start += n;
    }
    FuzzReport {
        coverage: cov,
        divergences,
        perf: Some(PerfReport { totals, violations }),
    }
}
