//! Coverage-weighted program generation.
//!
//! Every draw comes from the caller's [`Rng`], so a `(seed, case)`
//! pair fully determines the program. The [`Coverage`] snapshot taken
//! at generation time tilts the weights: a program feature whose
//! mapped opcodes have not executed yet gets an 8× boost, so the
//! fuzzer walks toward uncovered states instead of resampling the
//! easy middle of the grammar.
//!
//! The structural invariants documented in the `spec` module — the
//! acyclic call ranks, bounded loops, and closed hierarchy — are all
//! enforced here; the lowering stage just trusts them.

use crate::coverage::Coverage;
use crate::spec::{
    BinOp, ClassSpec, Expr, MethodSpec, ProgramSpec, Resources, ShuffleKind, Stmt, MAX_LOOP_DEPTH,
    NUM_FIELDS, NUM_STATICS, NUM_TEMPS, NUM_VSLOTS,
};
use jrt_bytecode::{ArrayKind, Cond, CpIndex, Op};
use jrt_testkit::Rng;

/// Maximum statement-nesting depth (If/Loop/Switch/Locked).
const MAX_STMT_DEPTH: u8 = 2;
/// Maximum expression-nesting depth.
const MAX_EXPR_DEPTH: u8 = 3;
/// Coverage boost multiplier for features mapped to uncovered opcodes.
const BOOST: u32 = 8;

/// A callable static method: (class, method index, nargs).
type StaticSig = (u8, u8, u8);

/// Generation context for one method body.
struct Ctx<'a> {
    cov: &'a Coverage,
    /// Static methods this body may call (rank-restricted).
    statics: &'a [StaticSig],
    /// Virtual slots `< max_vslot` may be called.
    max_vslot: u8,
    n_classes: u8,
    nargs: u8,
    // Resource demands accumulated while generating.
    obj: bool,
    int_arr: bool,
    char_arr: bool,
    byte_arr: bool,
    ref_arr: bool,
    ref_tmp: bool,
}

fn d(op: Op) -> u8 {
    op.dispatch_index()
}

/// Weight `base`, boosted when any of `ops` is uncovered.
fn w(cov: &Coverage, base: u32, ops: &[u8]) -> u32 {
    if ops.iter().any(|&o| !cov.opcode_covered(o)) {
        base * BOOST
    } else {
        base
    }
}

/// Draws an index from a weight table (zero-weight entries excluded).
fn pick(rng: &mut Rng, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|&x| u64::from(x)).sum();
    assert!(total > 0, "no candidate has weight");
    let mut roll = rng.u64_in(0..total);
    for (i, &wt) in weights.iter().enumerate() {
        let wt = u64::from(wt);
        if roll < wt {
            return i;
        }
        roll -= wt;
    }
    unreachable!()
}

fn gen_cond(rng: &mut Rng) -> Cond {
    *rng.choose(&[Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Gt, Cond::Le])
}

fn gen_value_kind(ctx: &mut Ctx<'_>, rng: &mut Rng) -> ArrayKind {
    let kind = *rng.choose(&[ArrayKind::Int, ArrayKind::Char, ArrayKind::Byte]);
    match kind {
        ArrayKind::Int => ctx.int_arr = true,
        ArrayKind::Char => ctx.char_arr = true,
        ArrayKind::Byte => ctx.byte_arr = true,
        ArrayKind::Ref => unreachable!(),
    }
    kind
}

fn gen_expr(ctx: &mut Ctx<'_>, rng: &mut Rng, depth: u8) -> Expr {
    let cov = ctx.cov;
    let deeper = depth < MAX_EXPR_DEPTH;
    let calls = depth < 2;
    // Kind table; indices match the dispatch below.
    let weights = [
        w(cov, 3, &[d(Op::IConst(0))]),             // 0 Const
        if ctx.nargs > 0 { 2 } else { 0 },          // 1 Arg
        w(cov, 3, &[d(Op::ILoad(0))]),              // 2 Temp
        if deeper { 4 } else { 0 },                 // 3 Bin
        w(cov, 2, &[d(Op::INeg)]),                  // 4 Neg
        if deeper { 2 } else { 0 },                 // 5 Shuffle
        w(cov, 2, &[d(Op::GetStatic(CpIndex(0)))]), // 6 GetStatic
        w(cov, 2, &[d(Op::GetField(CpIndex(0)))]),  // 7 GetField
        if deeper {
            w(cov, 2, &[d(Op::ArrLoad(ArrayKind::Int))])
        } else {
            0
        }, // 8 ArrElem
        w(cov, 1, &[d(Op::ArrayLength)]),           // 9 ArrLen
        if calls && !ctx.statics.is_empty() {
            w(cov, 3, &[d(Op::InvokeStatic(CpIndex(0)))])
        } else {
            0
        }, // 10 CallStatic
        if calls && ctx.max_vslot > 0 {
            w(cov, 3, &[d(Op::InvokeVirtual(CpIndex(0)))])
        } else {
            0
        }, // 11 CallVirtual
        if calls && ctx.max_vslot > 0 {
            w(cov, 2, &[d(Op::InvokeSpecial(CpIndex(0)))])
        } else {
            0
        }, // 12 CallSpecial
    ];
    match pick(rng, &weights) {
        0 => Expr::Const(rng.i32_in(-64..65)),
        1 => Expr::Arg(rng.usize_in(0..usize::from(ctx.nargs)) as u8),
        2 => Expr::Temp(rng.usize_in(0..usize::from(NUM_TEMPS)) as u8),
        3 => {
            let ops = [
                (BinOp::Add, d(Op::IAdd)),
                (BinOp::Sub, d(Op::ISub)),
                (BinOp::Mul, d(Op::IMul)),
                (BinOp::Div, d(Op::IDiv)),
                (BinOp::Rem, d(Op::IRem)),
                (BinOp::Shl, d(Op::IShl)),
                (BinOp::Shr, d(Op::IShr)),
                (BinOp::Ushr, d(Op::IUshr)),
                (BinOp::And, d(Op::IAnd)),
                (BinOp::Or, d(Op::IOr)),
                (BinOp::Xor, d(Op::IXor)),
            ];
            let ws: Vec<u32> = ops.iter().map(|(_, di)| w(cov, 2, &[*di])).collect();
            let (op, _) = ops[pick(rng, &ws)];
            let a = Box::new(gen_expr(ctx, rng, depth + 1));
            let b = Box::new(gen_expr(ctx, rng, depth + 1));
            // Fault injection: rarely leave a division unguarded.
            if matches!(op, BinOp::Div | BinOp::Rem) && rng.u64_in(0..8) == 0 {
                Expr::RawDiv(a, b)
            } else {
                Expr::Bin(op, a, b)
            }
        }
        4 => Expr::Neg(Box::new(gen_expr(ctx, rng, depth + 1))),
        5 => {
            let kinds = [
                (ShuffleKind::Dup, d(Op::Dup)),
                (ShuffleKind::DupX1, d(Op::DupX1)),
                (ShuffleKind::Swap, d(Op::Swap)),
                (ShuffleKind::Pop, d(Op::Pop)),
            ];
            let ws: Vec<u32> = kinds.iter().map(|(_, di)| w(cov, 1, &[*di])).collect();
            let (kind, _) = kinds[pick(rng, &ws)];
            Expr::Shuffle(
                kind,
                Box::new(gen_expr(ctx, rng, depth + 1)),
                Box::new(gen_expr(ctx, rng, depth + 1)),
            )
        }
        6 => Expr::GetStatic(rng.usize_in(0..usize::from(NUM_STATICS)) as u8),
        7 => {
            ctx.obj = true;
            Expr::GetField(rng.usize_in(0..usize::from(NUM_FIELDS)) as u8)
        }
        8 => {
            let kind = gen_value_kind(ctx, rng);
            let idx = Box::new(gen_expr(ctx, rng, depth + 1));
            // Fault injection: rarely skip the index mask.
            if kind == ArrayKind::Int && rng.u64_in(0..12) == 0 {
                Expr::ArrElemRaw(idx)
            } else {
                Expr::ArrElem(kind, idx)
            }
        }
        9 => Expr::ArrLen(gen_value_kind(ctx, rng)),
        10 => {
            let (class, method, nargs) = *rng.choose(ctx.statics);
            let args = (0..nargs).map(|_| gen_expr(ctx, rng, depth + 1)).collect();
            Expr::CallStatic {
                class,
                method,
                args,
            }
        }
        11 => {
            ctx.obj = true;
            Expr::CallVirtual {
                vslot: rng.usize_in(0..usize::from(ctx.max_vslot)) as u8,
                arg: Box::new(gen_expr(ctx, rng, depth + 1)),
            }
        }
        12 => {
            ctx.obj = true;
            Expr::CallSpecial {
                class: rng.usize_in(0..usize::from(ctx.n_classes)) as u8,
                vslot: rng.usize_in(0..usize::from(ctx.max_vslot)) as u8,
                arg: Box::new(gen_expr(ctx, rng, depth + 1)),
            }
        }
        _ => unreachable!(),
    }
}

fn gen_stmt(ctx: &mut Ctx<'_>, rng: &mut Rng, depth: u8, loop_depth: u8, budget: &mut i32) -> Stmt {
    let cov = ctx.cov;
    let nest = depth < MAX_STMT_DEPTH && *budget > 2;
    let weights = [
        w(cov, 4, &[d(Op::IStore(0))]),                // 0 StoreTemp
        w(cov, 2, &[d(Op::IInc(0, 0))]),               // 1 IncTemp
        w(cov, 3, &[d(Op::PutStatic(CpIndex(0)))]),    // 2 StoreStatic
        w(cov, 3, &[d(Op::PutField(CpIndex(0)))]),     // 3 StoreField
        w(cov, 3, &[d(Op::ArrStore(ArrayKind::Int))]), // 4 StoreArr
        w(cov, 3, &[d(Op::InvokeStatic(CpIndex(0)))]), // 5 Print
        1,                                             // 6 PrintChar
        if nest { 4 } else { 0 },                      // 7 If
        if nest && loop_depth < MAX_LOOP_DEPTH {
            w(cov, 3, &[d(Op::Goto(0))])
        } else {
            0
        }, // 8 Loop
        if nest {
            w(
                cov,
                2,
                &[d(Op::TableSwitch {
                    low: 0,
                    default: 0,
                    targets: Vec::new(),
                })],
            )
        } else {
            0
        }, // 9 Switch
        if nest {
            w(cov, 2, &[d(Op::MonitorEnter)])
        } else {
            0
        }, // 10 Locked
        w(
            cov,
            2,
            &[
                d(Op::AConstNull),
                d(Op::IfNull(0)),
                d(Op::IfNonNull(0)),
                d(Op::IfACmpEq(0)),
                d(Op::IfACmpNe(0)),
                d(Op::AReturn),
            ],
        ), // 11 RefOps
        w(cov, 1, &[d(Op::Nop)]),                      // 12 Nop
    ];
    *budget -= 1;
    match pick(rng, &weights) {
        0 => Stmt::StoreTemp(
            rng.usize_in(0..usize::from(NUM_TEMPS)) as u8,
            gen_expr(ctx, rng, 0),
        ),
        1 => Stmt::IncTemp(
            rng.usize_in(0..usize::from(NUM_TEMPS)) as u8,
            rng.i32_in(-3..4) as i16,
        ),
        2 => Stmt::StoreStatic(
            rng.usize_in(0..usize::from(NUM_STATICS)) as u8,
            gen_expr(ctx, rng, 0),
        ),
        3 => {
            ctx.obj = true;
            Stmt::StoreField(
                rng.usize_in(0..usize::from(NUM_FIELDS)) as u8,
                gen_expr(ctx, rng, 0),
            )
        }
        4 => {
            let kind = gen_value_kind(ctx, rng);
            Stmt::StoreArr(kind, gen_expr(ctx, rng, 1), gen_expr(ctx, rng, 1))
        }
        5 => Stmt::Print(gen_expr(ctx, rng, 0)),
        6 => Stmt::PrintChar(gen_expr(ctx, rng, 0)),
        7 => {
            let cond = gen_cond(rng);
            let a = gen_expr(ctx, rng, 1);
            let b = rng.bool().then(|| gen_expr(ctx, rng, 1));
            let then = gen_body(ctx, rng, depth + 1, loop_depth, budget);
            let els = gen_body(ctx, rng, depth + 1, loop_depth, budget);
            Stmt::If {
                cond,
                a,
                b,
                then,
                els,
            }
        }
        8 => Stmt::Loop {
            n: rng.usize_in(1..7) as u8,
            body: gen_body(ctx, rng, depth + 1, loop_depth + 1, budget),
        },
        9 => {
            let n_arms = rng.usize_in(2..5);
            let arms = (0..n_arms)
                .map(|_| gen_body(ctx, rng, depth + 1, loop_depth, budget))
                .collect();
            let default = gen_body(ctx, rng, depth + 1, loop_depth, budget);
            Stmt::Switch {
                key: gen_expr(ctx, rng, 1),
                arms,
                default,
            }
        }
        10 => {
            ctx.obj = true;
            Stmt::Locked(gen_body(ctx, rng, depth + 1, loop_depth, budget))
        }
        11 => {
            ctx.obj = true;
            ctx.ref_tmp = true;
            let use_arr = rng.bool();
            if use_arr {
                ctx.ref_arr = true;
            }
            Stmt::RefOps {
                flag: gen_expr(ctx, rng, 1),
                use_acmp: rng.bool(),
                use_arr,
                acmp_eq: rng.bool(),
                // Fault injection: rarely skip the null check.
                unchecked_field: rng.u64_in(0..10) == 0,
                arr_idx: rng.u8(),
            }
        }
        12 => Stmt::Nop,
        _ => unreachable!(),
    }
}

fn gen_body(
    ctx: &mut Ctx<'_>,
    rng: &mut Rng,
    depth: u8,
    loop_depth: u8,
    budget: &mut i32,
) -> Vec<Stmt> {
    let n = rng.usize_in(1..4);
    (0..n)
        .map(|_| {
            if *budget <= 0 {
                Stmt::Nop
            } else {
                gen_stmt(ctx, rng, depth, loop_depth, budget)
            }
        })
        .collect()
}

/// Generates one method body under the call-rank palette.
#[allow(clippy::too_many_arguments)]
fn gen_method(
    rng: &mut Rng,
    cov: &Coverage,
    statics: &[StaticSig],
    max_vslot: u8,
    n_classes: u8,
    is_instance: bool,
    nargs: u8,
    budget: i32,
) -> MethodSpec {
    let mut ctx = Ctx {
        cov,
        statics,
        max_vslot,
        n_classes,
        nargs,
        obj: false,
        int_arr: false,
        char_arr: false,
        byte_arr: false,
        ref_arr: false,
        ref_tmp: false,
    };
    let mut temp_init = [0i32; NUM_TEMPS as usize];
    for t in &mut temp_init {
        *t = rng.i32_in(-6..7);
    }
    let mut budget = budget;
    let body = gen_body(&mut ctx, rng, 0, 0, &mut budget);
    let ret = gen_expr(&mut ctx, rng, 0);
    let obj_class =
        (!is_instance && ctx.obj).then(|| rng.usize_in(0..usize::from(n_classes)) as u8);
    MethodSpec {
        nargs,
        res: Resources {
            obj_class,
            int_arr: ctx.int_arr,
            char_arr: ctx.char_arr,
            byte_arr: ctx.byte_arr,
            ref_arr: ctx.ref_arr,
            ref_tmp: ctx.ref_tmp,
        },
        temp_init,
        body,
        ret,
        synchronized: rng.u64_in(0..8) == 0,
    }
}

/// Generates a whole program from `rng`, guided by the coverage
/// snapshot `cov`.
pub fn gen_spec(rng: &mut Rng, cov: &Coverage) -> ProgramSpec {
    let n_classes = 1 + rng.usize_in(0..3) as u8; // 1..=3

    // Shape first: static-method signatures (class-major order defines
    // the call rank) and which subclasses override which vslots.
    let mut globals: Vec<StaticSig> = Vec::new();
    let mut static_counts = Vec::new();
    for c in 0..n_classes {
        let n = if c == 0 {
            1 + rng.usize_in(0..2) as u8
        } else {
            rng.usize_in(0..2) as u8
        };
        static_counts.push(n);
        for j in 0..n {
            globals.push((c, j, rng.usize_in(0..3) as u8));
        }
    }
    let mut override_mask = vec![vec![true; usize::from(NUM_VSLOTS)]];
    for _ in 1..n_classes {
        override_mask.push((0..NUM_VSLOTS).map(|_| rng.bool()).collect());
    }

    // Method bodies, in rank order. Virtual slot k may call slots < k
    // (so overrides never recurse even mutually); statics may call any
    // vslot and lower-ranked statics.
    let mut classes: Vec<ClassSpec> = (0..n_classes)
        .map(|_| ClassSpec {
            overrides: vec![None; usize::from(NUM_VSLOTS)],
            statics: Vec::new(),
        })
        .collect();
    for (c, mask) in override_mask.iter().enumerate() {
        for (k, &on) in mask.iter().enumerate() {
            if on {
                classes[c].overrides[k] =
                    Some(gen_method(rng, cov, &[], k as u8, n_classes, true, 1, 8));
            }
        }
    }
    for (g, &(c, _j, nargs)) in globals.iter().enumerate() {
        let m = gen_method(
            rng,
            cov,
            &globals[..g],
            NUM_VSLOTS,
            n_classes,
            false,
            nargs,
            8,
        );
        classes[usize::from(c)].statics.push(m);
    }
    let main = gen_method(rng, cov, &globals, NUM_VSLOTS, n_classes, false, 0, 14);

    ProgramSpec { classes, main }
}
