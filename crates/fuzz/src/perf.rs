//! The performance-oracle layer: per-engine cost vectors and explicit
//! cost-model invariants checked on every generated case.
//!
//! Correctness-differential fuzzing ([`crate::diff`]) proves the
//! engine matrix observationally equivalent — but a tiered
//! configuration that is semantically right and pathologically slow
//! passes it silently. This module runs the same matrix with a
//! measuring sink (the one-pass [`SplitSweep`] cache simulator over
//! the paper's L1 points) and collects a [`CostVector`] per engine:
//! executed bytecodes, emitted trace events, translate work split by
//! tier, code-cache install/evict/re-translate churn, and simulated
//! I-/D-cache misses. The vectors are then checked against the
//! cost-model invariants of the paper's execution model:
//!
//! * **translate-attribution** — the Translate-phase events on the
//!   trace are exactly the translator instructions the counters claim
//!   (`translate_events == translate_insts`), on every engine. This
//!   ties [`jrt_vm::Vm::run_observed`]'s counter path to the trace
//!   path.
//! * **installs-accounting** — one successful install per translation
//!   (`code_installs == methods_translated`; the matrix is all per-VM
//!   scope).
//! * **interp-no-translate** — interpreters do no translate work at
//!   all: no translator instructions, no installs, no code bytes, no
//!   Translate-phase events.
//! * **fold-dispatch** — picoJava-style folding shares dispatches; it
//!   must never change the executed bytecode count and never *add*
//!   trace events.
//! * **thresh-subset** — a threshold policy translates a subset of the
//!   methods first-invocation JIT translates, each at most once at
//!   baseline, so its translate work is bounded by the JIT's.
//! * **tiered-baseline** — a tiered policy's *baseline-tier* translate
//!   work (`translate_insts - opt_translate_insts`) is bounded by
//!   first-invocation JIT's; the optimizing tier adds work on top,
//!   which is why the raw totals are not comparable.
//! * **unbounded-no-churn** — unbounded code caches never evict,
//!   re-translate, or fail an install.
//! * **churn-bound** — eviction churn stays within the reuse bound:
//!   every re-translation was preceded by an eviction of that key
//!   (`retranslations <= code_evictions`) and every eviction happened
//!   making room for an install
//!   (`code_evictions <= code_installs + code_install_failures`).
//! * **sized-capacity** — a bounded cache whose capacity equals the
//!   total code bytes the unbounded JIT ever installed evicts nothing,
//!   re-translates nothing, and does exactly the unbounded JIT's
//!   translate work. This extra `cc-sized` engine is derived per case
//!   from the measured `jit` run.
//! * **ir-dispatch-bound** — the register-IR engines dispatch at most
//!   once per executed bytecode: superinstruction fusion and
//!   elimination can only *remove* dispatches
//!   (`ir_dispatches <= bytecodes`, plus one for a dispatch charged to
//!   a faulting step, whose bytecode the counters never credit).
//! * **ir-counters-zero** — non-IR engines never lower methods or
//!   count IR dispatches.
//! * **ir-interp-no-install** — the IR interpreter lowers (translator
//!   work on the trace) but never installs: no translated methods, no
//!   code bytes, no cache churn.
//! * **ir-density** — the IR-backed JIT translates exactly the methods
//!   first-invocation JIT translates but installs no more code bytes:
//!   fused and elided pcs generate nothing.
//!
//! The generational collector adds its own cost-model invariants,
//! checked against the derived `gc-tiny` engine (first-invocation JIT
//! under the forcing tiny nursery) and against every other engine's
//! obligation to do *no* generational work:
//!
//! * **gc-attribution** — the `Gc`/`GcBarrier` phase slices on the
//!   trace are exactly the collector/barrier instructions the
//!   counters claim, on every engine (the GC analog of
//!   translate-attribution).
//! * **gc-off** — engines without the generational collector run no
//!   minor or major collections, copy no bytes, and emit no barrier
//!   instructions. (Legacy threshold mark-sweep may still emit
//!   `Phase::Gc` work, so `gc_insts` itself is *not* required zero.)
//! * **gc-barrier-bound** — the card barrier is two instructions per
//!   reference store, so barrier work is bounded by the executed
//!   `putfield`/`putstatic`/`arrstore` count
//!   (`gc_barrier_insts <= 2 * ref_store_ops`).
//! * **gc-copy-bound** — a copying collector can never move more
//!   bytes than the program ever allocated
//!   (`gc_copied_bytes <= heap_alloc_bytes`).
//!
//! Any violation is attributed to an engine label and an invariant
//! name and shrunk to a minimal reproducer by the same greedy
//! machinery as correctness divergences ([`crate::shrink`]), with
//! "still violates some cost invariant" as the predicate.

use crate::diff::{engine_configs, CaseResult, CASE_BUDGET};
use jrt_bytecode::{ArrayKind, CpIndex, Op, Program};
use jrt_cache::{CacheConfig, SplitSweep};
use jrt_vm::{
    CodeCacheConfig, EvictionPolicy, ExecMode, GcConfig, JitPolicy, ObservedRun, Vm, VmConfig,
};

/// Label of the per-case derived engine: first-invocation JIT under a
/// bounded cache sized to exactly the unbounded JIT's total code
/// bytes.
pub const SIZED_LABEL: &str = "cc-sized";

/// Label of the per-case derived GC engine: first-invocation JIT under
/// the forcing tiny nursery ([`GcConfig::tiny_nursery`]), the only
/// perf engine that runs the generational collector.
pub const GC_LABEL: &str = "gc-tiny";

/// Engine labels a perf run can produce, in report order: the
/// correctness matrix plus [`SIZED_LABEL`] and [`GC_LABEL`].
pub const PERF_LABELS: [&str; 13] = [
    "interp",
    "interp-fold",
    "jit",
    "thresh",
    "tiered",
    "cc-lru",
    "cc-swlru",
    "cc-hot",
    "ir-interp",
    "ir-jit",
    "ir-cc",
    SIZED_LABEL,
    GC_LABEL,
];

/// One engine's cost vector for one case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostVector {
    /// Bytecodes executed.
    pub bytecodes: u64,
    /// Total native trace events emitted (every event fetches its pc,
    /// so this equals the instruction-sweep reference count).
    pub events: u64,
    /// Translate-phase slice of `events`.
    pub translate_events: u64,
    /// Translator instructions per the VM counters (sum of `T_i`).
    pub translate_insts: u64,
    /// Optimizing-tier slice of `translate_insts`.
    pub opt_translate_insts: u64,
    /// Methods translated (counting re-translations and upgrades).
    pub methods_translated: u64,
    /// Re-translations at the optimizing tier.
    pub tier2_recompiles: u64,
    /// Successful code-cache installs.
    pub code_installs: u64,
    /// Code-cache evictions.
    pub code_evictions: u64,
    /// Installs abandoned because the method cannot fit at all.
    pub code_install_failures: u64,
    /// Installs of previously-evicted keys.
    pub retranslations: u64,
    /// Cumulative code bytes ever installed.
    pub code_ever_bytes: u64,
    /// Methods lowered to register IR (IR engines only).
    pub methods_lowered: u64,
    /// IR handler dispatches (IR interpreter only; fusion makes this
    /// at most one per executed bytecode).
    pub ir_dispatches: u64,
    /// Simulated paper-L1 instruction-cache misses.
    pub icache_misses: u64,
    /// Simulated paper-L1 data-cache misses.
    pub dcache_misses: u64,
    /// `Phase::Gc` slice of `events` (collection work on the trace).
    pub gc_events: u64,
    /// `Phase::GcBarrier` slice of `events` (card barriers on the
    /// trace).
    pub gc_barrier_events: u64,
    /// Collector instructions per the VM counters.
    pub gc_insts: u64,
    /// Write-barrier instructions per the VM counters.
    pub gc_barrier_insts: u64,
    /// Minor (nursery) collections.
    pub gc_minor: u64,
    /// Major (full) collections.
    pub gc_major: u64,
    /// Bytes moved by GC evacuation/compaction.
    pub gc_copied_bytes: u64,
    /// Total bytes the program ever allocated on the Java heap.
    pub heap_alloc_bytes: u64,
    /// Executed `putfield`/`putstatic`/`arrstore` bytecodes — every
    /// opcode that *can* take a card barrier (the `arrstore` dispatch
    /// index is shared across element kinds, so this over-counts:
    /// safe for the upper bound).
    pub ref_store_ops: u64,
    /// 1 when the run ended in a runtime fault. A faulting step's
    /// dispatch is charged but its bytecode is not, so the
    /// ir-dispatch-bound invariant widens by exactly this much.
    pub faulted: u64,
}

impl CostVector {
    /// Extracts the vector from an observed run and its measuring
    /// sweep.
    pub fn collect(run: &ObservedRun, sweep: &SplitSweep) -> CostVector {
        let i = &sweep.icache().results()[0];
        let d = &sweep.dcache().results()[0];
        let opcount = |op: Op| {
            run.observables
                .opcode_counts
                .get(usize::from(op.dispatch_index()))
                .copied()
                .unwrap_or(0)
        };
        CostVector {
            bytecodes: run.counters.bytecodes,
            events: i.stats().refs(),
            translate_events: i.translate_stats().refs(),
            translate_insts: run.counters.translate_insts,
            opt_translate_insts: run.counters.opt_translate_insts,
            methods_translated: u64::from(run.counters.methods_translated),
            tier2_recompiles: u64::from(run.counters.tier2_recompiles),
            code_installs: run.counters.code_installs,
            code_evictions: run.counters.code_evictions,
            code_install_failures: run.counters.code_install_failures,
            retranslations: run.counters.retranslations,
            code_ever_bytes: run.counters.code_ever_bytes,
            methods_lowered: u64::from(run.counters.methods_lowered),
            ir_dispatches: run.counters.ir_dispatches,
            icache_misses: i.stats().misses(),
            dcache_misses: d.stats().misses(),
            gc_events: i.gc_stats().refs(),
            gc_barrier_events: i.gc_barrier_stats().refs(),
            gc_insts: run.counters.gc_insts,
            gc_barrier_insts: run.counters.gc_barrier_insts,
            gc_minor: run.counters.gc_minor,
            gc_major: run.counters.gc_major,
            gc_copied_bytes: run.counters.gc_copied_bytes,
            heap_alloc_bytes: run.counters.heap_alloc_bytes,
            ref_store_ops: opcount(Op::PutField(CpIndex(0)))
                + opcount(Op::PutStatic(CpIndex(0)))
                + opcount(Op::ArrStore(ArrayKind::Ref)),
            faulted: u64::from(run.observables.outcome.is_err()),
        }
    }

    /// `(name, value)` pairs in a fixed order — the render/floor
    /// surface.
    pub fn metrics(&self) -> [(&'static str, u64); 25] {
        [
            ("bytecodes", self.bytecodes),
            ("events", self.events),
            ("translate_events", self.translate_events),
            ("translate_insts", self.translate_insts),
            ("opt_translate_insts", self.opt_translate_insts),
            ("methods_translated", self.methods_translated),
            ("tier2_recompiles", self.tier2_recompiles),
            ("code_installs", self.code_installs),
            ("code_evictions", self.code_evictions),
            ("code_install_failures", self.code_install_failures),
            ("retranslations", self.retranslations),
            ("code_ever_bytes", self.code_ever_bytes),
            ("methods_lowered", self.methods_lowered),
            ("ir_dispatches", self.ir_dispatches),
            ("icache_misses", self.icache_misses),
            ("dcache_misses", self.dcache_misses),
            ("gc_events", self.gc_events),
            ("gc_barrier_events", self.gc_barrier_events),
            ("gc_insts", self.gc_insts),
            ("gc_barrier_insts", self.gc_barrier_insts),
            ("gc_minor", self.gc_minor),
            ("gc_major", self.gc_major),
            ("gc_copied_bytes", self.gc_copied_bytes),
            ("heap_alloc_bytes", self.heap_alloc_bytes),
            ("ref_store_ops", self.ref_store_ops),
        ]
    }

    /// Looks a metric up by its [`CostVector::metrics`] name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.metrics()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Element-wise accumulation (for per-label run totals).
    pub fn add(&mut self, other: &CostVector) {
        self.bytecodes += other.bytecodes;
        self.events += other.events;
        self.translate_events += other.translate_events;
        self.translate_insts += other.translate_insts;
        self.opt_translate_insts += other.opt_translate_insts;
        self.methods_translated += other.methods_translated;
        self.tier2_recompiles += other.tier2_recompiles;
        self.code_installs += other.code_installs;
        self.code_evictions += other.code_evictions;
        self.code_install_failures += other.code_install_failures;
        self.retranslations += other.retranslations;
        self.code_ever_bytes += other.code_ever_bytes;
        self.methods_lowered += other.methods_lowered;
        self.ir_dispatches += other.ir_dispatches;
        self.icache_misses += other.icache_misses;
        self.dcache_misses += other.dcache_misses;
        self.gc_events += other.gc_events;
        self.gc_barrier_events += other.gc_barrier_events;
        self.gc_insts += other.gc_insts;
        self.gc_barrier_insts += other.gc_barrier_insts;
        self.gc_minor += other.gc_minor;
        self.gc_major += other.gc_major;
        self.gc_copied_bytes += other.gc_copied_bytes;
        self.heap_alloc_bytes += other.heap_alloc_bytes;
        self.ref_store_ops += other.ref_store_ops;
        self.faulted += other.faulted;
    }
}

/// A harness self-test hook for the perf oracle: corrupt the named
/// engine's cost vector after its run, proving the oracle detects,
/// attributes, and shrinks a seeded perf fault. The corruption models
/// gratuitous re-translation: a million phantom translator
/// instructions plus one more re-translation than evictions can
/// explain — every matrix label violates at least one invariant under
/// it.
#[derive(Debug, Clone, Copy)]
pub struct PerfSabotage {
    /// Matrix label whose cost vector gets corrupted.
    pub mode: &'static str,
}

fn sabotage_cost(cost: &mut CostVector) {
    cost.translate_insts += 1_000_000;
    cost.retranslations += cost.code_evictions + 1;
}

/// One detected cost-model violation, attributed to an engine and an
/// invariant.
#[derive(Debug, Clone)]
pub struct PerfFinding {
    /// Engine label the violation is attributed to.
    pub label: &'static str,
    /// Invariant name (see the module docs).
    pub invariant: &'static str,
    /// Deterministic human-readable evidence.
    pub detail: String,
}

/// The full perf-differential result of one case.
#[derive(Debug)]
pub struct PerfCase {
    /// The correctness-differential view (observables compared against
    /// the interpreter), including the derived `cc-sized` run when one
    /// was made.
    pub base: CaseResult,
    /// Per-engine cost vectors, aligned with `base.observed`.
    pub costs: Vec<(&'static str, CostVector)>,
    /// All cost-model violations, in deterministic order.
    pub violations: Vec<PerfFinding>,
}

/// Runs `program` through the matrix with measuring sinks, derives the
/// `cc-sized` engine, and checks every cost-model invariant.
pub fn run_perf_case(program: &Program, sabotage: Option<&PerfSabotage>) -> PerfCase {
    let ipoints = [CacheConfig::paper_l1_inst()];
    let dpoints = [CacheConfig::paper_l1_data()];
    let mut observed: Vec<(&'static str, ObservedRun)> = Vec::new();
    let mut costs: Vec<(&'static str, CostVector)> = Vec::new();

    let run_one = |label: &'static str,
                   cfg: VmConfig,
                   observed: &mut Vec<(&'static str, ObservedRun)>,
                   costs: &mut Vec<(&'static str, CostVector)>| {
        let mut sweep = SplitSweep::new(&ipoints, &dpoints);
        let run = Vm::new(program, cfg).run_observed(&mut sweep);
        let mut cost = CostVector::collect(&run, &sweep);
        if let Some(s) = sabotage {
            if s.mode == label {
                sabotage_cost(&mut cost);
            }
        }
        observed.push((label, run));
        costs.push((label, cost));
    };

    for (label, cfg) in engine_configs() {
        run_one(label, cfg, &mut observed, &mut costs);
    }

    // The derived engine: a bounded cache with capacity equal to every
    // code byte the unbounded JIT ever installed must behave exactly
    // like the unbounded JIT. Skipped when the case translated nothing
    // (the invariant is vacuous).
    let jit_ever = lookup(&costs, "jit").map_or(0, |c| c.code_ever_bytes);
    if jit_ever > 0 {
        let cfg = VmConfig {
            mode: ExecMode::Jit(JitPolicy::FirstInvocation),
            max_bytecodes: CASE_BUDGET,
            code_cache: CodeCacheConfig::bounded(jit_ever, EvictionPolicy::Lru),
            ..VmConfig::default()
        };
        run_one(SIZED_LABEL, cfg, &mut observed, &mut costs);
    }

    // The GC engine: first-invocation JIT under the forcing tiny
    // nursery. Always run — its observables join the differential
    // (collection schedules must be invisible) and its cost vector is
    // the only one allowed nonzero generational work.
    let gc_cfg = VmConfig {
        mode: ExecMode::Jit(JitPolicy::FirstInvocation),
        max_bytecodes: CASE_BUDGET,
        ..VmConfig::default()
    }
    .with_gc(GcConfig::tiny_nursery());
    run_one(GC_LABEL, gc_cfg, &mut observed, &mut costs);

    let reference = observed[0].1.observables.clone();
    let divergent: Vec<&'static str> = observed
        .iter()
        .skip(1)
        .filter(|(_, run)| run.observables != reference)
        .map(|(label, _)| *label)
        .collect();
    let violations = check_invariants(&costs);
    PerfCase {
        base: CaseResult {
            observed,
            divergent,
        },
        costs,
        violations,
    }
}

fn lookup<'a>(costs: &'a [(&'static str, CostVector)], label: &str) -> Option<&'a CostVector> {
    costs.iter().find(|(l, _)| *l == label).map(|(_, c)| c)
}

/// Checks every cost-model invariant over one case's vectors. Pure and
/// deterministic: the findings depend only on the vectors, in a fixed
/// order.
pub fn check_invariants(costs: &[(&'static str, CostVector)]) -> Vec<PerfFinding> {
    let mut out = Vec::new();
    let mut fail = |label: &'static str, invariant: &'static str, detail: String| {
        out.push(PerfFinding {
            label,
            invariant,
            detail,
        });
    };
    let jit = lookup(costs, "jit").copied().unwrap_or_default();

    for (label, c) in costs {
        // Per-engine consistency: counters against the trace, installs
        // against translations, churn against the reuse bound.
        if c.translate_events != c.translate_insts {
            fail(
                label,
                "translate-attribution",
                format!(
                    "translate events {} != translate_insts {}",
                    c.translate_events, c.translate_insts
                ),
            );
        }
        if c.code_installs != c.methods_translated {
            fail(
                label,
                "installs-accounting",
                format!(
                    "code_installs {} != methods_translated {}",
                    c.code_installs, c.methods_translated
                ),
            );
        }
        if c.gc_events != c.gc_insts || c.gc_barrier_events != c.gc_barrier_insts {
            fail(
                label,
                "gc-attribution",
                format!(
                    "gc events {} != gc_insts {} or barrier events {} != gc_barrier_insts {}",
                    c.gc_events, c.gc_insts, c.gc_barrier_events, c.gc_barrier_insts
                ),
            );
        }
        if c.gc_barrier_insts > 2 * c.ref_store_ops {
            fail(
                label,
                "gc-barrier-bound",
                format!(
                    "gc_barrier_insts {} > 2 * ref_store_ops {}",
                    c.gc_barrier_insts, c.ref_store_ops
                ),
            );
        }
        if c.gc_copied_bytes > c.heap_alloc_bytes {
            fail(
                label,
                "gc-copy-bound",
                format!(
                    "gc_copied_bytes {} > heap_alloc_bytes {}",
                    c.gc_copied_bytes, c.heap_alloc_bytes
                ),
            );
        }
        if *label != GC_LABEL
            && (c.gc_minor != 0
                || c.gc_major != 0
                || c.gc_copied_bytes != 0
                || c.gc_barrier_insts != 0
                || c.gc_barrier_events != 0)
        {
            fail(
                label,
                "gc-off",
                format!(
                    "non-GC engine did generational work: minors {} majors {} copied {} barriers {}/{}",
                    c.gc_minor,
                    c.gc_major,
                    c.gc_copied_bytes,
                    c.gc_barrier_insts,
                    c.gc_barrier_events
                ),
            );
        }
        if c.retranslations > c.code_evictions {
            fail(
                label,
                "churn-bound",
                format!(
                    "retranslations {} > code_evictions {}",
                    c.retranslations, c.code_evictions
                ),
            );
        }
        if c.code_evictions > c.code_installs + c.code_install_failures {
            fail(
                label,
                "churn-bound",
                format!(
                    "code_evictions {} > installs {} + install_failures {}",
                    c.code_evictions, c.code_installs, c.code_install_failures
                ),
            );
        }
        if label.starts_with("ir-") {
            if c.ir_dispatches > c.bytecodes + c.faulted {
                fail(
                    label,
                    "ir-dispatch-bound",
                    format!(
                        "ir_dispatches {} > bytecodes {} + faulted {}",
                        c.ir_dispatches, c.bytecodes, c.faulted
                    ),
                );
            }
        } else if c.ir_dispatches != 0 || c.methods_lowered != 0 {
            fail(
                label,
                "ir-counters-zero",
                format!(
                    "non-IR engine counted IR work: dispatches {} lowered {}",
                    c.ir_dispatches, c.methods_lowered
                ),
            );
        }
        match *label {
            "interp" | "interp-fold"
                if c.translate_insts != 0
                    || c.methods_translated != 0
                    || c.code_ever_bytes != 0
                    || c.translate_events != 0 =>
            {
                fail(
                    label,
                    "interp-no-translate",
                    format!(
                        "interpreter did translate work: insts {} methods {} bytes {} events {}",
                        c.translate_insts,
                        c.methods_translated,
                        c.code_ever_bytes,
                        c.translate_events
                    ),
                );
            }
            "ir-interp"
                if c.methods_translated != 0
                    || c.code_installs != 0
                    || c.code_ever_bytes != 0
                    || c.code_evictions != 0
                    || c.retranslations != 0
                    || c.code_install_failures != 0 =>
            {
                fail(
                    label,
                    "ir-interp-no-install",
                    format!(
                        "IR interpreter installed code: methods {} installs {} bytes {} evictions {} retranslations {} failures {}",
                        c.methods_translated,
                        c.code_installs,
                        c.code_ever_bytes,
                        c.code_evictions,
                        c.retranslations,
                        c.code_install_failures
                    ),
                );
            }
            "jit" | "thresh" | "tiered" | "ir-jit"
                if c.code_evictions != 0
                    || c.retranslations != 0
                    || c.code_install_failures != 0 =>
            {
                fail(
                    label,
                    "unbounded-no-churn",
                    format!(
                        "unbounded cache churned: evictions {} retranslations {} failures {}",
                        c.code_evictions, c.retranslations, c.code_install_failures
                    ),
                );
            }
            _ => {}
        }
    }

    // Relational invariants against the interpreter / unbounded JIT.
    if let (Some(fold), Some(interp)) = (lookup(costs, "interp-fold"), lookup(costs, "interp")) {
        if fold.bytecodes != interp.bytecodes || fold.events > interp.events {
            fail(
                "interp-fold",
                "fold-dispatch",
                format!(
                    "folding changed execution: bytecodes {} vs {}, events {} vs {}",
                    fold.bytecodes, interp.bytecodes, fold.events, interp.events
                ),
            );
        }
    }
    if let Some(thresh) = lookup(costs, "thresh") {
        if thresh.methods_translated > jit.methods_translated
            || thresh.translate_insts > jit.translate_insts
            || thresh.code_ever_bytes > jit.code_ever_bytes
        {
            fail(
                "thresh",
                "thresh-subset",
                format!(
                    "threshold out-translated first-invocation: methods {} vs {}, insts {} vs {}, bytes {} vs {}",
                    thresh.methods_translated,
                    jit.methods_translated,
                    thresh.translate_insts,
                    jit.translate_insts,
                    thresh.code_ever_bytes,
                    jit.code_ever_bytes
                ),
            );
        }
    }
    if let Some(tiered) = lookup(costs, "tiered") {
        let baseline = tiered
            .translate_insts
            .saturating_sub(tiered.opt_translate_insts);
        if baseline > jit.translate_insts {
            fail(
                "tiered",
                "tiered-baseline",
                format!(
                    "tiered baseline translate work {} (total {} - opt {}) > jit {}",
                    baseline,
                    tiered.translate_insts,
                    tiered.opt_translate_insts,
                    jit.translate_insts
                ),
            );
        }
    }
    if let Some(irj) = lookup(costs, "ir-jit") {
        if irj.methods_translated != jit.methods_translated
            || irj.code_ever_bytes > jit.code_ever_bytes
        {
            fail(
                "ir-jit",
                "ir-density",
                format!(
                    "IR-backed JIT not denser: methods {} vs {}, bytes {} vs {}",
                    irj.methods_translated,
                    jit.methods_translated,
                    irj.code_ever_bytes,
                    jit.code_ever_bytes
                ),
            );
        }
    }
    if let Some(sized) = lookup(costs, SIZED_LABEL) {
        if sized.code_evictions != 0
            || sized.retranslations != 0
            || sized.code_install_failures != 0
            || sized.translate_insts != jit.translate_insts
            || sized.code_ever_bytes != jit.code_ever_bytes
            || sized.methods_translated != jit.methods_translated
        {
            fail(
                SIZED_LABEL,
                "sized-capacity",
                format!(
                    "capacity == total code bytes still churned: evictions {} retranslations {} failures {} insts {} vs {} bytes {} vs {}",
                    sized.code_evictions,
                    sized.retranslations,
                    sized.code_install_failures,
                    sized.translate_insts,
                    jit.translate_insts,
                    sized.code_ever_bytes,
                    jit.code_ever_bytes
                ),
            );
        }
    }
    out
}

/// Whether `spec` still produces any cost-model violation (the perf
/// shrinker's failure predicate). Specs that no longer lower/verify
/// don't count.
pub fn spec_perf_violates(
    spec: &crate::spec::ProgramSpec,
    sabotage: Option<&PerfSabotage>,
) -> bool {
    match crate::lower::lower(spec) {
        Ok(program) => !run_perf_case(&program, sabotage).violations.is_empty(),
        Err(_) => false,
    }
}

/// Shrinks `spec` while it keeps violating a cost invariant.
pub fn shrink_perf(
    spec: &crate::spec::ProgramSpec,
    sabotage: Option<&PerfSabotage>,
) -> crate::spec::ProgramSpec {
    jrt_testkit::minimize(
        spec.clone(),
        |s| spec_perf_violates(s, sabotage),
        crate::shrink::candidates,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(label: &'static str) -> (&'static str, CostVector) {
        (label, CostVector::default())
    }

    #[test]
    fn empty_matrix_has_no_findings() {
        let costs: Vec<_> = ["interp", "interp-fold", "jit", "thresh", "tiered"]
            .into_iter()
            .map(flat)
            .collect();
        assert!(check_invariants(&costs).is_empty());
    }

    #[test]
    fn detects_interp_translate_work() {
        let mut costs = vec![flat("interp")];
        costs[0].1.translate_insts = 4;
        costs[0].1.translate_events = 4;
        let f = check_invariants(&costs);
        assert!(f.iter().any(|v| v.invariant == "interp-no-translate"));
    }

    #[test]
    fn detects_counter_trace_mismatch() {
        let mut costs = vec![flat("jit")];
        costs[0].1.translate_insts = 10;
        costs[0].1.translate_events = 9;
        let f = check_invariants(&costs);
        assert_eq!(f[0].invariant, "translate-attribution");
        assert_eq!(f[0].label, "jit");
    }

    #[test]
    fn detects_churn_over_reuse_bound() {
        let mut costs = vec![flat("cc-lru")];
        costs[0].1.retranslations = 3;
        costs[0].1.code_evictions = 2;
        let f = check_invariants(&costs);
        assert!(f.iter().any(|v| v.invariant == "churn-bound"));
    }

    #[test]
    fn sabotaged_vector_always_violates() {
        for label in crate::MATRIX_LABELS {
            let mut costs: Vec<_> = crate::MATRIX_LABELS.into_iter().map(flat).collect();
            let slot = costs.iter_mut().find(|(l, _)| *l == label).unwrap();
            sabotage_cost(&mut slot.1);
            let f = check_invariants(&costs);
            assert!(
                f.iter().any(|v| v.label == label),
                "{label}: sabotage not attributed: {f:?}"
            );
        }
    }

    #[test]
    fn detects_generational_work_on_non_gc_engine() {
        let mut costs = vec![flat("jit")];
        costs[0].1.gc_minor = 1;
        let f = check_invariants(&costs);
        assert!(f.iter().any(|v| v.invariant == "gc-off"));
    }

    #[test]
    fn detects_gc_counter_trace_mismatch() {
        let mut costs = vec![flat(GC_LABEL)];
        costs[0].1.gc_insts = 10;
        costs[0].1.gc_events = 9;
        let f = check_invariants(&costs);
        assert!(f
            .iter()
            .any(|v| v.invariant == "gc-attribution" && v.label == GC_LABEL));
    }

    #[test]
    fn detects_barrier_work_over_ref_store_bound() {
        let mut costs = vec![flat(GC_LABEL)];
        costs[0].1.ref_store_ops = 3;
        costs[0].1.gc_barrier_insts = 7;
        costs[0].1.gc_barrier_events = 7;
        let f = check_invariants(&costs);
        assert!(f.iter().any(|v| v.invariant == "gc-barrier-bound"));
    }

    #[test]
    fn detects_copying_more_than_allocated() {
        let mut costs = vec![flat(GC_LABEL)];
        costs[0].1.heap_alloc_bytes = 100;
        costs[0].1.gc_copied_bytes = 101;
        let f = check_invariants(&costs);
        assert!(f.iter().any(|v| v.invariant == "gc-copy-bound"));
    }

    #[test]
    fn metric_lookup_round_trips() {
        let c = CostVector {
            dcache_misses: 77,
            ..Default::default()
        };
        assert_eq!(c.get("dcache_misses"), Some(77));
        assert_eq!(c.get("nonsense"), None);
        for (name, _) in c.metrics() {
            assert!(c.get(name).is_some());
        }
    }
}
