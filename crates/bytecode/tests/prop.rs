//! Property tests for the bytecode ISA: decoding is total (never
//! panics), and everything the assembler emits decodes, verifies, and
//! disassembles.

use jrt_bytecode::{disasm, verify, ClassAsm, Cond, MethodAsm, Op, Program, RetKind};
use jrt_testkit::{forall, Rng};

/// Decoding arbitrary bytes returns a clean result — never a
/// panic — and reported lengths stay in bounds.
#[test]
fn decode_is_total() {
    forall!(cases = 256, seed = 0xDEC0DE, |rng| {
        let bytes = rng.vec(0..200, Rng::u8);
        let mut pc = 0usize;
        let mut steps = 0;
        while pc < bytes.len() && steps < 300 {
            match Op::decode(&bytes, pc) {
                Ok((_, len)) => {
                    assert!(len > 0);
                    assert!(pc + len <= bytes.len() + 4 + 4 * u16::MAX as usize);
                    pc += len;
                }
                Err(_) => break,
            }
            steps += 1;
        }
    });
}

/// The body of the assemble/verify/roundtrip property, shared with
/// the explicit regression cases below.
fn check_roundtrip(script: &[u8], consts: &[i32]) {
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    let mut depth = 0usize;
    let mut expected_ops: Vec<Op> = Vec::new();
    let push_op = |m: &mut MethodAsm, ops: &mut Vec<Op>, op: Op| {
        ops.push(op.clone());
        m.op(op);
    };

    for (k, &choice) in script.iter().enumerate() {
        let c = consts[k % consts.len()];
        match choice {
            0 => {
                push_op(&mut m, &mut expected_ops, Op::IConst(c));
                depth += 1;
            }
            1 if depth >= 2 => {
                push_op(&mut m, &mut expected_ops, Op::IAdd);
                depth -= 1;
            }
            2 if depth >= 2 => {
                push_op(&mut m, &mut expected_ops, Op::IXor);
                depth -= 1;
            }
            3 if depth >= 1 => {
                // Use the helper so max_locals tracks local 0.
                m.istore(0);
                expected_ops.push(Op::IStore(0));
                depth -= 1;
            }
            4 => {
                m.iload(0);
                expected_ops.push(Op::ILoad(0));
                depth += 1;
            }
            5 if depth >= 1 => {
                push_op(&mut m, &mut expected_ops, Op::Dup);
                depth += 1;
            }
            6 if depth >= 2 => {
                push_op(&mut m, &mut expected_ops, Op::Swap);
            }
            7 if depth >= 1 => {
                push_op(&mut m, &mut expected_ops, Op::Pop);
                depth -= 1;
            }
            8 => {
                m.iinc(0, c as i16);
                expected_ops.push(Op::IInc(0, c as i16));
            }
            9 if depth >= 2 => {
                push_op(&mut m, &mut expected_ops, Op::ISub);
                depth -= 1;
            }
            _ => {
                push_op(&mut m, &mut expected_ops, Op::Nop);
            }
        }
    }
    // Close the method: make sure exactly one int is on top.
    while depth > 0 {
        push_op(&mut m, &mut expected_ops, Op::Pop);
        depth -= 1;
    }
    push_op(&mut m, &mut expected_ops, Op::IConst(7));
    expected_ops.push(Op::IReturn);
    m.ireturn();

    // touch local 0 so max_locals covers it
    let mut c0 = ClassAsm::new("Main");
    c0.add_method(m);
    let program = Program::build(vec![c0], "Main", "main").expect("assembles + verifies");

    // Decode back and compare.
    let cf = program.class_file(program.entry().class);
    let def = &cf.methods[0];
    let mut pc = 0usize;
    let mut decoded = Vec::new();
    while pc < def.code.len() {
        let (op, len) = Op::decode(&def.code, pc).expect("own code decodes");
        decoded.push(op);
        pc += len;
    }
    assert_eq!(decoded, expected_ops);

    // Verification agrees when re-run, and the disassembler
    // handles every emitted instruction.
    assert!(verify::verify_method(def, &cf.pool).is_ok());
    let text = disasm::disassemble(def, &cf.pool).expect("disassembles");
    assert!(text.contains("ireturn"));
}

/// Straight-line programs built from a stack-safe op pool always
/// assemble, verify, decode back to the same instructions, and
/// disassemble.
#[test]
fn assembled_methods_verify_and_roundtrip() {
    forall!(cases = 256, seed = 0xA55E_0B1E, |rng| {
        let script = rng.vec(0..60, |r| r.u64_in(0..12) as u8);
        let consts = rng.vec(1..8, Rng::i32);
        check_roundtrip(&script, &consts);
    });
}

/// Historical failure (found by the property above under proptest):
/// a lone `iload 0` — a load of a never-stored local — must still
/// assemble, verify, and roundtrip.
#[test]
fn regression_lone_iload_of_untouched_local() {
    check_roundtrip(&[4], &[0]);
}

/// `Cond::eval` is consistent with its complement pairs.
#[test]
fn cond_complements() {
    forall!(cases = 256, seed = 0xC04D, |rng| {
        let a = rng.i32();
        let b = rng.i32();
        assert_eq!(Cond::Eq.eval(a, b), !Cond::Ne.eval(a, b));
        assert_eq!(Cond::Lt.eval(a, b), !Cond::Ge.eval(a, b));
        assert_eq!(Cond::Gt.eval(a, b), !Cond::Le.eval(a, b));
    });
}
