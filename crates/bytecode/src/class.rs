//! Class file format and whole-program container.

use crate::asm::ClassAsm;
use crate::error::BytecodeError;
use crate::pool::{ConstPool, RetKind};
use crate::verify;
use std::collections::HashMap;
use std::fmt;

/// Index of a class within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Identifies a method as (class, method-slot-in-class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId {
    /// The declaring class.
    pub class: ClassId,
    /// Index into the class's method list.
    pub index: u32,
}

/// An instance or static field declaration. All fields occupy one
/// 4-byte slot (ints and references), matching the 32-bit SPARC era
/// the paper targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name, unique within the class (including superclasses).
    pub name: String,
    /// Whether the field is static (class-level).
    pub is_static: bool,
}

/// Method modifier flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodFlags {
    /// Static methods receive no `this`.
    pub is_static: bool,
    /// Synchronized methods acquire the receiver's (or class's)
    /// monitor around the body.
    pub is_synchronized: bool,
    /// Native methods dispatch to a VM intrinsic instead of bytecode.
    pub is_native: bool,
}

/// A method definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDef {
    /// Method name (no overloading: unique per class per name).
    pub name: String,
    /// Declared argument count, excluding `this`.
    pub nargs: u8,
    /// Return kind.
    pub ret: RetKind,
    /// Frame size in local slots (arguments included).
    pub max_locals: u16,
    /// Operand stack high-water mark, computed by the verifier.
    pub max_stack: u16,
    /// Encoded bytecode.
    pub code: Vec<u8>,
    /// Modifier flags.
    pub flags: MethodFlags,
}

impl MethodDef {
    /// Total argument slots including `this` for instance methods.
    pub fn arg_slots(&self) -> u16 {
        u16::from(self.nargs) + u16::from(!self.flags.is_static)
    }
}

/// A verified class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFile {
    /// Class name, unique within the program.
    pub name: String,
    /// Superclass name, if any (single inheritance).
    pub super_name: Option<String>,
    /// Instance and static fields declared by this class.
    pub fields: Vec<FieldDef>,
    /// Methods declared by this class.
    pub methods: Vec<MethodDef>,
    /// The class's constant pool.
    pub pool: ConstPool,
}

impl ClassFile {
    /// Finds a declared method by name.
    pub fn method(&self, name: &str) -> Option<(u32, &MethodDef)> {
        self.methods
            .iter()
            .enumerate()
            .find(|(_, m)| m.name == name)
            .map(|(i, m)| (i as u32, m))
    }

    /// Total bytecode bytes across all methods.
    pub fn code_size(&self) -> u32 {
        self.methods.iter().map(|m| m.code.len() as u32).sum()
    }
}

/// A verified, closed set of classes with a designated entry point.
#[derive(Debug, Clone)]
pub struct Program {
    classes: Vec<ClassFile>,
    by_name: HashMap<String, ClassId>,
    entry: MethodId,
}

impl Program {
    /// Assembles, links, and verifies a program.
    ///
    /// # Errors
    ///
    /// Returns an error if a class is duplicated, the entry point is
    /// missing, a referenced class/field/method does not resolve, or
    /// any method fails bytecode verification.
    pub fn build(
        classes: Vec<ClassAsm>,
        entry_class: &str,
        entry_method: &str,
    ) -> Result<Program, BytecodeError> {
        let classes: Vec<ClassFile> = classes.into_iter().map(ClassAsm::finish).collect();
        Self::link(classes, entry_class, entry_method)
    }

    /// Links and verifies already-assembled classes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::build`].
    pub fn link(
        mut classes: Vec<ClassFile>,
        entry_class: &str,
        entry_method: &str,
    ) -> Result<Program, BytecodeError> {
        // Per-method verification; fills in max_stack.
        for class in &mut classes {
            let pool = class.pool.clone();
            for m in &mut class.methods {
                m.max_stack = verify::verify_method(m, &pool)?;
            }
        }

        let mut by_name = HashMap::new();
        for (i, c) in classes.iter().enumerate() {
            if by_name.insert(c.name.clone(), ClassId(i as u32)).is_some() {
                return Err(BytecodeError::DuplicateClass(c.name.clone()));
            }
        }
        let entry_cid = *by_name
            .get(entry_class)
            .ok_or_else(|| BytecodeError::Unresolved(format!("entry class {entry_class}")))?;
        let (entry_idx, entry_def) = classes[entry_cid.0 as usize]
            .method(entry_method)
            .ok_or_else(|| {
                BytecodeError::Unresolved(format!("entry method {entry_class}::{entry_method}"))
            })?;
        if !entry_def.flags.is_static {
            return Err(BytecodeError::Unresolved(format!(
                "entry method {entry_class}::{entry_method} must be static"
            )));
        }
        let program = Program {
            classes,
            by_name,
            entry: MethodId {
                class: entry_cid,
                index: entry_idx,
            },
        };
        verify::check_resolution(&program)?;
        Ok(program)
    }

    /// The program's entry point.
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this program.
    pub fn class_file(&self, id: ClassId) -> &ClassFile {
        &self.classes[id.0 as usize]
    }

    /// The method with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this program.
    pub fn method_def(&self, id: MethodId) -> &MethodDef {
        &self.classes[id.class.0 as usize].methods[id.index as usize]
    }

    /// All classes, in definition order.
    pub fn classes(&self) -> &[ClassFile] {
        &self.classes
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Resolves a method by names, searching the superclass chain
    /// upward from `class` (used for virtual dispatch tables).
    pub fn resolve_method(&self, class: &str, method: &str) -> Option<MethodId> {
        let mut cur = self.class(class)?;
        loop {
            let cf = self.class_file(cur);
            if let Some((idx, _)) = cf.method(method) {
                return Some(MethodId {
                    class: cur,
                    index: idx,
                });
            }
            match &cf.super_name {
                Some(s) => cur = self.class(s)?,
                None => return None,
            }
        }
    }

    /// The superclass chain of `id`, from the class itself up to the
    /// root.
    pub fn ancestry(&self, id: ClassId) -> Vec<ClassId> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(s) = &self.class_file(cur).super_name {
            match self.class(s) {
                Some(next) => {
                    chain.push(next);
                    cur = next;
                }
                None => break,
            }
        }
        chain
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program: {} classes", self.classes.len())?;
        for c in &self.classes {
            writeln!(
                f,
                "  class {} ({} methods, {} bytes of code)",
                c.name,
                c.methods.len(),
                c.code_size()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{ClassAsm, MethodAsm};

    fn trivial_program() -> Program {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.ret();
        c.add_method(m);
        Program::build(vec![c], "Main", "main").expect("valid program")
    }

    #[test]
    fn build_and_lookup() {
        let p = trivial_program();
        assert_eq!(p.num_classes(), 1);
        let cid = p.class("Main").unwrap();
        assert_eq!(p.class_file(cid).name, "Main");
        let entry = p.entry();
        assert_eq!(p.method_def(entry).name, "main");
    }

    #[test]
    fn missing_entry_rejected() {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.ret();
        c.add_method(m);
        assert!(Program::build(vec![c], "Main", "nope").is_err());
    }

    #[test]
    fn duplicate_class_rejected() {
        let mk = || {
            let mut c = ClassAsm::new("Main");
            let mut m = MethodAsm::new("main", 0);
            m.ret();
            c.add_method(m);
            c
        };
        assert!(matches!(
            Program::build(vec![mk(), mk()], "Main", "main"),
            Err(BytecodeError::DuplicateClass(_))
        ));
    }

    #[test]
    fn resolve_through_superclass() {
        let mut base = ClassAsm::new("Base");
        let mut m = MethodAsm::new_instance("greet", 0);
        m.ret();
        base.add_method(m);

        let mut main = ClassAsm::new("Main");
        let mut entry = MethodAsm::new("main", 0);
        entry.ret();
        main.add_method(entry);

        let derived = ClassAsm::with_super("Derived", "Base");

        let p = Program::build(vec![base, main, derived], "Main", "main").unwrap();
        let mid = p.resolve_method("Derived", "greet").expect("inherited");
        assert_eq!(mid.class, p.class("Base").unwrap());
        let chain = p.ancestry(p.class("Derived").unwrap());
        assert_eq!(chain.len(), 2);
    }
}
