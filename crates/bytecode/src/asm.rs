//! Label-based bytecode assembler.
//!
//! [`MethodAsm`] builds one method with forward/backward labels and
//! symbolic class/field/method references; [`ClassAsm`] collects
//! methods and fields into a [`ClassFile`], interning all symbolic
//! references into the class's constant pool.

use crate::class::{ClassFile, FieldDef, MethodDef, MethodFlags};
use crate::op::{ArrayKind, Cond, Op};
use crate::pool::{Const, ConstPool, CpIndex, RetKind};
use std::collections::HashMap;

/// An assembler label; create with [`MethodAsm::new_label`], place
/// with [`MethodAsm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Assembles one method.
///
/// Branch instructions take [`Label`]s; targets are resolved when the
/// enclosing [`ClassAsm`] is finished. Constant-pool operands are given
/// symbolically (class/field/method names) and interned into the
/// class pool.
#[derive(Debug, Clone)]
pub struct MethodAsm {
    name: String,
    nargs: u8,
    ret: RetKind,
    flags: MethodFlags,
    pool: ConstPool,
    ops: Vec<Op>,
    binds: HashMap<u32, usize>,
    next_label: u32,
    max_local: u16,
}

impl MethodAsm {
    /// Starts a static method with `nargs` int/ref arguments returning
    /// void. Use [`returns`](MethodAsm::returns) to change the return
    /// kind.
    pub fn new(name: &str, nargs: u8) -> Self {
        MethodAsm {
            name: name.to_owned(),
            nargs,
            ret: RetKind::Void,
            flags: MethodFlags {
                is_static: true,
                ..MethodFlags::default()
            },
            pool: ConstPool::new(),
            ops: Vec::new(),
            binds: HashMap::new(),
            next_label: 0,
            max_local: u16::from(nargs),
        }
    }

    /// Starts an instance method (`this` in local 0, arguments in
    /// locals 1..=nargs).
    pub fn new_instance(name: &str, nargs: u8) -> Self {
        let mut m = Self::new(name, nargs);
        m.flags.is_static = false;
        m.max_local = u16::from(nargs) + 1;
        m
    }

    /// Declares a native method: no bytecode; the VM dispatches to an
    /// intrinsic registered under `(class, name)`.
    pub fn native(name: &str, nargs: u8, ret: RetKind) -> Self {
        let mut m = Self::new(name, nargs);
        m.flags.is_native = true;
        m.ret = ret;
        m
    }

    /// Sets the return kind (builder style).
    pub fn returns(mut self, ret: RetKind) -> Self {
        self.ret = ret;
        self
    }

    /// Marks the method synchronized: the VM brackets the body with
    /// monitor enter/exit on the receiver (or the class object for
    /// static methods).
    pub fn synchronized(mut self) -> Self {
        self.flags.is_synchronized = true;
        self
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let prev = self.binds.insert(label.0, self.ops.len());
        assert!(prev.is_none(), "label bound twice");
        self
    }

    fn touch_local(&mut self, n: u8) {
        self.max_local = self.max_local.max(u16::from(n) + 1);
    }

    /// Emits a raw instruction. Branch-target fields of instructions
    /// emitted this way must already be resolved byte offsets; prefer
    /// the label-taking helpers.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    // ---- constants & locals -------------------------------------------------

    /// Pushes an int constant.
    pub fn iconst(&mut self, v: i32) -> &mut Self {
        self.op(Op::IConst(v))
    }

    /// Pushes null.
    pub fn aconst_null(&mut self) -> &mut Self {
        self.op(Op::AConstNull)
    }

    /// Pushes int local `n`.
    pub fn iload(&mut self, n: u8) -> &mut Self {
        self.touch_local(n);
        self.op(Op::ILoad(n))
    }

    /// Pops into int local `n`.
    pub fn istore(&mut self, n: u8) -> &mut Self {
        self.touch_local(n);
        self.op(Op::IStore(n))
    }

    /// Pushes reference local `n`.
    pub fn aload(&mut self, n: u8) -> &mut Self {
        self.touch_local(n);
        self.op(Op::ALoad(n))
    }

    /// Pops into reference local `n`.
    pub fn astore(&mut self, n: u8) -> &mut Self {
        self.touch_local(n);
        self.op(Op::AStore(n))
    }

    /// Adds `d` to int local `n`.
    pub fn iinc(&mut self, n: u8, d: i16) -> &mut Self {
        self.touch_local(n);
        self.op(Op::IInc(n, d))
    }

    // ---- stack --------------------------------------------------------------

    /// Discards the top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.op(Op::Pop)
    }

    /// Duplicates the top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.op(Op::Dup)
    }

    /// Duplicates the top of stack under the second element.
    pub fn dup_x1(&mut self) -> &mut Self {
        self.op(Op::DupX1)
    }

    /// Swaps the top two elements.
    pub fn swap(&mut self) -> &mut Self {
        self.op(Op::Swap)
    }

    // ---- arithmetic ---------------------------------------------------------

    /// Integer add.
    pub fn iadd(&mut self) -> &mut Self {
        self.op(Op::IAdd)
    }
    /// Integer subtract.
    pub fn isub(&mut self) -> &mut Self {
        self.op(Op::ISub)
    }
    /// Integer multiply.
    pub fn imul(&mut self) -> &mut Self {
        self.op(Op::IMul)
    }
    /// Integer divide.
    pub fn idiv(&mut self) -> &mut Self {
        self.op(Op::IDiv)
    }
    /// Integer remainder.
    pub fn irem(&mut self) -> &mut Self {
        self.op(Op::IRem)
    }
    /// Integer negate.
    pub fn ineg(&mut self) -> &mut Self {
        self.op(Op::INeg)
    }
    /// Shift left.
    pub fn ishl(&mut self) -> &mut Self {
        self.op(Op::IShl)
    }
    /// Arithmetic shift right.
    pub fn ishr(&mut self) -> &mut Self {
        self.op(Op::IShr)
    }
    /// Logical shift right.
    pub fn iushr(&mut self) -> &mut Self {
        self.op(Op::IUshr)
    }
    /// Bitwise and.
    pub fn iand(&mut self) -> &mut Self {
        self.op(Op::IAnd)
    }
    /// Bitwise or.
    pub fn ior(&mut self) -> &mut Self {
        self.op(Op::IOr)
    }
    /// Bitwise xor.
    pub fn ixor(&mut self) -> &mut Self {
        self.op(Op::IXor)
    }

    // ---- control flow -------------------------------------------------------

    fn branch(&mut self, make: impl FnOnce(u32) -> Op, label: Label) -> &mut Self {
        self.op(make(label.0))
    }

    /// Branch if top == 0.
    pub fn if_eq(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::If(Cond::Eq, t), l)
    }
    /// Branch if top != 0.
    pub fn if_ne(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::If(Cond::Ne, t), l)
    }
    /// Branch if top < 0.
    pub fn if_lt(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::If(Cond::Lt, t), l)
    }
    /// Branch if top >= 0.
    pub fn if_ge(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::If(Cond::Ge, t), l)
    }
    /// Branch if top > 0.
    pub fn if_gt(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::If(Cond::Gt, t), l)
    }
    /// Branch if top <= 0.
    pub fn if_le(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::If(Cond::Le, t), l)
    }

    /// Branch if the two top ints are equal.
    pub fn if_icmp_eq(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::IfICmp(Cond::Eq, t), l)
    }
    /// Branch if the two top ints differ.
    pub fn if_icmp_ne(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::IfICmp(Cond::Ne, t), l)
    }
    /// Branch if second-from-top < top.
    pub fn if_icmp_lt(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::IfICmp(Cond::Lt, t), l)
    }
    /// Branch if second-from-top >= top.
    pub fn if_icmp_ge(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::IfICmp(Cond::Ge, t), l)
    }
    /// Branch if second-from-top > top.
    pub fn if_icmp_gt(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::IfICmp(Cond::Gt, t), l)
    }
    /// Branch if second-from-top <= top.
    pub fn if_icmp_le(&mut self, l: Label) -> &mut Self {
        self.branch(|t| Op::IfICmp(Cond::Le, t), l)
    }

    /// Branch if the top reference is null.
    pub fn ifnull(&mut self, l: Label) -> &mut Self {
        self.branch(Op::IfNull, l)
    }
    /// Branch if the top reference is non-null.
    pub fn ifnonnull(&mut self, l: Label) -> &mut Self {
        self.branch(Op::IfNonNull, l)
    }
    /// Branch if the two top references are identical.
    pub fn if_acmp_eq(&mut self, l: Label) -> &mut Self {
        self.branch(Op::IfACmpEq, l)
    }
    /// Branch if the two top references differ.
    pub fn if_acmp_ne(&mut self, l: Label) -> &mut Self {
        self.branch(Op::IfACmpNe, l)
    }

    /// Unconditional branch.
    pub fn goto(&mut self, l: Label) -> &mut Self {
        self.branch(Op::Goto, l)
    }

    /// Indexed jump table over consecutive keys starting at `low`.
    pub fn tableswitch(&mut self, low: i32, default: Label, targets: &[Label]) -> &mut Self {
        self.op(Op::TableSwitch {
            low,
            default: default.0,
            targets: targets.iter().map(|l| l.0).collect(),
        })
    }

    // ---- objects, fields, arrays ---------------------------------------------

    /// Allocates an instance of `class`.
    pub fn new_obj(&mut self, class: &str) -> &mut Self {
        let cp = self.pool.intern(Const::Class {
            name: class.to_owned(),
        });
        self.op(Op::New(cp))
    }

    fn field_cp(&mut self, class: &str, field: &str) -> CpIndex {
        self.pool.intern(Const::Field {
            class: class.to_owned(),
            name: field.to_owned(),
        })
    }

    /// Loads an instance field (pops objectref).
    pub fn getfield(&mut self, class: &str, field: &str) -> &mut Self {
        let cp = self.field_cp(class, field);
        self.op(Op::GetField(cp))
    }

    /// Stores an instance field (pops objectref, value).
    pub fn putfield(&mut self, class: &str, field: &str) -> &mut Self {
        let cp = self.field_cp(class, field);
        self.op(Op::PutField(cp))
    }

    /// Loads a static field.
    pub fn getstatic(&mut self, class: &str, field: &str) -> &mut Self {
        let cp = self.field_cp(class, field);
        self.op(Op::GetStatic(cp))
    }

    /// Stores a static field.
    pub fn putstatic(&mut self, class: &str, field: &str) -> &mut Self {
        let cp = self.field_cp(class, field);
        self.op(Op::PutStatic(cp))
    }

    /// Allocates an array of the given kind (pops length).
    pub fn newarray(&mut self, kind: ArrayKind) -> &mut Self {
        self.op(Op::NewArray(kind))
    }

    /// Pushes the length of the popped array.
    pub fn arraylength(&mut self) -> &mut Self {
        self.op(Op::ArrayLength)
    }

    /// Int-array load.
    pub fn iaload(&mut self) -> &mut Self {
        self.op(Op::ArrLoad(ArrayKind::Int))
    }
    /// Int-array store.
    pub fn iastore(&mut self) -> &mut Self {
        self.op(Op::ArrStore(ArrayKind::Int))
    }
    /// Char-array load.
    pub fn caload(&mut self) -> &mut Self {
        self.op(Op::ArrLoad(ArrayKind::Char))
    }
    /// Char-array store.
    pub fn castore(&mut self) -> &mut Self {
        self.op(Op::ArrStore(ArrayKind::Char))
    }
    /// Byte-array load.
    pub fn baload(&mut self) -> &mut Self {
        self.op(Op::ArrLoad(ArrayKind::Byte))
    }
    /// Byte-array store.
    pub fn bastore(&mut self) -> &mut Self {
        self.op(Op::ArrStore(ArrayKind::Byte))
    }
    /// Ref-array load.
    pub fn aaload(&mut self) -> &mut Self {
        self.op(Op::ArrLoad(ArrayKind::Ref))
    }
    /// Ref-array store.
    pub fn aastore(&mut self) -> &mut Self {
        self.op(Op::ArrStore(ArrayKind::Ref))
    }

    // ---- calls & returns ------------------------------------------------------

    fn method_cp(&mut self, class: &str, name: &str, nargs: u8, ret: RetKind) -> CpIndex {
        self.pool.intern(Const::Method {
            class: class.to_owned(),
            name: name.to_owned(),
            nargs,
            ret,
        })
    }

    /// Calls a static method.
    pub fn invokestatic(&mut self, class: &str, name: &str, nargs: u8, ret: RetKind) -> &mut Self {
        let cp = self.method_cp(class, name, nargs, ret);
        self.op(Op::InvokeStatic(cp))
    }

    /// Calls a virtual method (receiver + args on the stack).
    pub fn invokevirtual(&mut self, class: &str, name: &str, nargs: u8, ret: RetKind) -> &mut Self {
        let cp = self.method_cp(class, name, nargs, ret);
        self.op(Op::InvokeVirtual(cp))
    }

    /// Calls a method directly, bypassing virtual dispatch.
    pub fn invokespecial(&mut self, class: &str, name: &str, nargs: u8, ret: RetKind) -> &mut Self {
        let cp = self.method_cp(class, name, nargs, ret);
        self.op(Op::InvokeSpecial(cp))
    }

    /// Returns void.
    pub fn ret(&mut self) -> &mut Self {
        self.op(Op::Return)
    }

    /// Returns an int.
    pub fn ireturn(&mut self) -> &mut Self {
        self.op(Op::IReturn)
    }

    /// Returns a reference.
    pub fn areturn(&mut self) -> &mut Self {
        self.op(Op::AReturn)
    }

    /// Enters the popped object's monitor.
    pub fn monitorenter(&mut self) -> &mut Self {
        self.op(Op::MonitorEnter)
    }

    /// Exits the popped object's monitor.
    pub fn monitorexit(&mut self) -> &mut Self {
        self.op(Op::MonitorExit)
    }

    /// Finishes the method against the enclosing class's pool:
    /// re-interns symbolic constants and resolves labels to byte
    /// offsets.
    ///
    /// # Panics
    ///
    /// Panics if a label was used but never bound.
    pub(crate) fn finish(mut self, class_pool: &mut ConstPool) -> MethodDef {
        // Remap constant-pool operands from the method-local pool into
        // the class pool.
        let remap = |pool: &ConstPool, class_pool: &mut ConstPool, cp: CpIndex| -> CpIndex {
            let c = pool.get(cp).expect("local constant exists").clone();
            class_pool.intern(c)
        };
        for op in &mut self.ops {
            match op {
                Op::New(cp)
                | Op::GetField(cp)
                | Op::PutField(cp)
                | Op::GetStatic(cp)
                | Op::PutStatic(cp)
                | Op::InvokeStatic(cp)
                | Op::InvokeVirtual(cp)
                | Op::InvokeSpecial(cp) => *cp = remap(&self.pool, class_pool, *cp),
                _ => {}
            }
        }

        // First pass: compute the byte offset of each instruction.
        let mut offsets = Vec::with_capacity(self.ops.len() + 1);
        let mut scratch = Vec::new();
        let mut off = 0u32;
        for op in &self.ops {
            offsets.push(off);
            scratch.clear();
            op.encode(&mut scratch);
            off += scratch.len() as u32;
        }
        offsets.push(off); // one past the end, for labels bound at the tail

        // Second pass: resolve labels.
        let resolve = |label_id: u32| -> u32 {
            let op_index = *self
                .binds
                .get(&label_id)
                .unwrap_or_else(|| panic!("label {label_id} used but never bound"));
            offsets[op_index]
        };
        for op in &mut self.ops {
            match op {
                Op::If(_, t)
                | Op::IfICmp(_, t)
                | Op::IfNull(t)
                | Op::IfNonNull(t)
                | Op::IfACmpEq(t)
                | Op::IfACmpNe(t)
                | Op::Goto(t) => *t = resolve(*t),
                Op::TableSwitch {
                    default, targets, ..
                } => {
                    *default = resolve(*default);
                    for t in targets {
                        *t = resolve(*t);
                    }
                }
                _ => {}
            }
        }

        // Final encode.
        let mut code = Vec::new();
        for op in &self.ops {
            op.encode(&mut code);
        }

        MethodDef {
            name: self.name,
            nargs: self.nargs,
            ret: self.ret,
            max_locals: self.max_local,
            max_stack: 0, // computed by the verifier at link time
            code,
            flags: self.flags,
        }
    }
}

/// Assembles one class.
#[derive(Debug, Clone)]
pub struct ClassAsm {
    name: String,
    super_name: Option<String>,
    fields: Vec<FieldDef>,
    methods: Vec<MethodAsm>,
}

impl ClassAsm {
    /// Starts a class with no superclass.
    pub fn new(name: &str) -> Self {
        ClassAsm {
            name: name.to_owned(),
            super_name: None,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Starts a class extending `super_name`.
    pub fn with_super(name: &str, super_name: &str) -> Self {
        let mut c = Self::new(name);
        c.super_name = Some(super_name.to_owned());
        c
    }

    /// The class's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an instance field.
    pub fn add_field(&mut self, name: &str) -> &mut Self {
        self.fields.push(FieldDef {
            name: name.to_owned(),
            is_static: false,
        });
        self
    }

    /// Declares a static field.
    pub fn add_static_field(&mut self, name: &str) -> &mut Self {
        self.fields.push(FieldDef {
            name: name.to_owned(),
            is_static: true,
        });
        self
    }

    /// Adds an assembled method.
    pub fn add_method(&mut self, m: MethodAsm) -> &mut Self {
        self.methods.push(m);
        self
    }

    /// Finishes the class, producing its [`ClassFile`].
    pub fn finish(self) -> ClassFile {
        let mut pool = ConstPool::new();
        let methods = self
            .methods
            .into_iter()
            .map(|m| m.finish(&mut pool))
            .collect();
        ClassFile {
            name: self.name,
            super_name: self.super_name,
            fields: self.fields,
            methods,
            pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut m = MethodAsm::new("m", 0);
        let top = m.new_label();
        let end = m.new_label();
        m.iconst(0).istore(0);
        m.bind(top);
        m.iload(0).iconst(10).if_icmp_ge(end);
        m.iinc(0, 1).goto(top);
        m.bind(end);
        m.ret();
        let mut pool = ConstPool::new();
        let def = m.finish(&mut pool);

        // Decode the whole method and check the branch targets land on
        // instruction boundaries.
        let mut pc = 0;
        let mut boundaries = Vec::new();
        while pc < def.code.len() {
            boundaries.push(pc as u32);
            let (_, len) = Op::decode(&def.code, pc).unwrap();
            pc += len;
        }
        let mut pc = 0;
        while pc < def.code.len() {
            let (op, len) = Op::decode(&def.code, pc).unwrap();
            for t in op.branch_targets() {
                assert!(boundaries.contains(&t), "target {t} not on a boundary");
            }
            pc += len;
        }
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut m = MethodAsm::new("m", 0);
        let l = m.new_label();
        m.goto(l).ret();
        let mut pool = ConstPool::new();
        m.finish(&mut pool);
    }

    #[test]
    fn symbolic_refs_intern_into_class_pool() {
        let mut c = ClassAsm::new("Main");
        c.add_field("x");
        let mut a = MethodAsm::new("a", 0);
        a.getstatic("Main", "x").pop().ret();
        let mut b = MethodAsm::new("b", 0);
        b.getstatic("Main", "x").pop().ret();
        c.add_method(a);
        c.add_method(b);
        let cf = c.finish();
        // One shared field constant for both methods.
        let field_consts = cf
            .pool
            .iter()
            .filter(|e| matches!(e, Const::Field { .. }))
            .count();
        assert_eq!(field_consts, 1);
    }

    #[test]
    fn max_locals_tracks_usage() {
        let mut m = MethodAsm::new("m", 2);
        m.iconst(1).istore(7).ret();
        let mut pool = ConstPool::new();
        let def = m.finish(&mut pool);
        assert_eq!(def.max_locals, 8);
        assert_eq!(def.arg_slots(), 2);
    }

    #[test]
    fn instance_method_counts_this() {
        let mut m = MethodAsm::new_instance("m", 1);
        m.ret();
        let mut pool = ConstPool::new();
        let def = m.finish(&mut pool);
        assert_eq!(def.max_locals, 2);
        assert_eq!(def.arg_slots(), 2);
        assert!(!def.flags.is_static);
    }

    #[test]
    fn native_method_has_no_code() {
        let m = MethodAsm::native("print", 1, RetKind::Void);
        let mut pool = ConstPool::new();
        let def = m.finish(&mut pool);
        assert!(def.flags.is_native);
        assert!(def.code.is_empty());
    }

    #[test]
    fn tableswitch_labels_resolve() {
        let mut m = MethodAsm::new("m", 1);
        let a = m.new_label();
        let b = m.new_label();
        let d = m.new_label();
        m.iload(0).tableswitch(0, d, &[a, b]);
        m.bind(a);
        m.iconst(1).ireturn();
        m.bind(b);
        m.iconst(2).ireturn();
        m.bind(d);
        m.iconst(0).ireturn();
        let mut pool = ConstPool::new();
        let def = m.returns(RetKind::Int).finish(&mut pool);
        let (op, _) = Op::decode(&def.code, 2).unwrap(); // after iload(0)
        match op {
            Op::TableSwitch {
                default, targets, ..
            } => {
                assert_eq!(targets.len(), 2);
                assert!(default > targets[1]);
            }
            other => panic!("expected tableswitch, got {other:?}"),
        }
    }
}
