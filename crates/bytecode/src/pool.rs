//! Per-class constant pools.

use crate::error::BytecodeError;
use std::fmt;

/// Index into a class's constant pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpIndex(pub u16);

impl fmt::Display for CpIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Return kind of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetKind {
    /// Returns nothing.
    Void,
    /// Returns an int.
    Int,
    /// Returns a reference.
    Ref,
}

impl RetKind {
    /// Number of stack slots pushed by a call returning this kind.
    pub fn slots(self) -> u32 {
        match self {
            RetKind::Void => 0,
            RetKind::Int | RetKind::Ref => 1,
        }
    }
}

/// One constant-pool entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Const {
    /// Reference to a class by name.
    Class {
        /// Class name.
        name: String,
    },
    /// Reference to an instance or static field.
    Field {
        /// Declaring class name.
        class: String,
        /// Field name.
        name: String,
    },
    /// Reference to a method.
    Method {
        /// Declaring class name.
        class: String,
        /// Method name.
        name: String,
        /// Number of declared arguments (excluding `this`).
        nargs: u8,
        /// Return kind.
        ret: RetKind,
    },
    /// An integer constant.
    Int(i32),
    /// A UTF-8 string constant (used for string data in workloads).
    Utf8(String),
}

/// A class's constant pool: an append-only, deduplicating table of
/// [`Const`] entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstPool {
    entries: Vec<Const>,
}

impl ConstPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an entry, returning its index. Identical entries share
    /// one slot.
    pub fn intern(&mut self, c: Const) -> CpIndex {
        if let Some(pos) = self.entries.iter().position(|e| *e == c) {
            return CpIndex(pos as u16);
        }
        let idx = u16::try_from(self.entries.len()).expect("constant pool overflow");
        self.entries.push(c);
        CpIndex(idx)
    }

    /// Looks up an entry.
    pub fn get(&self, idx: CpIndex) -> Option<&Const> {
        self.entries.get(usize::from(idx.0))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &Const> {
        self.entries.iter()
    }

    /// Fetches a class reference.
    ///
    /// # Errors
    ///
    /// Returns [`BytecodeError::BadConstant`] if the index is out of
    /// range or not a class entry.
    pub fn class_ref(&self, idx: CpIndex) -> Result<&str, BytecodeError> {
        match self.get(idx) {
            Some(Const::Class { name }) => Ok(name),
            _ => Err(BytecodeError::BadConstant {
                index: idx.0,
                expected: "class reference",
            }),
        }
    }

    /// Fetches a field reference as `(class, field)`.
    ///
    /// # Errors
    ///
    /// Returns [`BytecodeError::BadConstant`] if the index is out of
    /// range or not a field entry.
    pub fn field_ref(&self, idx: CpIndex) -> Result<(&str, &str), BytecodeError> {
        match self.get(idx) {
            Some(Const::Field { class, name }) => Ok((class, name)),
            _ => Err(BytecodeError::BadConstant {
                index: idx.0,
                expected: "field reference",
            }),
        }
    }

    /// Fetches a method reference as `(class, name, nargs, ret)`.
    ///
    /// # Errors
    ///
    /// Returns [`BytecodeError::BadConstant`] if the index is out of
    /// range or not a method entry.
    pub fn method_ref(&self, idx: CpIndex) -> Result<(&str, &str, u8, RetKind), BytecodeError> {
        match self.get(idx) {
            Some(Const::Method {
                class,
                name,
                nargs,
                ret,
            }) => Ok((class, name, *nargs, *ret)),
            _ => Err(BytecodeError::BadConstant {
                index: idx.0,
                expected: "method reference",
            }),
        }
    }

    /// Approximate size in bytes of this pool's loaded representation,
    /// used for the simulated class area and footprint accounting.
    pub fn loaded_size(&self) -> u32 {
        self.entries
            .iter()
            .map(|e| match e {
                Const::Class { name } => 8 + name.len() as u32,
                Const::Field { class, name } => 12 + (class.len() + name.len()) as u32,
                Const::Method { class, name, .. } => 16 + (class.len() + name.len()) as u32,
                Const::Int(_) => 8,
                Const::Utf8(s) => 8 + s.len() as u32,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut p = ConstPool::new();
        let a = p.intern(Const::Int(7));
        let b = p.intern(Const::Int(7));
        let c = p.intern(Const::Int(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn typed_getters() {
        let mut p = ConstPool::new();
        let cls = p.intern(Const::Class {
            name: "Main".into(),
        });
        let fld = p.intern(Const::Field {
            class: "Main".into(),
            name: "x".into(),
        });
        let mth = p.intern(Const::Method {
            class: "Main".into(),
            name: "run".into(),
            nargs: 2,
            ret: RetKind::Int,
        });
        assert_eq!(p.class_ref(cls).unwrap(), "Main");
        assert_eq!(p.field_ref(fld).unwrap(), ("Main", "x"));
        assert_eq!(p.method_ref(mth).unwrap(), ("Main", "run", 2, RetKind::Int));
        assert!(p.class_ref(fld).is_err());
        assert!(p.field_ref(CpIndex(99)).is_err());
    }

    #[test]
    fn loaded_size_is_positive() {
        let mut p = ConstPool::new();
        p.intern(Const::Utf8("hello".into()));
        assert!(p.loaded_size() >= 13);
    }

    #[test]
    fn ret_kind_slots() {
        assert_eq!(RetKind::Void.slots(), 0);
        assert_eq!(RetKind::Int.slots(), 1);
        assert_eq!(RetKind::Ref.slots(), 1);
    }
}
