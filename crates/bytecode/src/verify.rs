//! Structural bytecode verification.
//!
//! Run at link time ([`Program::link`](crate::Program::link)) on every
//! method:
//!
//! * the code array decodes into a contiguous instruction sequence;
//! * every branch target lands on an instruction boundary;
//! * operand-stack depth is consistent: no underflow, and all paths
//!   reaching a join agree on the depth (this also computes
//!   `max_stack`);
//! * local-variable indices stay inside the frame;
//! * constant-pool operands have the right entry kind;
//! * control cannot fall off the end of the method;
//! * return instructions match the method's declared return kind.
//!
//! Whole-program resolution ([`check_resolution`]) additionally checks
//! that every symbolic class/field/method reference resolves against
//! the defined classes and that inheritance is acyclic.

use crate::class::{MethodDef, Program};
use crate::error::BytecodeError;
use crate::op::Op;
use crate::pool::{Const, ConstPool, RetKind};
use std::collections::{HashMap, HashSet};

/// Verifies one method and returns its computed `max_stack`.
///
/// # Errors
///
/// Returns the first structural error found; see the module
/// documentation for the checked properties.
pub fn verify_method(def: &MethodDef, pool: &ConstPool) -> Result<u16, BytecodeError> {
    if def.flags.is_native {
        return Ok(0);
    }

    // Decode pass: instruction boundaries.
    let mut at: HashMap<u32, (Op, usize)> = HashMap::new();
    let mut pc = 0usize;
    while pc < def.code.len() {
        let (op, len) = Op::decode(&def.code, pc)?;
        at.insert(pc as u32, (op, len));
        pc += len;
    }

    // Abstract interpretation over stack depth.
    let mut depth_at: HashMap<u32, u32> = HashMap::new();
    let mut work = vec![(0u32, 0u32)];
    let mut max_depth = 0u32;

    while let Some((pc, depth)) = work.pop() {
        match depth_at.get(&pc) {
            Some(&d) if d == depth => continue,
            Some(&d) => {
                return Err(BytecodeError::BadStack {
                    pc: pc as usize,
                    detail: format!("join depth mismatch: {d} vs {depth}"),
                })
            }
            None => {
                depth_at.insert(pc, depth);
            }
        }

        let (op, len) = at.get(&pc).ok_or(BytecodeError::BadBranchTarget {
            pc: pc as usize,
            target: pc,
        })?;

        check_locals(op, pc, def.max_locals)?;
        let (pops, pushes) = stack_effect(op, pc, pool)?;
        if depth < pops {
            return Err(BytecodeError::BadStack {
                pc: pc as usize,
                detail: format!("underflow: depth {depth}, pops {pops}"),
            });
        }
        let next_depth = depth - pops + pushes;
        max_depth = max_depth.max(next_depth).max(depth);

        check_return(op, pc, def.ret)?;

        for target in op.branch_targets() {
            if !at.contains_key(&target) {
                return Err(BytecodeError::BadBranchTarget {
                    pc: pc as usize,
                    target,
                });
            }
            work.push((target, next_depth));
        }
        if op.falls_through() {
            let next = pc + *len as u32;
            if next as usize >= def.code.len() {
                return Err(BytecodeError::FallsOffEnd);
            }
            work.push((next, next_depth));
        }
    }

    Ok(u16::try_from(max_depth).unwrap_or(u16::MAX))
}

fn check_locals(op: &Op, pc: u32, max_locals: u16) -> Result<(), BytecodeError> {
    let idx = match op {
        Op::ILoad(n) | Op::IStore(n) | Op::ALoad(n) | Op::AStore(n) | Op::IInc(n, _) => *n,
        _ => return Ok(()),
    };
    if u16::from(idx) >= max_locals {
        return Err(BytecodeError::BadLocal {
            pc: pc as usize,
            index: idx,
        });
    }
    Ok(())
}

fn check_return(op: &Op, pc: u32, ret: RetKind) -> Result<(), BytecodeError> {
    let ok = match op {
        Op::Return => ret == RetKind::Void,
        Op::IReturn => ret == RetKind::Int,
        Op::AReturn => ret == RetKind::Ref,
        _ => return Ok(()),
    };
    if ok {
        Ok(())
    } else {
        Err(BytecodeError::BadReturn { pc: pc as usize })
    }
}

/// (pops, pushes) of one instruction; validates constant-pool operand
/// kinds along the way.
fn stack_effect(op: &Op, pc: u32, pool: &ConstPool) -> Result<(u32, u32), BytecodeError> {
    let _ = pc;
    Ok(match op {
        Op::Nop | Op::IInc(_, _) | Op::Goto(_) => (0, 0),
        Op::IConst(_) | Op::AConstNull | Op::ILoad(_) | Op::ALoad(_) => (0, 1),
        Op::IStore(_) | Op::AStore(_) | Op::Pop => (1, 0),
        Op::Dup => (1, 2),
        Op::DupX1 => (2, 3),
        Op::Swap => (2, 2),
        Op::IAdd
        | Op::ISub
        | Op::IMul
        | Op::IDiv
        | Op::IRem
        | Op::IShl
        | Op::IShr
        | Op::IUshr
        | Op::IAnd
        | Op::IOr
        | Op::IXor => (2, 1),
        Op::INeg => (1, 1),
        Op::If(_, _) | Op::IfNull(_) | Op::IfNonNull(_) | Op::TableSwitch { .. } => (1, 0),
        Op::IfICmp(_, _) | Op::IfACmpEq(_) | Op::IfACmpNe(_) => (2, 0),
        Op::New(cp) => {
            pool.class_ref(*cp)?;
            (0, 1)
        }
        Op::GetField(cp) => {
            pool.field_ref(*cp)?;
            (1, 1)
        }
        Op::PutField(cp) => {
            pool.field_ref(*cp)?;
            (2, 0)
        }
        Op::GetStatic(cp) => {
            pool.field_ref(*cp)?;
            (0, 1)
        }
        Op::PutStatic(cp) => {
            pool.field_ref(*cp)?;
            (1, 0)
        }
        Op::NewArray(_) => (1, 1),
        Op::ArrayLength => (1, 1),
        Op::ArrLoad(_) => (2, 1),
        Op::ArrStore(_) => (3, 0),
        Op::InvokeStatic(cp) => {
            let (_, _, nargs, ret) = pool.method_ref(*cp)?;
            (u32::from(nargs), ret.slots())
        }
        Op::InvokeVirtual(cp) | Op::InvokeSpecial(cp) => {
            let (_, _, nargs, ret) = pool.method_ref(*cp)?;
            (u32::from(nargs) + 1, ret.slots())
        }
        Op::Return => (0, 0),
        Op::IReturn | Op::AReturn => (1, 0),
        Op::MonitorEnter | Op::MonitorExit => (1, 0),
    })
}

/// Checks that every symbolic reference in every class resolves and
/// that inheritance is acyclic.
///
/// # Errors
///
/// Returns [`BytecodeError::Unresolved`] naming the first dangling
/// reference or cyclic class.
pub fn check_resolution(program: &Program) -> Result<(), BytecodeError> {
    for class in program.classes() {
        // Acyclic, resolvable inheritance.
        let mut visited = HashSet::new();
        let mut cur = class.name.clone();
        visited.insert(cur.clone());
        while let Some(s) = program
            .class(&cur)
            .map(|id| program.class_file(id).super_name.clone())
            .ok_or_else(|| BytecodeError::Unresolved(format!("class {cur}")))?
        {
            if !visited.insert(s.clone()) {
                return Err(BytecodeError::Unresolved(format!(
                    "cyclic inheritance through {s}"
                )));
            }
            if program.class(&s).is_none() {
                return Err(BytecodeError::Unresolved(format!("superclass {s}")));
            }
            cur = s;
        }

        // Pool references.
        for entry in class.pool.iter() {
            match entry {
                Const::Class { name } => {
                    if program.class(name).is_none() {
                        return Err(BytecodeError::Unresolved(format!("class {name}")));
                    }
                }
                Const::Field { class: c, name } => {
                    let cid = program
                        .class(c)
                        .ok_or_else(|| BytecodeError::Unresolved(format!("class {c}")))?;
                    let found = program
                        .ancestry(cid)
                        .iter()
                        .any(|&a| program.class_file(a).fields.iter().any(|f| f.name == *name));
                    if !found {
                        return Err(BytecodeError::Unresolved(format!("field {c}.{name}")));
                    }
                }
                Const::Method {
                    class: c,
                    name,
                    nargs,
                    ret,
                } => {
                    let mid = program
                        .resolve_method(c, name)
                        .ok_or_else(|| BytecodeError::Unresolved(format!("method {c}::{name}")))?;
                    let def = program.method_def(mid);
                    if def.nargs != *nargs || def.ret != *ret {
                        return Err(BytecodeError::Unresolved(format!(
                            "method {c}::{name} signature mismatch"
                        )));
                    }
                }
                Const::Int(_) | Const::Utf8(_) => {}
            }
        }
    }
    Ok(())
}

/// Re-verifies an already-linked program (both resolution and
/// per-method checks). [`Program::link`] runs this automatically.
///
/// # Errors
///
/// Returns the first verification error.
pub fn verify_program(program: &Program) -> Result<(), BytecodeError> {
    check_resolution(program)?;
    for class in program.classes() {
        for m in &class.methods {
            verify_method(m, &class.pool)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{ClassAsm, MethodAsm};
    use crate::pool::RetKind;

    fn finish(m: MethodAsm) -> (MethodDef, ConstPool) {
        let mut pool = ConstPool::new();
        let def = m.finish(&mut pool);
        (def, pool)
    }

    #[test]
    fn computes_max_stack() {
        let mut m = MethodAsm::new("m", 0);
        m.iconst(1)
            .iconst(2)
            .iconst(3)
            .iadd()
            .iadd()
            .istore(0)
            .ret();
        let (def, pool) = finish(m);
        assert_eq!(verify_method(&def, &pool).unwrap(), 3);
    }

    #[test]
    fn rejects_underflow() {
        let mut m = MethodAsm::new("m", 0);
        m.iadd().ret();
        let (def, pool) = finish(m);
        assert!(matches!(
            verify_method(&def, &pool),
            Err(BytecodeError::BadStack { .. })
        ));
    }

    #[test]
    fn rejects_join_depth_mismatch() {
        // One path pushes an extra value before the join.
        let mut m = MethodAsm::new("m", 1);
        let join = m.new_label();
        let side = m.new_label();
        m.iload(0).if_eq(side);
        m.iconst(1).goto(join);
        m.bind(side);
        m.iconst(1).iconst(2).goto(join);
        m.bind(join);
        m.istore(0).ret();
        let (def, pool) = finish(m);
        assert!(matches!(
            verify_method(&def, &pool),
            Err(BytecodeError::BadStack { .. })
        ));
    }

    #[test]
    fn rejects_fall_off_end() {
        let mut m = MethodAsm::new("m", 0);
        m.iconst(1).istore(0); // no return
        let (def, pool) = finish(m);
        assert!(matches!(
            verify_method(&def, &pool),
            Err(BytecodeError::FallsOffEnd)
        ));
    }

    #[test]
    fn rejects_wrong_return_kind() {
        let mut m = MethodAsm::new("m", 0); // returns Void
        m.iconst(1).ireturn();
        let (def, pool) = finish(m);
        assert!(matches!(
            verify_method(&def, &pool),
            Err(BytecodeError::BadReturn { .. })
        ));
    }

    #[test]
    fn rejects_local_out_of_range() {
        // Hand-build a method whose max_locals is too small.
        let mut m = MethodAsm::new("m", 0);
        m.iconst(0).istore(3).ret();
        let (mut def, pool) = finish(m);
        def.max_locals = 2;
        assert!(matches!(
            verify_method(&def, &pool),
            Err(BytecodeError::BadLocal { .. })
        ));
    }

    #[test]
    fn native_methods_skip_verification() {
        let m = MethodAsm::native("n", 3, RetKind::Int);
        let (def, pool) = finish(m);
        assert_eq!(verify_method(&def, &pool).unwrap(), 0);
    }

    #[test]
    fn resolution_catches_missing_method() {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.invokestatic("Main", "missing", 0, RetKind::Void).ret();
        c.add_method(m);
        assert!(matches!(
            Program::build(vec![c], "Main", "main"),
            Err(BytecodeError::Unresolved(_))
        ));
    }

    #[test]
    fn resolution_catches_signature_mismatch() {
        let mut c = ClassAsm::new("Main");
        let mut target = MethodAsm::new("f", 2);
        target.ret();
        c.add_method(target);
        let mut m = MethodAsm::new("main", 0);
        m.iconst(1)
            .invokestatic("Main", "f", 1, RetKind::Void)
            .ret();
        c.add_method(m);
        assert!(matches!(
            Program::build(vec![c], "Main", "main"),
            Err(BytecodeError::Unresolved(_))
        ));
    }

    #[test]
    fn resolution_catches_cyclic_inheritance() {
        let a = ClassAsm::with_super("A", "B");
        let b = ClassAsm::with_super("B", "A");
        let mut main = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.ret();
        main.add_method(m);
        assert!(Program::build(vec![a, b, main], "Main", "main").is_err());
    }

    #[test]
    fn link_fills_max_stack() {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.iconst(1).iconst(2).iadd().istore(0).ret();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").unwrap();
        let def = p.method_def(p.entry());
        assert_eq!(def.max_stack, 2);
    }
}
