//! Bytecode disassembler for debugging and golden tests.

use crate::class::MethodDef;
use crate::error::BytecodeError;
use crate::op::Op;
use crate::pool::{Const, ConstPool};
use std::fmt::Write as _;

/// Disassembles one method into one line per instruction
/// (`offset: mnemonic operands`).
///
/// # Errors
///
/// Returns an error if the code array does not decode cleanly.
///
/// # Examples
///
/// ```
/// use jrt_bytecode::{ClassAsm, MethodAsm, Program, disasm};
///
/// let mut c = ClassAsm::new("Main");
/// let mut m = MethodAsm::new("main", 0);
/// m.iconst(7).istore(0).ret();
/// c.add_method(m);
/// let p = Program::build(vec![c], "Main", "main")?;
/// let text = disasm::disassemble(p.method_def(p.entry()), &p.class_file(p.entry().class).pool)?;
/// assert!(text.contains("iconst 7"));
/// # Ok::<(), jrt_bytecode::BytecodeError>(())
/// ```
pub fn disassemble(def: &MethodDef, pool: &ConstPool) -> Result<String, BytecodeError> {
    let mut out = String::new();
    if def.flags.is_native {
        writeln!(out, "  <native {}>", def.name).expect("write to string");
        return Ok(out);
    }
    let mut pc = 0usize;
    while pc < def.code.len() {
        let (op, len) = Op::decode(&def.code, pc)?;
        writeln!(out, "{pc:6}: {}", render(&op, pool)).expect("write to string");
        pc += len;
    }
    Ok(out)
}

fn cp_text(pool: &ConstPool, idx: crate::pool::CpIndex) -> String {
    match pool.get(idx) {
        Some(Const::Class { name }) => name.clone(),
        Some(Const::Field { class, name }) => format!("{class}.{name}"),
        Some(Const::Method {
            class, name, nargs, ..
        }) => format!("{class}::{name}/{nargs}"),
        Some(Const::Int(v)) => v.to_string(),
        Some(Const::Utf8(s)) => format!("{s:?}"),
        None => format!("<bad {idx}>"),
    }
}

fn render(op: &Op, pool: &ConstPool) -> String {
    match op {
        Op::Nop => "nop".into(),
        Op::IConst(v) => format!("iconst {v}"),
        Op::AConstNull => "aconst_null".into(),
        Op::ILoad(n) => format!("iload {n}"),
        Op::IStore(n) => format!("istore {n}"),
        Op::ALoad(n) => format!("aload {n}"),
        Op::AStore(n) => format!("astore {n}"),
        Op::Pop => "pop".into(),
        Op::Dup => "dup".into(),
        Op::DupX1 => "dup_x1".into(),
        Op::Swap => "swap".into(),
        Op::IAdd => "iadd".into(),
        Op::ISub => "isub".into(),
        Op::IMul => "imul".into(),
        Op::IDiv => "idiv".into(),
        Op::IRem => "irem".into(),
        Op::INeg => "ineg".into(),
        Op::IShl => "ishl".into(),
        Op::IShr => "ishr".into(),
        Op::IUshr => "iushr".into(),
        Op::IAnd => "iand".into(),
        Op::IOr => "ior".into(),
        Op::IXor => "ixor".into(),
        Op::IInc(n, d) => format!("iinc {n}, {d}"),
        Op::If(c, t) => format!("if{} -> {t}", c.suffix()),
        Op::IfICmp(c, t) => format!("if_icmp{} -> {t}", c.suffix()),
        Op::IfNull(t) => format!("ifnull -> {t}"),
        Op::IfNonNull(t) => format!("ifnonnull -> {t}"),
        Op::IfACmpEq(t) => format!("if_acmpeq -> {t}"),
        Op::IfACmpNe(t) => format!("if_acmpne -> {t}"),
        Op::Goto(t) => format!("goto -> {t}"),
        Op::TableSwitch {
            low,
            default,
            targets,
        } => format!("tableswitch low={low} targets={targets:?} default={default}"),
        Op::New(cp) => format!("new {}", cp_text(pool, *cp)),
        Op::GetField(cp) => format!("getfield {}", cp_text(pool, *cp)),
        Op::PutField(cp) => format!("putfield {}", cp_text(pool, *cp)),
        Op::GetStatic(cp) => format!("getstatic {}", cp_text(pool, *cp)),
        Op::PutStatic(cp) => format!("putstatic {}", cp_text(pool, *cp)),
        Op::NewArray(k) => format!("newarray {}", k.prefix()),
        Op::ArrayLength => "arraylength".into(),
        Op::ArrLoad(k) => format!("{}aload", k.prefix()),
        Op::ArrStore(k) => format!("{}astore", k.prefix()),
        Op::InvokeStatic(cp) => format!("invokestatic {}", cp_text(pool, *cp)),
        Op::InvokeVirtual(cp) => format!("invokevirtual {}", cp_text(pool, *cp)),
        Op::InvokeSpecial(cp) => format!("invokespecial {}", cp_text(pool, *cp)),
        Op::Return => "return".into(),
        Op::IReturn => "ireturn".into(),
        Op::AReturn => "areturn".into(),
        Op::MonitorEnter => "monitorenter".into(),
        Op::MonitorExit => "monitorexit".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{ClassAsm, MethodAsm};
    use crate::class::Program;
    use crate::pool::RetKind;

    #[test]
    fn disassembles_every_opcode_shape() {
        let mut c = ClassAsm::new("Main");
        c.add_field("x");
        c.add_static_field("s");
        let mut helper = MethodAsm::new("helper", 1).returns(RetKind::Int);
        helper.iload(0).ireturn();
        c.add_method(helper);
        let mut m = MethodAsm::new("main", 0);
        let end = m.new_label();
        m.iconst(3)
            .invokestatic("Main", "helper", 1, RetKind::Int)
            .istore(0);
        m.iload(0).if_le(end);
        m.getstatic("Main", "s").pop();
        m.bind(end);
        m.ret();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").unwrap();
        let cf = p.class_file(p.entry().class);
        let (_, def) = cf.method("main").unwrap();
        let text = disassemble(def, &cf.pool).unwrap();
        assert!(text.contains("invokestatic Main::helper/1"));
        assert!(text.contains("getstatic Main.s"));
        assert!(text.contains("ifle"));
    }

    #[test]
    fn native_method_renders_placeholder() {
        let m = MethodAsm::native("print", 1, RetKind::Void);
        let mut pool = ConstPool::new();
        let def = m.finish(&mut pool);
        let text = disassemble(&def, &pool).unwrap();
        assert!(text.contains("<native print>"));
    }
}
