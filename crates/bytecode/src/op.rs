//! Instruction set definition, encoding, and decoding.

use crate::error::BytecodeError;
use crate::pool::CpIndex;

/// Comparison condition for conditional branches, as in the JVM's
/// `if<cond>` / `if_icmp<cond>` families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Greater than or equal.
    Ge,
    /// Greater than.
    Gt,
    /// Less than or equal.
    Le,
}

impl Cond {
    /// Evaluates the condition on `lhs ? rhs`.
    pub fn eval(self, lhs: i32, rhs: i32) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Ge => lhs >= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Le => lhs <= rhs,
        }
    }

    fn code(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Ge => 3,
            Cond::Gt => 4,
            Cond::Le => 5,
        }
    }

    fn from_code(c: u8) -> Result<Self, BytecodeError> {
        Ok(match c {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Ge,
            4 => Cond::Gt,
            5 => Cond::Le,
            _ => return Err(BytecodeError::BadCond(c)),
        })
    }

    /// JVM-style mnemonic suffix (`eq`, `ne`, …).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Gt => "gt",
            Cond::Le => "le",
        }
    }
}

/// Array element kind. Determines the element size used when laying
/// out array storage in the simulated heap (which is what the paper's
/// line-size study, Figure 8, is sensitive to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// 1-byte elements (`byte[]`).
    Byte,
    /// 2-byte elements (`char[]`).
    Char,
    /// 4-byte elements (`int[]`).
    Int,
    /// 4-byte reference elements (`Object[]`).
    Ref,
}

impl ArrayKind {
    /// Element size in bytes.
    pub fn elem_size(self) -> u32 {
        match self {
            ArrayKind::Byte => 1,
            ArrayKind::Char => 2,
            ArrayKind::Int | ArrayKind::Ref => 4,
        }
    }

    fn code(self) -> u8 {
        match self {
            ArrayKind::Byte => 0,
            ArrayKind::Char => 1,
            ArrayKind::Int => 2,
            ArrayKind::Ref => 3,
        }
    }

    fn from_code(c: u8) -> Result<Self, BytecodeError> {
        Ok(match c {
            0 => ArrayKind::Byte,
            1 => ArrayKind::Char,
            2 => ArrayKind::Int,
            3 => ArrayKind::Ref,
            _ => return Err(BytecodeError::BadArrayKind(c)),
        })
    }

    /// Mnemonic prefix (`b`, `c`, `i`, `a`).
    pub fn prefix(self) -> &'static str {
        match self {
            ArrayKind::Byte => "b",
            ArrayKind::Char => "c",
            ArrayKind::Int => "i",
            ArrayKind::Ref => "a",
        }
    }
}

/// One bytecode instruction.
///
/// Branch targets are absolute byte offsets within the method's code
/// array. Constant-pool operands ([`CpIndex`]) refer to the enclosing
/// class's pool.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Do nothing.
    Nop,
    /// Push an integer constant.
    IConst(i32),
    /// Push the null reference.
    AConstNull,
    /// Push int local `n`.
    ILoad(u8),
    /// Pop into int local `n`.
    IStore(u8),
    /// Push reference local `n`.
    ALoad(u8),
    /// Pop into reference local `n`.
    AStore(u8),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Duplicate the top of stack beneath the second element.
    DupX1,
    /// Swap the two top elements.
    Swap,
    /// Integer add.
    IAdd,
    /// Integer subtract.
    ISub,
    /// Integer multiply.
    IMul,
    /// Integer divide (traps on divide by zero).
    IDiv,
    /// Integer remainder (traps on divide by zero).
    IRem,
    /// Integer negate.
    INeg,
    /// Shift left.
    IShl,
    /// Arithmetic shift right.
    IShr,
    /// Logical shift right.
    IUshr,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,
    /// Add an immediate to int local `n` without touching the stack.
    IInc(u8, i16),
    /// Branch if top-of-stack `<cond>` 0.
    If(Cond, u32),
    /// Branch comparing the two top ints.
    IfICmp(Cond, u32),
    /// Branch if top-of-stack reference is null.
    IfNull(u32),
    /// Branch if top-of-stack reference is non-null.
    IfNonNull(u32),
    /// Branch if the two top references are identical.
    IfACmpEq(u32),
    /// Branch if the two top references differ.
    IfACmpNe(u32),
    /// Unconditional branch.
    Goto(u32),
    /// Indexed jump table: pops a key, jumps to
    /// `targets[key - low]`, or `default` when out of range.
    TableSwitch {
        /// Lowest key covered by the table.
        low: i32,
        /// Target when the key is outside `[low, low + targets.len())`.
        default: u32,
        /// Jump targets for consecutive keys starting at `low`.
        targets: Vec<u32>,
    },
    /// Allocate an instance of the class named by the pool entry.
    New(CpIndex),
    /// Push field value: pops objectref.
    GetField(CpIndex),
    /// Store field value: pops objectref, value.
    PutField(CpIndex),
    /// Push a static field value.
    GetStatic(CpIndex),
    /// Pop into a static field.
    PutStatic(CpIndex),
    /// Allocate an array: pops length, pushes arrayref.
    NewArray(ArrayKind),
    /// Push the length of the popped arrayref.
    ArrayLength,
    /// Array load: pops arrayref, index; pushes element.
    ArrLoad(ArrayKind),
    /// Array store: pops arrayref, index, value.
    ArrStore(ArrayKind),
    /// Call a static method.
    InvokeStatic(CpIndex),
    /// Call a virtual method (dispatched on the receiver's class).
    InvokeVirtual(CpIndex),
    /// Call a method directly (constructors, private methods).
    InvokeSpecial(CpIndex),
    /// Return void.
    Return,
    /// Return an int.
    IReturn,
    /// Return a reference.
    AReturn,
    /// Enter the monitor of the popped objectref.
    MonitorEnter,
    /// Exit the monitor of the popped objectref.
    MonitorExit,
}

// Opcode byte values.
const OP_NOP: u8 = 0;
const OP_ICONST: u8 = 1;
const OP_ACONST_NULL: u8 = 2;
const OP_ILOAD: u8 = 3;
const OP_ISTORE: u8 = 4;
const OP_ALOAD: u8 = 5;
const OP_ASTORE: u8 = 6;
const OP_POP: u8 = 7;
const OP_DUP: u8 = 8;
const OP_DUP_X1: u8 = 9;
const OP_SWAP: u8 = 10;
const OP_IADD: u8 = 11;
const OP_ISUB: u8 = 12;
const OP_IMUL: u8 = 13;
const OP_IDIV: u8 = 14;
const OP_IREM: u8 = 15;
const OP_INEG: u8 = 16;
const OP_ISHL: u8 = 17;
const OP_ISHR: u8 = 18;
const OP_IUSHR: u8 = 19;
const OP_IAND: u8 = 20;
const OP_IOR: u8 = 21;
const OP_IXOR: u8 = 22;
const OP_IINC: u8 = 23;
const OP_IF: u8 = 24;
const OP_IF_ICMP: u8 = 25;
const OP_IFNULL: u8 = 26;
const OP_IFNONNULL: u8 = 27;
const OP_IF_ACMPEQ: u8 = 28;
const OP_IF_ACMPNE: u8 = 29;
const OP_GOTO: u8 = 30;
const OP_TABLESWITCH: u8 = 31;
const OP_NEW: u8 = 32;
const OP_GETFIELD: u8 = 33;
const OP_PUTFIELD: u8 = 34;
const OP_GETSTATIC: u8 = 35;
const OP_PUTSTATIC: u8 = 36;
const OP_NEWARRAY: u8 = 37;
const OP_ARRAYLENGTH: u8 = 38;
const OP_ARRLOAD: u8 = 39;
const OP_ARRSTORE: u8 = 40;
const OP_INVOKESTATIC: u8 = 41;
const OP_INVOKEVIRTUAL: u8 = 42;
const OP_INVOKESPECIAL: u8 = 43;
const OP_RETURN: u8 = 44;
const OP_IRETURN: u8 = 45;
const OP_ARETURN: u8 = 46;
const OP_MONITORENTER: u8 = 47;
const OP_MONITOREXIT: u8 = 48;

impl Op {
    /// Appends the byte encoding of this instruction to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Op::Nop => out.push(OP_NOP),
            Op::IConst(v) => {
                out.push(OP_ICONST);
                out.extend_from_slice(&v.to_be_bytes());
            }
            Op::AConstNull => out.push(OP_ACONST_NULL),
            Op::ILoad(n) => out.extend_from_slice(&[OP_ILOAD, *n]),
            Op::IStore(n) => out.extend_from_slice(&[OP_ISTORE, *n]),
            Op::ALoad(n) => out.extend_from_slice(&[OP_ALOAD, *n]),
            Op::AStore(n) => out.extend_from_slice(&[OP_ASTORE, *n]),
            Op::Pop => out.push(OP_POP),
            Op::Dup => out.push(OP_DUP),
            Op::DupX1 => out.push(OP_DUP_X1),
            Op::Swap => out.push(OP_SWAP),
            Op::IAdd => out.push(OP_IADD),
            Op::ISub => out.push(OP_ISUB),
            Op::IMul => out.push(OP_IMUL),
            Op::IDiv => out.push(OP_IDIV),
            Op::IRem => out.push(OP_IREM),
            Op::INeg => out.push(OP_INEG),
            Op::IShl => out.push(OP_ISHL),
            Op::IShr => out.push(OP_ISHR),
            Op::IUshr => out.push(OP_IUSHR),
            Op::IAnd => out.push(OP_IAND),
            Op::IOr => out.push(OP_IOR),
            Op::IXor => out.push(OP_IXOR),
            Op::IInc(n, d) => {
                out.extend_from_slice(&[OP_IINC, *n]);
                out.extend_from_slice(&d.to_be_bytes());
            }
            Op::If(c, t) => {
                out.extend_from_slice(&[OP_IF, c.code()]);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::IfICmp(c, t) => {
                out.extend_from_slice(&[OP_IF_ICMP, c.code()]);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::IfNull(t) => {
                out.push(OP_IFNULL);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::IfNonNull(t) => {
                out.push(OP_IFNONNULL);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::IfACmpEq(t) => {
                out.push(OP_IF_ACMPEQ);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::IfACmpNe(t) => {
                out.push(OP_IF_ACMPNE);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::Goto(t) => {
                out.push(OP_GOTO);
                out.extend_from_slice(&t.to_be_bytes());
            }
            Op::TableSwitch {
                low,
                default,
                targets,
            } => {
                out.push(OP_TABLESWITCH);
                out.extend_from_slice(&low.to_be_bytes());
                let count = u16::try_from(targets.len()).expect("switch table too large");
                out.extend_from_slice(&count.to_be_bytes());
                out.extend_from_slice(&default.to_be_bytes());
                for t in targets {
                    out.extend_from_slice(&t.to_be_bytes());
                }
            }
            Op::New(cp) => {
                out.push(OP_NEW);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::GetField(cp) => {
                out.push(OP_GETFIELD);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::PutField(cp) => {
                out.push(OP_PUTFIELD);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::GetStatic(cp) => {
                out.push(OP_GETSTATIC);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::PutStatic(cp) => {
                out.push(OP_PUTSTATIC);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::NewArray(k) => out.extend_from_slice(&[OP_NEWARRAY, k.code()]),
            Op::ArrayLength => out.push(OP_ARRAYLENGTH),
            Op::ArrLoad(k) => out.extend_from_slice(&[OP_ARRLOAD, k.code()]),
            Op::ArrStore(k) => out.extend_from_slice(&[OP_ARRSTORE, k.code()]),
            Op::InvokeStatic(cp) => {
                out.push(OP_INVOKESTATIC);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::InvokeVirtual(cp) => {
                out.push(OP_INVOKEVIRTUAL);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::InvokeSpecial(cp) => {
                out.push(OP_INVOKESPECIAL);
                out.extend_from_slice(&cp.0.to_be_bytes());
            }
            Op::Return => out.push(OP_RETURN),
            Op::IReturn => out.push(OP_IRETURN),
            Op::AReturn => out.push(OP_ARETURN),
            Op::MonitorEnter => out.push(OP_MONITORENTER),
            Op::MonitorExit => out.push(OP_MONITOREXIT),
        }
    }

    /// Decodes the instruction at byte offset `pc`.
    ///
    /// Returns the instruction and its encoded length in bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if `pc` is out of range, the opcode byte is
    /// unknown, or the instruction's operands are truncated.
    pub fn decode(code: &[u8], pc: usize) -> Result<(Op, usize), BytecodeError> {
        let byte = |i: usize| -> Result<u8, BytecodeError> {
            code.get(pc + i)
                .copied()
                .ok_or(BytecodeError::Truncated(pc))
        };
        let u16_at = |i: usize| -> Result<u16, BytecodeError> {
            Ok(u16::from_be_bytes([byte(i)?, byte(i + 1)?]))
        };
        let u32_at = |i: usize| -> Result<u32, BytecodeError> {
            Ok(u32::from_be_bytes([
                byte(i)?,
                byte(i + 1)?,
                byte(i + 2)?,
                byte(i + 3)?,
            ]))
        };
        let i32_at = |i: usize| -> Result<i32, BytecodeError> { Ok(u32_at(i)? as i32) };

        let opcode = byte(0)?;
        Ok(match opcode {
            OP_NOP => (Op::Nop, 1),
            OP_ICONST => (Op::IConst(i32_at(1)?), 5),
            OP_ACONST_NULL => (Op::AConstNull, 1),
            OP_ILOAD => (Op::ILoad(byte(1)?), 2),
            OP_ISTORE => (Op::IStore(byte(1)?), 2),
            OP_ALOAD => (Op::ALoad(byte(1)?), 2),
            OP_ASTORE => (Op::AStore(byte(1)?), 2),
            OP_POP => (Op::Pop, 1),
            OP_DUP => (Op::Dup, 1),
            OP_DUP_X1 => (Op::DupX1, 1),
            OP_SWAP => (Op::Swap, 1),
            OP_IADD => (Op::IAdd, 1),
            OP_ISUB => (Op::ISub, 1),
            OP_IMUL => (Op::IMul, 1),
            OP_IDIV => (Op::IDiv, 1),
            OP_IREM => (Op::IRem, 1),
            OP_INEG => (Op::INeg, 1),
            OP_ISHL => (Op::IShl, 1),
            OP_ISHR => (Op::IShr, 1),
            OP_IUSHR => (Op::IUshr, 1),
            OP_IAND => (Op::IAnd, 1),
            OP_IOR => (Op::IOr, 1),
            OP_IXOR => (Op::IXor, 1),
            OP_IINC => (
                Op::IInc(byte(1)?, u16::from_be_bytes([byte(2)?, byte(3)?]) as i16),
                4,
            ),
            OP_IF => (Op::If(Cond::from_code(byte(1)?)?, u32_at(2)?), 6),
            OP_IF_ICMP => (Op::IfICmp(Cond::from_code(byte(1)?)?, u32_at(2)?), 6),
            OP_IFNULL => (Op::IfNull(u32_at(1)?), 5),
            OP_IFNONNULL => (Op::IfNonNull(u32_at(1)?), 5),
            OP_IF_ACMPEQ => (Op::IfACmpEq(u32_at(1)?), 5),
            OP_IF_ACMPNE => (Op::IfACmpNe(u32_at(1)?), 5),
            OP_GOTO => (Op::Goto(u32_at(1)?), 5),
            OP_TABLESWITCH => {
                let low = i32_at(1)?;
                let count = u16_at(5)? as usize;
                let default = u32_at(7)?;
                let mut targets = Vec::with_capacity(count);
                for k in 0..count {
                    targets.push(u32_at(11 + 4 * k)?);
                }
                (
                    Op::TableSwitch {
                        low,
                        default,
                        targets,
                    },
                    11 + 4 * count,
                )
            }
            OP_NEW => (Op::New(CpIndex(u16_at(1)?)), 3),
            OP_GETFIELD => (Op::GetField(CpIndex(u16_at(1)?)), 3),
            OP_PUTFIELD => (Op::PutField(CpIndex(u16_at(1)?)), 3),
            OP_GETSTATIC => (Op::GetStatic(CpIndex(u16_at(1)?)), 3),
            OP_PUTSTATIC => (Op::PutStatic(CpIndex(u16_at(1)?)), 3),
            OP_NEWARRAY => (Op::NewArray(ArrayKind::from_code(byte(1)?)?), 2),
            OP_ARRAYLENGTH => (Op::ArrayLength, 1),
            OP_ARRLOAD => (Op::ArrLoad(ArrayKind::from_code(byte(1)?)?), 2),
            OP_ARRSTORE => (Op::ArrStore(ArrayKind::from_code(byte(1)?)?), 2),
            OP_INVOKESTATIC => (Op::InvokeStatic(CpIndex(u16_at(1)?)), 3),
            OP_INVOKEVIRTUAL => (Op::InvokeVirtual(CpIndex(u16_at(1)?)), 3),
            OP_INVOKESPECIAL => (Op::InvokeSpecial(CpIndex(u16_at(1)?)), 3),
            OP_RETURN => (Op::Return, 1),
            OP_IRETURN => (Op::IReturn, 1),
            OP_ARETURN => (Op::AReturn, 1),
            OP_MONITORENTER => (Op::MonitorEnter, 1),
            OP_MONITOREXIT => (Op::MonitorExit, 1),
            other => return Err(BytecodeError::BadOpcode { pc, opcode: other }),
        })
    }

    /// The opcode's dispatch index, used by the interpreter's handler
    /// table and by the JIT's per-opcode code generators.
    pub fn dispatch_index(&self) -> u8 {
        // Safe: encode always emits the opcode byte first.
        let mut buf = Vec::with_capacity(1);
        self.encode(&mut buf);
        buf[0]
    }

    /// Number of distinct opcodes in the ISA.
    pub const NUM_OPCODES: usize = 49;

    /// Returns the branch targets this instruction can jump to
    /// (excluding fall-through).
    pub fn branch_targets(&self) -> Vec<u32> {
        match self {
            Op::If(_, t)
            | Op::IfICmp(_, t)
            | Op::IfNull(t)
            | Op::IfNonNull(t)
            | Op::IfACmpEq(t)
            | Op::IfACmpNe(t)
            | Op::Goto(t) => vec![*t],
            Op::TableSwitch {
                default, targets, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v
            }
            _ => Vec::new(),
        }
    }

    /// Whether control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Op::Goto(_) | Op::TableSwitch { .. } | Op::Return | Op::IReturn | Op::AReturn
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: Op) {
        let mut buf = Vec::new();
        op.encode(&mut buf);
        let (decoded, len) = Op::decode(&buf, 0).expect("decode");
        assert_eq!(decoded, op);
        assert_eq!(len, buf.len());
    }

    #[test]
    fn roundtrip_all_simple() {
        for op in [
            Op::Nop,
            Op::IConst(-123456),
            Op::AConstNull,
            Op::ILoad(7),
            Op::IStore(200),
            Op::ALoad(1),
            Op::AStore(2),
            Op::Pop,
            Op::Dup,
            Op::DupX1,
            Op::Swap,
            Op::IAdd,
            Op::ISub,
            Op::IMul,
            Op::IDiv,
            Op::IRem,
            Op::INeg,
            Op::IShl,
            Op::IShr,
            Op::IUshr,
            Op::IAnd,
            Op::IOr,
            Op::IXor,
            Op::IInc(3, -500),
            Op::If(Cond::Le, 0xDEAD),
            Op::IfICmp(Cond::Gt, 42),
            Op::IfNull(10),
            Op::IfNonNull(20),
            Op::IfACmpEq(30),
            Op::IfACmpNe(40),
            Op::Goto(0xFFFF_FFFF),
            Op::New(CpIndex(9)),
            Op::GetField(CpIndex(1)),
            Op::PutField(CpIndex(2)),
            Op::GetStatic(CpIndex(3)),
            Op::PutStatic(CpIndex(4)),
            Op::NewArray(ArrayKind::Char),
            Op::ArrayLength,
            Op::ArrLoad(ArrayKind::Byte),
            Op::ArrStore(ArrayKind::Ref),
            Op::InvokeStatic(CpIndex(5)),
            Op::InvokeVirtual(CpIndex(6)),
            Op::InvokeSpecial(CpIndex(7)),
            Op::Return,
            Op::IReturn,
            Op::AReturn,
            Op::MonitorEnter,
            Op::MonitorExit,
        ] {
            roundtrip(op);
        }
    }

    #[test]
    fn roundtrip_tableswitch() {
        roundtrip(Op::TableSwitch {
            low: -2,
            default: 99,
            targets: vec![10, 20, 30, 40],
        });
        roundtrip(Op::TableSwitch {
            low: 0,
            default: 0,
            targets: vec![],
        });
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        assert!(matches!(
            Op::decode(&[0xFF], 0),
            Err(BytecodeError::BadOpcode { .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Op::IConst(7).encode(&mut buf);
        buf.truncate(3);
        assert!(matches!(
            Op::decode(&buf, 0),
            Err(BytecodeError::Truncated(_))
        ));
    }

    #[test]
    fn cond_eval_table() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(1, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(Cond::Gt.eval(3, 2));
        assert!(Cond::Le.eval(2, 2));
        assert!(!Cond::Lt.eval(2, 1));
    }

    #[test]
    fn branch_targets_and_fallthrough() {
        assert_eq!(Op::Goto(5).branch_targets(), vec![5]);
        assert!(!Op::Goto(5).falls_through());
        assert!(Op::If(Cond::Eq, 5).falls_through());
        assert!(!Op::IReturn.falls_through());
        let ts = Op::TableSwitch {
            low: 0,
            default: 9,
            targets: vec![1, 2],
        };
        assert_eq!(ts.branch_targets(), vec![1, 2, 9]);
    }

    #[test]
    fn array_elem_sizes() {
        assert_eq!(ArrayKind::Byte.elem_size(), 1);
        assert_eq!(ArrayKind::Char.elem_size(), 2);
        assert_eq!(ArrayKind::Int.elem_size(), 4);
        assert_eq!(ArrayKind::Ref.elem_size(), 4);
    }

    #[test]
    fn dispatch_index_is_opcode_byte() {
        assert_eq!(Op::Nop.dispatch_index(), 0);
        assert_eq!(Op::MonitorExit.dispatch_index(), 48);
        assert!(usize::from(Op::MonitorExit.dispatch_index()) < Op::NUM_OPCODES);
    }
}
