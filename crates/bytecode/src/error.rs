//! Error type for bytecode construction, decoding, and verification.

use std::fmt;

/// Errors produced while encoding, decoding, assembling, or verifying
/// bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BytecodeError {
    /// An instruction's operands extend past the end of the code array.
    Truncated(usize),
    /// Unknown opcode byte at the given offset.
    BadOpcode {
        /// Offset of the bad opcode.
        pc: usize,
        /// The unknown opcode byte.
        opcode: u8,
    },
    /// Invalid condition code in an `if` encoding.
    BadCond(u8),
    /// Invalid array-kind code in an array instruction.
    BadArrayKind(u8),
    /// A constant-pool index is out of range or refers to the wrong
    /// kind of entry.
    BadConstant {
        /// The offending pool index.
        index: u16,
        /// What the instruction expected to find there.
        expected: &'static str,
    },
    /// A branch target does not land on an instruction boundary.
    BadBranchTarget {
        /// Offset of the branching instruction.
        pc: usize,
        /// The invalid target offset.
        target: u32,
    },
    /// Operand stack underflow or inconsistent depth at a join point.
    BadStack {
        /// Offset where the inconsistency was found.
        pc: usize,
        /// Explanation.
        detail: String,
    },
    /// A local-variable index is outside the method's frame.
    BadLocal {
        /// Offset of the offending instruction.
        pc: usize,
        /// The out-of-range index.
        index: u8,
    },
    /// Control flow can fall off the end of the code array.
    FallsOffEnd,
    /// A return instruction disagrees with the method's return kind.
    BadReturn {
        /// Offset of the offending return.
        pc: usize,
    },
    /// A class, method, or field was referenced but not defined.
    Unresolved(String),
    /// A class was defined more than once.
    DuplicateClass(String),
    /// A label was used but never bound (assembler misuse).
    UnboundLabel(u32),
}

impl fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BytecodeError::Truncated(pc) => write!(f, "truncated instruction at offset {pc}"),
            BytecodeError::BadOpcode { pc, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {pc}")
            }
            BytecodeError::BadCond(c) => write!(f, "invalid condition code {c}"),
            BytecodeError::BadArrayKind(c) => write!(f, "invalid array kind code {c}"),
            BytecodeError::BadConstant { index, expected } => {
                write!(f, "constant pool entry {index} is not a {expected}")
            }
            BytecodeError::BadBranchTarget { pc, target } => {
                write!(f, "branch at {pc} targets non-instruction offset {target}")
            }
            BytecodeError::BadStack { pc, detail } => {
                write!(f, "operand stack error at {pc}: {detail}")
            }
            BytecodeError::BadLocal { pc, index } => {
                write!(f, "local {index} out of range at offset {pc}")
            }
            BytecodeError::FallsOffEnd => write!(f, "control flow falls off the end of the code"),
            BytecodeError::BadReturn { pc } => {
                write!(f, "return at {pc} disagrees with method return kind")
            }
            BytecodeError::Unresolved(what) => write!(f, "unresolved reference to {what}"),
            BytecodeError::DuplicateClass(name) => write!(f, "class {name} defined twice"),
            BytecodeError::UnboundLabel(id) => write!(f, "label {id} used but never bound"),
        }
    }
}

impl std::error::Error for BytecodeError {}
