//! The `javart` bytecode ISA: a miniature JVM instruction set.
//!
//! The paper's subject is how JVM *execution techniques* (interpreting
//! the stack-machine bytecode vs. JIT-translating it to native code)
//! interact with the hardware. This crate defines the portable program
//! representation those techniques consume:
//!
//! * [`Op`] — a stack-machine instruction set modelled on the JVM's:
//!   constants, typed locals, integer arithmetic, arrays, objects with
//!   fields, static/virtual/special invocation, conditional branches,
//!   `tableswitch`, monitors, and returns; with a byte
//!   [`encoding`](Op::encode) and [`decoder`](Op::decode);
//! * [`ConstPool`] / [`Const`] — per-class constant pools holding
//!   class/field/method references resolved at class-load time;
//! * [`ClassFile`], [`MethodDef`], [`FieldDef`], [`Program`] — the
//!   class format with single inheritance and virtual dispatch;
//! * [`ClassAsm`] / [`MethodAsm`] — a label-based assembler used by
//!   the `jrt-workloads` crate to author the SpecJVM98-analog
//!   benchmarks;
//! * [`verify`](verify::verify_program) — a structural verifier
//!   (decode validity, jump targets, operand-stack depth consistency,
//!   locals bounds, constant-pool indices) run at class-load time;
//! * [`disasm`](disasm::disassemble) — a disassembler for debugging
//!   and golden tests.
//!
//! # Examples
//!
//! Assemble, verify, and disassemble a method that sums 1..=10:
//!
//! ```
//! use jrt_bytecode::{ClassAsm, MethodAsm, Program, RetKind};
//!
//! let mut class = ClassAsm::new("Main");
//! let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
//! let (sum, i) = (0, 1);
//! m.iconst(0).istore(sum).iconst(1).istore(i);
//! let top = m.new_label();
//! let done = m.new_label();
//! m.bind(top);
//! m.iload(i).iconst(10).if_icmp_gt(done);
//! m.iload(sum).iload(i).iadd().istore(sum);
//! m.iinc(i, 1).goto(top);
//! m.bind(done);
//! m.iload(sum).ireturn();
//! class.add_method(m);
//! let program = Program::build(vec![class], "Main", "main")?;
//! assert!(program.class("Main").is_some());
//! # Ok::<(), jrt_bytecode::BytecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod class;
pub mod disasm;
mod error;
mod op;
mod pool;
pub mod verify;

pub use asm::{ClassAsm, Label, MethodAsm};
pub use class::{ClassFile, ClassId, FieldDef, MethodDef, MethodFlags, MethodId, Program};
pub use error::BytecodeError;
pub use op::{ArrayKind, Cond, Op};
pub use pool::{Const, ConstPool, CpIndex, RetKind};
