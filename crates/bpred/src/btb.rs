//! Branch target buffer and return-address stack.

use jrt_trace::Addr;

/// A direct-mapped branch target buffer.
///
/// Taken branches and indirect transfers need a predicted *target* in
/// addition to a direction; the front end fetches from the BTB's
/// stored target and squashes if the resolved target differs. The
/// paper uses a 1K-entry BTB.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(Addr, Addr)>>, // (tag pc, target)
}

impl Btb {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Btb {
            entries: vec![None; entries],
        }
    }

    /// The paper's 1K-entry configuration.
    pub fn paper() -> Self {
        Self::new(1024)
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Looks up the predicted target for the transfer at `pc`.
    /// Returns `None` on a BTB miss (no entry, or tag mismatch).
    pub fn predict(&self, pc: Addr) -> Option<Addr> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs/updates the entry for `pc` with the resolved target.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }

    /// Predicts and trains in one step; returns `true` if the
    /// prediction matched the resolved target.
    pub fn predict_and_update(&mut self, pc: Addr, target: Addr) -> bool {
        let correct = self.predict(pc) == Some(target);
        self.update(pc, target);
        correct
    }
}

/// A fixed-depth return-address stack.
///
/// Calls push their fall-through address; returns pop and predict it.
/// Overflow wraps (oldest entries are lost), underflow mispredicts.
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<Addr>,
    depth: usize,
}

impl ReturnStack {
    /// Creates a RAS of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        ReturnStack {
            stack: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Typical hardware depth used in the evaluation.
    pub fn paper() -> Self {
        Self::new(8)
    }

    /// Records a call whose return address is `ret_addr`.
    pub fn push(&mut self, ret_addr: Addr) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(ret_addr);
    }

    /// Pops the predicted return target; `None` when empty.
    pub fn pop(&mut self) -> Option<Addr> {
        self.stack.pop()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_miss_then_hit() {
        let mut b = Btb::paper();
        assert_eq!(b.predict(0x4000), None);
        assert!(!b.predict_and_update(0x4000, 0x8000));
        assert!(b.predict_and_update(0x4000, 0x8000));
    }

    #[test]
    fn btb_detects_target_change() {
        let mut b = Btb::paper();
        b.update(0x4000, 0x8000);
        assert!(
            !b.predict_and_update(0x4000, 0x9000),
            "changed target must mispredict"
        );
        assert_eq!(b.predict(0x4000), Some(0x9000));
    }

    #[test]
    fn btb_tag_mismatch_is_miss() {
        let mut b = Btb::new(4);
        b.update(0x4000, 0x8000);
        // 0x4000 + 4*4*4 maps to the same index with a different tag.
        let alias = 0x4000 + 4 * 4 * 4;
        assert_eq!(b.predict(alias), None);
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut r = ReturnStack::paper();
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut r = ReturnStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "oldest entry was dropped");
    }
}
