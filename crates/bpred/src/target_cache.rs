//! A target cache for indirect branches.
//!
//! Table 2's conclusion: a plain BTB cannot predict the interpreter's
//! dispatch jump, so interpreted execution needs "a predictor
//! well-tailored for indirect branches" (the paper cites Chang, Hao &
//! Patt's *target cache*). This module implements that predictor: a
//! table of targets indexed by the branch PC XORed with a history of
//! recently seen target bits, so a dispatch site can learn
//! second-order opcode patterns (e.g. `iload` → `iadd` after one
//! context but `iload` → `iload` after another) instead of a single
//! most-recent target.

use jrt_trace::Addr;

/// A path-history-indexed indirect-target predictor.
#[derive(Debug, Clone)]
pub struct TargetCache {
    entries: Vec<Option<(Addr, Addr)>>, // (tag pc, target)
    history: u64,
    history_bits: u32,
}

impl TargetCache {
    /// Creates a target cache with `entries` slots and
    /// `history_bits` bits of target-path history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits`
    /// exceeds 16.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 16, "history_bits must be <= 16");
        TargetCache {
            entries: vec![None; entries],
            history: 0,
            history_bits,
        }
    }

    /// The configuration evaluated in the experiments: 1K entries
    /// (same storage class as the paper's BTB) with 6 bits of path
    /// history.
    pub fn paper() -> Self {
        Self::new(1024, 6)
    }

    fn index(&self, pc: Addr) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ (h << 2)) as usize) & (self.entries.len() - 1)
    }

    /// Predicts the target of the indirect branch at `pc`;
    /// `None` on a cold or tag-mismatched entry.
    pub fn predict(&self, pc: Addr) -> Option<Addr> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Trains with the resolved target and rolls the path history.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
        // Fold two well-mixed target bits into the path history so
        // distinct handler entry points get distinct history codes
        // even when their addresses are round numbers.
        let folded = (target.wrapping_mul(2654435761) >> 16) & 0x3;
        self.history = (self.history << 2) ^ folded;
    }

    /// Predicts and trains in one step; returns whether the
    /// prediction matched.
    pub fn predict_and_update(&mut self, pc: Addr, target: Addr) -> bool {
        let correct = self.predict(pc) == Some(target);
        self.update(pc, target);
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_single_target() {
        // The path history needs a few repeats to reach its steady
        // state; after that a monomorphic site always hits.
        let mut t = TargetCache::paper();
        let hits = (0..12)
            .filter(|_| t.predict_and_update(0x4000, 0x9000))
            .count();
        assert!(hits >= 8, "got {hits}");
        assert!(t.predict_and_update(0x4000, 0x9000));
    }

    #[test]
    fn learns_alternating_targets_where_btb_cannot() {
        // One branch alternating between two targets: a BTB thrashes
        // (~100% miss after warmup); the path history separates the
        // two contexts.
        let mut tc = TargetCache::paper();
        let mut btb = crate::Btb::paper();
        let (mut tc_hits, mut btb_hits) = (0, 0);
        for k in 0..400u64 {
            let target = 0x9000 + (k % 2) * 0x100;
            if tc.predict_and_update(0x4000, target) {
                tc_hits += 1;
            }
            if btb.predict_and_update(0x4000, target) {
                btb_hits += 1;
            }
        }
        assert!(
            tc_hits > 300,
            "target cache should learn the period-2 pattern, got {tc_hits}"
        );
        assert!(btb_hits < 40, "BTB must thrash, got {btb_hits}");
    }

    #[test]
    fn learns_second_order_patterns() {
        // Target sequence A A B A A B…: depends on the previous two.
        let seq = [0x9000u64, 0x9000, 0x9400];
        let mut tc = TargetCache::new(1024, 8);
        let mut hits = 0;
        for k in 0..600 {
            if tc.predict_and_update(0x4000, seq[k % 3]) {
                hits += 1;
            }
        }
        assert!(hits > 450, "period-3 pattern should be learned, got {hits}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        TargetCache::new(1000, 4);
    }
}
