//! Direction predictors: 2-bit, BHT, Gshare, GAp.

use jrt_trace::Addr;

/// A conditional-branch direction predictor.
///
/// Implementations return the predicted direction for the branch at
/// `pc` and then train themselves with the actual outcome.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc`, then updates the
    /// predictor state with the actual `taken` outcome. Returns the
    /// prediction made *before* the update.
    fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool;

    /// Human-readable predictor name, as used in Table 2 headers.
    fn name(&self) -> &'static str;
}

/// A 2-bit saturating counter: states 0–1 predict not-taken,
/// 2–3 predict taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter2(u8);

impl Counter2 {
    /// Creates a counter in the weakly-not-taken state — the
    /// conventional cold start, matching the forward-not-taken bias
    /// of compiled code (null/bounds checks, loop exits).
    pub fn new() -> Self {
        Counter2(1)
    }

    /// Current prediction.
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains toward the actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

impl Default for Counter2 {
    fn default() -> Self {
        Self::new()
    }
}

/// The paper's "simple 2-bit predictor": one shared 2-bit counter,
/// included for validation and consistency checking only.
#[derive(Debug, Clone, Default)]
pub struct TwoBit {
    counter: Counter2,
}

impl TwoBit {
    /// Creates the predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DirectionPredictor for TwoBit {
    fn predict_and_update(&mut self, _pc: Addr, taken: bool) -> bool {
        let p = self.counter.predict();
        self.counter.update(taken);
        p
    }

    fn name(&self) -> &'static str {
        "2bit"
    }
}

/// One-level branch history table: a PC-indexed table of 2-bit
/// counters. The paper uses 2K entries.
#[derive(Debug, Clone)]
pub struct Bht {
    table: Vec<Counter2>,
}

impl Bht {
    /// Creates a BHT with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Bht {
            table: vec![Counter2::new(); entries],
        }
    }

    /// The paper's 2K-entry configuration.
    pub fn paper() -> Self {
        Self::new(2048)
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }
}

impl DirectionPredictor for Bht {
    fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        let idx = self.index(pc);
        let p = self.table[idx].predict();
        self.table[idx].update(taken);
        p
    }

    fn name(&self) -> &'static str {
        "bht"
    }
}

/// Gshare: the global history register XORed into the PC index.
/// The paper uses 5 bits of global history and a 2K-entry table.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a Gshare predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits`
    /// exceeds 16.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 16, "history_bits must be <= 16");
        Gshare {
            table: vec![Counter2::new(); entries],
            history: 0,
            history_bits,
        }
    }

    /// The paper's configuration: 2K entries, 5 bits of history.
    pub fn paper() -> Self {
        Self::new(2048, 5)
    }

    fn index(&self, pc: Addr) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ h) as usize) & (self.table.len() - 1)
    }
}

impl DirectionPredictor for Gshare {
    fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        let idx = self.index(pc);
        let p = self.table[idx].predict();
        self.table[idx].update(taken);
        self.history = (self.history << 1) | u64::from(taken);
        p
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// GAp (Yeh & Patt): a global history register selecting into
/// per-address pattern tables. The paper's sizing: first level 2K
/// (per-address sets), second level 256-entry pattern tables.
#[derive(Debug, Clone)]
pub struct GAp {
    /// `sets` pattern tables of `patterns` counters each.
    tables: Vec<Counter2>,
    sets: usize,
    patterns: usize,
    history: u64,
}

impl GAp {
    /// Creates a GAp predictor with `sets` per-address pattern tables
    /// of `patterns` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `patterns` is not a power of two.
    pub fn new(sets: usize, patterns: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            patterns.is_power_of_two(),
            "patterns must be a power of two"
        );
        GAp {
            tables: vec![Counter2::new(); sets * patterns],
            sets,
            patterns,
            history: 0,
        }
    }

    /// The paper's configuration: 2K first-level entries, 256-entry
    /// second-level pattern tables.
    pub fn paper() -> Self {
        Self::new(2048, 256)
    }

    fn index(&self, pc: Addr) -> usize {
        let set = ((pc >> 2) as usize) & (self.sets - 1);
        let pat = (self.history as usize) & (self.patterns - 1);
        set * self.patterns + pat
    }
}

impl DirectionPredictor for GAp {
    fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        let idx = self.index(pc);
        let p = self.tables[idx].predict();
        self.tables[idx].update(taken);
        self.history = (self.history << 1) | u64::from(taken);
        p
    }

    fn name(&self) -> &'static str {
        "gap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train<P: DirectionPredictor>(p: &mut P, pc: Addr, pattern: &[bool]) -> usize {
        pattern
            .iter()
            .filter(|&&t| p.predict_and_update(pc, t) != t)
            .count()
    }

    #[test]
    fn counter2_saturates() {
        let mut c = Counter2::new();
        for _ in 0..10 {
            c.update(true);
        }
        assert!(c.predict());
        c.update(false);
        assert!(
            c.predict(),
            "one not-taken should not flip a saturated counter"
        );
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn bht_learns_biased_branches() {
        let mut p = Bht::paper();
        let always = vec![true; 100];
        let miss = train(&mut p, 0x4000, &always);
        assert!(
            miss <= 1,
            "biased branch should be near-perfect, got {miss}"
        );
    }

    #[test]
    fn bht_separates_pcs() {
        let mut p = Bht::paper();
        train(&mut p, 0x4000, &[true; 50]);
        train(&mut p, 0x4004, &[false; 50]);
        // Re-test both without interference.
        assert_eq!(train(&mut p, 0x4000, &[true; 10]), 0);
        assert_eq!(train(&mut p, 0x4004, &[false; 10]), 0);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // T,N,T,N… is hopeless for a per-PC 2-bit counter but trivial
        // with history.
        let pat: Vec<bool> = (0..200).map(|k| k % 2 == 0).collect();
        let mut g = Gshare::paper();
        let g_miss = train(&mut g, 0x4000, &pat);
        let mut b = Bht::paper();
        let b_miss = train(&mut b, 0x4000, &pat);
        assert!(
            g_miss < b_miss / 2,
            "gshare ({g_miss}) should beat BHT ({b_miss}) on periodic patterns"
        );
    }

    #[test]
    fn gap_learns_periodic_pattern() {
        let pat: Vec<bool> = (0..300).map(|k| k % 3 != 0).collect();
        let mut g = GAp::paper();
        let miss = train(&mut g, 0x4000, &pat);
        assert!(miss < 30, "GAp should learn period-3 patterns, got {miss}");
    }

    #[test]
    fn twobit_is_shared_across_pcs() {
        let mut p = TwoBit::new();
        train(&mut p, 0x4000, &[true; 10]);
        // A different PC sees the same (now strongly-taken) counter.
        assert!(p.predict_and_update(0x8000, true));
    }

    #[test]
    fn names() {
        assert_eq!(TwoBit::new().name(), "2bit");
        assert_eq!(Bht::paper().name(), "bht");
        assert_eq!(Gshare::paper().name(), "gshare");
        assert_eq!(GAp::paper().name(), "gap");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bht_rejects_bad_size() {
        Bht::new(1000);
    }
}
