//! Branch prediction models for the `javart` project.
//!
//! The paper (Table 2) evaluates four direction predictors — a simple
//! 2-bit counter, a one-level branch history table, Gshare with 5 bits
//! of global history, and a two-level GAp predictor — together with a
//! 1K-entry branch target buffer. Its headline observation is that the
//! interpreter's indirect-jump-dominated control flow (the bytecode
//! `switch` dispatch and virtual calls) defeats direction/target
//! prediction, while JIT-generated code behaves like conventional
//! compiled code.
//!
//! This crate reimplements those predictors:
//!
//! * [`TwoBit`] — a single, shared 2-bit saturating counter (included
//!   like in the paper for validation/consistency only);
//! * [`Bht`] — a PC-indexed table of 2-bit counters (one-level);
//! * [`Gshare`] — global history XORed into the PC index;
//! * [`GAp`] — two-level with per-address pattern tables;
//! * [`Btb`] — direct-mapped branch target buffer used for taken
//!   branches and indirect transfers;
//! * [`ReturnStack`] — a small return-address stack;
//! * [`BranchEval`] — a [`TraceSink`](jrt_trace::TraceSink) that drives all of the above from
//!   a native trace and reports the misprediction statistics of
//!   Table 2.
//!
//! # Examples
//!
//! ```
//! use jrt_bpred::{BranchEval, Gshare};
//! use jrt_trace::{NativeInst, Phase, TraceSink};
//!
//! let mut eval = BranchEval::new(Box::new(Gshare::paper()));
//! // A loop branch: taken 9 of every 10 iterations.
//! for k in 0..200 {
//!     eval.accept(&NativeInst::branch(0x1_0000, 0x0_F000, k % 10 != 9, Phase::NativeExec));
//! }
//! assert!(eval.stats().overall_rate() < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod eval;
mod predictors;
mod target_cache;

pub use btb::{Btb, ReturnStack};
pub use eval::{BranchEval, BranchStats};
pub use predictors::{Bht, DirectionPredictor, GAp, Gshare, TwoBit};
pub use target_cache::TargetCache;
