//! Trace-driven branch prediction evaluation (Table 2 of the paper).

use crate::btb::{Btb, ReturnStack};
use crate::predictors::DirectionPredictor;
use crate::target_cache::TargetCache;
use jrt_trace::{InstClass, NativeInst, TraceSink};

/// Misprediction statistics gathered by [`BranchEval`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional branches seen.
    pub cond: u64,
    /// Conditional branches mispredicted (direction or taken-target).
    pub cond_miss: u64,
    /// Indirect jumps/calls seen.
    pub indirect: u64,
    /// Indirect jumps/calls whose target was mispredicted.
    pub indirect_miss: u64,
    /// Returns seen.
    pub rets: u64,
    /// Returns mispredicted.
    pub ret_miss: u64,
    /// Direct jumps and calls (target known at decode; always correct).
    pub direct: u64,
}

impl BranchStats {
    /// Events that require prediction (conditional + indirect + return).
    pub fn predicted_events(&self) -> u64 {
        self.cond + self.indirect + self.rets
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.cond_miss + self.indirect_miss + self.ret_miss
    }

    /// Overall misprediction rate over events requiring prediction.
    pub fn overall_rate(&self) -> f64 {
        ratio(self.mispredicts(), self.predicted_events())
    }

    /// Prediction accuracy (1 − misprediction rate), as the paper
    /// quotes for Gshare ("65 to 87% in interpreter mode").
    pub fn accuracy(&self) -> f64 {
        1.0 - self.overall_rate()
    }

    /// Conditional-branch misprediction rate.
    pub fn cond_rate(&self) -> f64 {
        ratio(self.cond_miss, self.cond)
    }

    /// Indirect-transfer target misprediction rate.
    pub fn indirect_rate(&self) -> f64 {
        ratio(self.indirect_miss, self.indirect)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Drives a direction predictor, a BTB, and a return-address stack
/// from a native trace, collecting [`BranchStats`].
///
/// Prediction rules:
///
/// * conditional branch — mispredicted if the direction is wrong, or
///   if predicted taken and the BTB target differs from the resolved
///   target;
/// * indirect jump/call — mispredicted if the BTB has no entry for the
///   PC or its target differs;
/// * return — predicted by the return-address stack (empty stack
///   mispredicts); calls push their fall-through address;
/// * direct jump/call — always predicted correctly (target is in the
///   instruction word).
pub struct BranchEval {
    predictor: Box<dyn DirectionPredictor>,
    btb: Btb,
    target_cache: Option<TargetCache>,
    ras: ReturnStack,
    stats: BranchStats,
}

impl std::fmt::Debug for BranchEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchEval")
            .field("predictor", &self.predictor.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BranchEval {
    /// Creates an evaluation harness with the paper's BTB (1K entries)
    /// and an 8-deep return stack.
    pub fn new(predictor: Box<dyn DirectionPredictor>) -> Self {
        BranchEval {
            predictor,
            btb: Btb::paper(),
            target_cache: None,
            ras: ReturnStack::paper(),
            stats: BranchStats::default(),
        }
    }

    /// Adds the indirect-branch-tailored predictor the paper
    /// recommends for interpreted execution: indirect jumps/calls are
    /// predicted by a path-history [`TargetCache`] instead of the
    /// plain BTB.
    pub fn with_target_cache(mut self) -> Self {
        self.target_cache = Some(TargetCache::paper());
        self
    }

    /// The name of the wrapped direction predictor.
    pub fn predictor_name(&self) -> &'static str {
        self.predictor.name()
    }

    /// Collected statistics.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }
}

impl TraceSink for BranchEval {
    fn accept(&mut self, inst: &NativeInst) {
        let Some(ctrl) = inst.ctrl else { return };
        match inst.class {
            InstClass::CondBranch => {
                self.stats.cond += 1;
                let predicted_taken = self.predictor.predict_and_update(inst.pc, ctrl.taken);
                let mut wrong = predicted_taken != ctrl.taken;
                if ctrl.taken {
                    let target_ok = self.btb.predict_and_update(inst.pc, ctrl.target);
                    if predicted_taken && !target_ok {
                        wrong = true;
                    }
                }
                if wrong {
                    self.stats.cond_miss += 1;
                }
            }
            InstClass::IndirectJump | InstClass::IndirectCall => {
                self.stats.indirect += 1;
                let correct = match &mut self.target_cache {
                    Some(tc) => tc.predict_and_update(inst.pc, ctrl.target),
                    None => self.btb.predict_and_update(inst.pc, ctrl.target),
                };
                if !correct {
                    self.stats.indirect_miss += 1;
                }
                if inst.class == InstClass::IndirectCall {
                    self.ras.push(inst.pc + 4);
                }
            }
            InstClass::Call => {
                self.stats.direct += 1;
                self.ras.push(inst.pc + 4);
            }
            InstClass::Jump => {
                self.stats.direct += 1;
            }
            InstClass::Ret => {
                self.stats.rets += 1;
                if self.ras.pop() != Some(ctrl.target) {
                    self.stats.ret_miss += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::{Bht, Gshare};
    use jrt_trace::{NativeInst, Phase};

    const P: Phase = Phase::NativeExec;

    #[test]
    fn loop_branch_is_learned() {
        let mut e = BranchEval::new(Box::new(Bht::paper()));
        for _ in 0..100 {
            e.accept(&NativeInst::branch(0x4000, 0x3000, true, P));
        }
        assert!(e.stats().cond_rate() < 0.05);
    }

    #[test]
    fn monomorphic_indirect_hits_after_warmup() {
        let mut e = BranchEval::new(Box::new(Bht::paper()));
        for _ in 0..10 {
            e.accept(&NativeInst::indirect_call(0x4000, 0x9000, P));
        }
        assert_eq!(e.stats().indirect_miss, 1, "only the cold miss");
    }

    #[test]
    fn polymorphic_indirect_thrashes_btb() {
        let mut e = BranchEval::new(Box::new(Bht::paper()));
        // Alternating targets — the interpreter switch pathology.
        for k in 0..100u64 {
            let target = 0x9000 + (k % 2) * 0x100;
            e.accept(&NativeInst::indirect_jump(0x4000, target, P));
        }
        assert!(e.stats().indirect_rate() > 0.9);
    }

    #[test]
    fn call_ret_pairs_predict_via_ras() {
        let mut e = BranchEval::new(Box::new(Bht::paper()));
        for _ in 0..10 {
            e.accept(&NativeInst::call(0x4000, 0x9000, P));
            e.accept(&NativeInst::ret(0x9010, 0x4004, P));
        }
        assert_eq!(e.stats().ret_miss, 0);
        assert_eq!(e.stats().direct, 10);
    }

    #[test]
    fn unmatched_ret_mispredicts() {
        let mut e = BranchEval::new(Box::new(Bht::paper()));
        e.accept(&NativeInst::ret(0x9010, 0x4004, P));
        assert_eq!(e.stats().ret_miss, 1);
    }

    #[test]
    fn non_transfers_are_ignored() {
        let mut e = BranchEval::new(Box::new(Gshare::paper()));
        e.accept(&NativeInst::alu(0x4000, P));
        e.accept(&NativeInst::load(0x4004, 0x2000_0000, 4, P));
        assert_eq!(e.stats().predicted_events(), 0);
        assert_eq!(e.stats().overall_rate(), 0.0);
    }

    #[test]
    fn taken_branch_needs_correct_btb_target() {
        let mut e = BranchEval::new(Box::new(Bht::paper()));
        // Warm the direction predictor and the BTB.
        for _ in 0..5 {
            e.accept(&NativeInst::branch(0x4000, 0x3000, true, P));
        }
        let before = e.stats().cond_miss;
        // Same direction, different target (e.g. rewritten code).
        e.accept(&NativeInst::branch(0x4000, 0x3800, true, P));
        assert_eq!(e.stats().cond_miss, before + 1);
    }

    #[test]
    fn accuracy_is_complement() {
        let mut e = BranchEval::new(Box::new(Bht::paper()));
        for k in 0..10 {
            e.accept(&NativeInst::branch(0x4000, 0x3000, k % 2 == 0, P));
        }
        let s = *e.stats();
        assert!((s.accuracy() + s.overall_rate() - 1.0).abs() < 1e-12);
    }
}
