//! Synthetic native-instruction trace model for the `javart` project.
//!
//! The HPCA 2000 paper this project reproduces ("Architectural Issues in
//! Java Runtime Systems") collected SPARC instruction traces of real JVMs
//! with the Shade binary instrumentation tool and fed those traces to
//! cache simulators, branch predictors, and a superscalar processor
//! model. This crate is the synthetic stand-in for Shade: the `javart`
//! execution engines (interpreter, JIT translator, generated native
//! code) emit a stream of [`NativeInst`] events describing the
//! SPARC-like instructions a real runtime would execute, and any number
//! of [`TraceSink`] consumers observe that stream.
//!
//! The crate deliberately knows nothing about the JVM: it defines
//!
//! * the instruction event model ([`NativeInst`], [`InstClass`],
//!   [`MemRef`], [`CtrlInfo`], [`Phase`]),
//! * the simulated address-space layout ([`Region`], [`layout`]),
//! * the consumer interface ([`TraceSink`]) and combinators,
//! * a ready-made instruction-mix profiler ([`InstMix`]) reproducing the
//!   categories of Figure 2 of the paper, and
//! * compact record-once/replay-many trace [`Tape`]s mirroring the
//!   paper's Shade-trace → many-simulators pipeline, plus decoded
//!   structure-of-arrays [`AccessBlocks`] for access-level consumers
//!   and a shared integer-id hasher ([`IdHasher`]) for hot lookup paths.
//!
//! # Examples
//!
//! ```
//! use jrt_trace::{InstClass, InstMix, NativeInst, Phase, TraceSink};
//!
//! let mut mix = InstMix::new();
//! mix.accept(&NativeInst::alu(0x1000, Phase::NativeExec));
//! mix.accept(&NativeInst::load(0x1004, 0x2000_0000, 4, Phase::NativeExec));
//! assert_eq!(mix.total(), 2);
//! assert_eq!(mix.count(InstClass::Load), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod hash;
pub mod inst;
pub mod mix;
pub mod region;
pub mod sink;
pub mod store;
pub mod tape;

pub use blocks::{AccessBlock, AccessBlockSink, AccessBlocks, AccessBlocksBuilder, BLOCK_EVENTS};
pub use hash::{IdBuildHasher, IdHashMap, IdHashSet, IdHasher};
pub use inst::{AccessKind, CtrlInfo, InstClass, MemRef, NativeInst, Phase, Reg, NUM_REGS};
pub use mix::{InstMix, MixSummary};
pub use region::{layout, Region};
pub use sink::{
    merge_shards, CountingSink, MergeSink, NullSink, PhaseFilter, RecordingSink, TraceSink,
};
pub use store::{DiskTape, StoreError};
pub use tape::{content_hash, FanoutSink, Segment, Tape, TapeRecorder, SEGMENT_EVENTS};

/// A simulated memory address.
///
/// Addresses are virtual addresses in the synthetic address space
/// described by [`region::layout`]; they never refer to host memory.
pub type Addr = u64;
