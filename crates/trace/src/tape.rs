//! Record-once/replay-many trace **tapes**.
//!
//! The paper's methodology was to collect each benchmark's native
//! instruction stream *once* with Shade and then feed the recorded
//! trace to every architectural simulator (cachesim5, the branch
//! predictors, the superscalar model). This module is the synthetic
//! analog: a [`TapeRecorder`] is a [`TraceSink`] that packs the event
//! stream into a compact in-memory [`Tape`], and [`Tape::replay`]
//! regenerates the exact [`NativeInst`] sequence for any number of
//! downstream consumers — combined, if desired, through a
//! [`FanoutSink`] so one pass feeds N simulators.
//!
//! # Encoding
//!
//! Each event costs two fixed header bytes plus only the fields it
//! actually carries:
//!
//! | bytes | content |
//! |---|---|
//! | 1 | instruction class (low nibble) and phase (high nibble) |
//! | 1 | presence/outcome flags (`mem`, write, `ctrl`, taken, `dst`, `src1`, `src2`, sequential-pc) |
//! | 0–10 | pc as a zigzag-varint delta from the previous pc — omitted entirely when `pc == prev_pc + 4` (the common fall-through case) |
//! | 0–11 | memory address as a zigzag-varint delta from the previous *memory* address, plus a raw size byte |
//! | 0–10 | control target as a zigzag-varint delta from this event's pc |
//! | 0–3 | raw register bytes for `dst`/`src1`/`src2` |
//!
//! Because pcs advance mostly by one instruction and data accesses
//! show spatial locality, a typical event costs 2–5 bytes against the
//! 64 bytes of an in-memory [`NativeInst`] — small enough to retain
//! every (workload, mode) tape of a full experiment run in RAM.
//!
//! # Segments
//!
//! The byte stream is chunked into **segments** of [`SEGMENT_EVENTS`]
//! events (the last may be shorter). The recorder restarts the
//! pc/mem-addr delta state at every segment boundary and records a
//! [`Segment`] footer (byte span, event count, last pc/addr, content
//! hash), which makes each segment independently decodable: the
//! on-disk store ([`crate::store`]) streams one buffered segment at a
//! time, [`Tape::replay_range`] replays any contiguous run of
//! segments for sharded simulation, and [`Tape::tiled`] synthesizes
//! arbitrarily long tapes by repeating segments under shifted
//! data-address bases without touching the packed bytes.
//!
//! # Examples
//!
//! ```
//! use jrt_trace::{CountingSink, InstMix, NativeInst, Phase, Tape, TraceSink};
//!
//! let tape = Tape::record(|rec| {
//!     rec.accept(&NativeInst::alu(0x1000, Phase::NativeExec));
//!     rec.accept(&NativeInst::load(0x1004, 0x2000_0000, 4, Phase::NativeExec));
//! });
//! assert_eq!(tape.len(), 2);
//!
//! // One recording, many consumers.
//! let mut counts = CountingSink::new();
//! let mut mix = InstMix::new();
//! tape.replay(&mut counts);
//! tape.replay(&mut mix);
//! assert_eq!(counts.total(), mix.total());
//! ```

use crate::inst::{AccessKind, CtrlInfo, InstClass, MemRef, NativeInst, Phase};
use crate::sink::TraceSink;

// Flag bits of the second header byte.
const F_MEM: u8 = 0x01;
const F_MEM_WRITE: u8 = 0x02;
const F_CTRL: u8 = 0x04;
const F_TAKEN: u8 = 0x08;
const F_DST: u8 = 0x10;
const F_SRC1: u8 = 0x20;
const F_SRC2: u8 = 0x40;
const F_PC_SEQ: u8 = 0x80;

/// Width assumed for the sequential-pc shortcut: the synthetic ISA is
/// a fixed four-byte-instruction RISC, so fall-through is `pc + 4`.
const SEQ_STEP: u64 = 4;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(bytes: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            bytes.push(b);
            return;
        }
        bytes.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn put_delta(bytes: &mut Vec<u8>, prev: u64, now: u64) {
    put_varint(bytes, zigzag(now.wrapping_sub(prev) as i64));
}

fn get_delta(bytes: &[u8], pos: &mut usize, prev: u64) -> u64 {
    prev.wrapping_add(unzigzag(get_varint(bytes, pos)) as u64)
}

/// Events per segment: a multiple of the decoded block size
/// (4 × [`BLOCK_EVENTS`](crate::blocks::BLOCK_EVENTS)), small enough
/// that one segment's packed bytes (a few hundred KB to ~2.5 MB)
/// stream through a reusable buffer, large enough that footer and
/// delta-restart overhead stay negligible.
pub const SEGMENT_EVENTS: u64 = 4 * crate::blocks::BLOCK_EVENTS as u64;

/// FNV-1a over `bytes`, finished with the SplitMix64 finalizer —
/// the content hash stored in every [`Segment`] footer and validated
/// by the on-disk store before decoding.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One independently-decodable chunk of a tape: the footer the
/// recorder writes when it closes a segment.
///
/// `base_pc`/`base_addr` are the delta-decoder's starting values
/// (always 0 for a recorded segment; [`Tape::tiled`] shifts
/// `base_addr` to relocate a tile's data working set), and
/// `last_pc`/`last_addr` are the decoder's final values — useful for
/// validation and for resuming a decode mid-tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Offset of the segment's first byte in the tape's byte stream.
    pub byte_off: u64,
    /// Packed length of the segment in bytes.
    pub byte_len: u64,
    /// Events in the segment.
    pub events: u64,
    /// pc the delta decoder starts from (0 when recorded).
    pub base_pc: u64,
    /// Memory address the delta decoder starts from (0 when recorded;
    /// shifted by [`Tape::tiled`]).
    pub base_addr: u64,
    /// pc after the segment's last event.
    pub last_pc: u64,
    /// Memory-address delta state after the segment's last event.
    pub last_addr: u64,
    /// [`content_hash`] of the packed segment bytes.
    pub hash: u64,
}

/// Decodes `events` events from `bytes` (one segment's packed span),
/// feeding each to `sink` without calling `finish`. The delta state
/// starts at `base_pc`/`base_addr` and the final state is returned as
/// `(last_pc, last_addr)`.
pub(crate) fn decode_events(
    bytes: &[u8],
    events: u64,
    base_pc: u64,
    base_addr: u64,
    sink: &mut impl TraceSink,
) -> (u64, u64) {
    let mut pos = 0usize;
    let mut prev_pc = base_pc;
    let mut prev_mem = base_addr;
    for _ in 0..events {
        let head = bytes[pos];
        let flags = bytes[pos + 1];
        pos += 2;

        let class = InstClass::ALL[usize::from(head & 0x0f)];
        let phase = Phase::ALL[usize::from(head >> 4)];

        let pc = if flags & F_PC_SEQ != 0 {
            prev_pc.wrapping_add(SEQ_STEP)
        } else {
            get_delta(bytes, &mut pos, prev_pc)
        };
        prev_pc = pc;

        let mem = if flags & F_MEM != 0 {
            let addr = get_delta(bytes, &mut pos, prev_mem);
            prev_mem = addr;
            let size = bytes[pos];
            pos += 1;
            Some(MemRef {
                addr,
                size,
                kind: if flags & F_MEM_WRITE != 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            })
        } else {
            None
        };

        let ctrl = if flags & F_CTRL != 0 {
            Some(CtrlInfo {
                target: get_delta(bytes, &mut pos, pc),
                taken: flags & F_TAKEN != 0,
            })
        } else {
            None
        };

        let mut read_reg = |on: u8| {
            if flags & on != 0 {
                let r = bytes[pos];
                pos += 1;
                Some(r)
            } else {
                None
            }
        };
        let dst = read_reg(F_DST);
        let src1 = read_reg(F_SRC1);
        let src2 = read_reg(F_SRC2);

        sink.accept(&NativeInst {
            pc,
            class,
            mem,
            ctrl,
            dst,
            src1,
            src2,
            phase,
        });
    }
    (prev_pc, prev_mem)
}

/// A compact, immutable recording of a native-instruction stream.
///
/// Produced by [`Tape::record`] (or [`TapeRecorder::into_tape`]) and
/// consumed any number of times with [`Tape::replay`]. A tape is
/// `Send + Sync`, so one recording can be shared across worker threads
/// behind an `Arc`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tape {
    bytes: Vec<u8>,
    events: u64,
    segments: Vec<Segment>,
}

impl Tape {
    /// Records whatever the closure feeds into the supplied recorder
    /// and returns the finished tape.
    ///
    /// This is the recording entry point: pass the recorder to an
    /// execution engine (it is a [`TraceSink`]) and every emitted
    /// event lands on the tape.
    pub fn record(f: impl FnOnce(&mut TapeRecorder)) -> Tape {
        let mut rec = TapeRecorder::new();
        f(&mut rec);
        rec.into_tape()
    }

    /// Number of recorded events.
    pub fn len(&self) -> u64 {
        self.events
    }

    /// Whether the tape holds no events.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Size of the packed encoding in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The tape's segments, in stream order. Every recorded event
    /// belongs to exactly one segment.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The packed byte stream the segments index into.
    pub fn segment_bytes(&self, seg: &Segment) -> &[u8] {
        &self.bytes[seg.byte_off as usize..(seg.byte_off + seg.byte_len) as usize]
    }

    /// Decodes the tape, feeding every event to `sink` in recorded
    /// order and then calling [`TraceSink::finish`] — exactly the
    /// observable behaviour of the original execution.
    pub fn replay(&self, sink: &mut impl TraceSink) {
        self.replay_range(0..self.segments.len(), sink);
    }

    /// Replays only the segments in `range` (a contiguous shard of the
    /// tape), then calls [`TraceSink::finish`]. Segment boundaries are
    /// exact event boundaries, so `replay_range(0..k)` followed by
    /// `replay_range(k..n)` into the same sink observes the same
    /// stream as a full [`Tape::replay`].
    pub fn replay_range(&self, range: std::ops::Range<usize>, sink: &mut impl TraceSink) {
        for seg in &self.segments[range] {
            decode_events(
                self.segment_bytes(seg),
                seg.events,
                seg.base_pc,
                seg.base_addr,
                sink,
            );
        }
        sink.finish();
    }

    /// Synthesizes a tape `tiles` times as long by repeating this
    /// tape's segments with each repetition's data addresses shifted
    /// by `addr_stride` bytes (tile `k` decodes with
    /// `base_addr + k * addr_stride`): same code stream, `tiles`
    /// disjoint data working sets — the billion-event-class input the
    /// out-of-core store needs without recording one. The packed bytes
    /// are stored once; only the segment index grows.
    ///
    /// Pick `addr_stride` large enough to separate the workloads'
    /// data footprints but small enough that shifted addresses stay
    /// inside their [`Region`](crate::Region)s (the data regions are
    /// 256 MiB wide).
    ///
    /// # Panics
    ///
    /// Panics when `tiles` is zero.
    pub fn tiled(&self, tiles: usize, addr_stride: u64) -> Tape {
        assert!(tiles > 0, "a tiled tape needs at least one tile");
        let mut segments = Vec::with_capacity(self.segments.len() * tiles);
        for k in 0..tiles as u64 {
            let shift = k * addr_stride;
            for seg in &self.segments {
                segments.push(Segment {
                    base_addr: seg.base_addr.wrapping_add(shift),
                    last_addr: seg.last_addr.wrapping_add(shift),
                    ..*seg
                });
            }
        }
        Tape {
            bytes: self.bytes.clone(),
            events: self.events * tiles as u64,
            segments,
        }
    }

    /// Reassembles a tape from decoded parts — the on-disk store's
    /// read path. `segments` must index into `bytes` and cover
    /// `events` events in total.
    pub(crate) fn from_parts(bytes: Vec<u8>, events: u64, segments: Vec<Segment>) -> Tape {
        debug_assert_eq!(segments.iter().map(|s| s.events).sum::<u64>(), events);
        Tape {
            bytes,
            events,
            segments,
        }
    }
}

/// A [`TraceSink`] that packs every observed event onto a [`Tape`].
///
/// Attach it to an execution (optionally alongside other sinks via a
/// [`FanoutSink`] or sink tuple), then call [`TapeRecorder::into_tape`].
#[derive(Debug, Clone, Default)]
pub struct TapeRecorder {
    tape: Tape,
    prev_pc: u64,
    prev_mem: u64,
    /// Byte offset where the open segment starts.
    seg_start: usize,
    /// Events recorded into the open segment so far.
    seg_events: u64,
}

impl TapeRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes the open segment: writes its footer and restarts the
    /// delta state so the next segment decodes independently.
    fn close_segment(&mut self) {
        let bytes = &self.tape.bytes[self.seg_start..];
        self.tape.segments.push(Segment {
            byte_off: self.seg_start as u64,
            byte_len: bytes.len() as u64,
            events: self.seg_events,
            base_pc: 0,
            base_addr: 0,
            last_pc: self.prev_pc,
            last_addr: self.prev_mem,
            hash: content_hash(bytes),
        });
        self.seg_start = self.tape.bytes.len();
        self.seg_events = 0;
        self.prev_pc = 0;
        self.prev_mem = 0;
    }

    /// Finishes recording and returns the packed tape.
    pub fn into_tape(mut self) -> Tape {
        if self.seg_events > 0 {
            self.close_segment();
        }
        self.tape
    }

    /// Events recorded so far.
    pub fn len(&self) -> u64 {
        self.tape.events
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.tape.events == 0
    }
}

impl TraceSink for TapeRecorder {
    fn accept(&mut self, inst: &NativeInst) {
        if self.seg_events == SEGMENT_EVENTS {
            self.close_segment();
        }
        let bytes = &mut self.tape.bytes;
        let class_idx = InstClass::ALL
            .iter()
            .position(|&c| c == inst.class)
            .expect("class present in InstClass::ALL") as u8;
        let phase_idx = Phase::ALL
            .iter()
            .position(|&p| p == inst.phase)
            .expect("phase present in Phase::ALL") as u8;

        let mut flags = 0u8;
        let pc_seq = inst.pc == self.prev_pc.wrapping_add(SEQ_STEP);
        if pc_seq {
            flags |= F_PC_SEQ;
        }
        if let Some(m) = inst.mem {
            flags |= F_MEM;
            if m.kind == AccessKind::Write {
                flags |= F_MEM_WRITE;
            }
        }
        if let Some(c) = inst.ctrl {
            flags |= F_CTRL;
            if c.taken {
                flags |= F_TAKEN;
            }
        }
        if inst.dst.is_some() {
            flags |= F_DST;
        }
        if inst.src1.is_some() {
            flags |= F_SRC1;
        }
        if inst.src2.is_some() {
            flags |= F_SRC2;
        }

        bytes.push(class_idx | (phase_idx << 4));
        bytes.push(flags);
        if !pc_seq {
            put_delta(bytes, self.prev_pc, inst.pc);
        }
        self.prev_pc = inst.pc;
        if let Some(m) = inst.mem {
            put_delta(bytes, self.prev_mem, m.addr);
            self.prev_mem = m.addr;
            bytes.push(m.size);
        }
        if let Some(c) = inst.ctrl {
            put_delta(bytes, inst.pc, c.target);
        }
        for reg in [inst.dst, inst.src1, inst.src2].into_iter().flatten() {
            bytes.push(reg);
        }
        self.tape.events += 1;
        self.seg_events += 1;
    }
}

/// Heterogeneous fan-out: broadcasts one trace pass to N borrowed
/// consumers of *different* concrete types.
///
/// The tuple sink impls cover small fixed combinations and `Vec<S>`
/// covers homogeneous sweeps; `FanoutSink` is the dynamic counterpart
/// used when the consumer set is assembled at run time — e.g. a
/// [`TapeRecorder`] plus a [`CountingSink`] watching the same
/// recording pass.
///
/// [`CountingSink`]: crate::CountingSink
///
/// # Examples
///
/// ```
/// use jrt_trace::{CountingSink, FanoutSink, InstMix, NativeInst, Phase, TraceSink};
///
/// let mut counts = CountingSink::new();
/// let mut mix = InstMix::new();
/// let mut fan = FanoutSink::new().with(&mut counts).with(&mut mix);
/// fan.accept(&NativeInst::alu(0, Phase::Runtime));
/// fan.finish();
/// drop(fan);
/// assert_eq!(counts.total(), 1);
/// assert_eq!(mix.total(), 1);
/// ```
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> FanoutSink<'a> {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        FanoutSink { sinks: Vec::new() }
    }

    /// Adds a consumer (builder style).
    pub fn with(mut self, sink: &'a mut (impl TraceSink + 'a)) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a consumer.
    pub fn push(&mut self, sink: &'a mut (impl TraceSink + 'a)) {
        self.sinks.push(sink);
    }

    /// Number of attached consumers.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no consumer is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for FanoutSink<'_> {
    fn accept(&mut self, inst: &NativeInst) {
        for s in self.sinks.iter_mut() {
            s.accept(inst);
        }
    }
    fn finish(&mut self) {
        for s in self.sinks.iter_mut() {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, RecordingSink};

    fn sample_events() -> Vec<NativeInst> {
        vec![
            NativeInst::alu(0x1000, Phase::NativeExec)
                .with_dst(3)
                .with_srcs(1, Some(2)),
            NativeInst::alu(0x1004, Phase::NativeExec),
            NativeInst::load(0x1008, 0x2000_0010, 4, Phase::NativeExec).with_dst(5),
            NativeInst::store(0x100c, 0x2000_0014, 8, Phase::Runtime),
            NativeInst::branch(0x1010, 0x1000, true, Phase::NativeExec),
            NativeInst::branch(0x1000, 0x2000, false, Phase::NativeExec),
            NativeInst::indirect_jump(0x44, 0x9000_0000, Phase::InterpDispatch),
            NativeInst::ret(0xffff_ffff_ffff_fffc, 0x0, Phase::Gc),
            NativeInst::new(0x0, InstClass::Nop, Phase::ClassLoad),
        ]
    }

    #[test]
    fn enum_discriminants_match_all_order() {
        // The encoding relies on `ALL` being in declaration order so
        // that `ALL[idx]` inverts the recorded index.
        for (k, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(
                InstClass::ALL.iter().position(|x| x == c).unwrap(),
                k,
                "duplicate entry in InstClass::ALL"
            );
        }
        for (k, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(Phase::ALL.iter().position(|x| x == p).unwrap(), k);
        }
        assert!(InstClass::ALL.len() <= 16, "class index must fit a nibble");
        assert!(Phase::ALL.len() <= 16, "phase index must fit a nibble");
    }

    #[test]
    fn round_trip_is_exact() {
        let events = sample_events();
        let tape = Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        });
        assert_eq!(tape.len(), events.len() as u64);

        let mut out = RecordingSink::new();
        tape.replay(&mut out);
        assert_eq!(out.events, events);
    }

    #[test]
    fn replay_calls_finish_once() {
        #[derive(Default)]
        struct FinishCounter(u64);
        impl TraceSink for FinishCounter {
            fn accept(&mut self, _inst: &NativeInst) {}
            fn finish(&mut self) {
                self.0 += 1;
            }
        }
        let tape = Tape::record(|rec| rec.accept(&NativeInst::alu(0, Phase::Runtime)));
        let mut f = FinishCounter::default();
        tape.replay(&mut f);
        assert_eq!(f.0, 1);

        // Even an empty tape finishes its sink.
        let mut f = FinishCounter::default();
        Tape::default().replay(&mut f);
        assert_eq!(f.0, 1);
    }

    #[test]
    fn sequential_pcs_pack_tightly() {
        let tape = Tape::record(|rec| {
            for k in 0..1000u64 {
                rec.accept(&NativeInst::alu(0x1000 + 4 * k, Phase::NativeExec));
            }
        });
        // First event pays a pc varint; the rest are header-only.
        assert!(tape.size_bytes() <= 2 * 1000 + 10, "{}", tape.size_bytes());
        let mut c = CountingSink::new();
        tape.replay(&mut c);
        assert_eq!(c.total(), 1000);
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            i64::MAX,
            i64::MIN,
            0x7fff_ffff_ffff,
        ] {
            let mut bytes = Vec::new();
            put_varint(&mut bytes, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(get_varint(&bytes, &mut pos)), v);
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn fanout_broadcasts_and_finishes() {
        let mut a = CountingSink::new();
        let mut b = RecordingSink::new();
        {
            let mut fan = FanoutSink::new().with(&mut a).with(&mut b);
            assert_eq!(fan.len(), 2);
            assert!(!fan.is_empty());
            fan.accept(&NativeInst::alu(0, Phase::Runtime));
            fan.accept(&NativeInst::alu(4, Phase::Runtime));
            fan.finish();
        }
        assert_eq!(a.total(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tape_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
    }

    /// A small deterministic mixed stream: ALU runs with loads/stores
    /// and a back-branch, long enough to span several segments.
    fn long_stream(n: u64) -> impl Iterator<Item = NativeInst> {
        (0..n).map(|k| {
            let pc = 0x1000 + 4 * (k % 512);
            match k % 7 {
                0 => NativeInst::load(pc, 0x2000_0000 + 8 * (k % 4096), 4, Phase::NativeExec),
                1 => NativeInst::store(pc, 0x2100_0000 + 16 * (k % 1024), 8, Phase::Runtime),
                2 => NativeInst::branch(pc, 0x1000, k % 3 == 0, Phase::NativeExec),
                _ => NativeInst::alu(pc, Phase::NativeExec),
            }
        })
    }

    #[test]
    fn segments_partition_the_tape() {
        let n = 2 * SEGMENT_EVENTS + 123;
        let tape = Tape::record(|rec| {
            for e in long_stream(n) {
                rec.accept(&e);
            }
        });
        let segs = tape.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].events, SEGMENT_EVENTS);
        assert_eq!(segs[1].events, SEGMENT_EVENTS);
        assert_eq!(segs[2].events, 123);
        assert_eq!(segs.iter().map(|s| s.events).sum::<u64>(), tape.len());

        // Byte spans are contiguous and cover the whole stream.
        let mut off = 0u64;
        for seg in segs {
            assert_eq!(seg.byte_off, off);
            assert_eq!(seg.base_pc, 0);
            assert_eq!(seg.base_addr, 0);
            assert_eq!(content_hash(tape.segment_bytes(seg)), seg.hash);
            off += seg.byte_len;
        }
        assert_eq!(off as usize, tape.size_bytes());

        // Each segment decodes independently and lands exactly on its
        // recorded footer state.
        for seg in segs {
            let mut c = CountingSink::new();
            let (last_pc, last_addr) =
                decode_events(tape.segment_bytes(seg), seg.events, 0, 0, &mut c);
            assert_eq!(c.total(), seg.events);
            assert_eq!(last_pc, seg.last_pc);
            assert_eq!(last_addr, seg.last_addr);
        }
    }

    #[test]
    fn multi_segment_round_trip_is_exact() {
        let n = SEGMENT_EVENTS + 77;
        let events: Vec<NativeInst> = long_stream(n).collect();
        let tape = Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        });
        let mut out = RecordingSink::new();
        tape.replay(&mut out);
        assert_eq!(out.events.len(), events.len());
        assert_eq!(out.events, events);
    }

    #[test]
    fn replay_range_splices_into_full_replay() {
        let n = 3 * SEGMENT_EVENTS + 5;
        let tape = Tape::record(|rec| {
            for e in long_stream(n) {
                rec.accept(&e);
            }
        });
        let mut full = RecordingSink::new();
        tape.replay(&mut full);

        let mid = tape.segments().len() / 2;
        let mut spliced = RecordingSink::new();
        tape.replay_range(0..mid, &mut spliced);
        tape.replay_range(mid..tape.segments().len(), &mut spliced);
        assert_eq!(spliced.events, full.events);
    }

    #[test]
    fn tiled_repeats_code_and_shifts_data() {
        let tape = Tape::record(|rec| {
            for e in long_stream(1000) {
                rec.accept(&e);
            }
        });
        let stride = 1u64 << 20;
        let tiled = tape.tiled(3, stride);
        assert_eq!(tiled.len(), 3 * tape.len());
        assert_eq!(tiled.size_bytes(), tape.size_bytes());

        let mut base = RecordingSink::new();
        tape.replay(&mut base);
        let mut out = RecordingSink::new();
        tiled.replay(&mut out);
        assert_eq!(out.events.len(), 3 * base.events.len());
        for (k, chunk) in out.events.chunks(base.events.len()).enumerate() {
            let shift = k as u64 * stride;
            for (got, want) in chunk.iter().zip(&base.events) {
                assert_eq!(got.pc, want.pc, "code stream must not shift");
                match (got.mem, want.mem) {
                    (Some(g), Some(w)) => {
                        assert_eq!(g.addr, w.addr + shift);
                        assert_eq!(g.size, w.size);
                        assert_eq!(g.kind, w.kind);
                    }
                    (None, None) => {}
                    _ => panic!("mem presence must match"),
                }
            }
        }
    }

    #[test]
    fn clike_phase_events_round_trip() {
        // NativeApp is the highest phase index — exercises the top nibble.
        let events = vec![
            NativeInst::alu(0x10, Phase::NativeApp),
            NativeInst::load(0x14, 0x3000_0000, 2, Phase::NativeApp),
        ];
        let tape = Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        });
        let mut out = RecordingSink::new();
        tape.replay(&mut out);
        assert_eq!(out.events, events);
    }
}
