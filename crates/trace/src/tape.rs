//! Record-once/replay-many trace **tapes**.
//!
//! The paper's methodology was to collect each benchmark's native
//! instruction stream *once* with Shade and then feed the recorded
//! trace to every architectural simulator (cachesim5, the branch
//! predictors, the superscalar model). This module is the synthetic
//! analog: a [`TapeRecorder`] is a [`TraceSink`] that packs the event
//! stream into a compact in-memory [`Tape`], and [`Tape::replay`]
//! regenerates the exact [`NativeInst`] sequence for any number of
//! downstream consumers — combined, if desired, through a
//! [`FanoutSink`] so one pass feeds N simulators.
//!
//! # Encoding
//!
//! Each event costs two fixed header bytes plus only the fields it
//! actually carries:
//!
//! | bytes | content |
//! |---|---|
//! | 1 | instruction class (low nibble) and phase (high nibble) |
//! | 1 | presence/outcome flags (`mem`, write, `ctrl`, taken, `dst`, `src1`, `src2`, sequential-pc) |
//! | 0–10 | pc as a zigzag-varint delta from the previous pc — omitted entirely when `pc == prev_pc + 4` (the common fall-through case) |
//! | 0–11 | memory address as a zigzag-varint delta from the previous *memory* address, plus a raw size byte |
//! | 0–10 | control target as a zigzag-varint delta from this event's pc |
//! | 0–3 | raw register bytes for `dst`/`src1`/`src2` |
//!
//! Because pcs advance mostly by one instruction and data accesses
//! show spatial locality, a typical event costs 2–5 bytes against the
//! 64 bytes of an in-memory [`NativeInst`] — small enough to retain
//! every (workload, mode) tape of a full experiment run in RAM.
//!
//! # Examples
//!
//! ```
//! use jrt_trace::{CountingSink, InstMix, NativeInst, Phase, Tape, TraceSink};
//!
//! let tape = Tape::record(|rec| {
//!     rec.accept(&NativeInst::alu(0x1000, Phase::NativeExec));
//!     rec.accept(&NativeInst::load(0x1004, 0x2000_0000, 4, Phase::NativeExec));
//! });
//! assert_eq!(tape.len(), 2);
//!
//! // One recording, many consumers.
//! let mut counts = CountingSink::new();
//! let mut mix = InstMix::new();
//! tape.replay(&mut counts);
//! tape.replay(&mut mix);
//! assert_eq!(counts.total(), mix.total());
//! ```

use crate::inst::{AccessKind, CtrlInfo, InstClass, MemRef, NativeInst, Phase};
use crate::sink::TraceSink;

// Flag bits of the second header byte.
const F_MEM: u8 = 0x01;
const F_MEM_WRITE: u8 = 0x02;
const F_CTRL: u8 = 0x04;
const F_TAKEN: u8 = 0x08;
const F_DST: u8 = 0x10;
const F_SRC1: u8 = 0x20;
const F_SRC2: u8 = 0x40;
const F_PC_SEQ: u8 = 0x80;

/// Width assumed for the sequential-pc shortcut: the synthetic ISA is
/// a fixed four-byte-instruction RISC, so fall-through is `pc + 4`.
const SEQ_STEP: u64 = 4;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(bytes: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            bytes.push(b);
            return;
        }
        bytes.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn put_delta(bytes: &mut Vec<u8>, prev: u64, now: u64) {
    put_varint(bytes, zigzag(now.wrapping_sub(prev) as i64));
}

fn get_delta(bytes: &[u8], pos: &mut usize, prev: u64) -> u64 {
    prev.wrapping_add(unzigzag(get_varint(bytes, pos)) as u64)
}

/// A compact, immutable recording of a native-instruction stream.
///
/// Produced by [`Tape::record`] (or [`TapeRecorder::into_tape`]) and
/// consumed any number of times with [`Tape::replay`]. A tape is
/// `Send + Sync`, so one recording can be shared across worker threads
/// behind an `Arc`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tape {
    bytes: Vec<u8>,
    events: u64,
}

impl Tape {
    /// Records whatever the closure feeds into the supplied recorder
    /// and returns the finished tape.
    ///
    /// This is the recording entry point: pass the recorder to an
    /// execution engine (it is a [`TraceSink`]) and every emitted
    /// event lands on the tape.
    pub fn record(f: impl FnOnce(&mut TapeRecorder)) -> Tape {
        let mut rec = TapeRecorder::new();
        f(&mut rec);
        rec.into_tape()
    }

    /// Number of recorded events.
    pub fn len(&self) -> u64 {
        self.events
    }

    /// Whether the tape holds no events.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Size of the packed encoding in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes the tape, feeding every event to `sink` in recorded
    /// order and then calling [`TraceSink::finish`] — exactly the
    /// observable behaviour of the original execution.
    pub fn replay(&self, sink: &mut impl TraceSink) {
        let bytes = &self.bytes[..];
        let mut pos = 0usize;
        let mut prev_pc = 0u64;
        let mut prev_mem = 0u64;
        for _ in 0..self.events {
            let head = bytes[pos];
            let flags = bytes[pos + 1];
            pos += 2;

            let class = InstClass::ALL[usize::from(head & 0x0f)];
            let phase = Phase::ALL[usize::from(head >> 4)];

            let pc = if flags & F_PC_SEQ != 0 {
                prev_pc.wrapping_add(SEQ_STEP)
            } else {
                get_delta(bytes, &mut pos, prev_pc)
            };
            prev_pc = pc;

            let mem = if flags & F_MEM != 0 {
                let addr = get_delta(bytes, &mut pos, prev_mem);
                prev_mem = addr;
                let size = bytes[pos];
                pos += 1;
                Some(MemRef {
                    addr,
                    size,
                    kind: if flags & F_MEM_WRITE != 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                })
            } else {
                None
            };

            let ctrl = if flags & F_CTRL != 0 {
                Some(CtrlInfo {
                    target: get_delta(bytes, &mut pos, pc),
                    taken: flags & F_TAKEN != 0,
                })
            } else {
                None
            };

            let mut read_reg = |on: u8| {
                if flags & on != 0 {
                    let r = bytes[pos];
                    pos += 1;
                    Some(r)
                } else {
                    None
                }
            };
            let dst = read_reg(F_DST);
            let src1 = read_reg(F_SRC1);
            let src2 = read_reg(F_SRC2);

            sink.accept(&NativeInst {
                pc,
                class,
                mem,
                ctrl,
                dst,
                src1,
                src2,
                phase,
            });
        }
        sink.finish();
    }
}

/// A [`TraceSink`] that packs every observed event onto a [`Tape`].
///
/// Attach it to an execution (optionally alongside other sinks via a
/// [`FanoutSink`] or sink tuple), then call [`TapeRecorder::into_tape`].
#[derive(Debug, Clone, Default)]
pub struct TapeRecorder {
    tape: Tape,
    prev_pc: u64,
    prev_mem: u64,
}

impl TapeRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes recording and returns the packed tape.
    pub fn into_tape(self) -> Tape {
        self.tape
    }

    /// Events recorded so far.
    pub fn len(&self) -> u64 {
        self.tape.events
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.tape.events == 0
    }
}

impl TraceSink for TapeRecorder {
    fn accept(&mut self, inst: &NativeInst) {
        let bytes = &mut self.tape.bytes;
        let class_idx = InstClass::ALL
            .iter()
            .position(|&c| c == inst.class)
            .expect("class present in InstClass::ALL") as u8;
        let phase_idx = Phase::ALL
            .iter()
            .position(|&p| p == inst.phase)
            .expect("phase present in Phase::ALL") as u8;

        let mut flags = 0u8;
        let pc_seq = inst.pc == self.prev_pc.wrapping_add(SEQ_STEP);
        if pc_seq {
            flags |= F_PC_SEQ;
        }
        if let Some(m) = inst.mem {
            flags |= F_MEM;
            if m.kind == AccessKind::Write {
                flags |= F_MEM_WRITE;
            }
        }
        if let Some(c) = inst.ctrl {
            flags |= F_CTRL;
            if c.taken {
                flags |= F_TAKEN;
            }
        }
        if inst.dst.is_some() {
            flags |= F_DST;
        }
        if inst.src1.is_some() {
            flags |= F_SRC1;
        }
        if inst.src2.is_some() {
            flags |= F_SRC2;
        }

        bytes.push(class_idx | (phase_idx << 4));
        bytes.push(flags);
        if !pc_seq {
            put_delta(bytes, self.prev_pc, inst.pc);
        }
        self.prev_pc = inst.pc;
        if let Some(m) = inst.mem {
            put_delta(bytes, self.prev_mem, m.addr);
            self.prev_mem = m.addr;
            bytes.push(m.size);
        }
        if let Some(c) = inst.ctrl {
            put_delta(bytes, inst.pc, c.target);
        }
        for reg in [inst.dst, inst.src1, inst.src2].into_iter().flatten() {
            bytes.push(reg);
        }
        self.tape.events += 1;
    }
}

/// Heterogeneous fan-out: broadcasts one trace pass to N borrowed
/// consumers of *different* concrete types.
///
/// The tuple sink impls cover small fixed combinations and `Vec<S>`
/// covers homogeneous sweeps; `FanoutSink` is the dynamic counterpart
/// used when the consumer set is assembled at run time — e.g. a
/// [`TapeRecorder`] plus a [`CountingSink`] watching the same
/// recording pass.
///
/// [`CountingSink`]: crate::CountingSink
///
/// # Examples
///
/// ```
/// use jrt_trace::{CountingSink, FanoutSink, InstMix, NativeInst, Phase, TraceSink};
///
/// let mut counts = CountingSink::new();
/// let mut mix = InstMix::new();
/// let mut fan = FanoutSink::new().with(&mut counts).with(&mut mix);
/// fan.accept(&NativeInst::alu(0, Phase::Runtime));
/// fan.finish();
/// drop(fan);
/// assert_eq!(counts.total(), 1);
/// assert_eq!(mix.total(), 1);
/// ```
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> FanoutSink<'a> {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        FanoutSink { sinks: Vec::new() }
    }

    /// Adds a consumer (builder style).
    pub fn with(mut self, sink: &'a mut (impl TraceSink + 'a)) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a consumer.
    pub fn push(&mut self, sink: &'a mut (impl TraceSink + 'a)) {
        self.sinks.push(sink);
    }

    /// Number of attached consumers.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no consumer is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for FanoutSink<'_> {
    fn accept(&mut self, inst: &NativeInst) {
        for s in self.sinks.iter_mut() {
            s.accept(inst);
        }
    }
    fn finish(&mut self) {
        for s in self.sinks.iter_mut() {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, RecordingSink};

    fn sample_events() -> Vec<NativeInst> {
        vec![
            NativeInst::alu(0x1000, Phase::NativeExec)
                .with_dst(3)
                .with_srcs(1, Some(2)),
            NativeInst::alu(0x1004, Phase::NativeExec),
            NativeInst::load(0x1008, 0x2000_0010, 4, Phase::NativeExec).with_dst(5),
            NativeInst::store(0x100c, 0x2000_0014, 8, Phase::Runtime),
            NativeInst::branch(0x1010, 0x1000, true, Phase::NativeExec),
            NativeInst::branch(0x1000, 0x2000, false, Phase::NativeExec),
            NativeInst::indirect_jump(0x44, 0x9000_0000, Phase::InterpDispatch),
            NativeInst::ret(0xffff_ffff_ffff_fffc, 0x0, Phase::Gc),
            NativeInst::new(0x0, InstClass::Nop, Phase::ClassLoad),
        ]
    }

    #[test]
    fn enum_discriminants_match_all_order() {
        // The encoding relies on `ALL` being in declaration order so
        // that `ALL[idx]` inverts the recorded index.
        for (k, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(
                InstClass::ALL.iter().position(|x| x == c).unwrap(),
                k,
                "duplicate entry in InstClass::ALL"
            );
        }
        for (k, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(Phase::ALL.iter().position(|x| x == p).unwrap(), k);
        }
        assert!(InstClass::ALL.len() <= 16, "class index must fit a nibble");
        assert!(Phase::ALL.len() <= 16, "phase index must fit a nibble");
    }

    #[test]
    fn round_trip_is_exact() {
        let events = sample_events();
        let tape = Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        });
        assert_eq!(tape.len(), events.len() as u64);

        let mut out = RecordingSink::new();
        tape.replay(&mut out);
        assert_eq!(out.events, events);
    }

    #[test]
    fn replay_calls_finish_once() {
        #[derive(Default)]
        struct FinishCounter(u64);
        impl TraceSink for FinishCounter {
            fn accept(&mut self, _inst: &NativeInst) {}
            fn finish(&mut self) {
                self.0 += 1;
            }
        }
        let tape = Tape::record(|rec| rec.accept(&NativeInst::alu(0, Phase::Runtime)));
        let mut f = FinishCounter::default();
        tape.replay(&mut f);
        assert_eq!(f.0, 1);

        // Even an empty tape finishes its sink.
        let mut f = FinishCounter::default();
        Tape::default().replay(&mut f);
        assert_eq!(f.0, 1);
    }

    #[test]
    fn sequential_pcs_pack_tightly() {
        let tape = Tape::record(|rec| {
            for k in 0..1000u64 {
                rec.accept(&NativeInst::alu(0x1000 + 4 * k, Phase::NativeExec));
            }
        });
        // First event pays a pc varint; the rest are header-only.
        assert!(tape.size_bytes() <= 2 * 1000 + 10, "{}", tape.size_bytes());
        let mut c = CountingSink::new();
        tape.replay(&mut c);
        assert_eq!(c.total(), 1000);
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            i64::MAX,
            i64::MIN,
            0x7fff_ffff_ffff,
        ] {
            let mut bytes = Vec::new();
            put_varint(&mut bytes, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(get_varint(&bytes, &mut pos)), v);
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn fanout_broadcasts_and_finishes() {
        let mut a = CountingSink::new();
        let mut b = RecordingSink::new();
        {
            let mut fan = FanoutSink::new().with(&mut a).with(&mut b);
            assert_eq!(fan.len(), 2);
            assert!(!fan.is_empty());
            fan.accept(&NativeInst::alu(0, Phase::Runtime));
            fan.accept(&NativeInst::alu(4, Phase::Runtime));
            fan.finish();
        }
        assert_eq!(a.total(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tape_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
    }

    #[test]
    fn clike_phase_events_round_trip() {
        // NativeApp is the highest phase index — exercises the top nibble.
        let events = vec![
            NativeInst::alu(0x10, Phase::NativeApp),
            NativeInst::load(0x14, 0x3000_0000, 2, Phase::NativeApp),
        ];
        let tape = Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        });
        let mut out = RecordingSink::new();
        tape.replay(&mut out);
        assert_eq!(out.events, events);
    }
}
