//! Out-of-core tape persistence: append-only segment files.
//!
//! The paper's record-once/replay-many methodology only pays off if a
//! recording survives longer than one process and bigger than one
//! address space. A [`DiskTape`] is a [`Tape`] spilled to two files:
//!
//! * **data file** — magic `JRTTAPE1`, then each segment's packed
//!   bytes appended in stream order (the same delta encoding
//!   [`Tape`] holds in RAM, unchanged);
//! * **index file** (`<data>.idx`) — magic `JRTIDX01`, total event
//!   count, segment count, one fixed-width footer per segment
//!   ([`Segment`]'s eight `u64` fields, little-endian), and a trailing
//!   checksum over the index bytes.
//!
//! Because the recorder restarts its delta state at every segment
//! boundary, each segment decodes independently: replay streams one
//! buffered segment at a time through a reused buffer — RAM cost is
//! one segment (a few hundred KB), not one tape. Every segment's
//! [`content_hash`] is validated before decoding, so bit rot surfaces
//! as a counted [`StoreError::Corrupt`] instead of garbage simulation
//! results.
//!
//! # Examples
//!
//! ```no_run
//! use jrt_trace::{CountingSink, DiskTape, NativeInst, Phase, Tape, TraceSink};
//!
//! let tape = Tape::record(|rec| {
//!     rec.accept(&NativeInst::alu(0x1000, Phase::NativeExec));
//! });
//! let disk = DiskTape::write("/tmp/demo.tape".as_ref(), &tape).unwrap();
//! let mut c = CountingSink::new();
//! disk.replay(&mut c).unwrap();
//! assert_eq!(c.total(), tape.len());
//! ```

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::blocks::{AccessBlock, AccessBlockSink};
use crate::sink::TraceSink;
use crate::tape::{content_hash, decode_events, Segment, Tape};

/// Magic prefix of the data file.
pub const DATA_MAGIC: &[u8; 8] = b"JRTTAPE1";
/// Magic prefix of the index file.
pub const INDEX_MAGIC: &[u8; 8] = b"JRTIDX01";

/// What went wrong reading or writing a [`DiskTape`].
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file contents failed validation (bad magic, checksum or
    /// content-hash mismatch, truncated data).
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "tape store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "tape store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn index_path(data: &Path) -> PathBuf {
    let mut name = data.file_name().unwrap_or_default().to_os_string();
    name.push(".idx");
    data.with_file_name(name)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let end = *pos + 8;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| StoreError::Corrupt("index truncated".into()))?;
    *pos = end;
    Ok(u64::from_le_bytes(slice.try_into().unwrap()))
}

/// Fingerprint of a tape's logical content: folds the event count and
/// every segment footer's (events, bases, lasts, per-segment content
/// hash) — but *not* byte offsets, so a [`DiskTape`] written from a
/// [`Tape`] keeps the tape's fingerprint even though tiling-shared
/// byte spans get re-laid-out sequentially on disk. The experiments
/// store keys and validates its disk tier with this.
pub fn fingerprint(events: u64, segments: &[Segment]) -> u64 {
    let mut bytes = Vec::with_capacity(8 + segments.len() * 48);
    put_u64(&mut bytes, events);
    for seg in segments {
        put_u64(&mut bytes, seg.events);
        put_u64(&mut bytes, seg.base_pc);
        put_u64(&mut bytes, seg.base_addr);
        put_u64(&mut bytes, seg.last_pc);
        put_u64(&mut bytes, seg.last_addr);
        put_u64(&mut bytes, seg.hash);
    }
    content_hash(&bytes)
}

/// A tape persisted as an append-only segment file plus index.
///
/// Opening validates the index (magic + checksum) eagerly; segment
/// bytes are read and content-hash-validated lazily, one buffered
/// segment at a time, during replay.
#[derive(Debug, Clone)]
pub struct DiskTape {
    path: PathBuf,
    events: u64,
    segments: Vec<Segment>,
}

impl DiskTape {
    /// Writes `tape` to `path` (data) and `<path>.idx` (index),
    /// atomically: both files are built under temporary names and
    /// renamed into place, data before index, so a reader never sees
    /// an index describing missing data.
    pub fn write(path: &Path, tape: &Tape) -> Result<DiskTape, StoreError> {
        let idx_path = index_path(path);
        let tmp_data = path.with_extension("tape.tmp");
        let tmp_idx = idx_path.with_extension("idx.tmp");

        // Data: magic + segment byte runs in stream order. Offsets are
        // re-laid-out sequentially (a tiled tape shares byte spans
        // across tiles in RAM; on disk each tile gets its own run so
        // replay is one forward pass).
        let mut segments = Vec::with_capacity(tape.segments().len());
        {
            let mut f = std::io::BufWriter::new(File::create(&tmp_data)?);
            f.write_all(DATA_MAGIC)?;
            let mut off = 0u64;
            for seg in tape.segments() {
                let bytes = tape.segment_bytes(seg);
                f.write_all(bytes)?;
                segments.push(Segment {
                    byte_off: off,
                    ..*seg
                });
                off += seg.byte_len;
            }
            f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        }

        // Index: magic, events, nsegs, footers, checksum.
        let mut idx = Vec::with_capacity(24 + tape.segments().len() * 64);
        idx.extend_from_slice(INDEX_MAGIC);
        put_u64(&mut idx, tape.len());
        put_u64(&mut idx, segments.len() as u64);
        for seg in &segments {
            put_u64(&mut idx, seg.byte_off);
            put_u64(&mut idx, seg.byte_len);
            put_u64(&mut idx, seg.events);
            put_u64(&mut idx, seg.base_pc);
            put_u64(&mut idx, seg.base_addr);
            put_u64(&mut idx, seg.last_pc);
            put_u64(&mut idx, seg.last_addr);
            put_u64(&mut idx, seg.hash);
        }
        let sum = content_hash(&idx);
        put_u64(&mut idx, sum);
        {
            let mut f = File::create(&tmp_idx)?;
            f.write_all(&idx)?;
            f.sync_all()?;
        }

        std::fs::rename(&tmp_data, path)?;
        std::fs::rename(&tmp_idx, &idx_path)?;
        Ok(DiskTape {
            path: path.to_path_buf(),
            events: tape.len(),
            segments,
        })
    }

    /// Opens a previously written tape, validating the index magic and
    /// checksum and that the data file is long enough for every
    /// indexed segment.
    pub fn open(path: &Path) -> Result<DiskTape, StoreError> {
        let idx = std::fs::read(index_path(path))?;
        if idx.len() < 32 || &idx[..8] != INDEX_MAGIC {
            return Err(StoreError::Corrupt("bad index magic".into()));
        }
        let body = &idx[..idx.len() - 8];
        let stored_sum = u64::from_le_bytes(idx[idx.len() - 8..].try_into().unwrap());
        if content_hash(body) != stored_sum {
            return Err(StoreError::Corrupt("index checksum mismatch".into()));
        }
        let mut pos = 8usize;
        let events = get_u64(body, &mut pos)?;
        let nsegs = get_u64(body, &mut pos)?;
        if body.len() != 24 + nsegs as usize * 64 {
            return Err(StoreError::Corrupt("index truncated".into()));
        }
        let mut segments = Vec::with_capacity(nsegs as usize);
        let mut seg_events = 0u64;
        let mut data_end = 0u64;
        for _ in 0..nsegs {
            let seg = Segment {
                byte_off: get_u64(body, &mut pos)?,
                byte_len: get_u64(body, &mut pos)?,
                events: get_u64(body, &mut pos)?,
                base_pc: get_u64(body, &mut pos)?,
                base_addr: get_u64(body, &mut pos)?,
                last_pc: get_u64(body, &mut pos)?,
                last_addr: get_u64(body, &mut pos)?,
                hash: get_u64(body, &mut pos)?,
            };
            seg_events += seg.events;
            data_end = data_end.max(seg.byte_off + seg.byte_len);
            segments.push(seg);
        }
        if seg_events != events {
            return Err(StoreError::Corrupt(
                "segment event counts disagree with index total".into(),
            ));
        }
        let data_len = std::fs::metadata(path)?.len();
        if data_len < 8 + data_end {
            return Err(StoreError::Corrupt(format!(
                "data file truncated: {data_len} bytes, index spans {}",
                8 + data_end
            )));
        }
        Ok(DiskTape {
            path: path.to_path_buf(),
            events,
            segments,
        })
    }

    /// Total recorded events.
    pub fn len(&self) -> u64 {
        self.events
    }

    /// Whether the tape holds no events.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// The tape's segment index, in stream order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Packed size of the segment payload in bytes (excluding magic
    /// and index).
    pub fn size_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.byte_len).sum()
    }

    /// Path of the data file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fingerprint of the logical tape content — see [`fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        fingerprint(self.events, &self.segments)
    }

    /// Replays every event into `sink` (then calls
    /// [`TraceSink::finish`]), streaming one content-hash-validated
    /// segment at a time through a reused buffer.
    pub fn replay(&self, sink: &mut impl TraceSink) -> Result<(), StoreError> {
        self.replay_range(0..self.segments.len(), sink)
    }

    /// Replays only the segments in `range` (a contiguous shard), then
    /// calls [`TraceSink::finish`]. On a hash mismatch the sink is
    /// abandoned mid-stream and [`StoreError::Corrupt`] returned.
    pub fn replay_range(
        &self,
        range: std::ops::Range<usize>,
        sink: &mut impl TraceSink,
    ) -> Result<(), StoreError> {
        let mut reader = BufReader::new(File::open(&self.path)?);
        let mut buf = Vec::new();
        for (k, seg) in self.segments[range.clone()].iter().enumerate() {
            self.read_segment(&mut reader, seg, range.start + k, &mut buf)?;
            decode_events(&buf, seg.events, seg.base_pc, seg.base_addr, sink);
        }
        sink.finish();
        Ok(())
    }

    /// Streams the tape through block-at-a-time decode, like
    /// [`Tape::replay_stream`] but reading from disk: RAM cost is one
    /// packed segment plus one decoded [`AccessBlock`].
    pub fn replay_stream(&self, f: impl FnMut(&AccessBlock)) -> Result<(), StoreError> {
        let mut sink = AccessBlockSink::new(f);
        self.replay(&mut sink)
    }

    /// Reads the whole tape back into RAM as a [`Tape`], validating
    /// every segment hash. The promotion path of the experiments
    /// store's disk tier.
    pub fn to_tape(&self) -> Result<Tape, StoreError> {
        let mut reader = BufReader::new(File::open(&self.path)?);
        let mut bytes = Vec::with_capacity(self.size_bytes() as usize);
        let mut segments = Vec::with_capacity(self.segments.len());
        let mut buf = Vec::new();
        for (k, seg) in self.segments.iter().enumerate() {
            self.read_segment(&mut reader, seg, k, &mut buf)?;
            segments.push(Segment {
                byte_off: bytes.len() as u64,
                ..*seg
            });
            bytes.extend_from_slice(&buf);
        }
        Ok(Tape::from_parts(bytes, self.events, segments))
    }

    fn read_segment(
        &self,
        reader: &mut BufReader<File>,
        seg: &Segment,
        index: usize,
        buf: &mut Vec<u8>,
    ) -> Result<(), StoreError> {
        reader.seek(SeekFrom::Start(8 + seg.byte_off))?;
        buf.resize(seg.byte_len as usize, 0);
        reader.read_exact(buf)?;
        if content_hash(buf) != seg.hash {
            return Err(StoreError::Corrupt(format!(
                "segment {index} content hash mismatch in {}",
                self.path.display()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{NativeInst, Phase};
    use crate::sink::{CountingSink, RecordingSink};

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jrt-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_tape() -> Tape {
        Tape::record(|rec| {
            for k in 0..crate::tape::SEGMENT_EVENTS + 99 {
                let pc = 0x1000 + 4 * (k % 256);
                if k % 5 == 0 {
                    rec.accept(&NativeInst::load(
                        pc,
                        0x2000_0000 + 8 * (k % 2048),
                        4,
                        Phase::NativeExec,
                    ));
                } else {
                    rec.accept(&NativeInst::alu(pc, Phase::NativeExec));
                }
            }
        })
    }

    #[test]
    fn write_open_replay_round_trips() {
        let tape = sample_tape();
        let path = tmp_path("roundtrip.tape");
        let written = DiskTape::write(&path, &tape).unwrap();
        assert_eq!(written.len(), tape.len());
        assert_eq!(
            written.fingerprint(),
            fingerprint(tape.len(), tape.segments())
        );

        let opened = DiskTape::open(&path).unwrap();
        assert_eq!(opened.len(), tape.len());
        assert_eq!(opened.segments(), tape.segments());
        assert_eq!(opened.fingerprint(), written.fingerprint());

        let mut want = RecordingSink::new();
        tape.replay(&mut want);
        let mut got = RecordingSink::new();
        opened.replay(&mut got).unwrap();
        assert_eq!(got.events, want.events);

        let back = opened.to_tape().unwrap();
        assert_eq!(back, tape);
    }

    #[test]
    fn corrupt_segment_is_detected_not_decoded() {
        let tape = sample_tape();
        let path = tmp_path("corrupt.tape");
        DiskTape::write(&path, &tape).unwrap();

        // Flip one payload byte in the second segment.
        let mut data = std::fs::read(&path).unwrap();
        let off = 8 + tape.segments()[1].byte_off as usize + 17;
        data[off] ^= 0xff;
        std::fs::write(&path, &data).unwrap();

        let opened = DiskTape::open(&path).unwrap();
        let mut c = CountingSink::new();
        match opened.replay(&mut c) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("segment 1"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The undamaged first segment still replays alone.
        let mut c = CountingSink::new();
        opened.replay_range(0..1, &mut c).unwrap();
        assert_eq!(c.total(), tape.segments()[0].events);
    }

    #[test]
    fn truncated_index_is_rejected() {
        let tape = sample_tape();
        let path = tmp_path("truncidx.tape");
        DiskTape::write(&path, &tape).unwrap();
        let idx_path = index_path(&path);
        let idx = std::fs::read(&idx_path).unwrap();
        std::fs::write(&idx_path, &idx[..idx.len() - 20]).unwrap();
        assert!(matches!(DiskTape::open(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn truncated_data_is_rejected_at_open() {
        let tape = sample_tape();
        let path = tmp_path("truncdata.tape");
        DiskTape::write(&path, &tape).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() / 2]).unwrap();
        assert!(matches!(DiskTape::open(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn missing_files_surface_as_io() {
        let path = tmp_path("missing.tape");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(index_path(&path));
        assert!(matches!(DiskTape::open(&path), Err(StoreError::Io(_))));
    }

    #[test]
    fn disk_replay_stream_matches_ram() {
        let tape = sample_tape();
        let path = tmp_path("stream.tape");
        let disk = DiskTape::write(&path, &tape).unwrap();

        let mut ram_pcs = Vec::new();
        tape.replay_stream(|b| ram_pcs.extend_from_slice(&b.pc));
        let mut disk_pcs = Vec::new();
        disk.replay_stream(|b| disk_pcs.extend_from_slice(&b.pc))
            .unwrap();
        assert_eq!(disk_pcs, ram_pcs);
    }

    #[test]
    fn tiled_tape_persists_with_shifted_bases() {
        let base = Tape::record(|rec| {
            for k in 0..500u64 {
                rec.accept(&NativeInst::load(
                    0x1000 + 4 * k,
                    0x2000_0000 + 8 * k,
                    4,
                    Phase::NativeExec,
                ));
            }
        });
        let tiled = base.tiled(3, 1 << 20);
        let path = tmp_path("tiled.tape");
        let disk = DiskTape::write(&path, &tiled).unwrap();
        // Tiling shares bytes in RAM but the disk layout is one run
        // per tile.
        assert_eq!(disk.size_bytes(), 3 * base.size_bytes() as u64);

        let mut want = RecordingSink::new();
        tiled.replay(&mut want);
        let mut got = RecordingSink::new();
        DiskTape::open(&path).unwrap().replay(&mut got).unwrap();
        assert_eq!(got.events, want.events);
    }
}
