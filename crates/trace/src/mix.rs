//! Instruction-mix profiling (Figure 2 of the paper).
//!
//! The paper reports, cumulatively over the SpecJVM98 programs, the
//! fraction of control-transfer instructions (15–20%), memory accesses
//! (25–40%, about 5 percentage points higher in interpreter mode), and
//! the split of transfers between direct branches/calls and indirect
//! jumps (indirect-heavy in interpreter mode). [`InstMix`] collects the
//! same categories from a trace.

use crate::inst::{InstClass, NativeInst};
use crate::sink::TraceSink;
use std::fmt;

/// Per-class instruction counts plus derived mix percentages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    counts: [u64; InstClass::ALL.len()],
}

impl InstMix {
    /// Creates a zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count of one instruction class.
    pub fn count(&self, class: InstClass) -> u64 {
        self.counts[class_index(class)]
    }

    /// Total instructions observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another profile into this one (for cumulative, cross-
    /// benchmark mixes as in Figure 2).
    pub fn merge(&mut self, other: &InstMix) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Fraction (0–1) of instructions in the given class.
    pub fn fraction(&self, class: InstClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(class) as f64 / t as f64
        }
    }

    /// Fraction of memory-access instructions (loads + stores).
    pub fn memory_fraction(&self) -> f64 {
        self.fraction(InstClass::Load) + self.fraction(InstClass::Store)
    }

    /// Fraction of control-transfer instructions.
    pub fn transfer_fraction(&self) -> f64 {
        InstClass::ALL
            .iter()
            .filter(|c| c.is_transfer())
            .map(|&c| self.fraction(c))
            .sum()
    }

    /// Fraction of indirect transfers (indirect jumps/calls, returns).
    pub fn indirect_fraction(&self) -> f64 {
        InstClass::ALL
            .iter()
            .filter(|c| c.is_indirect())
            .map(|&c| self.fraction(c))
            .sum()
    }

    /// Of all transfers, the share that is indirect (0–1).
    pub fn indirect_share_of_transfers(&self) -> f64 {
        let t = self.transfer_fraction();
        if t == 0.0 {
            0.0
        } else {
            self.indirect_fraction() / t
        }
    }

    /// Produces the summary row used in experiment tables.
    pub fn summary(&self) -> MixSummary {
        MixSummary {
            total: self.total(),
            alu: self.fraction(InstClass::IntAlu)
                + self.fraction(InstClass::IntMul)
                + self.fraction(InstClass::IntDiv)
                + self.fraction(InstClass::FpAlu),
            loads: self.fraction(InstClass::Load),
            stores: self.fraction(InstClass::Store),
            branches: self.fraction(InstClass::CondBranch),
            calls: self.fraction(InstClass::Call) + self.fraction(InstClass::IndirectCall),
            indirect_jumps: self.fraction(InstClass::IndirectJump),
            returns: self.fraction(InstClass::Ret),
            memory: self.memory_fraction(),
            transfers: self.transfer_fraction(),
            indirect: self.indirect_fraction(),
        }
    }
}

impl crate::sink::MergeSink for InstMix {
    fn merge(&mut self, other: &Self) {
        InstMix::merge(self, other);
    }
}

impl TraceSink for InstMix {
    fn accept(&mut self, inst: &NativeInst) {
        self.counts[class_index(inst.class)] += 1;
    }
}

fn class_index(class: InstClass) -> usize {
    InstClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class present in InstClass::ALL")
}

/// Derived instruction-mix percentages for one run (Figure 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MixSummary {
    /// Total dynamic instruction count.
    pub total: u64,
    /// ALU fraction (integer + fp).
    pub alu: f64,
    /// Load fraction.
    pub loads: f64,
    /// Store fraction.
    pub stores: f64,
    /// Conditional-branch fraction.
    pub branches: f64,
    /// Call fraction (direct + indirect).
    pub calls: f64,
    /// Indirect-jump fraction.
    pub indirect_jumps: f64,
    /// Return fraction.
    pub returns: f64,
    /// Memory fraction (loads + stores).
    pub memory: f64,
    /// Transfer fraction (all control transfers).
    pub transfers: f64,
    /// Indirect-transfer fraction.
    pub indirect: f64,
}

impl fmt::Display for MixSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} alu={:.1}% ld={:.1}% st={:.1}% br={:.1}% call={:.1}% ijmp={:.1}% ret={:.1}%",
            self.total,
            self.alu * 100.0,
            self.loads * 100.0,
            self.stores * 100.0,
            self.branches * 100.0,
            self.calls * 100.0,
            self.indirect_jumps * 100.0,
            self.returns * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Phase;

    fn sample_mix() -> InstMix {
        let mut m = InstMix::new();
        for i in 0..4 {
            m.accept(&NativeInst::alu(i * 4, Phase::Runtime));
        }
        m.accept(&NativeInst::load(0x100, 0x2000_0000, 4, Phase::Runtime));
        m.accept(&NativeInst::store(0x104, 0x2000_0004, 4, Phase::Runtime));
        m.accept(&NativeInst::branch(0x108, 0x100, true, Phase::Runtime));
        m.accept(&NativeInst::indirect_jump(0x10c, 0x200, Phase::Runtime));
        m
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = sample_mix();
        let s: f64 = InstClass::ALL.iter().map(|&c| m.fraction(c)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derived_fractions() {
        let m = sample_mix();
        assert_eq!(m.total(), 8);
        assert!((m.memory_fraction() - 0.25).abs() < 1e-12);
        assert!((m.transfer_fraction() - 0.25).abs() < 1e-12);
        assert!((m.indirect_fraction() - 0.125).abs() < 1e-12);
        assert!((m.indirect_share_of_transfers() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample_mix();
        let b = sample_mix();
        a.merge(&b);
        assert_eq!(a.total(), 16);
        assert_eq!(a.count(InstClass::Load), 2);
    }

    #[test]
    fn empty_mix_is_safe() {
        let m = InstMix::new();
        assert_eq!(m.total(), 0);
        assert_eq!(m.fraction(InstClass::Load), 0.0);
        assert_eq!(m.indirect_share_of_transfers(), 0.0);
    }

    #[test]
    fn summary_matches_fractions() {
        let m = sample_mix();
        let s = m.summary();
        assert_eq!(s.total, 8);
        assert!((s.memory - 0.25).abs() < 1e-12);
        assert!(s.to_string().contains("total=8"));
    }
}
