//! Trace consumers.
//!
//! A [`TraceSink`] receives every [`NativeInst`] an execution engine
//! emits, in program order. Simulators (caches, branch predictors, the
//! superscalar model, the instruction-mix profiler) all implement this
//! trait, and several sinks can observe one execution by combining them
//! with the provided tuple implementations.

use crate::inst::{NativeInst, Phase};

/// A consumer of a native instruction trace.
///
/// Implementations must be prepared for traces of hundreds of millions
/// of events and should therefore do O(1) work per event.
///
/// # Examples
///
/// ```
/// use jrt_trace::{CountingSink, NativeInst, Phase, TraceSink};
///
/// let mut count = CountingSink::new();
/// count.accept(&NativeInst::alu(0x10, Phase::Runtime));
/// assert_eq!(count.total(), 1);
/// ```
pub trait TraceSink {
    /// Observes one instruction, in program order.
    fn accept(&mut self, inst: &NativeInst);

    /// Called once after the last instruction of a run.
    fn finish(&mut self) {}
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn accept(&mut self, inst: &NativeInst) {
        (**self).accept(inst);
    }
    fn finish(&mut self) {
        (**self).finish();
    }
}

/// A sink whose observations can be combined with another instance's.
///
/// This is the fan-out/merge contract behind the parallel experiment
/// scheduler: each worker thread simulates into its own thread-local
/// sink (sinks are `Send`, so they can be created on — or returned
/// from — any thread), and the shards are then merged **in canonical
/// job order** so aggregate results are bit-identical to a sequential
/// run regardless of worker count or completion order.
pub trait MergeSink: TraceSink + Send {
    /// Folds `other`'s observations into `self`.
    fn merge(&mut self, other: &Self);
}

/// Merges sink shards in iteration order; `None` on an empty iterator.
///
/// The caller supplies shards in canonical order (the order jobs were
/// defined, not the order workers finished them), which keeps merged
/// statistics deterministic.
pub fn merge_shards<S: MergeSink>(shards: impl IntoIterator<Item = S>) -> Option<S> {
    let mut iter = shards.into_iter();
    let mut first = iter.next()?;
    for shard in iter {
        first.merge(&shard);
    }
    Some(first)
}

/// A sink that discards every event; useful when only the engine-side
/// cost counters are of interest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn accept(&mut self, _inst: &NativeInst) {}
}

impl MergeSink for NullSink {
    fn merge(&mut self, _other: &Self) {}
}

macro_rules! tuple_sink {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: TraceSink),+> TraceSink for ($($name,)+) {
            fn accept(&mut self, inst: &NativeInst) {
                $(self.$idx.accept(inst);)+
            }
            fn finish(&mut self) {
                $(self.$idx.finish();)+
            }
        }
    };
}

tuple_sink!(A: 0);
tuple_sink!(A: 0, B: 1);
tuple_sink!(A: 0, B: 1, C: 2);
tuple_sink!(A: 0, B: 1, C: 2, D: 3);
tuple_sink!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Homogeneous fan-out: every element observes every event. Lets one
/// execution drive an entire parameter sweep (e.g. four cache
/// configurations) without regenerating the trace.
impl<S: TraceSink> TraceSink for Vec<S> {
    fn accept(&mut self, inst: &NativeInst) {
        for s in self.iter_mut() {
            s.accept(inst);
        }
    }
    fn finish(&mut self) {
        for s in self.iter_mut() {
            s.finish();
        }
    }
}

/// Element-wise merge of two equal-length sweeps.
impl<S: MergeSink> MergeSink for Vec<S> {
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "sweep shards must match");
        for (mine, theirs) in self.iter_mut().zip(other) {
            mine.merge(theirs);
        }
    }
}

/// Counts instructions, total and per [`Phase`].
///
/// This is the cheapest useful sink; the Figure 1 cost model
/// (cycles ≈ retired native instructions) is built on these counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingSink {
    total: u64,
    per_phase: [u64; Phase::ALL.len()],
}

impl CountingSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instructions observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Instructions observed in the given phase.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.per_phase[phase_index(phase)]
    }

    /// Instructions observed in the JIT translate phase.
    pub fn translate(&self) -> u64 {
        self.phase(Phase::Translate)
    }
}

impl MergeSink for CountingSink {
    fn merge(&mut self, other: &Self) {
        self.total += other.total;
        for (mine, theirs) in self.per_phase.iter_mut().zip(other.per_phase) {
            *mine += theirs;
        }
    }
}

impl TraceSink for CountingSink {
    fn accept(&mut self, inst: &NativeInst) {
        self.total += 1;
        self.per_phase[phase_index(inst.phase)] += 1;
    }
}

pub(crate) fn phase_index(phase: Phase) -> usize {
    Phase::ALL
        .iter()
        .position(|&p| p == phase)
        .expect("phase present in Phase::ALL")
}

/// Records every event into a vector. Only for tests and small traces.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The recorded events, in program order.
    pub events: Vec<NativeInst>,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RecordingSink {
    fn accept(&mut self, inst: &NativeInst) {
        self.events.push(*inst);
    }
}

/// Forwards only instructions whose phase satisfies a predicate.
///
/// Used to study the translate portion of JIT execution in isolation
/// (Figure 5 of the paper).
#[derive(Debug, Clone)]
pub struct PhaseFilter<S> {
    inner: S,
    predicate: fn(Phase) -> bool,
}

impl<S: TraceSink> PhaseFilter<S> {
    /// Wraps `inner`, forwarding only instructions for which
    /// `predicate` returns `true`.
    pub fn new(inner: S, predicate: fn(Phase) -> bool) -> Self {
        PhaseFilter { inner, predicate }
    }

    /// Consumes the filter, returning the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Shared access to the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TraceSink> TraceSink for PhaseFilter<S> {
    fn accept(&mut self, inst: &NativeInst) {
        if (self.predicate)(inst.phase) {
            self.inner.accept(inst);
        }
    }
    fn finish(&mut self) {
        self.inner.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::NativeInst;

    #[test]
    fn counting_sink_counts_phases() {
        let mut c = CountingSink::new();
        c.accept(&NativeInst::alu(0, Phase::Translate));
        c.accept(&NativeInst::alu(4, Phase::Translate));
        c.accept(&NativeInst::alu(8, Phase::NativeExec));
        assert_eq!(c.total(), 3);
        assert_eq!(c.translate(), 2);
        assert_eq!(c.phase(Phase::NativeExec), 1);
        assert_eq!(c.phase(Phase::Gc), 0);
    }

    #[test]
    fn tuple_fanout_reaches_all() {
        let mut pair = (CountingSink::new(), CountingSink::new());
        pair.accept(&NativeInst::alu(0, Phase::Runtime));
        pair.finish();
        assert_eq!(pair.0.total(), 1);
        assert_eq!(pair.1.total(), 1);
    }

    #[test]
    fn phase_filter_forwards_selectively() {
        let mut f = PhaseFilter::new(CountingSink::new(), Phase::is_translate);
        f.accept(&NativeInst::alu(0, Phase::Translate));
        f.accept(&NativeInst::alu(4, Phase::NativeExec));
        assert_eq!(f.inner().total(), 1);
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut r = RecordingSink::new();
        r.accept(&NativeInst::alu(0, Phase::Runtime));
        r.accept(&NativeInst::alu(4, Phase::Runtime));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.events[0].pc, 0);
        assert_eq!(r.events[1].pc, 4);
    }

    #[test]
    fn every_sink_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NullSink>();
        assert_send::<CountingSink>();
        assert_send::<RecordingSink>();
        assert_send::<PhaseFilter<CountingSink>>();
        assert_send::<Vec<CountingSink>>();
    }

    #[test]
    fn counting_sink_merge_matches_single_stream() {
        let mut whole = CountingSink::new();
        let mut a = CountingSink::new();
        let mut b = CountingSink::new();
        for (k, phase) in [
            Phase::Translate,
            Phase::Runtime,
            Phase::NativeExec,
            Phase::Translate,
        ]
        .into_iter()
        .enumerate()
        {
            let inst = NativeInst::alu(4 * k as u64, phase);
            whole.accept(&inst);
            if k % 2 == 0 { &mut a } else { &mut b }.accept(&inst);
        }
        let merged = merge_shards([a, b]).unwrap();
        assert_eq!(merged, whole);
        assert!(merge_shards(Vec::<CountingSink>::new()).is_none());
    }

    #[test]
    fn sweep_merge_is_element_wise() {
        let mut a = vec![CountingSink::new(), CountingSink::new()];
        let mut b = vec![CountingSink::new(), CountingSink::new()];
        a[0].accept(&NativeInst::alu(0, Phase::Runtime));
        b[1].accept(&NativeInst::alu(4, Phase::Runtime));
        a.merge(&b);
        assert_eq!(a[0].total(), 1);
        assert_eq!(a[1].total(), 1);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        let mut c = CountingSink::new();
        {
            let r: &mut CountingSink = &mut c;
            r.accept(&NativeInst::alu(0, Phase::Runtime));
        }
        assert_eq!(c.total(), 1);
    }
}
