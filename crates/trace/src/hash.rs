//! Fast hashing for already-well-distributed integer ids.
//!
//! Several subsystems key hash tables by synthetic ids that are
//! effectively uniform integers — cache line ids (`addr >> line_shift`),
//! JIT content ids (a digest of translated bytes), method ids. SipHash
//! (the std default) defends against adversarial keys, which these are
//! not, and its per-lookup cost dominates hot simulator paths. The
//! [`IdHasher`] here finishes `u64` keys with the SplitMix64 finalizer
//! (a full-avalanche bijection) and falls back to an FNV-style fold for
//! the rare non-`u64` writes, so every crate shares one definition
//! instead of growing private copies.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64-finalizer hasher for integer ids.
///
/// `write_u64` (the common case: `u64` keys hash through it in one
/// call) applies the SplitMix64 finalizer; arbitrary byte writes fold
/// FNV-style. Not resistant to adversarial keys — use only for
/// internally generated ids.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

/// `BuildHasher` for [`IdHasher`]-keyed collections.
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by internally generated ids.
pub type IdHashMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// A `HashSet` of internally generated ids.
pub type IdHashSet<K> = HashSet<K, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keys_avalanche() {
        // Adjacent ids must land far apart: the finalizer is a
        // bijection with full avalanche, so low bits differ about half
        // the time between neighbours.
        let h = |v: u64| {
            let mut hasher = IdHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        let mut diff_bits = 0u32;
        for k in 0..64u64 {
            diff_bits += (h(k) ^ h(k + 1)).count_ones();
        }
        assert!(diff_bits > 64 * 20, "poor avalanche: {diff_bits}");
        assert_ne!(h(0), 0, "zero must not be a fixed point");
    }

    #[test]
    fn byte_fold_distinguishes_streams() {
        let h = |bytes: &[u8]| {
            let mut hasher = IdHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"ab"), h(b"ba"));
        assert_ne!(h(b"a"), h(b"aa"));
    }

    #[test]
    fn collections_work() {
        let mut set: IdHashSet<u64> = IdHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        let mut map: IdHashMap<u64, &str> = IdHashMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));
    }
}
