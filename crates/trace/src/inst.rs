//! The native instruction event model.
//!
//! Every architectural study in this project is trace-driven: execution
//! engines emit one [`NativeInst`] per simulated native (SPARC-like)
//! instruction. An event carries everything the downstream simulators
//! need — the program counter, an instruction class, an optional data
//! memory reference, optional control-transfer information, small
//! virtual register operands (for dependence modelling in the ILP
//! simulator), and the execution [`Phase`] that produced it.

use crate::Addr;
use std::fmt;

/// A virtual architectural register id.
///
/// The synthetic ISA models a RISC register file of [`NUM_REGS`]
/// integer registers. Register ids only matter to the ILP simulator,
/// which uses them to reconstruct true data-dependence chains.
pub type Reg = u8;

/// Number of architectural registers in the synthetic ISA.
pub const NUM_REGS: usize = 32;

/// Classification of a native instruction.
///
/// The classes mirror the categories the paper reports in its
/// instruction-mix study (Figure 2): ALU operations, memory accesses,
/// and the control-transfer family split by directness, which is what
/// distinguishes the interpreter (indirect-jump heavy) from JIT output
/// (direct branches and calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstClass {
    /// Simple integer ALU operation (add, sub, logical, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency).
    IntDiv,
    /// Floating-point/fixed-point arithmetic unit operation.
    FpAlu,
    /// Load from data memory.
    Load,
    /// Store to data memory.
    Store,
    /// Conditional branch (direction predicted by the branch predictor).
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Register-indirect jump (e.g. the interpreter `switch` dispatch).
    IndirectJump,
    /// Direct call.
    Call,
    /// Register-indirect call (e.g. virtual method dispatch).
    IndirectCall,
    /// Return from call.
    Ret,
    /// No-operation / pipeline filler.
    Nop,
}

impl InstClass {
    /// All instruction classes, in display order.
    pub const ALL: [InstClass; 13] = [
        InstClass::IntAlu,
        InstClass::IntMul,
        InstClass::IntDiv,
        InstClass::FpAlu,
        InstClass::Load,
        InstClass::Store,
        InstClass::CondBranch,
        InstClass::Jump,
        InstClass::IndirectJump,
        InstClass::Call,
        InstClass::IndirectCall,
        InstClass::Ret,
        InstClass::Nop,
    ];

    /// Returns `true` for any control-transfer instruction
    /// (branch, jump, call, or return).
    pub fn is_transfer(self) -> bool {
        matches!(
            self,
            InstClass::CondBranch
                | InstClass::Jump
                | InstClass::IndirectJump
                | InstClass::Call
                | InstClass::IndirectCall
                | InstClass::Ret
        )
    }

    /// Returns `true` if the transfer target comes from a register
    /// (and therefore needs target prediction rather than decode-time
    /// target computation).
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            InstClass::IndirectJump | InstClass::IndirectCall | InstClass::Ret
        )
    }

    /// Returns `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }

    /// Short mnemonic used in table output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            InstClass::IntAlu => "alu",
            InstClass::IntMul => "mul",
            InstClass::IntDiv => "div",
            InstClass::FpAlu => "fpu",
            InstClass::Load => "ld",
            InstClass::Store => "st",
            InstClass::CondBranch => "br",
            InstClass::Jump => "jmp",
            InstClass::IndirectJump => "ijmp",
            InstClass::Call => "call",
            InstClass::IndirectCall => "icall",
            InstClass::Ret => "ret",
            InstClass::Nop => "nop",
        }
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Whether a data memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A data-memory reference attached to a load or store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Simulated virtual address accessed.
    pub addr: Addr,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u8,
    /// Read or write.
    pub kind: AccessKind,
}

/// Control-transfer information attached to branch/jump/call/return
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtrlInfo {
    /// Actual (resolved) target of the transfer.
    pub target: Addr,
    /// Whether the transfer was taken. Always `true` for unconditional
    /// transfers; meaningful for [`InstClass::CondBranch`].
    pub taken: bool,
}

/// The part of the runtime that produced an instruction.
///
/// Phase attribution is what lets the cache studies isolate the
/// *translate* portion of JIT execution (Figure 5 of the paper) from the
/// execution of generated code, and lets Figure 1 split JIT time into
/// translation vs. execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Interpreter dispatch loop: opcode fetch + `switch` indirect jump.
    InterpDispatch,
    /// Interpreter bytecode handler body.
    InterpHandler,
    /// JIT translator: reading bytecodes, code generation, installation.
    Translate,
    /// Execution of JIT-generated native code.
    NativeExec,
    /// VM runtime services (frame setup, allocation, intrinsics).
    Runtime,
    /// Garbage collection.
    Gc,
    /// Monitor enter/exit paths.
    Sync,
    /// Class loading and resolution.
    ClassLoad,
    /// Ahead-of-time compiled "C-like" application code (used by the
    /// native comparison mode for Figure 4).
    NativeApp,
    /// Generational-GC write barrier (card mark) work, emitted inline
    /// at reference stores. Kept separate from [`Phase::Gc`] so the
    /// cache studies can attribute mutator barrier overhead apart
    /// from collection work.
    GcBarrier,
}

impl Phase {
    /// All phases, in display order. `GcBarrier` stays last: the tape
    /// format encodes a phase as its index in this array, so new
    /// phases must append.
    pub const ALL: [Phase; 10] = [
        Phase::InterpDispatch,
        Phase::InterpHandler,
        Phase::Translate,
        Phase::NativeExec,
        Phase::Runtime,
        Phase::Gc,
        Phase::Sync,
        Phase::ClassLoad,
        Phase::NativeApp,
        Phase::GcBarrier,
    ];

    /// Returns `true` if this phase belongs to the JIT translator
    /// (the "translate portion" isolated in Figures 1 and 5).
    pub fn is_translate(self) -> bool {
        matches!(self, Phase::Translate)
    }

    /// Short label used in table output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::InterpDispatch => "dispatch",
            Phase::InterpHandler => "handler",
            Phase::Translate => "translate",
            Phase::NativeExec => "native",
            Phase::Runtime => "runtime",
            Phase::Gc => "gc",
            Phase::Sync => "sync",
            Phase::ClassLoad => "classload",
            Phase::NativeApp => "nativeapp",
            Phase::GcBarrier => "gcbarrier",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One simulated native instruction event.
///
/// Constructed by the execution engines through the shorthand
/// constructors ([`NativeInst::alu`], [`NativeInst::load`],
/// [`NativeInst::branch`], …) and consumed by [`TraceSink`]s.
///
/// [`TraceSink`]: crate::TraceSink
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NativeInst {
    /// Simulated program counter of this instruction.
    pub pc: Addr,
    /// Instruction class.
    pub class: InstClass,
    /// Data memory reference, for loads and stores.
    pub mem: Option<MemRef>,
    /// Control-transfer outcome, for transfer instructions.
    pub ctrl: Option<CtrlInfo>,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Which part of the runtime emitted this instruction.
    pub phase: Phase,
}

impl NativeInst {
    /// Creates a bare instruction of the given class with no operands.
    pub fn new(pc: Addr, class: InstClass, phase: Phase) -> Self {
        NativeInst {
            pc,
            class,
            mem: None,
            ctrl: None,
            dst: None,
            src1: None,
            src2: None,
            phase,
        }
    }

    /// Creates an integer ALU instruction.
    pub fn alu(pc: Addr, phase: Phase) -> Self {
        Self::new(pc, InstClass::IntAlu, phase)
    }

    /// Creates a load of `size` bytes from `addr`.
    pub fn load(pc: Addr, addr: Addr, size: u8, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::Load, phase);
        i.mem = Some(MemRef {
            addr,
            size,
            kind: AccessKind::Read,
        });
        i
    }

    /// Creates a store of `size` bytes to `addr`.
    pub fn store(pc: Addr, addr: Addr, size: u8, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::Store, phase);
        i.mem = Some(MemRef {
            addr,
            size,
            kind: AccessKind::Write,
        });
        i
    }

    /// Creates a conditional branch with resolved direction and target.
    pub fn branch(pc: Addr, target: Addr, taken: bool, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::CondBranch, phase);
        i.ctrl = Some(CtrlInfo { target, taken });
        i
    }

    /// Creates an unconditional direct jump.
    pub fn jump(pc: Addr, target: Addr, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::Jump, phase);
        i.ctrl = Some(CtrlInfo {
            target,
            taken: true,
        });
        i
    }

    /// Creates a register-indirect jump (e.g. interpreter dispatch).
    pub fn indirect_jump(pc: Addr, target: Addr, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::IndirectJump, phase);
        i.ctrl = Some(CtrlInfo {
            target,
            taken: true,
        });
        i
    }

    /// Creates a direct call.
    pub fn call(pc: Addr, target: Addr, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::Call, phase);
        i.ctrl = Some(CtrlInfo {
            target,
            taken: true,
        });
        i
    }

    /// Creates a register-indirect call (virtual dispatch).
    pub fn indirect_call(pc: Addr, target: Addr, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::IndirectCall, phase);
        i.ctrl = Some(CtrlInfo {
            target,
            taken: true,
        });
        i
    }

    /// Creates a return to `target`.
    pub fn ret(pc: Addr, target: Addr, phase: Phase) -> Self {
        let mut i = Self::new(pc, InstClass::Ret, phase);
        i.ctrl = Some(CtrlInfo {
            target,
            taken: true,
        });
        i
    }

    /// Sets the destination register (builder style).
    pub fn with_dst(mut self, r: Reg) -> Self {
        self.dst = Some(r % NUM_REGS as Reg);
        self
    }

    /// Sets one or two source registers (builder style).
    pub fn with_srcs(mut self, a: Reg, b: Option<Reg>) -> Self {
        self.src1 = Some(a % NUM_REGS as Reg);
        self.src2 = b.map(|r| r % NUM_REGS as Reg);
        self
    }

    /// Returns `true` if this instruction writes data memory.
    pub fn is_write(&self) -> bool {
        matches!(
            self.mem,
            Some(MemRef {
                kind: AccessKind::Write,
                ..
            })
        )
    }
}

impl fmt::Display for NativeInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x} {} [{}]", self.pc, self.class, self.phase)?;
        if let Some(m) = self.mem {
            write!(
                f,
                " {}{:#x}/{}",
                if m.kind == AccessKind::Write {
                    "W"
                } else {
                    "R"
                },
                m.addr,
                m.size
            )?;
        }
        if let Some(c) = self.ctrl {
            write!(f, " ->{:#x}{}", c.target, if c.taken { "" } else { " nt" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_classification() {
        assert!(InstClass::CondBranch.is_transfer());
        assert!(InstClass::IndirectJump.is_transfer());
        assert!(InstClass::Call.is_transfer());
        assert!(InstClass::Ret.is_transfer());
        assert!(!InstClass::IntAlu.is_transfer());
        assert!(!InstClass::Load.is_transfer());
    }

    #[test]
    fn indirect_classification() {
        assert!(InstClass::IndirectJump.is_indirect());
        assert!(InstClass::IndirectCall.is_indirect());
        assert!(InstClass::Ret.is_indirect());
        assert!(!InstClass::CondBranch.is_indirect());
        assert!(!InstClass::Jump.is_indirect());
        assert!(!InstClass::Call.is_indirect());
    }

    #[test]
    fn mem_classification() {
        assert!(InstClass::Load.is_mem());
        assert!(InstClass::Store.is_mem());
        assert!(!InstClass::IntAlu.is_mem());
    }

    #[test]
    fn constructors_fill_fields() {
        let ld = NativeInst::load(0x100, 0x2000_0000, 4, Phase::InterpHandler);
        assert_eq!(ld.class, InstClass::Load);
        assert_eq!(
            ld.mem,
            Some(MemRef {
                addr: 0x2000_0000,
                size: 4,
                kind: AccessKind::Read
            })
        );
        assert!(!ld.is_write());

        let st = NativeInst::store(0x104, 0x2000_0004, 4, Phase::InterpHandler);
        assert!(st.is_write());

        let br = NativeInst::branch(0x108, 0x100, false, Phase::NativeExec);
        assert_eq!(
            br.ctrl,
            Some(CtrlInfo {
                target: 0x100,
                taken: false
            })
        );
    }

    #[test]
    fn register_builder_wraps_into_range() {
        let i = NativeInst::alu(0, Phase::Runtime)
            .with_dst(200)
            .with_srcs(40, Some(33));
        assert!(usize::from(i.dst.unwrap()) < NUM_REGS);
        assert!(usize::from(i.src1.unwrap()) < NUM_REGS);
        assert!(usize::from(i.src2.unwrap()) < NUM_REGS);
    }

    #[test]
    fn display_is_nonempty() {
        let i = NativeInst::indirect_jump(0x42, 0x1000, Phase::InterpDispatch);
        let s = i.to_string();
        assert!(s.contains("ijmp"));
        assert!(s.contains("dispatch"));
    }

    #[test]
    fn phase_translate_flag() {
        assert!(Phase::Translate.is_translate());
        assert!(!Phase::NativeExec.is_translate());
    }
}
