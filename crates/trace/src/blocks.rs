//! Decoded structure-of-arrays access blocks.
//!
//! A [`Tape`] stores events delta-packed; replaying it
//! pays the nibble/zigzag decoder plus a virtual `accept` call per
//! event per consumer. The cache studies only need four fields of each
//! event — pc, data address, access kind, phase — so [`AccessBlocks`]
//! decodes a tape **once** into flat parallel arrays, chunked into
//! blocks of [`BLOCK_EVENTS`] events. Access-level consumers (the
//! one-pass cache-sweep engine, `SplitCaches`-style models) then
//! iterate cache-friendly slices instead of re-decoding the tape on
//! every pass.
//!
//! # Examples
//!
//! ```
//! use jrt_trace::{AccessBlocks, NativeInst, Phase, Tape};
//!
//! let tape = Tape::record(|rec| {
//!     use jrt_trace::TraceSink;
//!     rec.accept(&NativeInst::alu(0x1000, Phase::NativeExec));
//!     rec.accept(&NativeInst::load(0x1004, 0x2000_0000, 4, Phase::NativeExec));
//! });
//! let blocks = AccessBlocks::from_tape(&tape);
//! assert_eq!(blocks.len(), 2);
//! let b = &blocks.blocks()[0];
//! assert_eq!(b.pc[1], 0x1004);
//! assert_eq!(b.kind[0], jrt_trace::blocks::KIND_NONE);
//! assert_eq!(b.kind[1], jrt_trace::blocks::KIND_READ);
//! ```

use crate::inst::{AccessKind, NativeInst};
use crate::region::Region;
use crate::sink::{phase_index, TraceSink};
use crate::tape::Tape;

/// Events per block: large enough to amortize per-block overhead,
/// small enough that one block's arrays (~20 B/event ≈ 1.3 MB) stay
/// cache- and allocator-friendly.
pub const BLOCK_EVENTS: usize = 64 * 1024;

/// `kind` value for an event with no data-memory reference.
pub const KIND_NONE: u8 = 0;
/// `kind` value for a data read.
pub const KIND_READ: u8 = 1;
/// `kind` value for a data write.
pub const KIND_WRITE: u8 = 2;

/// Region-byte value for an address [`Region::classify`] maps to no
/// region; any other value is the region's index in [`Region::ALL`].
pub const REGION_NONE: u8 = u8::MAX;

#[inline]
fn region_byte(addr: u64) -> u8 {
    match Region::classify(addr) {
        Some(r) => r as u8,
        None => REGION_NONE,
    }
}

/// One chunk of decoded events as parallel arrays (all the same
/// length): instruction fetch address, data address, access kind, and
/// phase index into [`Phase::ALL`](crate::inst::Phase::ALL), plus the memoized
/// [`Region::classify`] results for pc and data address (classifying
/// is branchy range-compare work that every simulation pass would
/// otherwise repeat per event; here it is paid once at decode).
#[derive(Debug, Clone, Default)]
pub struct AccessBlock {
    /// Program counter (instruction-fetch address) per event.
    pub pc: Vec<u64>,
    /// Data address per event; meaningful only when `kind != KIND_NONE`.
    pub addr: Vec<u64>,
    /// Data-access kind per event ([`KIND_NONE`]/[`KIND_READ`]/[`KIND_WRITE`]).
    pub kind: Vec<u8>,
    /// Phase index into [`Phase::ALL`](crate::inst::Phase::ALL) per event.
    pub phase: Vec<u8>,
    /// [`Region::ALL`] index of `pc` per event, or [`REGION_NONE`].
    pub pc_region: Vec<u8>,
    /// [`Region::ALL`] index of `addr` per event, or [`REGION_NONE`];
    /// always [`REGION_NONE`] when `kind == KIND_NONE`.
    pub addr_region: Vec<u8>,
}

impl AccessBlock {
    /// Events in this block.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the block holds no events.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Decodes a `kind` byte back into an optional [`AccessKind`].
    pub fn mem_kind(kind: u8) -> Option<AccessKind> {
        match kind {
            KIND_READ => Some(AccessKind::Read),
            KIND_WRITE => Some(AccessKind::Write),
            _ => None,
        }
    }

    fn with_capacity(n: usize) -> Self {
        AccessBlock {
            pc: Vec::with_capacity(n),
            addr: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            phase: Vec::with_capacity(n),
            pc_region: Vec::with_capacity(n),
            addr_region: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, inst: &NativeInst) {
        self.pc.push(inst.pc);
        self.pc_region.push(region_byte(inst.pc));
        match inst.mem {
            Some(m) => {
                self.addr.push(m.addr);
                self.addr_region.push(region_byte(m.addr));
                self.kind.push(if m.kind == AccessKind::Write {
                    KIND_WRITE
                } else {
                    KIND_READ
                });
            }
            None => {
                self.addr.push(0);
                self.addr_region.push(REGION_NONE);
                self.kind.push(KIND_NONE);
            }
        }
        self.phase.push(phase_index(inst.phase) as u8);
    }
}

/// A decoded access stream: blocks of [`BLOCK_EVENTS`] events each
/// (the last may be shorter). Immutable once built; `Send + Sync`, so
/// one decode can be shared across worker threads behind an `Arc`.
#[derive(Debug, Clone, Default)]
pub struct AccessBlocks {
    blocks: Vec<AccessBlock>,
    events: u64,
}

impl AccessBlocks {
    /// Decodes `tape` into blocks (one full replay pass).
    pub fn from_tape(tape: &Tape) -> Self {
        let mut b = AccessBlocksBuilder::new();
        tape.replay(&mut b);
        b.into_blocks()
    }

    /// The decoded blocks, in stream order.
    pub fn blocks(&self) -> &[AccessBlock] {
        &self.blocks
    }

    /// Total decoded events.
    pub fn len(&self) -> u64 {
        self.events
    }

    /// Whether no event was decoded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Approximate heap footprint of the decoded arrays in bytes.
    pub fn size_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.pc.capacity() * 8
                    + b.addr.capacity() * 8
                    + b.kind.capacity()
                    + b.phase.capacity()
                    + b.pc_region.capacity()
                    + b.addr_region.capacity()
            })
            .sum()
    }
}

/// A [`TraceSink`] that decodes the stream into [`AccessBlocks`].
#[derive(Debug, Clone, Default)]
pub struct AccessBlocksBuilder {
    done: AccessBlocks,
    current: AccessBlock,
}

impl AccessBlocksBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes building and returns the blocks.
    pub fn into_blocks(mut self) -> AccessBlocks {
        if !self.current.is_empty() {
            self.done.blocks.push(self.current);
        }
        self.done
    }
}

impl TraceSink for AccessBlocksBuilder {
    fn accept(&mut self, inst: &NativeInst) {
        if self.current.pc.capacity() == 0 {
            self.current = AccessBlock::with_capacity(BLOCK_EVENTS);
        }
        self.current.push(inst);
        self.done.events += 1;
        if self.current.len() == BLOCK_EVENTS {
            let full = std::mem::take(&mut self.current);
            self.done.blocks.push(full);
        }
    }
}

/// A [`TraceSink`] that decodes the stream into [`AccessBlock`]s of
/// [`BLOCK_EVENTS`] events and hands each finished block to a callback
/// — the out-of-core counterpart of [`AccessBlocksBuilder`]: one block
/// (~1.3 MB decoded) is alive at a time, its buffers reused, so a
/// consumer can stream a tape far larger than RAM through
/// [`Tape::replay_stream`] without materializing [`AccessBlocks`].
#[derive(Debug)]
pub struct AccessBlockSink<F: FnMut(&AccessBlock)> {
    current: AccessBlock,
    emit: F,
}

impl<F: FnMut(&AccessBlock)> AccessBlockSink<F> {
    /// Creates a sink that calls `emit` once per decoded block
    /// (and once more from [`TraceSink::finish`] for a trailing
    /// partial block).
    pub fn new(emit: F) -> Self {
        AccessBlockSink {
            current: AccessBlock::with_capacity(BLOCK_EVENTS),
            emit,
        }
    }
}

impl<F: FnMut(&AccessBlock)> TraceSink for AccessBlockSink<F> {
    fn accept(&mut self, inst: &NativeInst) {
        self.current.push(inst);
        if self.current.len() == BLOCK_EVENTS {
            (self.emit)(&self.current);
            self.current.pc.clear();
            self.current.addr.clear();
            self.current.kind.clear();
            self.current.phase.clear();
            self.current.pc_region.clear();
            self.current.addr_region.clear();
        }
    }

    fn finish(&mut self) {
        if !self.current.is_empty() {
            (self.emit)(&self.current);
            self.current = AccessBlock::with_capacity(BLOCK_EVENTS);
        }
    }
}

impl Tape {
    /// Streams the tape through block-at-a-time decode: every
    /// [`BLOCK_EVENTS`]-event chunk (the last may be shorter) is
    /// decoded into a reused [`AccessBlock`] and passed to `f` in
    /// stream order. Equivalent to iterating
    /// [`AccessBlocks::from_tape`]`.blocks()` but with O(1) decoded
    /// state instead of the whole tape.
    pub fn replay_stream(&self, f: impl FnMut(&AccessBlock)) {
        let mut sink = AccessBlockSink::new(f);
        self.replay(&mut sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Phase;

    fn sample_tape(n: u64) -> Tape {
        Tape::record(|rec| {
            for k in 0..n {
                rec.accept(&NativeInst::alu(0x1000 + 4 * k, Phase::NativeExec));
                rec.accept(&NativeInst::store(
                    0x2000 + 4 * k,
                    0x2000_0000 + 8 * k,
                    4,
                    Phase::Translate,
                ));
            }
        })
    }

    #[test]
    fn decodes_all_fields() {
        let blocks = AccessBlocks::from_tape(&sample_tape(3));
        assert_eq!(blocks.len(), 6);
        let b = &blocks.blocks()[0];
        assert_eq!(b.len(), 6);
        assert_eq!(b.pc[0], 0x1000);
        assert_eq!(b.kind[0], KIND_NONE);
        assert_eq!(b.kind[1], KIND_WRITE);
        assert_eq!(b.addr[1], 0x2000_0000);
        assert_eq!(Phase::ALL[usize::from(b.phase[1])], Phase::Translate);
        assert_eq!(AccessBlock::mem_kind(b.kind[1]), Some(AccessKind::Write));
        assert_eq!(AccessBlock::mem_kind(b.kind[0]), None);
    }

    #[test]
    fn chunks_at_block_boundary() {
        // 2 events per loop iteration; BLOCK_EVENTS/2 + 1 iterations
        // spills exactly 2 events into a second block.
        let n = (BLOCK_EVENTS / 2 + 1) as u64;
        let blocks = AccessBlocks::from_tape(&sample_tape(n));
        assert_eq!(blocks.len(), 2 * n);
        assert_eq!(blocks.blocks().len(), 2);
        assert_eq!(blocks.blocks()[0].len(), BLOCK_EVENTS);
        assert_eq!(blocks.blocks()[1].len(), 2);
        assert!(blocks.size_bytes() >= BLOCK_EVENTS * 20);
    }

    #[test]
    fn region_bytes_match_classify() {
        let tape = Tape::record(|rec| {
            rec.accept(&NativeInst::load(
                crate::layout::VM_TEXT_BASE,
                crate::layout::HEAP_BASE,
                4,
                Phase::NativeExec,
            ));
            rec.accept(&NativeInst::alu(0, Phase::NativeExec)); // pc outside every region
        });
        let blocks = AccessBlocks::from_tape(&tape);
        let b = &blocks.blocks()[0];
        assert_eq!(
            Region::ALL[usize::from(b.pc_region[0])],
            Region::classify(crate::layout::VM_TEXT_BASE).unwrap()
        );
        assert_eq!(
            Region::ALL[usize::from(b.addr_region[0])],
            Region::classify(crate::layout::HEAP_BASE).unwrap()
        );
        assert_eq!(b.pc_region[1], REGION_NONE);
        assert_eq!(b.addr_region[1], REGION_NONE);
    }

    #[test]
    fn empty_tape_decodes_empty() {
        let blocks = AccessBlocks::from_tape(&Tape::default());
        assert!(blocks.is_empty());
        assert!(blocks.blocks().is_empty());
    }

    #[test]
    fn replay_stream_matches_materialized_blocks() {
        // Spills into a second (partial) block to exercise finish().
        let n = (BLOCK_EVENTS / 2 + 7) as u64;
        let tape = sample_tape(n);
        let materialized = AccessBlocks::from_tape(&tape);

        let mut streamed: Vec<AccessBlock> = Vec::new();
        tape.replay_stream(|b| streamed.push(b.clone()));

        assert_eq!(streamed.len(), materialized.blocks().len());
        for (s, m) in streamed.iter().zip(materialized.blocks()) {
            assert_eq!(s.pc, m.pc);
            assert_eq!(s.addr, m.addr);
            assert_eq!(s.kind, m.kind);
            assert_eq!(s.phase, m.phase);
            assert_eq!(s.pc_region, m.pc_region);
            assert_eq!(s.addr_region, m.addr_region);
        }
    }

    #[test]
    fn blocks_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccessBlocks>();
    }
}
