//! Simulated address-space layout.
//!
//! The runtime places each kind of memory in its own disjoint region so
//! that cache studies can attribute traffic (e.g. *bytecode read as
//! data* by the interpreter, or *write misses into the code cache*
//! during JIT code installation — Figure 5 of the paper).

use crate::Addr;
use std::fmt;

/// Base addresses and sizes of the simulated regions.
///
/// Regions are generously sized and never overlap; allocation within a
/// region is the responsibility of the owning subsystem.
pub mod layout {
    use crate::Addr;

    /// Interpreter + VM runtime text (handler bodies live here).
    pub const VM_TEXT_BASE: Addr = 0x0001_0000;
    /// End of VM text.
    pub const VM_TEXT_END: Addr = 0x00F0_0000;
    /// JIT translator's own code.
    pub const TRANSLATOR_TEXT_BASE: Addr = 0x0100_0000;
    /// End of translator text.
    pub const TRANSLATOR_TEXT_END: Addr = 0x01F0_0000;
    /// Code cache: JIT-generated native code is installed here.
    pub const CODE_CACHE_BASE: Addr = 0x0200_0000;
    /// End of the code cache.
    pub const CODE_CACHE_END: Addr = 0x07FF_FFFF;
    /// Ahead-of-time compiled application text ("C-like" mode).
    pub const NATIVE_TEXT_BASE: Addr = 0x0800_0000;
    /// End of native application text.
    pub const NATIVE_TEXT_END: Addr = 0x0FFF_FFFF;
    /// Class area: loaded bytecode streams, constant pools, metadata.
    pub const CLASS_AREA_BASE: Addr = 0x1000_0000;
    /// End of the class area.
    pub const CLASS_AREA_END: Addr = 0x1FFF_FFFF;
    /// Java heap: objects and arrays.
    pub const HEAP_BASE: Addr = 0x2000_0000;
    /// End of the Java heap.
    pub const HEAP_END: Addr = 0x2FFF_FFFF;
    /// Thread stacks: frames, operand stacks, locals.
    pub const STACK_BASE: Addr = 0x3000_0000;
    /// End of the stack area.
    pub const STACK_END: Addr = 0x3FFF_FFFF;
    /// VM data: translator work buffers, monitor cache, tables.
    pub const VM_DATA_BASE: Addr = 0x4000_0000;
    /// End of VM data.
    pub const VM_DATA_END: Addr = 0x4FFF_FFFF;
}

/// A named region of the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Interpreter and VM runtime code.
    VmText,
    /// JIT translator code.
    TranslatorText,
    /// JIT-generated code (the code cache).
    CodeCache,
    /// Ahead-of-time compiled application code.
    NativeText,
    /// Loaded classes: bytecode streams and constant pools.
    ClassArea,
    /// Java object heap.
    Heap,
    /// Thread stacks (frames, operand stacks, locals).
    Stack,
    /// Miscellaneous VM data structures.
    VmData,
}

impl Region {
    /// All regions, in address order.
    pub const ALL: [Region; 8] = [
        Region::VmText,
        Region::TranslatorText,
        Region::CodeCache,
        Region::NativeText,
        Region::ClassArea,
        Region::Heap,
        Region::Stack,
        Region::VmData,
    ];

    /// Classifies an address into its region.
    ///
    /// Addresses outside all defined regions (including address 0)
    /// return `None`.
    pub fn classify(addr: Addr) -> Option<Region> {
        use layout::*;
        Some(match addr {
            a if (VM_TEXT_BASE..VM_TEXT_END).contains(&a) => Region::VmText,
            a if (TRANSLATOR_TEXT_BASE..TRANSLATOR_TEXT_END).contains(&a) => Region::TranslatorText,
            a if (CODE_CACHE_BASE..=CODE_CACHE_END).contains(&a) => Region::CodeCache,
            a if (NATIVE_TEXT_BASE..=NATIVE_TEXT_END).contains(&a) => Region::NativeText,
            a if (CLASS_AREA_BASE..=CLASS_AREA_END).contains(&a) => Region::ClassArea,
            a if (HEAP_BASE..=HEAP_END).contains(&a) => Region::Heap,
            a if (STACK_BASE..=STACK_END).contains(&a) => Region::Stack,
            a if (VM_DATA_BASE..=VM_DATA_END).contains(&a) => Region::VmData,
            _ => return None,
        })
    }

    /// Returns `true` for regions that hold executable code.
    pub fn is_code(self) -> bool {
        matches!(
            self,
            Region::VmText | Region::TranslatorText | Region::CodeCache | Region::NativeText
        )
    }

    /// Short label used in table output.
    pub fn label(self) -> &'static str {
        match self {
            Region::VmText => "vm-text",
            Region::TranslatorText => "xlate-text",
            Region::CodeCache => "code-cache",
            Region::NativeText => "native-text",
            Region::ClassArea => "class-area",
            Region::Heap => "heap",
            Region::Stack => "stack",
            Region::VmData => "vm-data",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_bases() {
        assert_eq!(Region::classify(layout::VM_TEXT_BASE), Some(Region::VmText));
        assert_eq!(
            Region::classify(layout::TRANSLATOR_TEXT_BASE),
            Some(Region::TranslatorText)
        );
        assert_eq!(
            Region::classify(layout::CODE_CACHE_BASE),
            Some(Region::CodeCache)
        );
        assert_eq!(
            Region::classify(layout::NATIVE_TEXT_BASE),
            Some(Region::NativeText)
        );
        assert_eq!(
            Region::classify(layout::CLASS_AREA_BASE),
            Some(Region::ClassArea)
        );
        assert_eq!(Region::classify(layout::HEAP_BASE), Some(Region::Heap));
        assert_eq!(Region::classify(layout::STACK_BASE), Some(Region::Stack));
        assert_eq!(Region::classify(layout::VM_DATA_BASE), Some(Region::VmData));
    }

    #[test]
    fn classify_out_of_range() {
        assert_eq!(Region::classify(0), None);
        assert_eq!(Region::classify(0xFFFF_FFFF_FFFF), None);
    }

    #[test]
    fn code_regions() {
        assert!(Region::VmText.is_code());
        assert!(Region::CodeCache.is_code());
        assert!(Region::NativeText.is_code());
        assert!(!Region::Heap.is_code());
        assert!(!Region::Stack.is_code());
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        use layout::*;
        let bounds = [
            (VM_TEXT_BASE, VM_TEXT_END),
            (TRANSLATOR_TEXT_BASE, TRANSLATOR_TEXT_END),
            (CODE_CACHE_BASE, CODE_CACHE_END),
            (NATIVE_TEXT_BASE, NATIVE_TEXT_END),
            (CLASS_AREA_BASE, CLASS_AREA_END),
            (HEAP_BASE, HEAP_END),
            (STACK_BASE, STACK_END),
            (VM_DATA_BASE, VM_DATA_END),
        ];
        for w in bounds.windows(2) {
            assert!(w[0].1 <= w[1].0, "regions overlap: {:?}", w);
        }
    }
}
