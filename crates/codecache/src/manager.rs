//! The code-cache manager: per-method segments over the arena, with
//! capacity enforcement, pluggable eviction, and sharing scopes.
//!
//! Keys are opaque `u64`s minted by the VM's JIT engine: per-VM keys
//! encode the method identity, per-thread keys add the installing
//! thread, and shared-scope keys are interned content ids so that
//! contexts with byte-identical method bodies resolve to one segment
//! (ShareJIT's install-once dedup). The manager never inspects key
//! structure — it only allocates, tracks recency/hotness, and picks
//! deterministic victims.

use crate::arena::Arena;
use crate::policy::EvictionPolicy;
use jrt_trace::{Addr, IdHashMap, IdHashSet};

/// Who shares one set of installed segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CacheScope {
    /// One cache per VM: every thread sees every installed method
    /// (the historical behaviour — green threads share the process'
    /// code cache).
    #[default]
    PerVm,
    /// Each thread installs and looks up privately; the same method
    /// invoked from two threads is translated twice (the
    /// private-cache baseline of the sharing study).
    PerThread,
    /// Content-shared: methods with byte-identical bodies map to one
    /// segment regardless of class or thread (ShareJIT-style
    /// install-once dedup).
    Shared,
}

impl CacheScope {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            CacheScope::PerVm => "per-vm",
            CacheScope::PerThread => "private",
            CacheScope::Shared => "shared",
        }
    }
}

/// Configuration of one code cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeCacheConfig {
    /// Capacity in (unaligned) code bytes; `u64::MAX` = unbounded,
    /// the paper's baseline.
    pub capacity_bytes: u64,
    /// Victim selection when an install exceeds the capacity.
    pub eviction: EvictionPolicy,
    /// Who shares installed segments.
    pub scope: CacheScope,
}

impl Default for CodeCacheConfig {
    fn default() -> Self {
        CodeCacheConfig {
            capacity_bytes: u64::MAX,
            eviction: EvictionPolicy::Unbounded,
            scope: CacheScope::PerVm,
        }
    }
}

impl CodeCacheConfig {
    /// A bounded cache with the given capacity and eviction policy.
    pub fn bounded(capacity_bytes: u64, eviction: EvictionPolicy) -> Self {
        CodeCacheConfig {
            capacity_bytes,
            eviction,
            ..CodeCacheConfig::default()
        }
    }

    /// Sets the sharing scope (builder style).
    pub fn with_scope(mut self, scope: CacheScope) -> Self {
        self.scope = scope;
        self
    }
}

/// One installed method's segment.
#[derive(Debug, Clone, Copy)]
struct Segment {
    entry: Addr,
    aligned_bytes: u64,
    code_bytes: u64,
    last_use: u64,
    uses: u64,
}

/// Lifetime counters of one manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodeCacheStats {
    /// Successful installs (including re-installs after eviction).
    pub installs: u64,
    /// Segments evicted to make room.
    pub evictions: u64,
    /// Installs whose key had previously been evicted — each one is
    /// translation work the unbounded baseline would not have done.
    pub retranslations: u64,
    /// Installs abandoned because no victim could make the method fit
    /// (the method alone exceeds the capacity); the key is pinned to
    /// interpretation afterwards.
    pub install_failures: u64,
    /// Largest single install in (unaligned) code bytes — the floor
    /// below which a capacity starts pinning methods uncacheable.
    pub largest_install_bytes: u64,
    /// Shared-scope content lookups: one per distinct method whose
    /// bytecode was interned for a [`CacheScope::Shared`] key (zero
    /// under the other scopes).
    pub shared_lookups: u64,
    /// The subset of [`CodeCacheStats::shared_lookups`] that resolved
    /// to an already-interned content id — a ShareJIT-style dedup hit
    /// where a byte-identical body (from another class, tenant, or
    /// program) reuses the existing translation instead of paying for
    /// its own.
    pub shared_dedup_hits: u64,
}

impl CodeCacheStats {
    /// Fraction of shared-scope content lookups that deduplicated
    /// onto existing content (`0.0` when no lookups happened, e.g.
    /// under per-VM or per-thread scope).
    pub fn dedup_rate(&self) -> f64 {
        if self.shared_lookups == 0 {
            0.0
        } else {
            self.shared_dedup_hits as f64 / self.shared_lookups as f64
        }
    }
}

/// Result of an install attempt: the new segment's entry address (or
/// `None` on failure) plus every `(key, entry)` evicted on the way.
/// The VM must drop its compiled records for the evicted keys so
/// later calls fall back to interpretation or re-translation.
#[derive(Debug, Clone, Default)]
pub struct InstallOutcome {
    /// Entry address of the installed segment; `None` if the method
    /// could not be made to fit.
    pub entry: Option<Addr>,
    /// Evicted `(key, entry)` pairs, in eviction order.
    pub evicted: Vec<(u64, Addr)>,
}

/// The managed code cache.
#[derive(Debug, Clone)]
pub struct CodeCacheManager {
    config: CodeCacheConfig,
    arena: Arena,
    segs: IdHashMap<u64, Segment>,
    /// Logical clock: bumps on install and touch, orders recency.
    tick: u64,
    /// Live (unaligned) code bytes across installed segments.
    live: u64,
    /// Cumulative (unaligned) code bytes ever installed — the
    /// paper-era `code_cache_bytes` figure.
    ever: u64,
    evicted_keys: IdHashSet<u64>,
    uncacheable: IdHashSet<u64>,
    stats: CodeCacheStats,
}

impl CodeCacheManager {
    /// Creates a manager allocating out of `[base, limit)`.
    pub fn new(config: CodeCacheConfig, base: Addr, limit: Addr) -> Self {
        CodeCacheManager {
            config,
            arena: Arena::new(base, limit),
            segs: IdHashMap::default(),
            tick: 0,
            live: 0,
            ever: 0,
            evicted_keys: IdHashSet::default(),
            uncacheable: IdHashSet::default(),
            stats: CodeCacheStats::default(),
        }
    }

    /// The configuration this manager enforces.
    pub fn config(&self) -> &CodeCacheConfig {
        &self.config
    }

    /// Installs `code_bytes` of translated code under `key`, evicting
    /// victims per the configured policy until it fits. On failure the
    /// key is pinned uncacheable (later installs fail fast) — but any
    /// evictions performed on the way stand.
    pub fn install(&mut self, key: u64, code_bytes: u64) -> InstallOutcome {
        let mut out = InstallOutcome::default();
        if self.uncacheable.contains(&key) {
            return out;
        }
        debug_assert!(!self.segs.contains_key(&key), "key installed twice");
        let aligned = Arena::aligned(code_bytes);
        loop {
            if self.live + code_bytes <= self.config.capacity_bytes {
                if let Some(entry) = self.arena.alloc(aligned) {
                    if self.config.eviction == EvictionPolicy::HotnessDecay {
                        for seg in self.segs.values_mut() {
                            seg.uses >>= 1;
                        }
                    }
                    self.tick += 1;
                    self.segs.insert(
                        key,
                        Segment {
                            entry,
                            aligned_bytes: aligned,
                            code_bytes,
                            last_use: self.tick,
                            uses: 1,
                        },
                    );
                    self.live += code_bytes;
                    self.ever += code_bytes;
                    self.stats.installs += 1;
                    self.stats.largest_install_bytes =
                        self.stats.largest_install_bytes.max(code_bytes);
                    if self.evicted_keys.contains(&key) {
                        self.stats.retranslations += 1;
                    }
                    out.entry = Some(entry);
                    return out;
                }
            }
            let Some(victim) = self.pick_victim() else {
                self.stats.install_failures += 1;
                self.uncacheable.insert(key);
                return out;
            };
            let seg = self.segs.remove(&victim).expect("victim is installed");
            self.arena.free(seg.entry, seg.aligned_bytes);
            self.live -= seg.code_bytes;
            self.stats.evictions += 1;
            self.evicted_keys.insert(victim);
            out.evicted.push((victim, seg.entry));
        }
    }

    /// Deterministic victim choice: the policy's score, with the
    /// (unique) entry address as the final tie-break so the result
    /// never depends on `HashMap` iteration order.
    fn pick_victim(&self) -> Option<u64> {
        let segs = &self.segs;
        match self.config.eviction {
            EvictionPolicy::Unbounded => None,
            EvictionPolicy::Lru => segs
                .iter()
                .min_by_key(|(_, s)| (s.last_use, s.entry))
                .map(|(k, _)| *k),
            EvictionPolicy::SizeWeightedLru => segs
                .iter()
                .min_by_key(|(_, s)| ((s.last_use << 10) / s.aligned_bytes.max(1), s.entry))
                .map(|(k, _)| *k),
            EvictionPolicy::HotnessDecay => segs
                .iter()
                .min_by_key(|(_, s)| (s.uses, s.last_use, s.entry))
                .map(|(k, _)| *k),
        }
    }

    /// Records a use of `key` (invocation of its translated code);
    /// returns `false` if the key is not installed.
    pub fn touch(&mut self, key: u64) -> bool {
        let tick = self.tick + 1;
        match self.segs.get_mut(&key) {
            Some(seg) => {
                self.tick = tick;
                seg.last_use = tick;
                seg.uses += 1;
                true
            }
            None => false,
        }
    }

    /// Whether `key` is currently installed.
    pub fn contains(&self, key: u64) -> bool {
        self.segs.contains_key(&key)
    }

    /// Explicitly removes `key` (tier upgrade re-install); unlike an
    /// eviction this does not count toward retranslation stats.
    pub fn remove(&mut self, key: u64) -> Option<Addr> {
        let seg = self.segs.remove(&key)?;
        self.arena.free(seg.entry, seg.aligned_bytes);
        self.live -= seg.code_bytes;
        Some(seg.entry)
    }

    /// Whether `key` was pinned uncacheable by an install failure.
    pub fn is_uncacheable(&self, key: u64) -> bool {
        self.uncacheable.contains(&key)
    }

    /// Live (unaligned) code bytes across installed segments — the
    /// post-eviction footprint figure.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// Cumulative (unaligned) code bytes ever installed — the
    /// historical append-only `code_cache_bytes` figure.
    pub fn ever_bytes(&self) -> u64 {
        self.ever
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CodeCacheStats {
        self.stats
    }

    /// Records one shared-scope content lookup (a method's bytecode
    /// interned for a [`CacheScope::Shared`] key); `dedup` says
    /// whether it resolved to already-interned content. The VM calls
    /// this from its content-interning path so hit/dedup rates land
    /// in [`CodeCacheStats`] next to the install counters.
    pub fn note_shared_lookup(&mut self, dedup: bool) {
        self.stats.shared_lookups += 1;
        if dedup {
            self.stats.shared_dedup_hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounded(capacity: u64, policy: EvictionPolicy) -> CodeCacheManager {
        CodeCacheManager::new(
            CodeCacheConfig::bounded(capacity, policy),
            0x1000,
            0x100_0000,
        )
    }

    #[test]
    fn unbounded_never_evicts_and_accounts_unaligned() {
        let mut m = CodeCacheManager::new(CodeCacheConfig::default(), 0x1000, 0x100_0000);
        let a = m.install(1, 100);
        let b = m.install(2, 30);
        assert_eq!(a.entry, Some(0x1000));
        assert_eq!(b.entry, Some(0x1000 + 128)); // 100 aligns to 128
        assert!(a.evicted.is_empty() && b.evicted.is_empty());
        assert_eq!(m.live_bytes(), 130);
        assert_eq!(m.ever_bytes(), 130);
        assert_eq!(m.stats().evictions, 0);
    }

    #[test]
    fn lru_evicts_least_recent_first() {
        let mut m = bounded(300, EvictionPolicy::Lru);
        m.install(1, 100);
        m.install(2, 100);
        m.install(3, 100);
        assert!(m.touch(1)); // 2 is now least recent
        let out = m.install(4, 100);
        assert!(out.entry.is_some());
        assert_eq!(out.evicted.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [2]);
        assert!(m.contains(1) && !m.contains(2));
        assert_eq!(m.live_bytes(), 300);
        assert_eq!(m.ever_bytes(), 400);
    }

    #[test]
    fn reinstall_after_eviction_counts_retranslation() {
        let mut m = bounded(100, EvictionPolicy::Lru);
        m.install(1, 100);
        m.install(2, 100); // evicts 1
        let out = m.install(1, 100); // evicts 2, re-installs 1
        assert!(out.entry.is_some());
        assert_eq!(m.stats().evictions, 2);
        assert_eq!(m.stats().retranslations, 1);
    }

    #[test]
    fn size_weighted_prefers_large_stale_victims() {
        let mut m = bounded(1000, EvictionPolicy::SizeWeightedLru);
        m.install(1, 600); // large, installed first
        m.install(2, 100); // small, more recent
        m.install(3, 100);
        let out = m.install(4, 600);
        assert_eq!(out.evicted.first().map(|(k, _)| *k), Some(1));
    }

    #[test]
    fn hotness_decay_evicts_cold_segments() {
        let mut m = bounded(300, EvictionPolicy::HotnessDecay);
        m.install(1, 100);
        m.install(2, 100);
        m.install(3, 100);
        for _ in 0..8 {
            m.touch(1);
            m.touch(3);
        }
        let out = m.install(4, 100);
        assert_eq!(out.evicted.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn oversized_method_pins_uncacheable() {
        let mut m = bounded(100, EvictionPolicy::Lru);
        m.install(1, 50);
        let out = m.install(2, 200); // can never fit
        assert!(out.entry.is_none());
        assert!(m.is_uncacheable(2));
        assert_eq!(m.stats().install_failures, 1);
        // Fast-fail on retry, no further evictions.
        let evictions = m.stats().evictions;
        assert!(m.install(2, 200).entry.is_none());
        assert_eq!(m.stats().evictions, evictions);
    }

    #[test]
    fn unbounded_policy_with_finite_capacity_fails_instead_of_evicting() {
        let mut m = bounded(150, EvictionPolicy::Unbounded);
        assert!(m.install(1, 100).entry.is_some());
        let out = m.install(2, 100);
        assert!(out.entry.is_none() && out.evicted.is_empty());
        assert!(m.contains(1));
    }

    #[test]
    fn remove_frees_without_retranslation_accounting() {
        let mut m = bounded(u64::MAX, EvictionPolicy::Lru);
        m.install(1, 100);
        assert!(m.remove(1).is_some());
        assert_eq!(m.live_bytes(), 0);
        assert_eq!(m.ever_bytes(), 100);
        let out = m.install(1, 100);
        assert!(out.entry.is_some());
        assert_eq!(m.stats().retranslations, 0);
    }

    #[test]
    fn eviction_reuses_freed_space() {
        let mut m = bounded(100, EvictionPolicy::Lru);
        let first = m.install(1, 100).entry.unwrap();
        let out = m.install(2, 100);
        assert_eq!(out.entry, Some(first), "freed hole is reused");
    }
}
