//! The paper's Figure 1 *opt* oracle: per-method translate/interpret
//! decisions computed offline from profiles.

use crate::profile::ProfileTable;
use jrt_bytecode::MethodId;
use std::collections::HashMap;

/// Per-method translate/interpret decisions for
/// [`JitPolicy::Oracle`](crate::JitPolicy::Oracle).
#[derive(Debug, Clone, Default)]
pub struct OracleDecisions {
    decisions: HashMap<MethodId, bool>,
}

impl OracleDecisions {
    /// Computes the oracle from interpreter and JIT profiles of the
    /// same program (the paper's `opt` bar in Figure 1).
    ///
    /// For each method: `I_i` = mean interpret cycles per invocation,
    /// `E_i` = mean translated-code cycles per invocation, `T_i` =
    /// translation cycles, `n_i` = invocation count. Translate iff
    /// `I_i > E_i` and `n_i > T_i / (I_i − E_i)`.
    pub fn from_profiles(interp: &ProfileTable, jit: &ProfileTable) -> Self {
        let mut decisions = HashMap::new();
        for (mid, ip) in interp.iter() {
            let Some(jp) = jit.get(mid) else { continue };
            let n = ip.invocations.max(1) as f64;
            let i_per = ip.interp_cycles as f64 / n;
            let e_per = jp.native_cycles as f64 / jp.invocations.max(1) as f64;
            let t = jp.translate_cycles as f64;
            let translate = i_per > e_per && n > t / (i_per - e_per);
            decisions.insert(mid, translate);
        }
        OracleDecisions { decisions }
    }

    /// Forces a decision for one method (tests, what-if studies).
    pub fn set(&mut self, method: MethodId, translate: bool) {
        self.decisions.insert(method, translate);
    }

    /// Whether to translate `method`; methods absent from the profile
    /// default to interpretation.
    pub fn should_translate(&self, method: MethodId) -> bool {
        self.decisions.get(&method).copied().unwrap_or(false)
    }

    /// Number of methods decided.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no decisions are recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::ClassId;

    fn mid(i: u32) -> MethodId {
        MethodId {
            class: ClassId(0),
            index: i,
        }
    }

    #[test]
    fn oracle_translates_hot_methods() {
        let mut interp = ProfileTable::default();
        let mut jit = ProfileTable::default();
        // Hot method: 1000 invocations, interp 100 cyc/inv, exec 20,
        // translate 500 -> N = 500/80 = 6.25 < 1000 -> translate.
        interp.record_invocation(mid(0));
        jit.record_invocation(mid(0));
        {
            let p = interp.get_mut(mid(0));
            p.invocations = 1000;
            p.interp_cycles = 100_000;
        }
        {
            let p = jit.get_mut(mid(0));
            p.invocations = 1000;
            p.native_cycles = 20_000;
            p.translate_cycles = 500;
        }
        // Cold method: 1 invocation, translate cost dominates.
        interp.record_invocation(mid(1));
        jit.record_invocation(mid(1));
        {
            let p = interp.get_mut(mid(1));
            p.invocations = 1;
            p.interp_cycles = 100;
        }
        {
            let p = jit.get_mut(mid(1));
            p.invocations = 1;
            p.native_cycles = 20;
            p.translate_cycles = 5000;
        }
        let d = OracleDecisions::from_profiles(&interp, &jit);
        assert!(d.should_translate(mid(0)));
        assert!(!d.should_translate(mid(1)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn unknown_method_defaults_to_interpret() {
        let d = OracleDecisions::default();
        assert!(!d.should_translate(mid(9)));
        assert!(d.is_empty());
    }
}
