//! The managed code-cache subsystem.
//!
//! The paper's JIT study (Figure 1, Table 1, Figure 5) treats the code
//! cache as an unbounded append-only region — translation in the
//! critical path, compulsory write misses on installation, +10–33%
//! footprint. Real VMs had to *manage* that region, and this crate
//! extends the paper's "when to translate" question to the modern
//! "when to translate, what to evict, what to share" design space:
//!
//! * [`arena`] — a capacity-limited bump + free-list allocator over
//!   the simulated `Region::CodeCache` address range, replicating the
//!   historical 64-byte-aligned bump cursor byte-for-byte when nothing
//!   is ever evicted;
//! * [`manager`] — per-method segments with deterministic bookkeeping
//!   (install / lookup / touch / evict) under a pluggable
//!   [`EvictionPolicy`]; evicting an installed method forces the VM
//!   back to interpretation or re-translation, so eviction cost shows
//!   up in the native trace;
//! * [`policy`] — the eviction policies: `Unbounded` (the paper's
//!   baseline), `Lru`, `SizeWeightedLru`, and `HotnessDecay`;
//! * [`tier`] — a tiered when-to-compile layer unifying the existing
//!   interpret-only / translate-on-first-invocation / count-threshold
//!   / oracle policies behind invocation + backedge profile counters,
//!   with optional re-translation at a hotter tier (the
//!   tiered-HotSpot correspondence);
//! * [`CacheScope`] — private-per-thread vs. per-VM vs.
//!   content-shared installation scopes; the `Shared` scope gives
//!   ShareJIT-style install-once dedup across contexts with identical
//!   bytecode, cutting Translate-phase work and code-cache write
//!   misses;
//! * [`profile`] — the per-method cost profiles (`I_i`, `T_i`, `E_i`,
//!   `n_i`, plus backedge counts) the policies consume, and the
//!   paper's Figure 1 [`OracleDecisions`].
//!
//! The `jrt-vm` JIT engine installs into and looks up from a
//! [`CodeCacheManager`]; footprint accounting reads the arena (live
//! occupancy post-eviction, plus a cumulative bytes-ever-translated
//! figure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod manager;
pub mod oracle;
pub mod policy;
pub mod profile;
pub mod tier;

pub use arena::Arena;
pub use manager::{CacheScope, CodeCacheConfig, CodeCacheManager, CodeCacheStats, InstallOutcome};
pub use oracle::OracleDecisions;
pub use policy::EvictionPolicy;
pub use profile::{MethodProfile, ProfileTable};
pub use tier::{decide, JitPolicy, TIER_BASELINE, TIER_OPT};
