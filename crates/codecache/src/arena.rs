//! The code-cache arena: a bump allocator with a coalescing free
//! list over a simulated address range.
//!
//! The historical JIT (jrt-vm, pre-eviction) installed translated
//! code with a bare 64-byte-aligned bump cursor. The arena reproduces
//! that behaviour exactly when nothing is ever freed — allocations
//! come from the bump cursor at identical addresses — and adds a
//! lowest-address first-fit free list so evicted segments can be
//! reused. Reuse prefers the free list over the bump cursor, keeping
//! the arena's high-water mark (and thus the simulated footprint)
//! tight under eviction.

use jrt_trace::Addr;
use std::collections::BTreeMap;

/// Allocation alignment: translated code installs on 64-byte (cache
/// line) boundaries, matching the historical bump cursor.
pub const CODE_ALIGN: u64 = 64;

/// A bump + free-list allocator over `[base, limit)`.
#[derive(Debug, Clone)]
pub struct Arena {
    base: Addr,
    limit: Addr,
    cursor: Addr,
    /// Free blocks keyed by start address, value = length in bytes.
    /// Adjacent blocks are coalesced on free.
    free: BTreeMap<Addr, u64>,
}

impl Arena {
    /// Creates an empty arena over `[base, limit)`.
    pub fn new(base: Addr, limit: Addr) -> Self {
        assert!(base <= limit, "arena range inverted");
        Arena {
            base,
            limit,
            cursor: base,
            free: BTreeMap::new(),
        }
    }

    /// Rounds a byte count up to the allocation alignment.
    pub fn aligned(bytes: u64) -> u64 {
        (bytes + (CODE_ALIGN - 1)) & !(CODE_ALIGN - 1)
    }

    /// Allocates `bytes` (already alignment-rounded by the caller via
    /// [`Arena::aligned`]), preferring the lowest-address free block
    /// that fits, else the bump cursor. Returns `None` when the arena
    /// address range is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Option<Addr> {
        debug_assert_eq!(bytes % CODE_ALIGN, 0, "caller must align");
        if bytes == 0 {
            return Some(self.cursor);
        }
        // First fit, lowest address: deterministic regardless of
        // free/alloc interleaving history.
        let fit = self
            .free
            .iter()
            .find(|(_, len)| **len >= bytes)
            .map(|(addr, len)| (*addr, *len));
        if let Some((addr, len)) = fit {
            self.free.remove(&addr);
            if len > bytes {
                self.free.insert(addr + bytes, len - bytes);
            }
            return Some(addr);
        }
        let end = self.cursor.checked_add(bytes)?;
        if end > self.limit {
            return None;
        }
        let addr = self.cursor;
        self.cursor = end;
        Some(addr)
    }

    /// Returns a previously allocated block to the free list,
    /// coalescing with adjacent free blocks.
    pub fn free(&mut self, addr: Addr, bytes: u64) {
        debug_assert_eq!(bytes % CODE_ALIGN, 0, "caller must align");
        if bytes == 0 {
            return;
        }
        let mut start = addr;
        let mut len = bytes;
        // Coalesce with the predecessor if it ends exactly at `addr`.
        if let Some((&p_addr, &p_len)) = self.free.range(..addr).next_back() {
            debug_assert!(p_addr + p_len <= addr, "double free or overlap");
            if p_addr + p_len == addr {
                self.free.remove(&p_addr);
                start = p_addr;
                len += p_len;
            }
        }
        // Coalesce with the successor if it starts exactly at the end.
        if let Some(&s_len) = self.free.get(&(addr + bytes)) {
            self.free.remove(&(addr + bytes));
            len += s_len;
        }
        // A block ending at the bump cursor shrinks the cursor back.
        if start + len == self.cursor {
            self.cursor = start;
        } else {
            self.free.insert(start, len);
        }
    }

    /// High-water mark: bytes between base and the bump cursor (the
    /// arena's simulated footprint, including free holes).
    pub fn high_water(&self) -> u64 {
        self.cursor - self.base
    }

    /// Sum of free-list bytes (holes below the bump cursor).
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// The next bump-cursor address (the historical `cursor` field).
    pub fn cursor(&self) -> Addr {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> Arena {
        Arena::new(0x1000, 0x1000 + 64 * 16)
    }

    #[test]
    fn bump_matches_historical_cursor() {
        let mut a = arena();
        assert_eq!(a.alloc(Arena::aligned(100)), Some(0x1000));
        assert_eq!(a.alloc(Arena::aligned(1)), Some(0x1000 + 128));
        assert_eq!(a.alloc(64), Some(0x1000 + 192));
        assert_eq!(a.high_water(), 256);
    }

    #[test]
    fn reuse_prefers_lowest_fit() {
        let mut a = arena();
        let b0 = a.alloc(128).unwrap();
        let b1 = a.alloc(64).unwrap();
        let b2 = a.alloc(128).unwrap();
        a.free(b0, 128);
        a.free(b2, 128);
        // 64-byte request fits both holes; lowest wins and splits.
        assert_eq!(a.alloc(64), Some(b0));
        assert_eq!(a.alloc(64), Some(b0 + 64));
        assert_eq!(a.alloc(64), Some(b2));
        let _ = b1;
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut a = arena();
        let b0 = a.alloc(64).unwrap();
        let b1 = a.alloc(64).unwrap();
        let b2 = a.alloc(64).unwrap();
        let _guard = a.alloc(64).unwrap();
        a.free(b0, 64);
        a.free(b2, 64);
        a.free(b1, 64); // bridges b0..b2 into one 192-byte block
        assert_eq!(a.free_bytes(), 192);
        assert_eq!(a.alloc(192), Some(b0));
    }

    #[test]
    fn freeing_tail_shrinks_cursor() {
        let mut a = arena();
        let b0 = a.alloc(64).unwrap();
        let b1 = a.alloc(64).unwrap();
        a.free(b1, 64);
        assert_eq!(a.high_water(), 64);
        a.free(b0, 64);
        assert_eq!(a.high_water(), 0);
        assert_eq!(a.free_bytes(), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = Arena::new(0, 128);
        assert!(a.alloc(64).is_some());
        assert!(a.alloc(128).is_none());
        assert!(a.alloc(64).is_some());
        assert!(a.alloc(64).is_none());
    }
}
