//! Eviction policies for the bounded code cache.

/// How the manager picks a victim segment when an install does not
/// fit within the configured capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Never evict — the paper's baseline append-only code cache.
    /// With an unbounded capacity this reproduces the historical JIT
    /// byte-for-byte; with a finite capacity, methods that do not fit
    /// are simply never translated (install failure → interpretation).
    #[default]
    Unbounded,
    /// Evict the least-recently-used segment (ties broken by lowest
    /// entry address, so victim choice is deterministic).
    Lru,
    /// Evict the segment with the lowest recency-per-byte — old *and
    /// large* segments go first, trading one big eviction for several
    /// small ones.
    SizeWeightedLru,
    /// Evict the segment with the fewest decayed uses: each install
    /// halves every segment's use count, so stale hotness fades and
    /// once-hot-now-cold methods become victims.
    HotnessDecay,
}

impl EvictionPolicy {
    /// All policies, baseline first.
    pub const ALL: [EvictionPolicy; 4] = [
        EvictionPolicy::Unbounded,
        EvictionPolicy::Lru,
        EvictionPolicy::SizeWeightedLru,
        EvictionPolicy::HotnessDecay,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            EvictionPolicy::Unbounded => "unbounded",
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::SizeWeightedLru => "size-lru",
            EvictionPolicy::HotnessDecay => "hot-decay",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = EvictionPolicy::ALL.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Unbounded);
    }
}
