//! When-to-compile policy, unified over invocation + backedge
//! counters, with an optional hotter tier.
//!
//! The paper's Section 3 design space (interpret-only, translate on
//! first invocation, the offline oracle) plus the two policies real
//! VMs converged on: counter thresholds and tiered recompilation.
//! [`decide`] maps a method's profile to the tier it should run at,
//! so interpreter/JIT/oracle/threshold/tiered all flow through one
//! decision point in the VM.

use crate::oracle::OracleDecisions;
use crate::profile::MethodProfile;
use jrt_bytecode::MethodId;

/// The baseline translation tier (the paper's JIT).
pub const TIER_BASELINE: u8 = 1;

/// The optimizing tier: re-translation producing denser code at a
/// higher translation cost (tiered-HotSpot's C2 analogue).
pub const TIER_OPT: u8 = 2;

/// When (or whether) to translate a method to native code — the
/// question of Section 3 of the paper, extended with tiering.
#[derive(Debug, Clone, Default)]
pub enum JitPolicy {
    /// Translate every method on its first invocation (the Kaffe /
    /// JDK 1.2 default the paper calls the "naive heuristic").
    #[default]
    FirstInvocation,
    /// Interpret a method until its invocation count reaches the
    /// threshold, then translate (a HotSpot-style counter heuristic;
    /// included as an ablation of the design space the paper opens).
    Threshold(u32),
    /// The paper's *opt* oracle: per-method decisions computed offline
    /// from a profile — translate method `i` on first invocation iff
    /// `n_i > N_i = T_i / (I_i − E_i)`, otherwise always interpret.
    Oracle(OracleDecisions),
    /// Two-tier recompilation: interpret until the hotness score
    /// (invocations plus a backedge component) reaches `t1`, translate
    /// at the baseline tier; re-translate at the optimizing tier when
    /// the score reaches `t2` (tiered HotSpot's interpreter → C1 → C2
    /// pipeline, collapsed to two compiled tiers).
    Tiered {
        /// Hotness score at which the baseline tier kicks in.
        t1: u32,
        /// Hotness score at which the optimizing tier kicks in
        /// (`t2 > t1`).
        t2: u32,
    },
}

/// The hotness score tiered thresholds compare against: invocations
/// (counting the one being decided) plus one point per eight
/// backedges, so loop-dominated methods heat up without invocations.
pub fn hotness(profile: Option<&MethodProfile>) -> u64 {
    let (inv, back) = profile.map_or((0, 0), |p| (p.invocations, p.backedges));
    inv + 1 + back / 8
}

/// Decides the tier a method should execute at for its next
/// invocation. `compiled_tier` is the tier of already-installed code
/// (if any); a decision above it requests (re-)translation, a
/// decision of `None` means interpret.
pub fn decide(
    policy: &JitPolicy,
    method: MethodId,
    profile: Option<&MethodProfile>,
    compiled_tier: Option<u8>,
) -> Option<u8> {
    match policy {
        JitPolicy::FirstInvocation => Some(TIER_BASELINE),
        JitPolicy::Threshold(k) => {
            if compiled_tier.is_some()
                || profile.is_some_and(|p| p.invocations + 1 >= u64::from(*k))
            {
                Some(TIER_BASELINE)
            } else {
                None
            }
        }
        JitPolicy::Oracle(d) => d.should_translate(method).then_some(TIER_BASELINE),
        JitPolicy::Tiered { t1, t2 } => {
            let score = hotness(profile);
            if compiled_tier == Some(TIER_OPT) || score >= u64::from(*t2) {
                Some(TIER_OPT)
            } else if compiled_tier.is_some() || score >= u64::from(*t1) {
                Some(TIER_BASELINE)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::ClassId;

    fn mid() -> MethodId {
        MethodId {
            class: ClassId(0),
            index: 0,
        }
    }

    fn profile(invocations: u64, backedges: u64) -> MethodProfile {
        MethodProfile {
            invocations,
            backedges,
            ..MethodProfile::default()
        }
    }

    #[test]
    fn first_invocation_always_baseline() {
        assert_eq!(
            decide(&JitPolicy::FirstInvocation, mid(), None, None),
            Some(TIER_BASELINE)
        );
    }

    #[test]
    fn threshold_waits_then_sticks() {
        let pol = JitPolicy::Threshold(5);
        assert_eq!(decide(&pol, mid(), None, None), None);
        assert_eq!(decide(&pol, mid(), Some(&profile(3, 0)), None), None);
        assert_eq!(
            decide(&pol, mid(), Some(&profile(4, 0)), None),
            Some(TIER_BASELINE)
        );
        // Once compiled, stays compiled regardless of count.
        assert_eq!(
            decide(&pol, mid(), Some(&profile(0, 0)), Some(TIER_BASELINE)),
            Some(TIER_BASELINE)
        );
    }

    #[test]
    fn oracle_follows_decisions() {
        let mut d = OracleDecisions::default();
        assert_eq!(
            decide(&JitPolicy::Oracle(d.clone()), mid(), None, None),
            None
        );
        d.set(mid(), true);
        assert_eq!(
            decide(&JitPolicy::Oracle(d), mid(), None, None),
            Some(TIER_BASELINE)
        );
    }

    #[test]
    fn tiered_escalates_on_invocations() {
        let pol = JitPolicy::Tiered { t1: 2, t2: 10 };
        assert_eq!(decide(&pol, mid(), None, None), None);
        assert_eq!(
            decide(&pol, mid(), Some(&profile(1, 0)), None),
            Some(TIER_BASELINE)
        );
        assert_eq!(
            decide(&pol, mid(), Some(&profile(9, 0)), Some(TIER_BASELINE)),
            Some(TIER_OPT)
        );
        // Installed opt code keeps being used even if counters reset.
        assert_eq!(
            decide(&pol, mid(), Some(&profile(0, 0)), Some(TIER_OPT)),
            Some(TIER_OPT)
        );
    }

    #[test]
    fn tiered_backedges_heat_loops() {
        let pol = JitPolicy::Tiered { t1: 2, t2: 10 };
        // One invocation, but 80 backedges -> score 1 + 1 + 10 = 12.
        assert_eq!(
            decide(&pol, mid(), Some(&profile(1, 80)), None),
            Some(TIER_OPT)
        );
    }

    #[test]
    fn compiled_baseline_survives_below_t1() {
        let pol = JitPolicy::Tiered { t1: 5, t2: 100 };
        assert_eq!(
            decide(&pol, mid(), Some(&profile(0, 0)), Some(TIER_BASELINE)),
            Some(TIER_BASELINE)
        );
    }
}
