//! Per-method cost profiles (`I_i`, `T_i`, `E_i`, `n_i`, backedges).
//!
//! Section 3 of the paper reasons about a per-method crossover point
//! `N_i = T_i / (I_i − E_i)`: translate a method iff it will be
//! invoked more than `N_i` times. The VM collects exactly those
//! quantities when profiling is enabled, and the oracle policy
//! ([`OracleDecisions`](crate::OracleDecisions)) is derived from two
//! profile tables (one interpreter run, one JIT run). The tiered
//! policy ([`JitPolicy::Tiered`](crate::JitPolicy::Tiered))
//! additionally consumes backedge counts, the classic HotSpot-style
//! hotness signal for loop-dominated methods whose invocation counts
//! stay low.

use jrt_bytecode::MethodId;
use std::collections::HashMap;

/// Cost profile of one method.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodProfile {
    /// Number of invocations (`n_i`).
    pub invocations: u64,
    /// Number of backward branches taken while executing the method
    /// (loop-trip hotness; feeds the tiered policy).
    pub backedges: u64,
    /// Cycles spent interpreting this method's bytecodes (sum over
    /// invocations; divide by `invocations` for `I_i`).
    pub interp_cycles: u64,
    /// Cycles spent translating the method (`T_i`; accumulates across
    /// re-translations after eviction or tier upgrades).
    pub translate_cycles: u64,
    /// Cycles spent executing the translated code (sum; divide for
    /// `E_i`).
    pub native_cycles: u64,
}

impl MethodProfile {
    /// Mean interpret cycles per invocation (`I_i`).
    pub fn interp_per_invocation(&self) -> f64 {
        self.interp_cycles as f64 / self.invocations.max(1) as f64
    }

    /// Mean translated-code cycles per invocation (`E_i`).
    pub fn native_per_invocation(&self) -> f64 {
        self.native_cycles as f64 / self.invocations.max(1) as f64
    }

    /// The crossover invocation count `N_i`, if translation can ever
    /// pay off (`I_i > E_i`).
    pub fn crossover(&self) -> Option<f64> {
        let i = self.interp_per_invocation();
        let e = self.native_per_invocation();
        (i > e).then(|| self.translate_cycles as f64 / (i - e))
    }
}

/// Profiles for all methods touched by a run.
#[derive(Debug, Clone, Default)]
pub struct ProfileTable {
    methods: HashMap<MethodId, MethodProfile>,
}

impl ProfileTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a method's invocation count.
    pub fn record_invocation(&mut self, method: MethodId) {
        self.methods.entry(method).or_default().invocations += 1;
    }

    /// Mutable access, creating the entry if needed.
    pub fn get_mut(&mut self, method: MethodId) -> &mut MethodProfile {
        self.methods.entry(method).or_default()
    }

    /// The profile for `method`, if it ever ran.
    pub fn get(&self, method: MethodId) -> Option<&MethodProfile> {
        self.methods.get(&method)
    }

    /// Iterates over `(method, profile)`.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, &MethodProfile)> {
        self.methods.iter().map(|(k, v)| (*k, v))
    }

    /// Number of profiled methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Sum of a component over all methods, for Figure 1 style
    /// breakdowns: `f` picks the component.
    pub fn total(&self, f: impl Fn(&MethodProfile) -> u64) -> u64 {
        self.methods.values().map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::ClassId;

    fn mid(i: u32) -> MethodId {
        MethodId {
            class: ClassId(0),
            index: i,
        }
    }

    #[test]
    fn crossover_math() {
        let p = MethodProfile {
            invocations: 10,
            interp_cycles: 1000, // I = 100
            translate_cycles: 400,
            native_cycles: 200, // E = 20
            ..MethodProfile::default()
        };
        let n = p.crossover().expect("profitable");
        assert!((n - 5.0).abs() < 1e-9); // 400 / 80
    }

    #[test]
    fn crossover_none_when_exec_slower() {
        let p = MethodProfile {
            invocations: 10,
            interp_cycles: 100,
            translate_cycles: 400,
            native_cycles: 200,
            ..MethodProfile::default()
        };
        assert!(p.crossover().is_none());
    }

    #[test]
    fn totals() {
        let mut t = ProfileTable::new();
        t.get_mut(mid(0)).translate_cycles = 10;
        t.get_mut(mid(1)).translate_cycles = 32;
        assert_eq!(t.total(|p| p.translate_cycles), 42);
        assert_eq!(t.len(), 2);
    }
}
