//! Deterministic latency statistics: nearest-rank quantiles over
//! `u64` nanosecond samples.
//!
//! The serving-tier experiments report p50/p99/p999 latency out of a
//! *virtual*-clock simulation, so the numbers must be byte-identical
//! on every machine and at any `--jobs` setting. This helper is
//! therefore pure integer arithmetic: no floating-point interpolation
//! between ranks (the classic p99 estimator), no histogram bucketing
//! error — the reported quantile is always an actual sample, picked
//! by the nearest-rank rule `x_sorted[ceil(q·n) − 1]`.
//!
//! The wall-clock bench harness reuses the same helper for its
//! cross-suite sample summaries, so "p99" means one thing everywhere
//! in the workspace.

/// The three tail quantiles the serving experiments report, plus the
/// extremes. All fields are nanoseconds drawn from actual samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Smallest sample.
    pub min: u64,
    /// Median (nearest-rank p50).
    pub p50: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Nearest-rank 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

/// An order-insensitive accumulator of `u64` nanosecond samples with
/// nearest-rank quantile queries.
///
/// "Histogram" in the latency-report sense: it answers quantile
/// queries over everything recorded. Samples are kept exactly (the
/// serving studies record at most a few thousand), so there is no
/// bucketing error, and recording order never affects any query —
/// which is what lets a parallel measurement phase feed one of these
/// and still produce byte-identical reports.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.samples.push(ns);
    }

    /// Records every sample in `ns`.
    pub fn record_all(&mut self, ns: impl IntoIterator<Item = u64>) {
        self.samples.extend(ns);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The nearest-rank `num/den` quantile: the sample at sorted
    /// index `ceil(num·n/den) − 1`. Pure integer arithmetic, so the
    /// answer is identical on every platform. Returns `None` on an
    /// empty histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < num <= den` (quantiles outside `(0, 1]` are
    /// meaningless under nearest-rank).
    pub fn quantile(&self, num: u64, den: u64) -> Option<u64> {
        assert!(num > 0 && num <= den, "quantile {num}/{den} not in (0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = (num * n).div_ceil(den); // in 1..=n since num <= den
        Some(sorted[(rank - 1) as usize])
    }

    /// Arithmetic mean, rounded down. `None` on an empty histogram.
    pub fn mean(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&s| u128::from(s)).sum();
        Some((sum / self.samples.len() as u128) as u64)
    }

    /// The standard latency summary (min / p50 / p99 / p999 / max),
    /// computed with one sort. `None` on an empty histogram.
    pub fn quantiles(&self) -> Option<Quantiles> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let at = |num: u64, den: u64| sorted[((num * n).div_ceil(den) - 1) as usize];
        Some(Quantiles {
            min: sorted[0],
            p50: at(1, 2),
            p99: at(99, 100),
            p999: at(999, 1000),
            max: sorted[n as usize - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_answers_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.quantile(1, 2), None);
        assert_eq!(h.quantiles(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        let q = h.quantiles().unwrap();
        assert_eq!(
            q,
            Quantiles {
                min: 42,
                p50: 42,
                p99: 42,
                p999: 42,
                max: 42
            }
        );
        assert_eq!(h.mean(), Some(42));
    }

    #[test]
    fn nearest_rank_on_one_to_hundred() {
        // The textbook nearest-rank example: 1..=100, where the
        // q-quantile is exactly ceil(100q).
        let mut h = LatencyHistogram::new();
        h.record_all(1..=100u64);
        assert_eq!(h.quantile(1, 2), Some(50));
        assert_eq!(h.quantile(99, 100), Some(99));
        assert_eq!(h.quantile(999, 1000), Some(100));
        assert_eq!(h.quantile(1, 100), Some(1));
        assert_eq!(h.quantile(1, 1), Some(100));
        assert_eq!(h.mean(), Some(50)); // 50.5 rounded down
    }

    #[test]
    fn order_insensitive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let samples = [5u64, 1, 900, 3, 77, 77, 2];
        a.record_all(samples);
        b.record_all(samples.iter().rev().copied());
        assert_eq!(a.quantiles(), b.quantiles());
        assert_eq!(a.quantiles().unwrap().min, 1);
        assert_eq!(a.quantiles().unwrap().max, 900);
    }

    #[test]
    fn p999_separates_from_p99_past_a_thousand_samples() {
        // 998 fast samples plus two slow outliers (n = 1000): p99
        // stays fast, p999 catches the tail.
        let mut h = LatencyHistogram::new();
        h.record_all(std::iter::repeat_n(10u64, 998));
        h.record_all([1000u64, 2000]);
        let q = h.quantiles().unwrap();
        assert_eq!(q.p50, 10);
        assert_eq!(q.p99, 10);
        assert_eq!(q.p999, 1000);
        assert_eq!(q.max, 2000);
    }

    #[test]
    #[should_panic(expected = "not in (0, 1]")]
    fn zero_quantile_panics() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        h.quantile(0, 100);
    }
}
