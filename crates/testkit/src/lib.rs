//! Self-contained test and bench substrate.
//!
//! The workspace builds with **no network access and no external
//! crates**, so the usual `proptest`/`criterion` stack is replaced by
//! this crate:
//!
//! * [`Rng`] — a seeded SplitMix64 generator with the handful of
//!   drawing helpers the property suites need;
//! * [`forall!`] — a fixed-seed property-test harness: runs a body
//!   over N deterministic cases and, on failure, reports the case
//!   index and per-case seed so the failure replays exactly;
//! * [`mod@bench`] — a median-of-N wall-clock timer emitting JSON lines,
//!   wired as a `cargo bench`-compatible harness (`harness = false`).
//!
//! Everything is deterministic: the same seed always produces the
//! same cases, so a failure reported by CI replays locally bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use jrt_testkit::forall;
//!
//! forall!(cases = 32, seed = 0x5EED, |rng| {
//!     let a = rng.i32();
//!     let b = rng.i32();
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;

use std::ops::Range;

/// A seeded SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, needs only one `u64` of state, and is
/// trivially splittable: [`Rng::for_case`] derives an independent
/// stream per property-test case so cases never share state and any
/// single case replays in isolation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives the independent per-case generator used by [`forall!`]
    /// for case `case` of a run seeded with `seed`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        // Mix the case index through one SplitMix64 round so streams
        // for adjacent cases are uncorrelated.
        let mut r = Rng::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        r.next_u64();
        r
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `i32` over the full range.
    pub fn i32(&mut self) -> i32 {
        self.u32() as i32
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[range.start, range.end)`. Uses the
    /// widening-multiply trick; the range must be non-empty.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let wide = (self.next_u64() as u128).wrapping_mul(span as u128);
        range.start + (wide >> 64) as u64
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `i32` in `[range.start, range.end)`.
    pub fn i32_in(&mut self, range: Range<i32>) -> i32 {
        let span = (range.end as i64 - range.start as i64) as u64;
        assert!(span > 0, "empty range");
        (range.start as i64 + self.u64_in(0..span) as i64) as i32
    }

    /// A vector with a length drawn from `len`, filled by `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0..items.len())]
    }
}

/// Runs `body` over `cases` deterministic cases. On panic, re-raises
/// with the case index and per-case seed attached so the exact case
/// replays via [`Rng::for_case`]. The [`forall!`] macro is sugar over
/// this.
pub fn run_forall(cases: u64, seed: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::for_case(seed, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property failed at case {case}/{cases} \
                 (replay with Rng::for_case({seed:#x}, {case})): {msg}"
            );
        }
    }
}

/// Fixed-seed property-test harness.
///
/// `forall!(cases = N, seed = S, |rng| { ... })` runs the body over
/// `N` deterministic cases; `rng` is a fresh per-case [`Rng`]. Any
/// panic/assert failure is re-reported with the failing case index.
#[macro_export]
macro_rules! forall {
    (cases = $cases:expr, seed = $seed:expr, |$rng:ident| $body:block) => {
        $crate::run_forall($cases, $seed, |$rng: &mut $crate::Rng| $body)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the canonical
        // SplitMix64 implementation (Steele et al.).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.u64_in(10..20);
            assert!((10..20).contains(&v));
            let w = r.i32_in(-5..5);
            assert!((-5..5).contains(&w));
            let n = r.vec(1..4, Rng::bool).len();
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn cases_are_independent_and_replayable() {
        let mut seen = Vec::new();
        run_forall(8, 99, |rng| seen.push(rng.next_u64()));
        assert_eq!(seen.len(), 8);
        // No duplicate streams across cases.
        let mut uniq = seen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        // Each case replays in isolation.
        assert_eq!(Rng::for_case(99, 3).next_u64(), seen[3]);
    }

    #[test]
    fn failure_reports_case_index() {
        let err = std::panic::catch_unwind(|| {
            run_forall(10, 1, |rng| {
                let v = rng.u64_in(0..100);
                assert!(v < 1000, "always passes");
                if rng.next_u64() % 4 == 0 {
                    panic!("boom");
                }
            })
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("property failed at case"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }
}
