//! Self-contained test and bench substrate.
//!
//! The workspace builds with **no network access and no external
//! crates**, so the usual `proptest`/`criterion` stack is replaced by
//! this crate:
//!
//! * [`Rng`] — a seeded SplitMix64 generator with the handful of
//!   drawing helpers the property suites need;
//! * [`forall!`] — a fixed-seed property-test harness: runs a body
//!   over N deterministic cases and, on failure, reports the case
//!   index and per-case seed so the failure replays exactly;
//! * [`minimize`] / [`run_forall_shrink`] — greedy shrinking: when a
//!   checked property fails, the counterexample is reduced through
//!   caller-supplied candidate mutations until no candidate still
//!   fails, and the *minimized* value is what the panic reports;
//! * [`mod@bench`] — a median-of-N wall-clock timer emitting JSON lines,
//!   wired as a `cargo bench`-compatible harness (`harness = false`).
//!
//! Everything is deterministic: the same seed always produces the
//! same cases, so a failure reported by CI replays locally bit-for-bit.
//!
//! # Environment overrides
//!
//! Every harness entry point re-reads its `cases`/`seed` arguments
//! through two environment variables, so a corpus case reported by
//! the fuzzer (or CI) replays without editing code:
//!
//! * `JRT_FUZZ_SEED` — overrides the seed (decimal or `0x`-hex);
//! * `JRT_FUZZ_CASES` — overrides the case count.
//!
//! E.g. `JRT_FUZZ_SEED=0x5EED JRT_FUZZ_CASES=1 cargo test -q fuzz`.
//!
//! # Examples
//!
//! ```
//! use jrt_testkit::forall;
//!
//! forall!(cases = 32, seed = 0x5EED, |rng| {
//!     let a = rng.i32();
//!     let b = rng.i32();
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```
//!
//! Shrinking form — `gen` draws a value, `shrink` proposes smaller
//! variants, `check` returns whether the property holds:
//!
//! ```
//! use jrt_testkit::forall;
//!
//! forall!(
//!     cases = 16,
//!     seed = 0xD1FF,
//!     gen = |rng| rng.vec(0..8, |r| r.i32_in(-100..100)),
//!     shrink = |v: &Vec<i32>| {
//!         (0..v.len())
//!             .map(|i| {
//!                 let mut s = v.clone();
//!                 s.remove(i);
//!                 s
//!             })
//!             .collect()
//!     },
//!     check = |v: &Vec<i32>| v.iter().map(|x| i64::from(*x)).sum::<i64>() < 1_000
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod stats;

use std::ops::Range;

/// A seeded SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, needs only one `u64` of state, and is
/// trivially splittable: [`Rng::for_case`] derives an independent
/// stream per property-test case so cases never share state and any
/// single case replays in isolation.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derives the independent per-case generator used by [`forall!`]
    /// for case `case` of a run seeded with `seed`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        // Mix the case index through one SplitMix64 round so streams
        // for adjacent cases are uncorrelated.
        let mut r = Rng::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        r.next_u64();
        r
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `i32` over the full range.
    pub fn i32(&mut self) -> i32 {
        self.u32() as i32
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[range.start, range.end)`. Uses the
    /// widening-multiply trick; the range must be non-empty.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let wide = (self.next_u64() as u128).wrapping_mul(span as u128);
        range.start + (wide >> 64) as u64
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `i32` in `[range.start, range.end)`.
    pub fn i32_in(&mut self, range: Range<i32>) -> i32 {
        let span = (range.end as i64 - range.start as i64) as u64;
        assert!(span > 0, "empty range");
        (range.start as i64 + self.u64_in(0..span) as i64) as i32
    }

    /// A vector with a length drawn from `len`, filled by `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0..items.len())]
    }
}

/// Parses an env var as `u64`, accepting decimal or `0x`-hex.
///
/// # Panics
///
/// Panics when the variable is set but unparsable — a silently
/// ignored override would fake a successful replay.
fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match parse_u64(raw.trim()) {
        Some(v) => Some(v),
        None => panic!("{name} must be a decimal or 0x-hex integer, got {raw:?}"),
    }
}

/// Decimal or `0x`-hex.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// The `(cases, seed)` a harness should actually run: the caller's
/// values unless `JRT_FUZZ_CASES` / `JRT_FUZZ_SEED` override them
/// (see the crate docs).
pub fn effective_cases_seed(cases: u64, seed: u64) -> (u64, u64) {
    (
        env_u64("JRT_FUZZ_CASES").unwrap_or(cases),
        env_u64("JRT_FUZZ_SEED").unwrap_or(seed),
    )
}

/// Runs `body` over `cases` deterministic cases. On panic, re-raises
/// with the case index and per-case seed attached so the exact case
/// replays via [`Rng::for_case`]. The [`forall!`] macro is sugar over
/// this. `cases`/`seed` are subject to the `JRT_FUZZ_*` env
/// overrides (crate docs).
pub fn run_forall(cases: u64, seed: u64, mut body: impl FnMut(&mut Rng)) {
    let (cases, seed) = effective_cases_seed(cases, seed);
    for case in 0..cases {
        let mut rng = Rng::for_case(seed, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property failed at case {case}/{cases} \
                 (replay with Rng::for_case({seed:#x}, {case})): {msg}"
            );
        }
    }
}

/// Greedy counterexample minimization.
///
/// Starting from `initial` (which must satisfy `fails`), repeatedly
/// asks `candidates` for smaller variants and adopts the first one
/// that still fails, until a full candidate pass yields nothing (a
/// local minimum) or an iteration bound is hit. Deterministic: the
/// result depends only on the inputs and the candidate order.
pub fn minimize<T: Clone>(
    initial: T,
    mut fails: impl FnMut(&T) -> bool,
    mut candidates: impl FnMut(&T) -> Vec<T>,
) -> T {
    let mut current = initial;
    // The bound guards against oscillating candidate sets; real
    // shrink sequences terminate long before it.
    for _ in 0..1_000 {
        let mut advanced = false;
        for cand in candidates(&current) {
            if fails(&cand) {
                current = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    current
}

/// Shrinking property harness: `gen` draws a value per case, `check`
/// decides the property, and on failure the counterexample is
/// [`minimize`]d through `shrink` before the panic reports it (with
/// the case index and per-case seed, like [`run_forall`]).
/// `cases`/`seed` are subject to the `JRT_FUZZ_*` env overrides.
pub fn run_forall_shrink<T: Clone + std::fmt::Debug>(
    cases: u64,
    seed: u64,
    mut gen: impl FnMut(&mut Rng) -> T,
    mut shrink: impl FnMut(&T) -> Vec<T>,
    mut check: impl FnMut(&T) -> bool,
) {
    let (cases, seed) = effective_cases_seed(cases, seed);
    for case in 0..cases {
        let mut rng = Rng::for_case(seed, case);
        let value = gen(&mut rng);
        if check(&value) {
            continue;
        }
        let minimized = minimize(value, |v| !check(v), &mut shrink);
        panic!(
            "property failed at case {case}/{cases} \
             (replay with Rng::for_case({seed:#x}, {case})); \
             minimized counterexample: {minimized:?}"
        );
    }
}

/// Fixed-seed property-test harness.
///
/// `forall!(cases = N, seed = S, |rng| { ... })` runs the body over
/// `N` deterministic cases; `rng` is a fresh per-case [`Rng`]. Any
/// panic/assert failure is re-reported with the failing case index.
///
/// The shrinking form
/// `forall!(cases = N, seed = S, gen = .., shrink = .., check = ..)`
/// is sugar over [`run_forall_shrink`]: failures are minimized
/// through the `shrink` candidates before being reported.
///
/// Both forms honor the `JRT_FUZZ_SEED` / `JRT_FUZZ_CASES` env
/// overrides (crate docs).
#[macro_export]
macro_rules! forall {
    (cases = $cases:expr, seed = $seed:expr, |$rng:ident| $body:block) => {
        $crate::run_forall($cases, $seed, |$rng: &mut $crate::Rng| $body)
    };
    (cases = $cases:expr, seed = $seed:expr,
     gen = $gen:expr, shrink = $shrink:expr, check = $check:expr) => {
        $crate::run_forall_shrink($cases, $seed, $gen, $shrink, $check)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from the canonical
        // SplitMix64 implementation (Steele et al.).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.u64_in(10..20);
            assert!((10..20).contains(&v));
            let w = r.i32_in(-5..5);
            assert!((-5..5).contains(&w));
            let n = r.vec(1..4, Rng::bool).len();
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn cases_are_independent_and_replayable() {
        let mut seen = Vec::new();
        run_forall(8, 99, |rng| seen.push(rng.next_u64()));
        assert_eq!(seen.len(), 8);
        // No duplicate streams across cases.
        let mut uniq = seen.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
        // Each case replays in isolation.
        assert_eq!(Rng::for_case(99, 3).next_u64(), seen[3]);
    }

    #[test]
    fn env_override_parses_decimal_and_hex() {
        assert_eq!(parse_u64("123"), Some(123));
        assert_eq!(parse_u64("0x7B"), Some(0x7B));
        assert_eq!(parse_u64("0XfF"), Some(255));
        assert_eq!(parse_u64("nope"), None);
        // With neither JRT_FUZZ_* variable set, the caller's values
        // pass through untouched.
        assert_eq!(effective_cases_seed(7, 0xABC), (7, 0xABC));
    }

    #[test]
    fn minimize_reaches_a_local_minimum() {
        // Failing = "sum >= 10"; dropping any element is a candidate.
        let fails = |v: &Vec<i32>| v.iter().sum::<i32>() >= 10;
        let cands = |v: &Vec<i32>| {
            (0..v.len())
                .map(|i| {
                    let mut s = v.clone();
                    s.remove(i);
                    s
                })
                .collect()
        };
        let min = minimize(vec![1, 9, 2, 8], fails, cands);
        // 9 + 8 >= 10 and no single removal keeps the sum >= 10
        // after both small elements go: greedy lands on a 2-element
        // local minimum.
        assert!(min.iter().sum::<i32>() >= 10);
        assert!(min.len() <= 2, "{min:?}");
    }

    #[test]
    fn shrinking_harness_reports_minimized_counterexample() {
        let err = std::panic::catch_unwind(|| {
            run_forall_shrink(
                8,
                0xBEEF,
                |rng| rng.vec(4..9, |r| r.i32_in(1..100)),
                |v: &Vec<i32>| {
                    (0..v.len())
                        .map(|i| {
                            let mut s = v.clone();
                            s.remove(i);
                            s
                        })
                        .collect()
                },
                |v: &Vec<i32>| v.len() < 3, // fails for every generated case
            )
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("minimized counterexample"), "{msg}");
        // Greedy removal shrinks any failing vec down to exactly the
        // 3-element boundary.
        assert!(msg.contains("property failed at case 0/8"), "{msg}");
    }

    #[test]
    fn failure_reports_case_index() {
        let err = std::panic::catch_unwind(|| {
            run_forall(10, 1, |rng| {
                let v = rng.u64_in(0..100);
                assert!(v < 1000, "always passes");
                if rng.next_u64() % 4 == 0 {
                    panic!("boom");
                }
            })
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("property failed at case"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }
}
