//! Minimal bench harness: median-of-N wall time, JSON lines to stdout,
//! with steady-state window classification.
//!
//! Replaces `criterion` for this workspace's offline build. Wire it as
//! a `cargo bench`-compatible harness by setting `harness = false` on
//! the `[[bench]]` target and calling [`Harness`] from `main`:
//!
//! ```no_run
//! use jrt_testkit::bench::Harness;
//!
//! let mut h = Harness::from_args("my_suite");
//! h.bench("add", || std::hint::black_box(2 + 2));
//! h.finish();
//! ```
//!
//! Each bench prints one JSON line:
//!
//! ```text
//! {"suite":"my_suite","bench":"add","iters":1024,"samples_ns":[..],"median_ns":12,"steady_state":true,"warmup_iters":0,"steady_median_ns":12}
//! ```
//!
//! `cargo bench` passes `--bench`, which is ignored; the first free
//! argument is a substring filter. `JRT_BENCH_SAMPLES` overrides the
//! sample count (default 5); each sample is timed over enough
//! iterations to exceed a minimum sample duration, so both
//! sub-microsecond and multi-second workloads produce stable medians.
//!
//! # Steady-state classification
//!
//! Microbenchmark literature (see "Misleading Microbenchmarks on the
//! JVM" in PAPERS.md) distinguishes *warm-up* windows — still
//! compiling, still faulting pages — from *steady-state* windows whose
//! timings a regression gate may trust. Every bench run here is
//! segmented into windows (the calibration pass plus each timed
//! sample) and classified by [`classify`]: a window is steady when its
//! per-iteration time sits within a relative band of the tail median
//! **and** it carries no more auxiliary work (translate events, via
//! [`Harness::bench_aux`]) than the quietest window. The run as a
//! whole reaches steady state when every window after the leading
//! warm-up prefix is steady and the post-warm-up coefficient of
//! variation stays small. The verdict is recorded per bench as
//! `steady_state` / `warmup_iters` / `steady_median_ns`, which
//! `bench_all --check-against` uses to compare steady-state windows
//! only and merely annotate warm-up drift.

use std::time::{Duration, Instant};

/// Relative deviation (percent) from the tail median within which a
/// window counts as steady.
const STEADY_BAND_PCT: u128 = 15;

/// Maximum coefficient of variation (stddev/mean) of the post-warm-up
/// windows for the run to count as steady overall.
const STEADY_COV: f64 = 0.10;

/// Steady-state verdict for one bench run's window series.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    /// Per-window verdicts, in window order.
    pub steady: Vec<bool>,
    /// Number of leading non-steady (warm-up) windows.
    pub warmup_windows: usize,
    /// Whether the run reached steady state: every post-warm-up window
    /// is steady and their coefficient of variation is small.
    pub steady_state: bool,
    /// Median per-iteration time over the steady windows (falls back
    /// to the overall median when no window is steady).
    pub steady_median_ns: u128,
}

fn median(sorted: &[u128]) -> u128 {
    sorted[sorted.len() / 2]
}

/// Classifies a window series: `ns[i]` is window `i`'s per-iteration
/// wall time and `aux[i]` its per-iteration auxiliary-event count
/// (e.g. JIT translate events; pass zeros when not measured).
///
/// A window is steady when it deviates from the median of the trailing
/// half of the series by at most 15% **and** its auxiliary count does
/// not exceed the series minimum (translate-event presence marks a
/// window as still-compiling). The run is steady overall when all
/// windows after the leading warm-up prefix are steady and their
/// coefficient of variation is at most 0.10.
///
/// # Panics
///
/// Panics if `ns` is empty or the lengths differ.
pub fn classify(ns: &[u128], aux: &[u64]) -> SteadyState {
    assert!(!ns.is_empty(), "classify needs at least one window");
    assert_eq!(ns.len(), aux.len(), "one aux count per window");
    let tail = &ns[ns.len() - ns.len().div_ceil(2)..];
    let mut tail_sorted = tail.to_vec();
    tail_sorted.sort_unstable();
    let m = median(&tail_sorted);
    let min_aux = *aux.iter().min().expect("non-empty");

    let steady: Vec<bool> = ns
        .iter()
        .zip(aux)
        .map(|(&t, &a)| {
            let dev = t.abs_diff(m);
            dev * 100 <= STEADY_BAND_PCT * m && a <= min_aux
        })
        .collect();
    let warmup_windows = steady.iter().take_while(|&&s| !s).count();
    let post = &ns[warmup_windows.min(ns.len())..];
    let all_post_steady = warmup_windows < ns.len() && steady[warmup_windows..].iter().all(|&s| s);
    let steady_state = all_post_steady && cov(post) <= STEADY_COV;

    let mut steady_ns: Vec<u128> = ns
        .iter()
        .zip(&steady)
        .filter(|(_, &s)| s)
        .map(|(&t, _)| t)
        .collect();
    if steady_ns.is_empty() {
        steady_ns = ns.to_vec();
    }
    steady_ns.sort_unstable();
    SteadyState {
        steady,
        warmup_windows,
        steady_state,
        steady_median_ns: median(&steady_ns),
    }
}

/// Coefficient of variation (stddev / mean) of a window series.
fn cov(ns: &[u128]) -> f64 {
    if ns.len() < 2 {
        return 0.0;
    }
    let mean = ns.iter().map(|&t| t as f64).sum::<f64>() / ns.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = ns
        .iter()
        .map(|&t| {
            let d = t as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / ns.len() as f64;
    var.sqrt() / mean
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Suite name (one per harness binary).
    pub suite: String,
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Per-sample wall time, nanoseconds per iteration.
    pub samples_ns: Vec<u128>,
    /// Median of `samples_ns`.
    pub median_ns: u128,
    /// Whether the run reached steady state (see [`classify`]).
    pub steady_state: bool,
    /// Iterations spent in the leading warm-up windows (calibration
    /// pass included).
    pub warmup_iters: u64,
    /// Median per-iteration time over the steady windows only.
    pub steady_median_ns: u128,
}

impl BenchResult {
    /// Renders the result as one JSON line.
    pub fn to_json(&self) -> String {
        let samples: Vec<String> = self.samples_ns.iter().map(u128::to_string).collect();
        format!(
            "{{\"suite\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"samples_ns\":[{}],\"median_ns\":{},\"steady_state\":{},\"warmup_iters\":{},\"steady_median_ns\":{}}}",
            self.suite,
            self.name,
            self.iters,
            samples.join(","),
            self.median_ns,
            self.steady_state,
            self.warmup_iters,
            self.steady_median_ns
        )
    }
}

/// Median-of-N bench runner.
#[derive(Debug)]
pub struct Harness {
    suite: String,
    filter: Option<String>,
    samples: u32,
    min_sample: Duration,
    results: Vec<BenchResult>,
    quiet: bool,
}

impl Harness {
    /// Creates a harness, reading the CLI filter (`cargo bench`
    /// flags are ignored) and `JRT_BENCH_SAMPLES`.
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self::new(suite).with_filter(filter)
    }

    /// Creates a harness with defaults and no filter.
    pub fn new(suite: &str) -> Self {
        let samples = std::env::var("JRT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        Harness {
            suite: suite.to_string(),
            filter: None,
            samples,
            min_sample: Duration::from_millis(10),
            results: Vec::new(),
            quiet: false,
        }
    }

    /// Restricts runs to benches whose name contains `filter`.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Overrides the sample count.
    pub fn with_samples(mut self, samples: u32) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Suppresses per-bench stdout lines (results still collected).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Times `f`, printing one JSON line and recording the result.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        self.bench_aux(name, || (f(), 0));
    }

    /// Times `f`, which additionally reports an auxiliary event count
    /// per invocation (e.g. JIT translate events from a
    /// `CountingSink`); the counts feed the per-window steady-state
    /// classification ([`classify`]).
    pub fn bench_aux<R>(&mut self, name: &str, mut f: impl FnMut() -> (R, u64)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup doubles as calibration: pick an iteration count that
        // makes one sample exceed `min_sample`. The calibration pass is
        // also the first classification window — warm-up effects land
        // there, not in the samples.
        let warmup = Instant::now();
        let (_, calib_aux) = {
            let r = f();
            (std::hint::black_box(r.0), r.1)
        };
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (self.min_sample.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut window_ns: Vec<u128> = vec![once.as_nanos()];
        let mut window_aux: Vec<u64> = vec![calib_aux];
        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let mut aux = 0u64;
            let t = Instant::now();
            for _ in 0..iters {
                let (r, a) = f();
                std::hint::black_box(r);
                aux += a;
            }
            let per_iter = t.elapsed().as_nanos() / iters as u128;
            samples_ns.push(per_iter);
            window_ns.push(per_iter);
            // Ceiling division keeps auxiliary-event *presence* visible
            // even when a window's total is smaller than its iteration
            // count.
            window_aux.push(aux.div_ceil(iters));
        }
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let median_ns = median(&sorted);
        samples_ns.shrink_to_fit();

        let verdict = classify(&window_ns, &window_aux);
        // Window 0 is the single-iteration calibration pass; each
        // sample window runs `iters` iterations.
        let warmup_iters: u64 = (0..verdict.warmup_windows)
            .map(|w| if w == 0 { 1 } else { iters })
            .sum();
        // The calibration window is one unwarmed iteration; its
        // steady-median contribution would skew small benches, so the
        // reported steady median prefers steady *sample* windows.
        let steady_median_ns = {
            let mut steady_samples: Vec<u128> = samples_ns
                .iter()
                .zip(verdict.steady.iter().skip(1))
                .filter(|(_, &s)| s)
                .map(|(&t, _)| t)
                .collect();
            if steady_samples.is_empty() {
                median_ns
            } else {
                steady_samples.sort_unstable();
                median(&steady_samples)
            }
        };

        let result = BenchResult {
            suite: self.suite.clone(),
            name: name.to_string(),
            iters,
            samples_ns,
            median_ns,
            steady_state: verdict.steady_state,
            warmup_iters,
            steady_median_ns,
        };
        if !self.quiet {
            println!("{}", result.to_json());
        }
        self.results.push(result);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the harness, returning its results.
    pub fn into_results(self) -> Vec<BenchResult> {
        self.results
    }

    /// Prints a closing summary line.
    pub fn finish(self) {
        if !self.quiet {
            eprintln!(
                "[bench] {}: {} benches, {} samples each",
                self.suite,
                self.results.len(),
                self.samples
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_median() {
        let mut h = Harness::new("t").with_samples(3).quiet();
        h.bench("noop", || std::hint::black_box(1 + 1));
        let r = &h.results()[0];
        assert_eq!(r.samples_ns.len(), 3);
        assert!(r.samples_ns.contains(&r.median_ns));
        let json = r.to_json();
        assert!(
            json.starts_with("{\"suite\":\"t\",\"bench\":\"noop\""),
            "{json}"
        );
        assert!(json.contains("\"median_ns\":"), "{json}");
        assert!(json.contains("\"steady_state\":"), "{json}");
        assert!(json.contains("\"warmup_iters\":"), "{json}");
        assert!(json.contains("\"steady_median_ns\":"), "{json}");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness::new("t")
            .with_samples(1)
            .quiet()
            .with_filter(Some("yes".into()));
        h.bench("no_match", || 0);
        h.bench("yes_match", || 0);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "yes_match");
    }

    #[test]
    fn bench_aux_counts_feed_classification() {
        // First call (calibration window) reports heavy aux work, the
        // rest report none: the calibration window is warm-up, the
        // samples are steady.
        let mut calls = 0u64;
        let mut h = Harness::new("t").with_samples(4).quiet();
        h.bench_aux("auxed", || {
            calls += 1;
            (std::hint::black_box(1 + 1), if calls == 1 { 40 } else { 0 })
        });
        let r = &h.results()[0];
        assert!(r.warmup_iters >= 1, "calibration window is warm-up");
    }

    #[test]
    fn classify_flat_series_is_steady() {
        let v = classify(&[100, 100, 100, 100], &[0; 4]);
        assert!(v.steady_state);
        assert_eq!(v.warmup_windows, 0);
        assert_eq!(v.steady_median_ns, 100);
        assert!(v.steady.iter().all(|&s| s));
    }

    #[test]
    fn classify_monotone_warmup_settles() {
        let v = classify(&[4000, 2000, 1200, 1000, 990, 1010], &[0; 6]);
        assert!(v.steady_state);
        assert_eq!(v.warmup_windows, 3);
        assert!(v.steady_median_ns >= 990 && v.steady_median_ns <= 1010);
    }

    #[test]
    fn classify_bimodal_never_settles() {
        let v = classify(&[1000, 3000, 1000, 3000, 1000, 3000], &[0; 6]);
        assert!(!v.steady_state);
    }

    #[test]
    fn classify_aux_presence_marks_compiling_windows() {
        // Flat timings, but the first window carries translate events.
        let v = classify(&[100, 100, 100, 100], &[7, 0, 0, 0]);
        assert!(!v.steady[0]);
        assert_eq!(v.warmup_windows, 1);
        assert!(v.steady_state);
    }
}
