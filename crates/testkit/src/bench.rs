//! Minimal bench harness: median-of-N wall time, JSON lines to stdout.
//!
//! Replaces `criterion` for this workspace's offline build. Wire it as
//! a `cargo bench`-compatible harness by setting `harness = false` on
//! the `[[bench]]` target and calling [`Harness`] from `main`:
//!
//! ```no_run
//! use jrt_testkit::bench::Harness;
//!
//! let mut h = Harness::from_args("my_suite");
//! h.bench("add", || std::hint::black_box(2 + 2));
//! h.finish();
//! ```
//!
//! Each bench prints one JSON line:
//!
//! ```text
//! {"suite":"my_suite","bench":"add","iters":1024,"samples_ns":[..],"median_ns":12}
//! ```
//!
//! `cargo bench` passes `--bench`, which is ignored; the first free
//! argument is a substring filter. `JRT_BENCH_SAMPLES` overrides the
//! sample count (default 5); each sample is timed over enough
//! iterations to exceed a minimum sample duration, so both
//! sub-microsecond and multi-second workloads produce stable medians.

use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Suite name (one per harness binary).
    pub suite: String,
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Per-sample wall time, nanoseconds per iteration.
    pub samples_ns: Vec<u128>,
    /// Median of `samples_ns`.
    pub median_ns: u128,
}

impl BenchResult {
    /// Renders the result as one JSON line.
    pub fn to_json(&self) -> String {
        let samples: Vec<String> = self.samples_ns.iter().map(u128::to_string).collect();
        format!(
            "{{\"suite\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"samples_ns\":[{}],\"median_ns\":{}}}",
            self.suite,
            self.name,
            self.iters,
            samples.join(","),
            self.median_ns
        )
    }
}

/// Median-of-N bench runner.
#[derive(Debug)]
pub struct Harness {
    suite: String,
    filter: Option<String>,
    samples: u32,
    min_sample: Duration,
    results: Vec<BenchResult>,
    quiet: bool,
}

impl Harness {
    /// Creates a harness, reading the CLI filter (`cargo bench`
    /// flags are ignored) and `JRT_BENCH_SAMPLES`.
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self::new(suite).with_filter(filter)
    }

    /// Creates a harness with defaults and no filter.
    pub fn new(suite: &str) -> Self {
        let samples = std::env::var("JRT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        Harness {
            suite: suite.to_string(),
            filter: None,
            samples,
            min_sample: Duration::from_millis(10),
            results: Vec::new(),
            quiet: false,
        }
    }

    /// Restricts runs to benches whose name contains `filter`.
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Overrides the sample count.
    pub fn with_samples(mut self, samples: u32) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Suppresses per-bench stdout lines (results still collected).
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Times `f`, printing one JSON line and recording the result.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup doubles as calibration: pick an iteration count that
        // makes one sample exceed `min_sample`.
        let warmup = Instant::now();
        std::hint::black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (self.min_sample.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut samples_ns: Vec<u128> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() / iters as u128
            })
            .collect();
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let median_ns = sorted[sorted.len() / 2];
        samples_ns.shrink_to_fit();

        let result = BenchResult {
            suite: self.suite.clone(),
            name: name.to_string(),
            iters,
            samples_ns,
            median_ns,
        };
        if !self.quiet {
            println!("{}", result.to_json());
        }
        self.results.push(result);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the harness, returning its results.
    pub fn into_results(self) -> Vec<BenchResult> {
        self.results
    }

    /// Prints a closing summary line.
    pub fn finish(self) {
        if !self.quiet {
            eprintln!(
                "[bench] {}: {} benches, {} samples each",
                self.suite,
                self.results.len(),
                self.samples
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_median() {
        let mut h = Harness::new("t").with_samples(3).quiet();
        h.bench("noop", || std::hint::black_box(1 + 1));
        let r = &h.results()[0];
        assert_eq!(r.samples_ns.len(), 3);
        assert!(r.samples_ns.contains(&r.median_ns));
        let json = r.to_json();
        assert!(
            json.starts_with("{\"suite\":\"t\",\"bench\":\"noop\""),
            "{json}"
        );
        assert!(json.contains("\"median_ns\":"), "{json}");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness::new("t")
            .with_samples(1)
            .quiet()
            .with_filter(Some("yes".into()));
        h.bench("no_match", || 0);
        h.bench("yes_match", || 0);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "yes_match");
    }
}
