//! Shared monitor semantics: cases, costs, statistics, and the engine
//! interface.

use std::collections::HashMap;
use std::fmt;

/// Identifies a thread. The thin-lock header reserves 15 bits for it,
/// as in Bacon et al.
pub type ThreadId = u16;

/// Maximum thread id representable in a thin lock (15 bits).
pub const MAX_THIN_THREAD: ThreadId = (1 << 15) - 1;

/// A handle naming a synchronized object.
pub type ObjHandle = u32;

/// The recursion depth at which a thin lock's 8-bit count saturates
/// and the lock inflates (case (b)/(c) boundary in the paper).
pub const THIN_RECURSION_LIMIT: u32 = 256;

/// The paper's four-way classification of `monitorenter` operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncCase {
    /// (a) locking an unlocked object.
    Unlocked,
    /// (b) recursive locking with depth < 256.
    ShallowRecursive,
    /// (c) recursive locking with depth >= 256.
    DeepRecursive,
    /// (d) locking an object held by another thread.
    Contended,
}

impl SyncCase {
    /// All cases in (a)–(d) order.
    pub const ALL: [SyncCase; 4] = [
        SyncCase::Unlocked,
        SyncCase::ShallowRecursive,
        SyncCase::DeepRecursive,
        SyncCase::Contended,
    ];

    /// The paper's letter for the case.
    pub fn letter(self) -> char {
        match self {
            SyncCase::Unlocked => 'a',
            SyncCase::ShallowRecursive => 'b',
            SyncCase::DeepRecursive => 'c',
            SyncCase::Contended => 'd',
        }
    }
}

impl fmt::Display for SyncCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.letter())
    }
}

/// Cost of one lock operation in the engine's cycle model, plus the
/// memory operations the VM should emit into the native trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockCost {
    /// Modelled cycles.
    pub cycles: u64,
    /// Data loads performed.
    pub loads: u32,
    /// Data stores performed.
    pub stores: u32,
    /// Whether an atomic (CAS) operation was used.
    pub atomic: bool,
}

impl LockCost {
    /// Builds a cost record.
    pub fn new(cycles: u64, loads: u32, stores: u32, atomic: bool) -> Self {
        LockCost {
            cycles,
            loads,
            stores,
            atomic,
        }
    }
}

/// Result of a `monitorenter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnterOutcome {
    /// The monitor was acquired (or recursion deepened).
    Acquired {
        /// Which of the paper's four cases this operation was.
        case: SyncCase,
        /// Modelled cost.
        cost: LockCost,
    },
    /// The monitor is held by another thread; the VM should block the
    /// thread and retry after the owner exits.
    Blocked {
        /// Cost of discovering the contention.
        cost: LockCost,
    },
}

/// Result of a successful `monitorexit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitOutcome {
    /// The monitor was fully released.
    Released {
        /// Modelled cost.
        cost: LockCost,
    },
    /// Recursion decreased but the thread still owns the monitor.
    StillHeld {
        /// Modelled cost.
        cost: LockCost,
    },
}

/// Monitor protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorError {
    /// `monitorexit` on a monitor the thread does not own.
    NotOwner {
        /// The object whose monitor was misused.
        obj: ObjHandle,
        /// The offending thread.
        thread: ThreadId,
    },
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::NotOwner { obj, thread } => {
                write!(f, "thread {thread} does not own monitor of object {obj}")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

/// Statistics accumulated by a [`SyncEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `monitorenter` count per [`SyncCase`] (a, b, c, d order).
    pub case_counts: [u64; 4],
    /// `monitorexit` count.
    pub exits: u64,
    /// Total modelled cycles across enters and exits.
    pub total_cycles: u64,
    /// Enters that found the lock inflated (fat path taken).
    pub fat_path: u64,
}

impl SyncStats {
    /// Total `monitorenter` operations.
    pub fn enters(&self) -> u64 {
        self.case_counts.iter().sum()
    }

    /// Fraction of enters in the given case.
    pub fn case_fraction(&self, case: SyncCase) -> f64 {
        let t = self.enters();
        if t == 0 {
            0.0
        } else {
            self.case_counts[case_index(case)] as f64 / t as f64
        }
    }

    /// Mean cycles per synchronization operation (enter + exit).
    pub fn cycles_per_op(&self) -> f64 {
        let ops = self.enters() + self.exits;
        if ops == 0 {
            0.0
        } else {
            self.total_cycles as f64 / ops as f64
        }
    }

    pub(crate) fn record_case(&mut self, case: SyncCase) {
        self.case_counts[case_index(case)] += 1;
    }
}

pub(crate) fn case_index(case: SyncCase) -> usize {
    SyncCase::ALL
        .iter()
        .position(|&c| c == case)
        .expect("case present in ALL")
}

/// A monitor implementation: the strategy object compared in
/// Figure 11(ii).
pub trait SyncEngine {
    /// Attempts `monitorenter` for `thread` on `obj`.
    fn monitor_enter(&mut self, obj: ObjHandle, thread: ThreadId) -> EnterOutcome;

    /// Performs `monitorexit`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::NotOwner`] if `thread` does not hold
    /// the monitor.
    fn monitor_exit(
        &mut self,
        obj: ObjHandle,
        thread: ThreadId,
    ) -> Result<ExitOutcome, MonitorError>;

    /// Accumulated statistics.
    fn stats(&self) -> &SyncStats;

    /// Engine name for table output.
    fn name(&self) -> &'static str;

    /// Per-object header bits this scheme requires (Table discussion:
    /// 0 for the monitor cache, 24 for thin locks, 1 for the 1-bit
    /// variant).
    fn header_bits(&self) -> u32;
}

/// Canonical owner/depth bookkeeping shared by all engines: the
/// semantics of monitors are identical across schemes; only the cost
/// model differs.
#[derive(Debug, Clone, Default)]
pub(crate) struct MonitorTable {
    states: HashMap<ObjHandle, (ThreadId, u32)>, // owner, depth
}

impl MonitorTable {
    /// Classifies an enter without mutating.
    pub(crate) fn classify(&self, obj: ObjHandle, thread: ThreadId) -> SyncCase {
        match self.states.get(&obj) {
            None => SyncCase::Unlocked,
            Some((owner, depth)) if *owner == thread => {
                if *depth < THIN_RECURSION_LIMIT {
                    SyncCase::ShallowRecursive
                } else {
                    SyncCase::DeepRecursive
                }
            }
            Some(_) => SyncCase::Contended,
        }
    }

    /// Applies an acquire (caller has checked it is not contended).
    pub(crate) fn acquire(&mut self, obj: ObjHandle, thread: ThreadId) {
        let entry = self.states.entry(obj).or_insert((thread, 0));
        debug_assert_eq!(entry.0, thread);
        entry.1 += 1;
    }

    /// Applies a release; returns the remaining depth.
    pub(crate) fn release(
        &mut self,
        obj: ObjHandle,
        thread: ThreadId,
    ) -> Result<u32, MonitorError> {
        match self.states.get_mut(&obj) {
            Some((owner, depth)) if *owner == thread => {
                *depth -= 1;
                let left = *depth;
                if left == 0 {
                    self.states.remove(&obj);
                }
                Ok(left)
            }
            _ => Err(MonitorError::NotOwner { obj, thread }),
        }
    }

    /// Current depth held by any owner.
    pub(crate) fn depth(&self, obj: ObjHandle) -> u32 {
        self.states.get(&obj).map_or(0, |(_, d)| *d)
    }

    /// Current owner and depth, if locked.
    pub(crate) fn owner_depth(&self, obj: ObjHandle) -> Option<(ThreadId, u32)> {
        self.states.get(&obj).copied()
    }

    /// Number of live (locked) monitors.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn live(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_cases() {
        let mut t = MonitorTable::default();
        assert_eq!(t.classify(1, 5), SyncCase::Unlocked);
        t.acquire(1, 5);
        assert_eq!(t.classify(1, 5), SyncCase::ShallowRecursive);
        assert_eq!(t.classify(1, 6), SyncCase::Contended);
        for _ in 0..300 {
            t.acquire(1, 5);
        }
        assert_eq!(t.classify(1, 5), SyncCase::DeepRecursive);
    }

    #[test]
    fn release_tracks_depth() {
        let mut t = MonitorTable::default();
        t.acquire(7, 1);
        t.acquire(7, 1);
        assert_eq!(t.release(7, 1).unwrap(), 1);
        assert_eq!(t.release(7, 1).unwrap(), 0);
        assert_eq!(t.live(), 0);
        assert!(t.release(7, 1).is_err());
    }

    #[test]
    fn release_by_non_owner_fails() {
        let mut t = MonitorTable::default();
        t.acquire(7, 1);
        assert!(matches!(
            t.release(7, 2),
            Err(MonitorError::NotOwner { obj: 7, thread: 2 })
        ));
    }

    #[test]
    fn stats_fractions() {
        let mut s = SyncStats::default();
        s.record_case(SyncCase::Unlocked);
        s.record_case(SyncCase::Unlocked);
        s.record_case(SyncCase::ShallowRecursive);
        s.record_case(SyncCase::Contended);
        assert_eq!(s.enters(), 4);
        assert!((s.case_fraction(SyncCase::Unlocked) - 0.5).abs() < 1e-12);
        assert!((s.case_fraction(SyncCase::DeepRecursive)).abs() < 1e-12);
    }

    #[test]
    fn case_letters() {
        assert_eq!(SyncCase::Unlocked.letter(), 'a');
        assert_eq!(SyncCase::Contended.letter(), 'd');
        assert_eq!(SyncCase::Contended.to_string(), "(d)");
    }
}
