//! The JDK 1.1.6-style monitor cache ("fat" locks).

use crate::monitor::{
    EnterOutcome, ExitOutcome, LockCost, MonitorError, MonitorTable, ObjHandle, SyncEngine,
    SyncStats, ThreadId,
};
use std::collections::HashMap;

/// Number of buckets in the JDK 1.1.6 monitor cache.
pub const MONITOR_CACHE_BUCKETS: usize = 128;

// Cycle cost components of the monitor-cache path. The values model a
// late-1990s RISC: an uncontended global lock acquisition is a couple
// of dozen cycles (atomic + fence), a hash is a few ALU ops, each
// chain link is a dependent load, and monitor creation allocates.
const CACHE_LOCK_CYCLES: u64 = 16;
const HASH_CYCLES: u64 = 5;
const LINK_CYCLES: u64 = 4;
const MONITOR_OP_CYCLES: u64 = 10;
const MONITOR_ALLOC_CYCLES: u64 = 24;

/// The monitor cache of Sun's JDK 1.1.6: an open-hashing table with
/// [`MONITOR_CACHE_BUCKETS`] buckets leading to the monitors of all
/// currently-locked objects, itself guarded by one global lock.
///
/// Space-efficient (storage proportional to live monitors, zero bits
/// in object headers) but slow even when uncontended: every operation
/// pays the global lock, the hash, and a chain walk.
#[derive(Debug, Default)]
pub struct FatLockEngine {
    table: MonitorTable,
    // For chain-walk cost: which bucket each live monitor hashes to.
    buckets: HashMap<usize, Vec<ObjHandle>>,
    stats: SyncStats,
}

impl FatLockEngine {
    /// Creates an empty monitor cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(obj: ObjHandle) -> usize {
        // The JDK hashes the object's handle address.
        (obj as usize).wrapping_mul(2654435761) % MONITOR_CACHE_BUCKETS
    }

    /// Position of `obj` in its bucket chain (0-based), or the chain
    /// length if absent (a full traversal happens before insertion).
    fn chain_walk(&self, obj: ObjHandle) -> u64 {
        let b = Self::bucket_of(obj);
        match self.buckets.get(&b) {
            Some(chain) => chain
                .iter()
                .position(|&o| o == obj)
                .map_or(chain.len() as u64, |p| p as u64 + 1),
            None => 0,
        }
    }

    fn lookup_cost(&self, obj: ObjHandle, alloc: bool) -> LockCost {
        let links = self.chain_walk(obj);
        let cycles = CACHE_LOCK_CYCLES
            + HASH_CYCLES
            + links * LINK_CYCLES
            + MONITOR_OP_CYCLES
            + if alloc { MONITOR_ALLOC_CYCLES } else { 0 };
        // Global lock = 1 atomic + 1 store to release; hash = pure ALU;
        // each link = 1 load; monitor op = ~2 loads + 1 store.
        LockCost::new(cycles, 2 + links as u32 + 2, 2 + u32::from(alloc), true)
    }

    fn insert_bucket(&mut self, obj: ObjHandle) {
        let b = Self::bucket_of(obj);
        let chain = self.buckets.entry(b).or_default();
        if !chain.contains(&obj) {
            chain.push(obj);
        }
    }

    fn remove_bucket(&mut self, obj: ObjHandle) {
        let b = Self::bucket_of(obj);
        if let Some(chain) = self.buckets.get_mut(&b) {
            chain.retain(|&o| o != obj);
            if chain.is_empty() {
                self.buckets.remove(&b);
            }
        }
    }
}

impl SyncEngine for FatLockEngine {
    fn monitor_enter(&mut self, obj: ObjHandle, thread: ThreadId) -> EnterOutcome {
        let case = self.table.classify(obj, thread);
        let alloc = self.table.depth(obj) == 0;
        let cost = self.lookup_cost(obj, alloc);
        self.stats.total_cycles += cost.cycles;
        self.stats.fat_path += 1;
        if case == crate::SyncCase::Contended {
            // Blocked threads do not count as completed enters; the
            // retry will classify again.
            return EnterOutcome::Blocked { cost };
        }
        self.stats.record_case(case);
        self.table.acquire(obj, thread);
        self.insert_bucket(obj);
        EnterOutcome::Acquired { case, cost }
    }

    fn monitor_exit(
        &mut self,
        obj: ObjHandle,
        thread: ThreadId,
    ) -> Result<ExitOutcome, MonitorError> {
        let cost = self.lookup_cost(obj, false);
        let left = self.table.release(obj, thread)?;
        self.stats.exits += 1;
        self.stats.total_cycles += cost.cycles;
        if left == 0 {
            self.remove_bucket(obj);
            Ok(ExitOutcome::Released { cost })
        } else {
            Ok(ExitOutcome::StillHeld { cost })
        }
    }

    fn stats(&self) -> &SyncStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "monitor-cache"
    }

    fn header_bits(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncCase;

    #[test]
    fn uncontended_enter_exit() {
        let mut e = FatLockEngine::new();
        match e.monitor_enter(1, 1) {
            EnterOutcome::Acquired { case, cost } => {
                assert_eq!(case, SyncCase::Unlocked);
                assert!(cost.cycles >= CACHE_LOCK_CYCLES + MONITOR_ALLOC_CYCLES);
                assert!(cost.atomic);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            e.monitor_exit(1, 1),
            Ok(ExitOutcome::Released { .. })
        ));
    }

    #[test]
    fn recursion_is_case_b_and_cheaper_than_alloc() {
        let mut e = FatLockEngine::new();
        let EnterOutcome::Acquired { cost: first, .. } = e.monitor_enter(1, 1) else {
            panic!("acquired");
        };
        let EnterOutcome::Acquired { case, cost } = e.monitor_enter(1, 1) else {
            panic!("acquired");
        };
        assert_eq!(case, SyncCase::ShallowRecursive);
        assert!(cost.cycles < first.cycles, "no realloc on recursion");
        assert!(matches!(
            e.monitor_exit(1, 1),
            Ok(ExitOutcome::StillHeld { .. })
        ));
    }

    #[test]
    fn contention_blocks() {
        let mut e = FatLockEngine::new();
        e.monitor_enter(1, 1);
        assert!(matches!(
            e.monitor_enter(1, 2),
            EnterOutcome::Blocked { .. }
        ));
        // Blocked attempts don't inflate the case counts.
        assert_eq!(e.stats().enters(), 1);
    }

    #[test]
    fn chain_collisions_increase_cost() {
        let mut e = FatLockEngine::new();
        // Find two handles hashing to the same bucket.
        let a = 1u32;
        let b = (1..100_000u32)
            .find(|&h| h != a && FatLockEngine::bucket_of(h) == FatLockEngine::bucket_of(a))
            .expect("collision exists");
        e.monitor_enter(a, 1);
        let EnterOutcome::Acquired { cost: deep, .. } = e.monitor_enter(b, 1) else {
            panic!("acquired");
        };
        let mut fresh = FatLockEngine::new();
        let EnterOutcome::Acquired { cost: shallow, .. } = fresh.monitor_enter(b, 1) else {
            panic!("acquired");
        };
        assert!(deep.cycles > shallow.cycles, "chain walk costs cycles");
    }

    #[test]
    fn exit_without_owning_errors() {
        let mut e = FatLockEngine::new();
        assert!(e.monitor_exit(9, 3).is_err());
    }

    #[test]
    fn zero_header_bits() {
        assert_eq!(FatLockEngine::new().header_bits(), 0);
    }
}
