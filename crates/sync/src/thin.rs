//! Thin locks (Bacon et al.) and the paper's proposed 1-bit variant.

use crate::fat::FatLockEngine;
use crate::monitor::{
    EnterOutcome, ExitOutcome, LockCost, MonitorError, MonitorTable, ObjHandle, SyncCase,
    SyncEngine, SyncStats, ThreadId, MAX_THIN_THREAD, THIN_RECURSION_LIMIT,
};
use std::collections::{HashMap, HashSet};

// Thin-path cycle costs. A compare-and-swap on a late-1990s SMP costs
// a couple dozen cycles once barriers are counted; recursion and
// release are header-word read/modify/write pairs. Calibrated so the
// suite-wide speedup over the monitor cache lands near the paper's
// "nearly two fold".
const THIN_CAS_CYCLES: u64 = 26;
const THIN_RECURSE_CYCLES: u64 = 14;
const THIN_RELEASE_CYCLES: u64 = 12;

/// The 24-bit thin-lock word packed into each object header:
/// bit 23 = shape (0 = thin, 1 = fat), bits 22..8 = owner thread id,
/// bits 7..0 = recursion count (depth − 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThinWord(u32);

impl ThinWord {
    const SHAPE_BIT: u32 = 1 << 23;

    /// The unlocked word.
    pub fn unlocked() -> Self {
        ThinWord(0)
    }

    /// Encodes a thin lock held by `thread` at recursion `count`.
    ///
    /// The owner field stores `thread + 1` so that a held lock is
    /// never the all-zeros (unlocked) pattern, even for thread 0 at
    /// recursion count 0.
    ///
    /// # Panics
    ///
    /// Panics if `thread` exceeds 15 bits (after the +1 bias) or
    /// `count` exceeds 8 bits.
    pub fn thin(thread: ThreadId, count: u32) -> Self {
        assert!(thread < MAX_THIN_THREAD, "thread id exceeds 15 bits");
        assert!(count < 256, "recursion count exceeds 8 bits");
        ThinWord(((u32::from(thread) + 1) << 8) | count)
    }

    /// The inflated (fat) word.
    pub fn fat() -> Self {
        ThinWord(Self::SHAPE_BIT)
    }

    /// Whether the shape bit marks the lock as inflated.
    pub fn is_fat(self) -> bool {
        self.0 & Self::SHAPE_BIT != 0
    }

    /// Whether the word is the unlocked pattern.
    pub fn is_unlocked(self) -> bool {
        self.0 == 0
    }

    /// Owner thread id of a thin word.
    ///
    /// # Panics
    ///
    /// Panics if called on an unlocked word (no owner exists).
    pub fn owner(self) -> ThreadId {
        let biased = (self.0 >> 8) & 0x7FFF;
        assert!(biased > 0, "unlocked word has no owner");
        (biased - 1) as ThreadId
    }

    /// Recursion count field of a thin word (depth − 1).
    pub fn count(self) -> u32 {
        self.0 & 0xFF
    }

    /// Raw 24-bit value.
    pub fn bits(self) -> u32 {
        self.0
    }
}

/// Bacon-style thin locks: 24 header bits handle cases (a) and (b)
/// with one CAS / one increment; recursion overflow (c) and contention
/// (d) inflate to a fat monitor (the monitor cache), permanently.
#[derive(Debug, Default)]
pub struct ThinLockEngine {
    words: HashMap<ObjHandle, ThinWord>,
    fat: FatLockEngine,
    table: MonitorTable,
    stats: SyncStats,
}

impl ThinLockEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current header word of `obj` (for tests/inspection).
    pub fn word(&self, obj: ObjHandle) -> ThinWord {
        self.words.get(&obj).copied().unwrap_or_default()
    }

    fn charge(&mut self, cost: LockCost) {
        self.stats.total_cycles += cost.cycles;
    }
}

impl SyncEngine for ThinLockEngine {
    fn monitor_enter(&mut self, obj: ObjHandle, thread: ThreadId) -> EnterOutcome {
        let case = self.table.classify(obj, thread);
        let word = self.word(obj);

        if word.is_fat() {
            // Already inflated: delegate to the fat path for cost;
            // keep classification canonical here.
            let out = self.fat.monitor_enter(obj, thread);
            if let EnterOutcome::Acquired { cost, .. } = out {
                self.stats.fat_path += 1;
                self.stats.record_case(case);
                self.charge(cost);
                self.table.acquire(obj, thread);
                return EnterOutcome::Acquired { case, cost };
            }
            if let EnterOutcome::Blocked { cost } = out {
                self.stats.fat_path += 1;
                self.charge(cost);
                return EnterOutcome::Blocked { cost };
            }
            unreachable!("enter returns Acquired or Blocked");
        }

        match case {
            SyncCase::Unlocked => {
                // One CAS: 0 -> (thread, 0).
                let cost = LockCost::new(THIN_CAS_CYCLES, 1, 1, true);
                self.words.insert(obj, ThinWord::thin(thread, 0));
                self.table.acquire(obj, thread);
                self.stats.record_case(case);
                self.charge(cost);
                EnterOutcome::Acquired { case, cost }
            }
            SyncCase::ShallowRecursive => {
                let depth = self.table.depth(obj); // current depth, new count = depth
                if depth < THIN_RECURSION_LIMIT {
                    if depth < 256 {
                        self.words
                            .insert(obj, ThinWord::thin(thread, depth.min(255)));
                    }
                    let cost = LockCost::new(THIN_RECURSE_CYCLES, 1, 1, false);
                    self.table.acquire(obj, thread);
                    self.stats.record_case(case);
                    self.charge(cost);
                    EnterOutcome::Acquired { case, cost }
                } else {
                    unreachable!("classify() maps depth >= limit to DeepRecursive")
                }
            }
            SyncCase::DeepRecursive | SyncCase::Contended => {
                // Inflate: migrate the current hold into the monitor
                // cache, mark the shape bit, pay the fat cost.
                if let Some((owner, depth)) = self.table.owner_depth(obj) {
                    for _ in 0..depth {
                        let _ = self.fat.monitor_enter(obj, owner);
                    }
                }
                self.words.insert(obj, ThinWord::fat());
                let out = self.fat.monitor_enter(obj, thread);
                self.stats.fat_path += 1;
                match out {
                    EnterOutcome::Acquired { cost, .. } => {
                        self.stats.record_case(case);
                        self.charge(cost);
                        self.table.acquire(obj, thread);
                        EnterOutcome::Acquired { case, cost }
                    }
                    EnterOutcome::Blocked { cost } => {
                        self.charge(cost);
                        EnterOutcome::Blocked { cost }
                    }
                }
            }
        }
    }

    fn monitor_exit(
        &mut self,
        obj: ObjHandle,
        thread: ThreadId,
    ) -> Result<ExitOutcome, MonitorError> {
        let word = self.word(obj);
        if word.is_fat() {
            let out = self.fat.monitor_exit(obj, thread)?;
            let left = self.table.release(obj, thread)?;
            debug_assert_eq!(left == 0, matches!(out, ExitOutcome::Released { .. }));
            self.stats.exits += 1;
            let (ExitOutcome::Released { cost } | ExitOutcome::StillHeld { cost }) = out;
            self.charge(cost);
            return Ok(out);
        }

        // Thin release path.
        if word.is_unlocked() || word.owner() != thread {
            return Err(MonitorError::NotOwner { obj, thread });
        }
        let left = self.table.release(obj, thread)?;
        let cost = LockCost::new(THIN_RELEASE_CYCLES, 1, 1, false);
        self.stats.exits += 1;
        self.charge(cost);
        if left == 0 {
            self.words.remove(&obj);
            Ok(ExitOutcome::Released { cost })
        } else {
            self.words.insert(obj, ThinWord::thin(thread, left - 1));
            Ok(ExitOutcome::StillHeld { cost })
        }
    }

    fn stats(&self) -> &SyncStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "thin-lock"
    }

    fn header_bits(&self) -> u32 {
        24
    }
}

/// The paper's proposed 1-bit lock: a single header bit accelerates
/// only case (a) — locking an unlocked object non-recursively — which
/// covers over 80% of SpecJVM98 synchronization. All other cases fall
/// back to the monitor cache.
#[derive(Debug, Default)]
pub struct OneBitLockEngine {
    bit_held: HashSet<ObjHandle>,
    fat: FatLockEngine,
    table: MonitorTable,
    stats: SyncStats,
}

impl OneBitLockEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SyncEngine for OneBitLockEngine {
    fn monitor_enter(&mut self, obj: ObjHandle, thread: ThreadId) -> EnterOutcome {
        let case = self.table.classify(obj, thread);
        if case == SyncCase::Unlocked {
            // Fast path: one CAS sets the bit.
            let cost = LockCost::new(THIN_CAS_CYCLES, 1, 1, true);
            self.bit_held.insert(obj);
            self.table.acquire(obj, thread);
            self.stats.record_case(case);
            self.charge(cost);
            return EnterOutcome::Acquired { case, cost };
        }
        // Slow path: the bit cannot express recursion or waiting, so
        // migrate the bit-held state into the fat table and continue
        // there.
        if self.bit_held.remove(&obj) {
            if let Some((owner, depth)) = self.table.owner_depth(obj) {
                for _ in 0..depth {
                    let _ = self.fat.monitor_enter(obj, owner);
                }
            }
        }
        let out = self.fat.monitor_enter(obj, thread);
        self.stats.fat_path += 1;
        match out {
            EnterOutcome::Acquired { cost, .. } => {
                self.stats.record_case(case);
                self.charge(cost);
                self.table.acquire(obj, thread);
                EnterOutcome::Acquired { case, cost }
            }
            EnterOutcome::Blocked { cost } => {
                self.charge(cost);
                EnterOutcome::Blocked { cost }
            }
        }
    }

    fn monitor_exit(
        &mut self,
        obj: ObjHandle,
        thread: ThreadId,
    ) -> Result<ExitOutcome, MonitorError> {
        if self.bit_held.contains(&obj) {
            // Fast release.
            let left = self.table.release(obj, thread)?;
            debug_assert_eq!(left, 0, "bit path never holds recursively");
            self.bit_held.remove(&obj);
            let cost = LockCost::new(THIN_RELEASE_CYCLES, 1, 1, false);
            self.stats.exits += 1;
            self.charge(cost);
            return Ok(ExitOutcome::Released { cost });
        }
        let out = self.fat.monitor_exit(obj, thread)?;
        self.table.release(obj, thread)?;
        self.stats.exits += 1;
        let (ExitOutcome::Released { cost } | ExitOutcome::StillHeld { cost }) = out;
        self.charge(cost);
        Ok(out)
    }

    fn stats(&self) -> &SyncStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "one-bit"
    }

    fn header_bits(&self) -> u32 {
        1
    }
}

impl OneBitLockEngine {
    fn charge(&mut self, cost: LockCost) {
        self.stats.total_cycles += cost.cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thin_word_packing() {
        let w = ThinWord::thin(0x7ABC & 0x7FFF, 200);
        assert!(!w.is_fat());
        assert_eq!(w.owner(), 0x7ABC & 0x7FFF);
        assert_eq!(w.count(), 200);
        assert!(ThinWord::fat().is_fat());
        assert!(ThinWord::unlocked().is_unlocked());
        assert!(w.bits() < 1 << 24, "word fits in 24 bits");
    }

    #[test]
    #[should_panic(expected = "15 bits")]
    fn thin_word_rejects_wide_thread() {
        ThinWord::thin(0x8000, 0);
    }

    #[test]
    fn thin_fast_path_is_cheap() {
        let mut e = ThinLockEngine::new();
        let EnterOutcome::Acquired { case, cost } = e.monitor_enter(1, 1) else {
            panic!("acquired");
        };
        assert_eq!(case, SyncCase::Unlocked);
        assert_eq!(cost.cycles, THIN_CAS_CYCLES);
        let mut fat = FatLockEngine::new();
        let EnterOutcome::Acquired { cost: fat_cost, .. } = fat.monitor_enter(1, 1) else {
            panic!("acquired");
        };
        assert!(
            fat_cost.cycles * 2 > cost.cycles * 3,
            "thin must be markedly cheaper: {} vs {}",
            fat_cost.cycles,
            cost.cycles
        );
    }

    #[test]
    fn thin_recursion_updates_count() {
        let mut e = ThinLockEngine::new();
        e.monitor_enter(1, 1);
        e.monitor_enter(1, 1);
        e.monitor_enter(1, 1);
        assert_eq!(e.word(1).count(), 2); // depth 3 => count 2
        assert!(matches!(
            e.monitor_exit(1, 1),
            Ok(ExitOutcome::StillHeld { .. })
        ));
        assert_eq!(e.word(1).count(), 1);
        e.monitor_exit(1, 1).unwrap();
        assert!(matches!(
            e.monitor_exit(1, 1),
            Ok(ExitOutcome::Released { .. })
        ));
        assert!(e.word(1).is_unlocked());
    }

    #[test]
    fn contention_inflates_permanently() {
        let mut e = ThinLockEngine::new();
        e.monitor_enter(1, 1);
        assert!(matches!(
            e.monitor_enter(1, 2),
            EnterOutcome::Blocked { .. }
        ));
        assert!(e.word(1).is_fat(), "contention inflates");
        // Owner releases; the lock stays fat.
        // (Owner entered thin, so release via table; fat engine may not
        // know the owner — exit through the engine API.)
        let _ = e.monitor_exit(1, 1);
        assert!(e.word(1).is_fat(), "inflation is one-way");
    }

    #[test]
    fn deep_recursion_inflates() {
        let mut e = ThinLockEngine::new();
        for _ in 0..THIN_RECURSION_LIMIT + 2 {
            let out = e.monitor_enter(1, 1);
            assert!(matches!(out, EnterOutcome::Acquired { .. }));
        }
        assert!(e.word(1).is_fat());
        let s = e.stats();
        assert!(s.case_counts[2] > 0, "case (c) recorded");
    }

    #[test]
    fn one_bit_fast_path_only_case_a() {
        let mut e = OneBitLockEngine::new();
        let EnterOutcome::Acquired { case, cost } = e.monitor_enter(1, 1) else {
            panic!("acquired");
        };
        assert_eq!(case, SyncCase::Unlocked);
        assert_eq!(cost.cycles, THIN_CAS_CYCLES);
        // Recursive enter: slow path.
        let EnterOutcome::Acquired { case, cost } = e.monitor_enter(1, 1) else {
            panic!("acquired");
        };
        assert_eq!(case, SyncCase::ShallowRecursive);
        assert!(cost.cycles > THIN_RECURSE_CYCLES);
        e.monitor_exit(1, 1).unwrap();
        e.monitor_exit(1, 1).unwrap();
    }

    #[test]
    fn thin_exit_not_owner_errors() {
        let mut e = ThinLockEngine::new();
        e.monitor_enter(1, 1);
        assert!(e.monitor_exit(1, 2).is_err());
        assert!(e.monitor_exit(2, 1).is_err());
    }

    #[test]
    fn header_bits_match_paper() {
        assert_eq!(ThinLockEngine::new().header_bits(), 24);
        assert_eq!(OneBitLockEngine::new().header_bits(), 1);
    }

    #[test]
    fn workload_speedup_vs_fat() {
        // The Figure 11(ii) shape: mostly case (a)/(b) traffic is
        // around 2x faster under thin locks.
        let run = |e: &mut dyn SyncEngine| {
            for k in 0..1000u32 {
                let obj = k % 50;
                e.monitor_enter(obj, 1);
                e.monitor_enter(obj, 1); // one recursive enter
                e.monitor_exit(obj, 1).unwrap();
                e.monitor_exit(obj, 1).unwrap();
            }
            e.stats().total_cycles
        };
        let mut fat = FatLockEngine::new();
        let mut thin = ThinLockEngine::new();
        let fat_cycles = run(&mut fat);
        let thin_cycles = run(&mut thin);
        assert!(
            fat_cycles as f64 / thin_cycles as f64 > 2.0,
            "thin locks should speed sync up at least two-fold: {fat_cycles} vs {thin_cycles}"
        );
    }
}
