//! Java monitor synchronization substrates (Section 5 of the paper).
//!
//! The paper compares three implementations of the Java `monitor`
//! construct:
//!
//! * the **JDK 1.1.6 monitor cache** ([`FatLockEngine`]): a
//!   space-efficient, globally-locked open-hashing table of 128
//!   buckets mapping object handles to monitors — every `monitorenter`
//!   locks the whole cache, hashes the handle, and walks the bucket
//!   chain;
//! * **thin locks** ([`ThinLockEngine`], after Bacon et al.): 24 bits
//!   in each object header (1 shape bit, 15-bit owner thread id,
//!   8-bit recursion count) handle the common uncontended cases with a
//!   single compare-and-swap, inflating to a fat monitor on recursion
//!   overflow or contention;
//! * a **1-bit variant** ([`OneBitLockEngine`]), the paper's proposed
//!   space optimization: a single header bit short-circuits only
//!   case (a) — locking an unlocked object — which covers more than
//!   80% of synchronization accesses in SpecJVM98.
//!
//! All engines classify each `monitorenter` into the paper's four
//! cases ([`SyncCase`]):
//! (a) locking an unlocked object, (b) shallow recursive locking
//! (depth < 256), (c) deep recursive locking (depth ≥ 256), and
//! (d) contention. They also report a per-operation cycle and memory
//! cost ([`LockCost`]) from which Figure 11(ii) is regenerated.
//!
//! # Examples
//!
//! ```
//! use jrt_sync::{EnterOutcome, SyncCase, SyncEngine, ThinLockEngine};
//!
//! let mut locks = ThinLockEngine::new();
//! match locks.monitor_enter(42, 1) {
//!     EnterOutcome::Acquired { case, .. } => assert_eq!(case, SyncCase::Unlocked),
//!     EnterOutcome::Blocked { .. } => unreachable!("no contention"),
//! }
//! locks.monitor_exit(42, 1).expect("owned");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fat;
mod monitor;
mod thin;

pub use fat::{FatLockEngine, MONITOR_CACHE_BUCKETS};
pub use monitor::{
    EnterOutcome, ExitOutcome, LockCost, MonitorError, ObjHandle, SyncCase, SyncEngine, SyncStats,
    ThreadId,
};
pub use thin::{OneBitLockEngine, ThinLockEngine};
