//! Superscalar core configuration.

use jrt_cache::CacheConfig;
use jrt_trace::InstClass;

/// Configuration of the out-of-order core model.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Fetch = issue = commit width (instructions per cycle).
    pub width: u32,
    /// Reorder buffer capacity (in-flight instructions).
    pub rob_size: usize,
    /// Front-end depth in cycles (fetch→issue minimum).
    pub frontend_depth: u64,
    /// Cycles from a mispredicted branch's resolution to the first
    /// correct-path fetch.
    pub redirect_penalty: u64,
    /// Extra latency of an L1 miss (applies to loads and to
    /// instruction fetches on a missed line).
    pub miss_penalty: u64,
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
}

impl PipelineConfig {
    /// The configuration used for the Figure 9/10 studies: the paper's
    /// L1 caches, a 64-entry ROB, 12-cycle miss penalty, 4-cycle
    /// redirect, at the requested issue width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn paper(width: u32) -> Self {
        assert!(width >= 1, "width must be at least 1");
        PipelineConfig {
            width,
            rob_size: 64,
            frontend_depth: 3,
            redirect_penalty: 4,
            // No L2 is modelled; a miss goes to late-1990s DRAM.
            miss_penalty: 24,
            icache: CacheConfig::paper_l1_inst(),
            dcache: CacheConfig::paper_l1_data(),
        }
    }

    /// Execution latency (cycles) of one instruction class.
    pub fn latency(&self, class: InstClass) -> u64 {
        match class {
            InstClass::IntAlu | InstClass::Nop => 1,
            InstClass::IntMul => 3,
            InstClass::IntDiv => 12,
            InstClass::FpAlu => 2,
            InstClass::Load => 2, // hit latency; miss adds miss_penalty
            InstClass::Store => 1,
            InstClass::CondBranch
            | InstClass::Jump
            | InstClass::IndirectJump
            | InstClass::Call
            | InstClass::IndirectCall
            | InstClass::Ret => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_widths() {
        for w in [1, 2, 4, 8] {
            let c = PipelineConfig::paper(w);
            assert_eq!(c.width, w);
            assert_eq!(c.rob_size, 64);
        }
    }

    #[test]
    fn latencies_ordered() {
        let c = PipelineConfig::paper(4);
        assert!(c.latency(InstClass::IntDiv) > c.latency(InstClass::IntMul));
        assert!(c.latency(InstClass::IntMul) > c.latency(InstClass::IntAlu));
        assert_eq!(c.latency(InstClass::CondBranch), 1);
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_rejected() {
        PipelineConfig::paper(0);
    }
}
