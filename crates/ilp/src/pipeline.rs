//! The greedy out-of-order scheduling model.

use crate::config::PipelineConfig;
use jrt_bpred::{Btb, DirectionPredictor, Gshare, ReturnStack};
use jrt_cache::{Cache, CacheStats};
use jrt_trace::{AccessKind, InstClass, NativeInst, TraceSink, NUM_REGS};
use std::collections::VecDeque;

const SLOT_RING: usize = 1 << 16;

/// Results of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Control transfers that required prediction.
    pub predicted_events: u64,
    /// Mispredicted control transfers.
    pub mispredicts: u64,
    /// I-cache statistics (line-granular fetch probes).
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
}

impl PipelineReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over predicted events.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predicted_events == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predicted_events as f64
        }
    }
}

/// Trace-driven out-of-order core model. See the crate documentation
/// for the modelled mechanisms.
pub struct Pipeline {
    cfg: PipelineConfig,
    icache: Cache,
    dcache: Cache,
    predictor: Box<dyn DirectionPredictor>,
    btb: Btb,
    ras: ReturnStack,

    reg_ready: [u64; NUM_REGS],
    rob: VecDeque<u64>,
    // issue-slot occupancy ring: (cycle, issued-count)
    slots: Vec<(u64, u32)>,

    fetch_cycle: u64,
    fetch_in_group: u32,
    last_fetch_line: u64,
    last_complete: u64,

    retired: u64,
    predicted_events: u64,
    mispredicts: u64,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("width", &self.cfg.width)
            .field("retired", &self.retired)
            .field("cycles", &self.cycles())
            .finish()
    }
}

impl Pipeline {
    /// Creates a pipeline with the paper's Gshare front end.
    pub fn new(cfg: PipelineConfig) -> Self {
        Self::with_predictor(cfg, Box::new(Gshare::paper()))
    }

    /// Creates a pipeline with an explicit direction predictor.
    pub fn with_predictor(cfg: PipelineConfig, predictor: Box<dyn DirectionPredictor>) -> Self {
        Pipeline {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            predictor,
            btb: Btb::paper(),
            ras: ReturnStack::paper(),
            reg_ready: [0; NUM_REGS],
            rob: VecDeque::with_capacity(cfg.rob_size),
            slots: vec![(u64::MAX, 0); SLOT_RING],
            fetch_cycle: 1,
            fetch_in_group: 0,
            last_fetch_line: u64::MAX,
            last_complete: 0,
            retired: 0,
            predicted_events: 0,
            mispredicts: 0,
            cfg,
        }
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.last_complete.max(self.fetch_cycle)
    }

    /// Produces the final report.
    pub fn report(&self) -> PipelineReport {
        PipelineReport {
            instructions: self.retired,
            cycles: self.cycles(),
            predicted_events: self.predicted_events,
            mispredicts: self.mispredicts,
            icache: *self.icache.stats(),
            dcache: *self.dcache.stats(),
        }
    }

    fn claim_issue_slot(&mut self, earliest: u64) -> u64 {
        let width = self.cfg.width;
        let mut cycle = earliest;
        loop {
            let slot = &mut self.slots[(cycle as usize) & (SLOT_RING - 1)];
            if slot.0 != cycle {
                *slot = (cycle, 1);
                return cycle;
            }
            if slot.1 < width {
                slot.1 += 1;
                return cycle;
            }
            cycle += 1;
        }
    }

    fn fetch(&mut self, inst: &NativeInst) -> u64 {
        // New fetch group when the current one is full.
        if self.fetch_in_group >= self.cfg.width {
            self.fetch_cycle += 1;
            self.fetch_in_group = 0;
        }
        // I-cache probe at line granularity.
        let line = inst.pc / u64::from(self.cfg.icache.line);
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            let out = self.icache.access(inst.pc, AccessKind::Read, inst.phase);
            if !out.hit {
                self.fetch_cycle += self.cfg.miss_penalty;
                self.fetch_in_group = 0;
            }
        }
        // ROB back-pressure: fetch stalls until the head retires.
        while self.rob.len() >= self.cfg.rob_size {
            let head = self.rob.pop_front().expect("rob non-empty");
            if head > self.fetch_cycle {
                self.fetch_cycle = head;
                self.fetch_in_group = 0;
            }
        }
        self.fetch_in_group += 1;
        self.fetch_cycle
    }

    fn resolve_control(&mut self, inst: &NativeInst, complete: u64) {
        let Some(ctrl) = inst.ctrl else { return };
        let mispredicted = match inst.class {
            InstClass::CondBranch => {
                self.predicted_events += 1;
                let predicted_taken = self.predictor.predict_and_update(inst.pc, ctrl.taken);
                let mut wrong = predicted_taken != ctrl.taken;
                if ctrl.taken {
                    let target_ok = self.btb.predict_and_update(inst.pc, ctrl.target);
                    if predicted_taken && !target_ok {
                        wrong = true;
                    }
                }
                wrong
            }
            InstClass::IndirectJump | InstClass::IndirectCall => {
                self.predicted_events += 1;
                let ok = self.btb.predict_and_update(inst.pc, ctrl.target);
                if inst.class == InstClass::IndirectCall {
                    self.ras.push(inst.pc + 4);
                }
                !ok
            }
            InstClass::Call => {
                self.ras.push(inst.pc + 4);
                false
            }
            InstClass::Jump => false,
            InstClass::Ret => {
                self.predicted_events += 1;
                self.ras.pop() != Some(ctrl.target)
            }
            _ => return,
        };

        if mispredicted {
            self.mispredicts += 1;
            let redirect = complete + self.cfg.redirect_penalty;
            if redirect > self.fetch_cycle {
                self.fetch_cycle = redirect;
            }
            self.fetch_in_group = 0;
            self.last_fetch_line = u64::MAX;
        } else if ctrl.taken {
            // Correctly predicted taken transfer still ends the fetch
            // group (one taken transfer per cycle).
            self.fetch_cycle += 1;
            self.fetch_in_group = 0;
        }
    }
}

impl TraceSink for Pipeline {
    fn accept(&mut self, inst: &NativeInst) {
        let fetch = self.fetch(inst);

        // Rename: only true dependences delay dispatch.
        let mut ready = fetch + self.cfg.frontend_depth;
        for src in [inst.src1, inst.src2].into_iter().flatten() {
            ready = ready.max(self.reg_ready[usize::from(src) % NUM_REGS]);
        }

        let issue = self.claim_issue_slot(ready);

        let mut latency = self.cfg.latency(inst.class);
        if let Some(m) = inst.mem {
            let out = self.dcache.access(m.addr, m.kind, inst.phase);
            if !out.hit && m.kind == AccessKind::Read {
                latency += self.cfg.miss_penalty;
            }
        }

        let complete = issue + latency;
        if let Some(dst) = inst.dst {
            self.reg_ready[usize::from(dst) % NUM_REGS] = complete;
        }
        self.rob.push_back(complete);
        if complete > self.last_complete {
            self.last_complete = complete;
        }
        self.retired += 1;

        // Control transfers whose operands were ready long before the
        // transfer (no outstanding register sources) resolve in the
        // decode stage — the front end verifies the predicted target
        // without waiting for execution.
        let resolve_at = if inst.ctrl.is_some() && inst.src1.is_none() && inst.src2.is_none() {
            (fetch + 2).min(complete)
        } else {
            complete
        };
        self.resolve_control(inst, resolve_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::{NativeInst, Phase};

    const P: Phase = Phase::NativeExec;

    fn run(width: u32, trace: impl IntoIterator<Item = NativeInst>) -> PipelineReport {
        let mut p = Pipeline::new(PipelineConfig::paper(width));
        for i in trace {
            p.accept(&i);
        }
        p.report()
    }

    /// Independent ALU ops looping over a 1 KB code footprint (so the
    /// I-cache warms up, as in any real loop).
    fn straight_alus(n: u64) -> Vec<NativeInst> {
        (0..n)
            .map(|k| NativeInst::alu(0x1_0000 + (k % 256) * 4, P))
            .collect()
    }

    #[test]
    fn independent_alus_scale_with_width() {
        let r1 = run(1, straight_alus(40000));
        let r4 = run(4, straight_alus(40000));
        assert!(r1.ipc() <= 1.05, "width 1 caps IPC at 1, got {}", r1.ipc());
        assert!(
            r4.ipc() > 3.0,
            "width 4 should near-quadruple, got {}",
            r4.ipc()
        );
    }

    #[test]
    fn dependence_chain_caps_ipc_at_one() {
        let trace: Vec<_> = (0..2000u64)
            .map(|k| {
                NativeInst::alu(0x1_0000 + k * 4, P)
                    .with_dst(1)
                    .with_srcs(1, None)
            })
            .collect();
        let r = run(8, trace);
        assert!(r.ipc() < 1.1, "true chain must serialize, got {}", r.ipc());
    }

    #[test]
    fn mispredicted_indirects_throttle_wide_issue() {
        // Alternating-target indirect jump every 4 instructions — the
        // interpreter-dispatch pathology.
        let mut trace = Vec::new();
        for k in 0..2000u64 {
            let pc = 0x1_0000 + (k % 4) * 4;
            if k % 4 == 3 {
                let target = 0x2_0000 + (k % 8) * 0x40;
                trace.push(NativeInst::indirect_jump(pc, target, P));
            } else {
                trace.push(NativeInst::alu(pc, P));
            }
        }
        let clean = run(8, straight_alus(40000));
        let dirty = run(8, trace);
        assert!(
            dirty.ipc() < clean.ipc() / 2.0,
            "mispredicts should halve IPC: {} vs {}",
            dirty.ipc(),
            clean.ipc()
        );
        assert!(dirty.mispredict_rate() > 0.5);
    }

    #[test]
    fn load_misses_slow_dependent_code() {
        // Each load feeds the next address — a pointer chase over a
        // large footprint.
        let mut chase = Vec::new();
        for k in 0..2000u64 {
            chase.push(
                NativeInst::load(0x1_0000, 0x2000_0000 + k * 4096, 4, P)
                    .with_dst(1)
                    .with_srcs(1, None),
            );
        }
        let mut resident = Vec::new();
        for k in 0..2000u64 {
            resident.push(
                NativeInst::load(0x1_0000, 0x2000_0000 + (k % 8) * 4, 4, P)
                    .with_dst(1)
                    .with_srcs(1, None),
            );
        }
        let slow = run(4, chase);
        let fast = run(4, resident);
        assert!(slow.cycles > fast.cycles * 3);
    }

    #[test]
    fn rob_bounds_inflight_window() {
        // A very long-latency producer followed by many independent
        // ALUs: with a finite ROB, fetch stalls; IPC stays bounded.
        let mut trace = vec![NativeInst::new(0x1_0000, InstClass::IntDiv, P).with_dst(1)];
        trace.extend(straight_alus(500));
        let r = run(8, trace);
        assert!(r.cycles >= 12, "div latency must appear");
        assert!(r.ipc() <= 8.0);
    }

    #[test]
    fn report_counts_match() {
        let r = run(2, straight_alus(100));
        assert_eq!(r.instructions, 100);
        assert!(r.cycles >= 50);
        assert_eq!(r.mispredicts, 0);
        assert_eq!(r.predicted_events, 0);
    }

    #[test]
    fn call_ret_pairs_do_not_mispredict() {
        let mut trace = Vec::new();
        for _ in 0..50 {
            trace.push(NativeInst::call(0x1_0000, 0x2_0000, P));
            trace.push(NativeInst::ret(0x2_0010, 0x1_0004, P));
        }
        let r = run(4, trace);
        assert_eq!(r.mispredicts, 0);
        assert_eq!(r.predicted_events, 50); // rets only
    }
}
