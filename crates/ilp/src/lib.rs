//! Trace-driven superscalar processor model for ILP studies.
//!
//! The paper's Figures 9 and 10 run SpecJVM98 through a cycle-accurate
//! out-of-order simulator at issue widths 1–8 and report IPC and
//! normalized execution time. This crate provides a trace-driven
//! equivalent: an out-of-order core model with
//!
//! * register renaming (only true dependences stall),
//! * a reorder buffer bounding the in-flight window,
//! * configurable fetch/issue/commit width,
//! * per-class functional-unit latencies,
//! * an integrated L1 I-/D-cache pair (misses add latency),
//! * a direction predictor + BTB + return stack front end
//!   (mispredictions redirect fetch after branch resolution), and
//! * taken-branch fetch-group breaks (one taken transfer per cycle).
//!
//! The model is a greedy list scheduler over the dynamic trace — the
//! standard approximation for trace-driven ILP studies. It reproduces
//! the paper's qualitative behaviour: interpreter traces have short
//! dependence chains and excellent locality (high IPC at narrow
//! widths) but their `switch`-dispatch indirect jumps throttle wide
//! issue, while JIT traces scale more evenly.
//!
//! # Examples
//!
//! ```
//! use jrt_ilp::{PipelineConfig, Pipeline};
//! use jrt_trace::{NativeInst, Phase, TraceSink};
//!
//! let mut p = Pipeline::new(PipelineConfig::paper(4));
//! // A loop body of 64 independent ALU ops, executed 64 times.
//! for k in 0..4096u64 {
//!     p.accept(&NativeInst::alu(0x1_0000 + (k % 64) * 4, Phase::NativeExec));
//! }
//! p.finish();
//! let r = p.report();
//! assert!(r.ipc() > 1.0); // independent ALU ops issue in parallel
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod pipeline;

pub use config::PipelineConfig;
pub use pipeline::{Pipeline, PipelineReport};
