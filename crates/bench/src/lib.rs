pub mod lib_placeholder {}
