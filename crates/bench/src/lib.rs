//! Benchmark definitions for the javart workspace, on the in-house
//! [`jrt_testkit::bench`] harness (median-of-N wall time, JSON lines;
//! no external crates).
//!
//! Two suites:
//!
//! * [`bench_paper`] — one bench per paper table/figure, regenerating
//!   the result at `Tiny` scale; doubles as a timed smoke test of
//!   every experiment path.
//! * [`bench_simulators`] — microbenchmarks of the individual
//!   simulators and engines: VM trace-generation throughput,
//!   per-event consumer costs, predictor and lock-scheme ablations.
//!
//! The `paper`/`simulators` bench targets (`cargo bench -p jrt-bench`)
//! run one suite each; the `bench_all` binary runs both and writes
//! `BENCH_experiments.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;

use jrt_bpred::{Bht, BranchEval, GAp, Gshare, TwoBit};
use jrt_cache::{CacheConfig, SplitCaches, SplitSweep};
use jrt_experiments::{
    codecache, fig1, fig11, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, gc_study, scale, serve,
    table1, table2, table3,
};
use jrt_ilp::{Pipeline, PipelineConfig};
use jrt_sync::{FatLockEngine, OneBitLockEngine, SyncEngine, ThinLockEngine};
use jrt_testkit::bench::Harness;
use jrt_trace::{
    AccessBlocks, CountingSink, DiskTape, InstMix, NativeInst, Phase, RecordingSink, Tape,
    TraceSink,
};
use jrt_vm::{CodeCacheConfig, EvictionPolicy, GcConfig, Vm, VmConfig};
use jrt_workloads::{churn, db, jess, Size};

/// One bench per paper table/figure at `Tiny` scale.
pub fn bench_paper(h: &mut Harness) {
    h.bench("fig1_when_to_translate", || fig1::run(Size::Tiny));
    h.bench("table1_memory", || table1::run(Size::Tiny));
    h.bench("fig2_instruction_mix", || fig2::run(Size::Tiny));
    h.bench("table2_branch_prediction", || table2::run(Size::Tiny));
    h.bench("table3_cache", || table3::run(Size::Tiny));
    h.bench("fig3_write_misses", || fig3::run(Size::Tiny));
    h.bench("fig4_c_comparison", || fig4::run(Size::Tiny));
    h.bench("fig5_translate_cache", || fig5::run(Size::Tiny));
    h.bench("fig6_timeline", || fig6::run(Size::Tiny));
    h.bench("fig7_associativity", || fig7::run(Size::Tiny));
    h.bench("fig8_line_size", || fig8::run(Size::Tiny));
    h.bench("fig9_fig10_ilp", || fig9::run(Size::Tiny));
    h.bench("fig11_sync", || fig11::run(Size::Tiny));
    h.bench("codecache_study", || codecache::run(Size::Tiny));
    h.bench("serve_study", || serve::run(Size::Tiny));
    h.bench("scale_study", || scale::run(Size::Tiny));
    h.bench("gc_study", || gc_study::run(Size::Tiny));
}

/// Microbenchmarks of the simulators and engines.
pub fn bench_simulators(h: &mut Harness) {
    // VM trace-generation throughput, both engines. Per-iteration
    // translate events feed the steady-state classifier as the
    // still-compiling marker: a fresh VM per iteration does the same
    // translate work in every window (matching the series minimum, so
    // steadiness is untouched), while any window doing *extra* compile
    // work gets flagged as warm-up. Sized s1, not tiny: engine
    // throughput is a steady-state question, and s1's method reuse
    // amortizes one-shot translate/lowering work the way the paper's
    // s1-vs-s10 comparison does — at tiny the run is all cold start.
    let program = jess::program(Size::S1);
    h.bench_aux("vm_engine/interp", || {
        let mut sink = CountingSink::new();
        Vm::new(&program, VmConfig::interpreter())
            .run(&mut sink)
            .unwrap();
        (sink.total(), sink.translate())
    });
    h.bench_aux("vm_engine/jit", || {
        let mut sink = CountingSink::new();
        Vm::new(&program, VmConfig::jit()).run(&mut sink).unwrap();
        (sink.total(), sink.translate())
    });
    h.bench_aux("vm_engine/jit_bounded", || {
        let cfg = VmConfig::jit().with_code_cache(CodeCacheConfig::bounded(
            codecache::PATHOLOGICAL_CAPACITY,
            EvictionPolicy::Lru,
        ));
        let mut sink = CountingSink::new();
        Vm::new(&program, cfg).run(&mut sink).unwrap();
        (sink.total(), sink.translate())
    });
    // The register-IR tier: lowering counts as translate work, so the
    // steady-state classifier treats it exactly like JIT translation.
    h.bench_aux("vm_engine/ir_interp", || {
        let mut sink = CountingSink::new();
        Vm::new(&program, VmConfig::ir_interp())
            .run(&mut sink)
            .unwrap();
        (sink.total(), sink.translate())
    });
    h.bench_aux("vm_engine/ir_jit", || {
        let mut sink = CountingSink::new();
        Vm::new(&program, VmConfig::ir_jit())
            .run(&mut sink)
            .unwrap();
        (sink.total(), sink.translate())
    });

    // The serving tier: wall-clock fleet throughput, the real
    // work-stealing pool draining a fixed multi-tenant job list on 4
    // resident VMs. Plain `bench` (not `bench_aux`): stealing makes
    // the per-worker partition — and so each worker's shared-cache
    // translate counts — schedule-dependent, which would misclassify
    // steady-state windows even though the canonical job results are
    // identical on every run.
    let traffic = jrt_serve::Traffic::generate(&jrt_serve::TrafficConfig {
        seed: 0x5EED_0042,
        requests: 64,
        tenants: 8,
        fuzz_programs: 3,
        size: Size::Tiny,
    });
    let fleet_jobs = jrt_serve::pool::jobs_of(&traffic);
    h.bench("vm_engine/serve_throughput", || {
        let cfg = jrt_serve::pool::FleetConfig {
            workers: 4,
            ..jrt_serve::pool::FleetConfig::default()
        };
        let report = jrt_serve::run_fleet(&traffic.programs, &fleet_jobs, &cfg);
        report.results.len() as u64 + report.cache.shared_dedup_hits
    });

    // Allocation-heavy execution under the forcing tiny nursery: the
    // generational collector's end-to-end cost — bump allocation,
    // card barriers, nursery evacuations — on the churn workload at
    // s1. Translate events mark still-compiling windows for the
    // steady-state classifier, same as the other vm_engine entries.
    let gc_program = churn::program(Size::S1);
    h.bench_aux("vm_engine/gc_churn", || {
        let mut sink = CountingSink::new();
        Vm::new(
            &gc_program,
            VmConfig::jit().with_gc(GcConfig::tiny_nursery()),
        )
        .run(&mut sink)
        .unwrap();
        (sink.total(), sink.translate())
    });

    // Record one db trace, then measure each consumer on it.
    let program = db::program(Size::Tiny);
    let mut rec = RecordingSink::new();
    Vm::new(&program, VmConfig::jit()).run(&mut rec).unwrap();
    let events = rec.events;

    h.bench("consumer/instmix", || {
        let mut m = InstMix::new();
        for e in &events {
            m.accept(e);
        }
        m
    });
    h.bench("consumer/split_caches", || {
        let mut s = SplitCaches::paper_l1();
        for e in &events {
            s.accept(e);
        }
        s
    });
    h.bench("consumer/branch_eval_gshare", || {
        let mut s = BranchEval::new(Box::new(Gshare::paper()));
        for e in &events {
            s.accept(e);
        }
        s
    });
    h.bench("consumer/pipeline_w4", || {
        let mut p = Pipeline::new(PipelineConfig::paper(4));
        for e in &events {
            p.accept(e);
        }
        p.report()
    });

    // Tape pack/unpack cost on the same db trace: record once into the
    // delta-packed format, replay into the cheapest consumer. Replay
    // throughput is what every cached experiment pays per figure.
    h.bench("tape/record", || {
        Tape::record(|rec| {
            for e in &events {
                rec.accept(e);
            }
        })
        .size_bytes()
    });
    let tape = Tape::record(|rec| {
        for e in &events {
            rec.accept(e);
        }
    });
    h.bench("tape/replay_counting", || {
        let mut c = CountingSink::new();
        tape.replay(&mut c);
        c.total()
    });

    // Streamed replay from the on-disk segment store: the out-of-core
    // path every spilled tape pays — decode straight from disk into
    // 64K-event blocks, nothing materialized. Compare
    // tape/replay_counting for the in-RAM cost of the same stream.
    let spill_dir = std::env::temp_dir().join(format!("jrt-bench-spill-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("bench spill dir");
    let disk = DiskTape::write(&spill_dir.join("db-tiny.tape"), &tape).expect("persist bench tape");
    h.bench("consumer/stream_replay", || {
        let mut events = 0u64;
        disk.replay_stream(|b| events += b.len() as u64)
            .expect("streamed replay");
        events
    });

    // The one-pass stack-distance sweep over the decoded blocks: the
    // per-pass cost the Figure 7 port pays for all four
    // associativities at once (compare consumer/split_caches, which
    // simulates a single configuration from raw events).
    let blocks = AccessBlocks::from_tape(&tape);
    let sweep_points: Vec<CacheConfig> = [1, 2, 4, 8]
        .iter()
        .map(|&a| CacheConfig::paper_assoc_sweep(a))
        .collect();
    h.bench("consumer/cache_sweep", || {
        let mut s = SplitSweep::new(&sweep_points, &sweep_points);
        s.consume(&blocks);
        s.dcache().results()[0].stats().misses()
    });

    // Ablation: the four direction predictors on one synthetic stream.
    let stream: Vec<NativeInst> = (0..20_000u64)
        .map(|k| {
            NativeInst::branch(
                0x1_0000 + (k % 64) * 8,
                0x0_F000,
                (k * 2654435761) % 7 < 4,
                Phase::NativeExec,
            )
        })
        .collect();
    h.bench("predictor/2bit", || {
        let mut s = BranchEval::new(Box::new(TwoBit::new()));
        for e in &stream {
            s.accept(e);
        }
        s
    });
    h.bench("predictor/bht", || {
        let mut s = BranchEval::new(Box::new(Bht::paper()));
        for e in &stream {
            s.accept(e);
        }
        s
    });
    h.bench("predictor/gap", || {
        let mut s = BranchEval::new(Box::new(GAp::paper()));
        for e in &stream {
            s.accept(e);
        }
        s
    });

    // Ablation: lock scheme cost on an uncontended enter/exit storm —
    // the Figure 11(ii) microcosm.
    fn storm(engine: &mut dyn SyncEngine) -> u64 {
        for k in 0..10_000u32 {
            let obj = k % 64;
            let _ = engine.monitor_enter(obj, 1);
            engine.monitor_exit(obj, 1).unwrap();
        }
        engine.stats().total_cycles
    }
    h.bench("locks/monitor_cache", || {
        let mut e = FatLockEngine::new();
        storm(&mut e)
    });
    h.bench("locks/thin", || {
        let mut e = ThinLockEngine::new();
        storm(&mut e)
    });
    h.bench("locks/one_bit", || {
        let mut e = OneBitLockEngine::new();
        storm(&mut e)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_suite_measures_everything() {
        let mut h = Harness::new("simulators")
            .with_samples(1)
            .with_filter(Some("locks".into()))
            .quiet();
        bench_simulators(&mut h);
        assert_eq!(h.results().len(), 3);
        assert!(h.results().iter().all(|r| r.median_ns > 0));
    }
}
