//! Baseline comparison for `bench_all --check-against`, steady-state
//! aware.
//!
//! The regression gate only trusts *steady-state* numbers (see
//! [`jrt_testkit::bench::classify`]): a measured bench that never
//! reached steady state — still compiling, bimodal, noisy — is
//! *annotated* as warm-up drift rather than failed, because comparing
//! its median to a steady baseline would gate on noise. Steady benches
//! compare their `steady_median_ns` against the baseline's
//! steady-state median (falling back to the plain median for baselines
//! written before the schema carried steady fields).

use jrt_testkit::bench::BenchResult;

/// Extracts one `"key":value` field from a JSON line written by
/// [`BenchResult::to_json`] (string or bare-value payloads; no escapes
/// — the writer never emits any).
pub fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        quoted.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// One baseline line. `steady_median_ns` / `steady_state` are `None`
/// for pre-steady-schema baselines.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Suite name.
    pub suite: String,
    /// Bench name.
    pub bench: String,
    /// Plain median (always present).
    pub median_ns: u128,
    /// Steady-window median, when the baseline schema carries it.
    pub steady_median_ns: Option<u128>,
    /// Baseline run's steady verdict, when present.
    pub steady_state: Option<bool>,
}

impl BaselineEntry {
    /// The value the gate compares against: the steady-window median
    /// when the baseline reached steady state, the plain median
    /// otherwise (noisy or old-schema baseline).
    pub fn gate_ns(&self) -> u128 {
        match (self.steady_state, self.steady_median_ns) {
            (Some(true), Some(s)) => s,
            _ => self.median_ns,
        }
    }
}

/// Parses a JSON-lines baseline file's text.
pub fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    text.lines()
        .filter_map(|l| {
            let suite = json_field(l, "suite")?;
            let bench = json_field(l, "bench")?;
            let median_ns: u128 = json_field(l, "median_ns")?.trim().parse().ok()?;
            let steady_median_ns =
                json_field(l, "steady_median_ns").and_then(|v| v.trim().parse().ok());
            let steady_state = json_field(l, "steady_state").and_then(|v| match v.trim() {
                "true" => Some(true),
                "false" => Some(false),
                _ => None,
            });
            Some(BaselineEntry {
                suite: suite.to_string(),
                bench: bench.to_string(),
                median_ns,
                steady_median_ns,
                steady_state,
            })
        })
        .collect()
}

/// Outcome of one baseline comparison.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Benches that had a matching baseline line.
    pub compared: usize,
    /// Steady-state regressions (these fail the gate).
    pub regressions: Vec<String>,
    /// Warm-up drift annotations (reported, never failed).
    pub annotations: Vec<String>,
    /// Steady benches within the limit.
    pub passes: Vec<String>,
}

impl CheckReport {
    /// Whether the gate passes (annotations don't count).
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares measured results to a baseline: steady-state benches gate
/// on `steady_median_ns` vs `factor` × the baseline's steady median;
/// benches that did not reach steady state are annotated only.
pub fn check(results: &[BenchResult], baseline: &[BaselineEntry], factor: f64) -> CheckReport {
    let mut report = CheckReport::default();
    for r in results {
        let Some(base) = baseline
            .iter()
            .find(|b| b.suite == r.suite && b.bench == r.name)
        else {
            continue;
        };
        report.compared += 1;
        let base_ns = base.gate_ns();
        let limit = (base_ns as f64) * factor;
        if !r.steady_state {
            report.annotations.push(format!(
                "warm-up drift {}/{}: run not steady (warmup_iters {}, median {} ns, baseline {} ns) — annotated, not gated",
                r.suite, r.name, r.warmup_iters, r.median_ns, base_ns
            ));
        } else if r.steady_median_ns as f64 > limit {
            report.regressions.push(format!(
                "REGRESSION {}/{}: steady {} ns > {factor} x baseline {} ns",
                r.suite, r.name, r.steady_median_ns, base_ns
            ));
        } else {
            report.passes.push(format!(
                "ok {}/{}: steady {} ns vs baseline {} ns (limit {:.0})",
                r.suite, r.name, r.steady_median_ns, base_ns, limit
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, steady: bool, steady_ns: u128) -> BenchResult {
        BenchResult {
            suite: "s".into(),
            name: name.into(),
            iters: 1,
            samples_ns: vec![steady_ns],
            median_ns: steady_ns,
            steady_state: steady,
            warmup_iters: if steady { 0 } else { 3 },
            steady_median_ns: steady_ns,
        }
    }

    fn baseline_line(bench: &str, median: u128, steady: &str) -> String {
        format!(
            "{{\"suite\":\"s\",\"bench\":\"{bench}\",\"iters\":1,\"samples_ns\":[{median}],\"median_ns\":{median},\"steady_state\":{steady},\"warmup_iters\":0,\"steady_median_ns\":{median}}}"
        )
    }

    #[test]
    fn steady_regression_fails() {
        let base = parse_baseline(&baseline_line("a", 100, "true"));
        let rep = check(&[result("a", true, 500)], &base, 2.0);
        assert_eq!(rep.compared, 1);
        assert_eq!(rep.regressions.len(), 1);
        assert!(!rep.ok());
    }

    #[test]
    fn warmup_drift_annotates_instead_of_failing() {
        let base = parse_baseline(&baseline_line("a", 100, "true"));
        let rep = check(&[result("a", false, 500)], &base, 2.0);
        assert_eq!(rep.compared, 1);
        assert!(rep.regressions.is_empty());
        assert_eq!(rep.annotations.len(), 1);
        assert!(rep.ok());
    }

    #[test]
    fn old_schema_baseline_still_parses_and_gates() {
        let old =
            "{\"suite\":\"s\",\"bench\":\"a\",\"iters\":1,\"samples_ns\":[100],\"median_ns\":100}";
        let base = parse_baseline(old);
        assert_eq!(base.len(), 1);
        assert!(base[0].steady_state.is_none());
        assert_eq!(base[0].gate_ns(), 100);
        let rep = check(&[result("a", true, 150)], &base, 2.0);
        assert_eq!(rep.passes.len(), 1);
        assert!(rep.ok());
    }

    #[test]
    fn unsteady_baseline_gates_on_plain_median() {
        let base = parse_baseline(&baseline_line("a", 100, "false"));
        assert_eq!(base[0].gate_ns(), 100);
    }

    #[test]
    fn unmatched_benches_are_skipped() {
        let base = parse_baseline(&baseline_line("other", 100, "true"));
        let rep = check(&[result("a", true, 500)], &base, 2.0);
        assert_eq!(rep.compared, 0);
        assert!(rep.ok());
    }
}
