//! Runs both bench suites and writes `BENCH_experiments.json` — one
//! JSON line per benchmark (suite, name, per-sample ns, median ns).
//!
//! Usage: `bench_all [filter] [output-path]`. `JRT_BENCH_SAMPLES`
//! sets the sample count (default 5).

use jrt_bench::{bench_paper, bench_simulators};
use jrt_testkit::bench::Harness;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: bench_all [filter] [output-path]\n\
             Runs the paper and simulators bench suites and writes one\n\
             JSON line per benchmark (default: BENCH_experiments.json).\n\
             JRT_BENCH_SAMPLES sets the sample count (default 5)."
        );
        return;
    }
    let filter = args.first().filter(|a| !a.starts_with('-')).cloned();
    let out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_experiments.json".into());

    let mut results = Vec::new();
    for (suite, run) in [
        ("paper", bench_paper as fn(&mut Harness)),
        ("simulators", bench_simulators),
    ] {
        let mut h = Harness::new(suite).with_filter(filter.clone());
        run(&mut h);
        results.extend(h.into_results());
    }

    if results.is_empty() {
        eprintln!(
            "[bench_all] filter {:?} matched no benchmarks; nothing written",
            filter.as_deref().unwrap_or("")
        );
        std::process::exit(1);
    }
    let lines: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    std::fs::write(&out, lines.join("\n") + "\n").expect("write bench report");
    eprintln!("[bench_all] wrote {} results to {out}", results.len());
}
