//! Runs both bench suites and writes `BENCH_experiments.json` — one
//! JSON line per benchmark (suite, name, per-sample ns, median ns,
//! steady-state verdict), plus one `_suite_total` rollup line per
//! suite (sum of the suite's medians), so a single grep tracks
//! whole-suite drift.
//!
//! Usage: `bench_all [filter] [output-path] [--check-against FILE [FACTOR]]`.
//! `JRT_BENCH_SAMPLES` sets the sample count (default 5).
//!
//! `--check-against` compares every measured bench to the same
//! `(suite, bench)` line in a baseline JSON file. Only *steady-state*
//! windows gate: a steady bench fails (exit 1) when its steady median
//! exceeds FACTOR × the baseline's steady median (default 2.0 —
//! generous so shared-runner noise doesn't flake, while real
//! regressions trip). A bench that never reached steady state is
//! annotated as warm-up drift and never fails the gate.

use jrt_bench::check::{check, parse_baseline};
use jrt_bench::{bench_paper, bench_simulators};
use jrt_testkit::bench::{BenchResult, Harness};
use jrt_testkit::stats::LatencyHistogram;

const HELP: &str = "\
usage: bench_all [filter] [output-path] [--check-against FILE [FACTOR]]
Runs the paper and simulators bench suites and writes one JSON line
per benchmark plus a _suite_total rollup per suite (default:
BENCH_experiments.json). JRT_BENCH_SAMPLES sets the sample count
(default 5).
  --check-against FILE [FACTOR]  after measuring, fail (exit 1) if any
                                 steady-state bench's steady median
                                 exceeds FACTOR x the steady median
                                 recorded for it in FILE (default
                                 factor: 2.0). Benches that did not
                                 reach steady state are annotated as
                                 warm-up drift, not failed.";

/// Appends the per-suite rollup lines: median sums under the
/// `_suite_total` pseudo-bench. The rollup is always marked steady so
/// the whole-suite gate stays armed; its steady median sums the
/// members' steady medians.
fn add_rollups(results: &mut Vec<BenchResult>) {
    let suites: Vec<String> = {
        let mut s: Vec<String> = results.iter().map(|r| r.suite.clone()).collect();
        s.dedup();
        s
    };
    for suite in suites {
        let in_suite: Vec<&BenchResult> = results.iter().filter(|r| r.suite == suite).collect();
        let total: u128 = in_suite.iter().map(|r| r.median_ns).sum();
        let steady_total: u128 = in_suite.iter().map(|r| r.steady_median_ns).sum();
        let rollup = BenchResult {
            suite: suite.clone(),
            name: "_suite_total".into(),
            iters: in_suite.len() as u64,
            samples_ns: vec![total],
            median_ns: total,
            steady_state: true,
            warmup_iters: 0,
            steady_median_ns: steady_total,
        };
        println!("{}", rollup.to_json());
        results.push(rollup);
    }
}

/// Logs each suite's per-sample spread (p50/p99/p999 across every
/// sample of every bench) — the quick read on how noisy this runner
/// was, on the same quantile helper the serve study reports with.
fn log_sample_spread(results: &[BenchResult]) {
    let mut suites: Vec<&str> = results.iter().map(|r| r.suite.as_str()).collect();
    suites.dedup();
    for suite in suites {
        let mut hist = LatencyHistogram::new();
        for r in results.iter().filter(|r| r.suite == suite) {
            for &s in &r.samples_ns {
                hist.record(u64::try_from(s).unwrap_or(u64::MAX));
            }
        }
        if let Some(q) = hist.quantiles() {
            eprintln!(
                "[bench_all] {suite} sample spread: p50 {} ns, p99 {} ns, p999 {} ns over {} samples",
                q.p50,
                q.p99,
                q.p999,
                hist.len()
            );
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut check_args: Option<(String, f64)> = None;
    if let Some(i) = args.iter().position(|a| a == "--check-against") {
        if i + 1 >= args.len() {
            eprintln!("--check-against needs a baseline path (see --help)");
            std::process::exit(2);
        }
        args.remove(i);
        let path = args.remove(i);
        let factor = if args.len() > i {
            args.get(i)
                .and_then(|a| a.parse::<f64>().ok())
                .inspect(|_| {
                    args.remove(i);
                })
        } else {
            None
        };
        check_args = Some((path, factor.unwrap_or(2.0)));
    }
    let filter = args.first().filter(|a| !a.starts_with('-')).cloned();
    let out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_experiments.json".into());

    let mut results = Vec::new();
    for (suite, run) in [
        ("paper", bench_paper as fn(&mut Harness)),
        ("simulators", bench_simulators),
    ] {
        let mut h = Harness::new(suite).with_filter(filter.clone());
        run(&mut h);
        results.extend(h.into_results());
    }

    if results.is_empty() {
        eprintln!(
            "[bench_all] filter {:?} matched no benchmarks; nothing written",
            filter.as_deref().unwrap_or("")
        );
        std::process::exit(1);
    }
    log_sample_spread(&results);
    add_rollups(&mut results);
    let lines: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    std::fs::write(&out, lines.join("\n") + "\n").expect("write bench report");
    eprintln!("[bench_all] wrote {} results to {out}", results.len());

    if let Some((path, factor)) = check_args {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        // Rollups are only comparable between full runs; under a
        // filter the partial sum can never *exceed* the full baseline,
        // so including them is safe and full runs still get checked.
        let report = check(&results, &parse_baseline(&text), factor);
        for line in report
            .passes
            .iter()
            .chain(&report.annotations)
            .chain(&report.regressions)
        {
            eprintln!("[bench_all] {line}");
        }
        eprintln!(
            "[bench_all] checked {} benches against {path}: {} regression(s), {} warm-up annotation(s)",
            report.compared,
            report.regressions.len(),
            report.annotations.len()
        );
        if !report.ok() {
            std::process::exit(1);
        }
    }
}
