//! Runs both bench suites and writes `BENCH_experiments.json` — one
//! JSON line per benchmark (suite, name, per-sample ns, median ns),
//! plus one `_suite_total` rollup line per suite (sum of the suite's
//! medians), so a single grep tracks whole-suite drift.
//!
//! Usage: `bench_all [filter] [output-path] [--check-against FILE [FACTOR]]`.
//! `JRT_BENCH_SAMPLES` sets the sample count (default 5).
//!
//! `--check-against` compares every measured bench to the same
//! `(suite, bench)` line in a baseline JSON file and exits 1 if any
//! median exceeds FACTOR × its baseline median (default 2.0 — generous
//! so shared-runner noise doesn't flake, while real regressions trip).

use jrt_bench::{bench_paper, bench_simulators};
use jrt_testkit::bench::{BenchResult, Harness};

const HELP: &str = "\
usage: bench_all [filter] [output-path] [--check-against FILE [FACTOR]]
Runs the paper and simulators bench suites and writes one JSON line
per benchmark plus a _suite_total rollup per suite (default:
BENCH_experiments.json). JRT_BENCH_SAMPLES sets the sample count
(default 5).
  --check-against FILE [FACTOR]  after measuring, fail (exit 1) if any
                                 bench's median exceeds FACTOR x the
                                 median recorded for it in FILE
                                 (default factor: 2.0).";

/// Extracts one `"key":value` field from a JSON line written by
/// [`BenchResult::to_json`] (string or bare-number values; no escapes
/// — the writer never emits any).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        quoted.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

/// Reads `(suite, bench) -> median_ns` from a baseline JSON-lines file.
fn read_baseline(path: &str) -> Vec<(String, String, u128)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    text.lines()
        .filter_map(|l| {
            let suite = json_field(l, "suite")?;
            let bench = json_field(l, "bench")?;
            let median: u128 = json_field(l, "median_ns")?.trim().parse().ok()?;
            Some((suite.to_string(), bench.to_string(), median))
        })
        .collect()
}

/// Appends the per-suite rollup lines: median sums under the
/// `_suite_total` pseudo-bench.
fn add_rollups(results: &mut Vec<BenchResult>) {
    let suites: Vec<String> = {
        let mut s: Vec<String> = results.iter().map(|r| r.suite.clone()).collect();
        s.dedup();
        s
    };
    for suite in suites {
        let in_suite: Vec<&BenchResult> = results.iter().filter(|r| r.suite == suite).collect();
        let total: u128 = in_suite.iter().map(|r| r.median_ns).sum();
        let rollup = BenchResult {
            suite: suite.clone(),
            name: "_suite_total".into(),
            iters: in_suite.len() as u64,
            samples_ns: vec![total],
            median_ns: total,
        };
        println!("{}", rollup.to_json());
        results.push(rollup);
    }
}

/// Compares measured medians to the baseline; returns the number of
/// regressions (measured > factor × baseline).
fn check_against(results: &[BenchResult], baseline_path: &str, factor: f64) -> usize {
    let baseline = read_baseline(baseline_path);
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for r in results {
        let Some((_, _, base)) = baseline
            .iter()
            .find(|(s, b, _)| *s == r.suite && *b == r.name)
        else {
            continue;
        };
        compared += 1;
        let limit = (*base as f64) * factor;
        if r.median_ns as f64 > limit {
            regressions += 1;
            eprintln!(
                "[bench_all] REGRESSION {}/{}: {} ns > {factor} x baseline {} ns",
                r.suite, r.name, r.median_ns, base
            );
        } else {
            eprintln!(
                "[bench_all] ok {}/{}: {} ns vs baseline {} ns (limit {:.0})",
                r.suite, r.name, r.median_ns, base, limit
            );
        }
    }
    eprintln!(
        "[bench_all] checked {compared} benches against {baseline_path}: {regressions} regression(s)"
    );
    regressions
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let mut check: Option<(String, f64)> = None;
    if let Some(i) = args.iter().position(|a| a == "--check-against") {
        if i + 1 >= args.len() {
            eprintln!("--check-against needs a baseline path (see --help)");
            std::process::exit(2);
        }
        args.remove(i);
        let path = args.remove(i);
        let factor = if args.len() > i {
            args.get(i)
                .and_then(|a| a.parse::<f64>().ok())
                .inspect(|_| {
                    args.remove(i);
                })
        } else {
            None
        };
        check = Some((path, factor.unwrap_or(2.0)));
    }
    let filter = args.first().filter(|a| !a.starts_with('-')).cloned();
    let out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_experiments.json".into());

    let mut results = Vec::new();
    for (suite, run) in [
        ("paper", bench_paper as fn(&mut Harness)),
        ("simulators", bench_simulators),
    ] {
        let mut h = Harness::new(suite).with_filter(filter.clone());
        run(&mut h);
        results.extend(h.into_results());
    }

    if results.is_empty() {
        eprintln!(
            "[bench_all] filter {:?} matched no benchmarks; nothing written",
            filter.as_deref().unwrap_or("")
        );
        std::process::exit(1);
    }
    add_rollups(&mut results);
    let lines: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    std::fs::write(&out, lines.join("\n") + "\n").expect("write bench report");
    eprintln!("[bench_all] wrote {} results to {out}", results.len());

    if let Some((path, factor)) = check {
        // Rollups are only comparable between full runs; under a
        // filter the partial sum can never *exceed* the full baseline,
        // so including them is safe and full runs still get checked.
        if check_against(&results, &path, factor) > 0 {
            std::process::exit(1);
        }
    }
}
