//! One Criterion group per paper table/figure: each bench regenerates
//! the corresponding result at `Tiny` scale, so the benchmark suite
//! doubles as a timed smoke test of every experiment path.
//!
//! Run with `cargo bench -p jrt-bench --bench paper`.

use criterion::{criterion_group, criterion_main, Criterion};
use jrt_experiments::{fig1, fig11, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table1, table2, table3};
use jrt_workloads::Size;

fn sample_size(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_fig1(c: &mut Criterion) {
    sample_size(c).bench_function("fig1_when_to_translate", |b| {
        b.iter(|| std::hint::black_box(fig1::run(Size::Tiny)))
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_memory", |b| {
        b.iter(|| std::hint::black_box(table1::run(Size::Tiny)))
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_instruction_mix", |b| {
        b.iter(|| std::hint::black_box(fig2::run(Size::Tiny)))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_branch_prediction", |b| {
        b.iter(|| std::hint::black_box(table2::run(Size::Tiny)))
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_cache", |b| {
        b.iter(|| std::hint::black_box(table3::run(Size::Tiny)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_write_misses", |b| {
        b.iter(|| std::hint::black_box(fig3::run(Size::Tiny)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_c_comparison", |b| {
        b.iter(|| std::hint::black_box(fig4::run(Size::Tiny)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_translate_cache", |b| {
        b.iter(|| std::hint::black_box(fig5::run(Size::Tiny)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_timeline", |b| {
        b.iter(|| std::hint::black_box(fig6::run(Size::Tiny)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_associativity", |b| {
        b.iter(|| std::hint::black_box(fig7::run(Size::Tiny)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_line_size", |b| {
        b.iter(|| std::hint::black_box(fig8::run(Size::Tiny)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_fig10_ilp", |b| {
        b.iter(|| std::hint::black_box(fig9::run(Size::Tiny)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_sync", |b| {
        b.iter(|| std::hint::black_box(fig11::run(Size::Tiny)))
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_table1, bench_fig2, bench_table2,
        bench_table3, bench_fig3, bench_fig4, bench_fig5, bench_fig6,
        bench_fig7, bench_fig8, bench_fig9, bench_fig11
}
criterion_main!(paper);
