//! One bench per paper table/figure: each bench regenerates the
//! corresponding result at `Tiny` scale, so the benchmark suite
//! doubles as a timed smoke test of every experiment path.
//!
//! Run with `cargo bench -p jrt-bench --bench paper`.

use jrt_bench::bench_paper;
use jrt_testkit::bench::Harness;

fn main() {
    let mut h = Harness::from_args("paper");
    bench_paper(&mut h);
    h.finish();
}
