//! Microbenchmarks of the individual simulators and engines:
//! trace-generation throughput and per-event consumer costs, plus
//! ablations of design choices called out in DESIGN.md (thin vs. fat
//! locks, devirtualization, threaded dispatch prediction).
//!
//! Run with `cargo bench -p jrt-bench --bench simulators`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jrt_bpred::{Bht, BranchEval, GAp, Gshare, TwoBit};
use jrt_cache::SplitCaches;
use jrt_ilp::{Pipeline, PipelineConfig};
use jrt_sync::{FatLockEngine, OneBitLockEngine, SyncEngine, ThinLockEngine};
use jrt_trace::{CountingSink, InstMix, NativeInst, Phase, RecordingSink, TraceSink};
use jrt_vm::{Vm, VmConfig};
use jrt_workloads::{db, jess, Size};

/// VM trace-generation throughput, both engines.
fn bench_vm_engines(c: &mut Criterion) {
    let program = jess::program(Size::Tiny);
    let mut g = c.benchmark_group("vm_engine");
    g.sample_size(10);
    g.bench_function("interp", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            Vm::new(&program, VmConfig::interpreter())
                .run(&mut sink)
                .unwrap();
            sink.total()
        })
    });
    g.bench_function("jit", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            Vm::new(&program, VmConfig::jit()).run(&mut sink).unwrap();
            sink.total()
        })
    });
    g.finish();
}

/// Records one db trace, then measures each consumer on it.
fn bench_consumers(c: &mut Criterion) {
    let program = db::program(Size::Tiny);
    let mut rec = RecordingSink::new();
    Vm::new(&program, VmConfig::jit()).run(&mut rec).unwrap();
    let events = rec.events;

    let mut g = c.benchmark_group("consumer");
    g.sample_size(10);
    g.throughput(criterion::Throughput::Elements(events.len() as u64));
    g.bench_function("instmix", |b| {
        b.iter_batched(
            InstMix::new,
            |mut m| {
                for e in &events {
                    m.accept(e);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("split_caches", |b| {
        b.iter_batched(
            SplitCaches::paper_l1,
            |mut s| {
                for e in &events {
                    s.accept(e);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("branch_eval_gshare", |b| {
        b.iter_batched(
            || BranchEval::new(Box::new(Gshare::paper())),
            |mut s| {
                for e in &events {
                    s.accept(e);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pipeline_w4", |b| {
        b.iter_batched(
            || Pipeline::new(PipelineConfig::paper(4)),
            |mut p| {
                for e in &events {
                    p.accept(e);
                }
                p.report()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Ablation: the four direction predictors on one synthetic stream.
fn bench_predictors(c: &mut Criterion) {
    let stream: Vec<NativeInst> = (0..20_000u64)
        .map(|k| {
            NativeInst::branch(
                0x1_0000 + (k % 64) * 8,
                0x0_F000,
                (k * 2654435761) % 7 < 4,
                Phase::NativeExec,
            )
        })
        .collect();
    let mut g = c.benchmark_group("predictor");
    g.throughput(criterion::Throughput::Elements(stream.len() as u64));
    g.bench_function("2bit", |b| {
        b.iter_batched(
            || BranchEval::new(Box::new(TwoBit::new())),
            |mut s| {
                for e in &stream {
                    s.accept(e);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("bht", |b| {
        b.iter_batched(
            || BranchEval::new(Box::new(Bht::paper())),
            |mut s| {
                for e in &stream {
                    s.accept(e);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("gap", |b| {
        b.iter_batched(
            || BranchEval::new(Box::new(GAp::paper())),
            |mut s| {
                for e in &stream {
                    s.accept(e);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Ablation: lock scheme cost on an uncontended enter/exit storm —
/// the Figure 11(ii) microcosm.
fn bench_locks(c: &mut Criterion) {
    fn storm(engine: &mut dyn SyncEngine) -> u64 {
        for k in 0..10_000u32 {
            let obj = k % 64;
            let _ = engine.monitor_enter(obj, 1);
            engine.monitor_exit(obj, 1).unwrap();
        }
        engine.stats().total_cycles
    }
    let mut g = c.benchmark_group("locks");
    g.bench_function("monitor_cache", |b| {
        b.iter_batched(
            FatLockEngine::new,
            |mut e| storm(&mut e),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("thin", |b| {
        b.iter_batched(
            ThinLockEngine::new,
            |mut e| storm(&mut e),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("one_bit", |b| {
        b.iter_batched(
            OneBitLockEngine::new,
            |mut e| storm(&mut e),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = simulators;
    config = Criterion::default();
    targets = bench_vm_engines, bench_consumers, bench_predictors, bench_locks
}
criterion_main!(simulators);
