//! Microbenchmarks of the individual simulators and engines:
//! trace-generation throughput and per-event consumer costs, plus
//! ablations of design choices called out in DESIGN.md (thin vs. fat
//! locks, devirtualization, threaded dispatch prediction).
//!
//! Run with `cargo bench -p jrt-bench --bench simulators`.

use jrt_bench::bench_simulators;
use jrt_testkit::bench::Harness;

fn main() {
    let mut h = Harness::from_args("simulators");
    bench_simulators(&mut h);
    h.finish();
}
