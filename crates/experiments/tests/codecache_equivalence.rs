//! Result equivalence under code-cache eviction: a pathologically
//! small bounded cache (constant eviction, interpretation fallback,
//! re-translation) must not change what the program *computes*. Every
//! workload at tiny is run under each eviction policy and compared
//! against the interpreter-only run on the full semantic tail — exit
//! value, captured console output, and bytecodes executed (both
//! engines share one semantic core, so the bytecode stream is the
//! semantic trace).

use jrt_experiments::codecache::PATHOLOGICAL_CAPACITY;
use jrt_trace::NullSink;
use jrt_vm::{CodeCacheConfig, EvictionPolicy, Vm, VmConfig};
use jrt_workloads::{suite_with_hello, Size};

#[test]
fn pathological_cache_matches_interp_on_every_workload() {
    for spec in suite_with_hello() {
        let program = (spec.build)(Size::Tiny);
        let interp = Vm::new(&program, VmConfig::interpreter())
            .run(&mut NullSink)
            .expect("interp run clean");

        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::SizeWeightedLru,
            EvictionPolicy::HotnessDecay,
        ] {
            let cfg = VmConfig::jit()
                .with_code_cache(CodeCacheConfig::bounded(PATHOLOGICAL_CAPACITY, policy));
            let bounded = Vm::new(&program, cfg)
                .run(&mut NullSink)
                .expect("bounded-jit run clean");

            assert_eq!(
                bounded.exit_value, interp.exit_value,
                "{}/{policy:?}: exit value drifted under eviction",
                spec.name
            );
            assert_eq!(
                bounded.output, interp.output,
                "{}/{policy:?}: console output drifted under eviction",
                spec.name
            );
            assert_eq!(
                bounded.counters.bytecodes, interp.counters.bytecodes,
                "{}/{policy:?}: semantic bytecode stream drifted under eviction",
                spec.name
            );
            assert!(
                bounded.counters.code_evictions > 0,
                "{}/{policy:?}: the pathological capacity never evicted",
                spec.name
            );
        }
    }
}
