//! Section 4.4's suggested interpreter improvement: instruction
//! folding.
//!
//! The paper observes that at wide issue the interpreter bottlenecks
//! on fetching the next bytecode (the switch jump's target
//! misprediction) and suggests that "an interpreter code that
//! identifies these sequences of bytecodes" — picoJava-style folding
//! of 2–4 simple bytecodes under one dispatch — "can mitigate the
//! effect of inaccurate target prediction and scale better". This
//! experiment implements folding in the interpreter and measures
//! instruction count and IPC at issue widths 1–8.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{count, pct, Table};
use crate::tape;
use jrt_ilp::{Pipeline, PipelineConfig};
use jrt_workloads::{suite, Size};

/// Folding-vs-baseline interpreter measurements for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct FoldingRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline interpreter instructions.
    pub base_insts: u64,
    /// Folding interpreter instructions.
    pub fold_insts: u64,
    /// Baseline IPC at widths 1 and 8.
    pub base_ipc: [f64; 2],
    /// Folding IPC at widths 1 and 8.
    pub fold_ipc: [f64; 2],
}

impl FoldingRow {
    /// Fraction of native instructions removed by folding.
    pub fn inst_savings(&self) -> f64 {
        1.0 - self.fold_insts as f64 / self.base_insts as f64
    }

    /// Wide-issue (w=8) speedup in cycles: (base insts / base IPC) /
    /// (fold insts / fold IPC).
    pub fn w8_speedup(&self) -> f64 {
        (self.base_insts as f64 / self.base_ipc[1]) / (self.fold_insts as f64 / self.fold_ipc[1])
    }
}

/// The full folding study.
#[derive(Debug, Clone)]
pub struct Folding {
    /// Rows in suite order.
    pub rows: Vec<FoldingRow>,
}

impl Folding {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Interpreter folding (picoJava-style, runs of <=4 simple bytecodes)",
            &[
                "benchmark",
                "insts (base)",
                "insts (folded)",
                "insts saved",
                "IPC w8 base",
                "IPC w8 folded",
                "w8 speedup",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                count(r.base_insts),
                count(r.fold_insts),
                pct(r.inst_savings()),
                format!("{:.2}", r.base_ipc[1]),
                format!("{:.2}", r.fold_ipc[1]),
                format!("{:.2}x", r.w8_speedup()),
            ]);
        }
        t
    }

    /// Mean wide-issue speedup.
    pub fn mean_w8_speedup(&self) -> f64 {
        self.rows.iter().map(FoldingRow::w8_speedup).sum::<f64>() / self.rows.len() as f64
    }
}

fn measure(w: &Workload, folding: bool) -> (u64, [f64; 2]) {
    // The folding interpreter emits a genuinely different stream, so
    // it has its own tape-cache key.
    let entry = if folding {
        tape::recorded_folding(w)
    } else {
        tape::recorded(w, Mode::Interp)
    };
    let mut pipes = vec![
        Pipeline::new(PipelineConfig::paper(1)),
        Pipeline::new(PipelineConfig::paper(8)),
    ];
    entry.tape.replay(&mut pipes);
    (
        entry.counts.total(),
        [pipes[0].report().ipc(), pipes[1].report().ipc()],
    )
}

/// Runs the folding study (interpreter mode only), one job per
/// benchmark × {baseline, folding}, paired back up in suite order.
pub fn run(size: Size) -> Folding {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &[false, true]);
    let measured = jobs::par_map(&work, |(w, folding)| measure(w, *folding));
    let rows = work
        .chunks(2)
        .zip(measured.chunks(2))
        .map(|(pair, m)| {
            let (base_insts, base_ipc) = m[0];
            let (fold_insts, fold_ipc) = m[1];
            FoldingRow {
                name: pair[0].0.spec.name,
                base_insts,
                fold_insts,
                base_ipc,
                fold_ipc,
            }
        })
        .collect();
    Folding { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};
    use jrt_workloads::compress;

    #[test]
    fn folding_preserves_results() {
        let p = compress::program(Size::Tiny);
        let r = Vm::new(&p, VmConfig::interpreter().with_folding())
            .run(&mut CountingSink::new())
            .unwrap();
        assert_eq!(r.exit_value, Some(compress::expected(Size::Tiny)));
    }

    #[test]
    fn folding_saves_instructions_and_cycles() {
        let f = run(Size::Tiny);
        for r in &f.rows {
            assert!(
                r.inst_savings() > 0.05,
                "{}: saved only {}",
                r.name,
                r.inst_savings()
            );
            assert!(
                r.w8_speedup() > 1.0,
                "{}: w8 speedup {}",
                r.name,
                r.w8_speedup()
            );
        }
        assert!(f.mean_w8_speedup() > 1.1, "got {}", f.mean_w8_speedup());
    }
}
