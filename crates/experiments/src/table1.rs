//! Table 1 — memory footprint of the interpreter vs. the JIT.
//!
//! The paper measures the JIT's resident memory at 10–33% above the
//! interpreter's, the delta being the code cache and translator
//! buffers, and notes the overhead is proportionally larger for
//! applications with small dynamic memory use (like `db`).

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{count, pct, Table};
use crate::tape;
use jrt_vm::Footprint;
use jrt_workloads::{suite, Size};

/// One benchmark's footprint comparison.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Interpreter footprint.
    pub interp: Footprint,
    /// JIT footprint.
    pub jit: Footprint,
}

impl Table1Row {
    /// JIT overhead over the interpreter.
    pub fn overhead(&self) -> f64 {
        self.jit.total() as f64 / self.interp.total() as f64 - 1.0
    }
}

/// The full Table 1 result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in suite order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 1: memory footprint (bytes)",
            &[
                "benchmark",
                "interp",
                "jit",
                "code-cache (live)",
                "code ever translated",
                "translator",
                "jit-overhead",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                count(r.interp.total()),
                count(r.jit.total()),
                count(r.jit.code_cache_bytes),
                count(r.jit.code_ever_bytes),
                count(r.jit.translator_bytes),
                pct(r.overhead()),
            ]);
        }
        t
    }
}

fn run_one(w: &Workload) -> Table1Row {
    // Footprints ride along on the cached recordings; no dedicated
    // runs needed.
    Table1Row {
        name: w.spec.name,
        interp: tape::recorded(w, Mode::Interp).result.footprint,
        jit: tape::recorded(w, Mode::Jit).result.footprint,
    }
}

/// Runs the Table 1 experiment, one job per benchmark.
pub fn run(size: Size) -> Table1 {
    let loads = jobs::prebuild(suite(), size);
    Table1 {
        rows: jobs::par_map(&loads, run_one),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_overhead_in_paper_band() {
        let t = run(Size::Tiny);
        assert_eq!(t.rows.len(), 7);
        for r in &t.rows {
            assert!(r.overhead() > 0.0, "{}: JIT must cost extra memory", r.name);
            assert!(
                r.overhead() < 0.60,
                "{}: overhead {} should stay near the paper's 10-33% band",
                r.name,
                r.overhead()
            );
            assert_eq!(r.interp.code_cache_bytes, 0);
            assert!(r.jit.code_cache_bytes > 0);
            // Unbounded default cache: live occupancy equals the
            // append-only figure; bounded caches may fall below it.
            assert!(r.jit.code_cache_bytes <= r.jit.code_ever_bytes);
        }
    }
}
