//! Input-size sweep — the paper's s1 → s10 observation.
//!
//! Section 2: "We have also investigated the effect of larger
//! datasets, s10 and s100. The increased method reuse resulted in
//! expected results such as increased code locality, reduced time
//! spent in compilation vs execution, etc. but all major conclusions
//! from the experiments stay valid." This experiment runs three
//! representative benchmarks at three scales and shows the
//! translation share of JIT time falling as inputs grow.

use crate::jobs;
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_trace::Phase;
use jrt_workloads::{compress, db, javac, Size, Spec};

/// Translate share at each size for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SizesRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Translate share of JIT instructions at Tiny / S1 / S10.
    pub translate_share: [f64; 3],
    /// Interpreter-to-JIT instruction ratio at each size.
    pub interp_ratio: [f64; 3],
}

/// The full size sweep.
#[derive(Debug, Clone)]
pub struct Sizes {
    /// One row per representative benchmark.
    pub rows: Vec<SizesRow>,
}

impl Sizes {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Input-size sweep: translate share of JIT time (method reuse grows with input)",
            &[
                "benchmark",
                "xlate% tiny",
                "xlate% s1",
                "xlate% s10",
                "interp/jit s1",
                "interp/jit s10",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                pct(r.translate_share[0]),
                pct(r.translate_share[1]),
                pct(r.translate_share[2]),
                format!("{:.2}x", r.interp_ratio[1]),
                format!("{:.2}x", r.interp_ratio[2]),
            ]);
        }
        t
    }
}

const SIZES: [Size; 3] = [Size::Tiny, Size::S1, Size::S10];

/// One benchmark × size job. Sizes differ per job, so there is no
/// shared prebuild, but the per-`(benchmark, size)` program and
/// recordings come from the tape cache — the s1 points are shared
/// with the rest of a `run_all`.
fn run_point(spec: &Spec, size: Size) -> (f64, f64) {
    let w = tape::workload(spec, size);
    let jit = tape::recorded(&w, Mode::Jit);
    let interp = tape::recorded(&w, Mode::Interp);
    let translate_share = jit.counts.phase(Phase::Translate) as f64 / jit.counts.total() as f64;
    (
        translate_share,
        interp.counts.total() as f64 / jit.counts.total() as f64,
    )
}

/// Runs the size sweep on three representative benchmarks
/// (translation-heavy `db`/`javac`, execution-heavy `compress`),
/// one job per benchmark × size.
pub fn run() -> Sizes {
    let specs = [
        Spec {
            name: "compress",
            build: compress::program,
            expected: compress::expected,
            multithreaded: false,
        },
        Spec {
            name: "db",
            build: db::program,
            expected: db::expected,
            multithreaded: false,
        },
        Spec {
            name: "javac",
            build: javac::program,
            expected: javac::expected,
            multithreaded: false,
        },
    ];
    let work = jobs::cross(&specs, &SIZES);
    let points = jobs::par_map(&work, |(spec, size)| run_point(spec, *size));
    let rows = specs
        .iter()
        .zip(points.chunks(3))
        .map(|(spec, p)| SizesRow {
            name: spec.name,
            translate_share: [p[0].0, p[1].0, p[2].0],
            interp_ratio: [p[0].1, p[1].1, p[2].1],
        })
        .collect();
    Sizes { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "runs S10 inputs; exercised by the sweep_sizes binary"]
    fn translate_share_falls_with_input_size() {
        let s = run();
        for r in &s.rows {
            assert!(
                r.translate_share[2] < r.translate_share[1],
                "{}: s10 {} should be below s1 {}",
                r.name,
                r.translate_share[2],
                r.translate_share[1]
            );
            // The JIT's advantage grows with reuse.
            assert!(r.interp_ratio[2] >= r.interp_ratio[1] * 0.95, "{}", r.name);
        }
    }
}
