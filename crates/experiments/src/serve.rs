//! `serve_study` — the multi-tenant VM fleet (`jrt-serve`).
//!
//! The paper characterizes one JVM running one program to completion.
//! The serving study asks the ROADMAP's follow-on question: what
//! happens when the runtime is a *fleet* — a pool of reusable VM
//! instances draining an open-loop, multi-tenant request stream?
//! Three paper threads meet here:
//!
//! * **Translation cost** (Figure 1) becomes a *fleet* cost: with a
//!   [`CacheScope::Shared`](jrt_vm::CacheScope) content-addressed
//!   cache, only the first request to touch a bytecode content pays
//!   its translation; every later request — any tenant — reuses it.
//!   The study reports that dedup rate directly.
//! * **Where the cycles go** becomes *throughput and tail latency*:
//!   the discrete-event model charges each job its measured
//!   instruction counts on a virtual clock, so p50/p99/p999 sojourn
//!   times and completions-per-virtual-second are exact and
//!   machine-independent.
//! * **Safety rails** become *admission control and fuel*: a bounded
//!   queue plus per-tenant concurrency caps shed overload with a
//!   reason, and per-tenant instruction budgets trap runaway jobs at
//!   a deterministic bytecode index (`FuelExhausted`) — never via
//!   wall clock.
//!
//! Everything is measured-cost simulation ([`jrt_serve::sim`]); the
//! real work-stealing pool is exercised by `serve_smoke` and the
//! `vm_engine/serve_throughput` wall-clock bench.

use crate::jobs;
use crate::report::verdict;
use crate::table::{count, pct, Table};
use jrt_serve::{
    measure_job, measure_program, simulate, CostModel, SimConfig, SimResult, Traffic, TrafficConfig,
};
use jrt_workloads::Size;

/// Fleet widths swept by the scaling study.
pub const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Bound on the admission queue in the scaling sweep. Sized below
/// the sum of the tenant caps so the narrow-fleet rows exercise
/// *both* shed reasons: the backlog bound binds first when few
/// workers drain, the per-tenant caps when many do.
pub const QUEUE_CAPACITY: usize = 8;

/// Offered-load oversubscription: mean service time is this many
/// times the mean interarrival time, so even the widest fleet stays
/// saturated and the 1-worker fleet must shed.
pub const OVERSUBSCRIPTION: u64 = 12;

fn traffic_config(size: Size) -> TrafficConfig {
    let requests = match size {
        Size::Tiny => 400,
        Size::S1 => 1200,
        Size::S10 => 2400,
    };
    TrafficConfig {
        seed: 0x5EED_0042,
        requests,
        tenants: 8,
        fuzz_programs: 3,
        size,
    }
}

/// One program of the serving catalog, as offered.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Program name (workload or `fuzz-N`).
    pub name: String,
    /// Requests offered for this program.
    pub requests: usize,
    /// Distinct translated bytecode contents the program contributes.
    pub contents: usize,
    /// Translate instructions a cold cache pays for those contents.
    pub translate_insts: u64,
}

/// One fleet width of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Workers (resident VMs).
    pub workers: usize,
    /// The simulation outcome at this width.
    pub sim: SimResult,
}

/// The full study.
#[derive(Debug, Clone)]
pub struct ServeStudy {
    /// Requests offered per sweep point.
    pub offered: usize,
    /// Tenants in the stream (every fourth runs fuel-metered).
    pub tenants: usize,
    /// Traffic mix rows, catalog order.
    pub traffic: Vec<TrafficRow>,
    /// Scaling rows, one per [`WORKERS`] width.
    pub scaling: Vec<ScalingRow>,
    /// Dedup rate of the multi-tenant same-program scenario: every
    /// tenant requests the same program, so all cache traffic after
    /// the first job is cross-tenant reuse.
    pub same_program_dedup: f64,
}

/// Runs the study at `size`. The measurement phase (isolated VM runs
/// per program and per `(program, fuel)` class) fans out on the
/// [`jobs`] scheduler; the simulation itself is sequential and cheap.
pub fn run(size: Size) -> ServeStudy {
    let cfg = traffic_config(size);
    let traffic = Traffic::generate(&cfg);

    // Measured costs: programs and distinct (program, fuel) classes
    // in parallel, assembled in canonical order.
    let program_costs = jobs::par_map(&traffic.programs, |p| measure_program(p));
    let pair_keys = CostModel::distinct_pairs(&traffic);
    let pair_costs = jobs::par_map(&pair_keys, |&(pi, fuel)| {
        measure_job(&traffic.programs[pi], fuel)
    });
    let costs = CostModel::from_parts(
        program_costs,
        pair_keys.into_iter().zip(pair_costs).collect(),
    );

    let mut per_program = vec![0usize; traffic.programs.len()];
    for r in &traffic.requests {
        per_program[r.program] += 1;
    }
    let traffic_rows = traffic
        .names
        .iter()
        .zip(&costs.programs)
        .zip(&per_program)
        .map(|((name, cost), &requests)| TrafficRow {
            name: name.clone(),
            requests,
            contents: cost.contents.len(),
            translate_insts: cost.translate_insts(),
        })
        .collect();

    let mean = costs.mean_service_insts(&traffic);
    let sim_cfg = |workers| SimConfig {
        workers,
        queue_capacity: QUEUE_CAPACITY,
        interarrival_unit_ns: (mean / OVERSUBSCRIPTION).max(1),
    };
    let scaling = WORKERS
        .iter()
        .map(|&workers| ScalingRow {
            workers,
            sim: simulate(&traffic, &costs, &sim_cfg(workers)),
        })
        .collect();

    // The multi-tenant same-program scenario: identical stream, but
    // every request names the most content-rich program. All dedup
    // after the first dispatch is cross-tenant.
    let richest = costs
        .programs
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.contents.len())
        .map_or(0, |(i, _)| i);
    let mut same = Traffic {
        programs: traffic.programs.clone(),
        names: traffic.names.clone(),
        tenants: traffic.tenants.clone(),
        requests: traffic.requests.clone(),
    };
    for r in &mut same.requests {
        r.program = richest;
    }
    let same_sim = simulate(&same, &costs, &sim_cfg(4));

    ServeStudy {
        offered: traffic.requests.len(),
        tenants: traffic.tenants.len(),
        traffic: traffic_rows,
        scaling,
        same_program_dedup: same_sim.dedup_rate(),
    }
}

impl ServeStudy {
    /// Renders the traffic-mix table.
    pub fn traffic_table(&self) -> Table {
        let mut t = Table::new(
            "Offered traffic (heavy-tailed program mix over 8 tenants; every 4th tenant fuel-metered)",
            &[
                "program",
                "requests",
                "share",
                "contents",
                "cold translate insts",
            ],
        );
        for r in &self.traffic {
            t.row(vec![
                r.name.clone(),
                count(r.requests as u64),
                pct(r.requests as f64 / self.offered as f64),
                count(r.contents as u64),
                count(r.translate_insts),
            ]);
        }
        t
    }

    /// Renders the fleet-scaling table.
    pub fn scaling_table(&self) -> Table {
        let mut t = Table::new(
            "Fleet scaling at fixed offered load (virtual clock: 1 ns per traced instruction)",
            &[
                "workers",
                "completed",
                "shed (queue)",
                "shed (cap)",
                "shed rate",
                "fuel-exhausted",
                "throughput/s",
                "p50 ms",
                "p99 ms",
                "p999 ms",
                "cache dedup",
            ],
        );
        for r in &self.scaling {
            let q = r.sim.latencies.quantiles().unwrap_or_default();
            let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
            t.row(vec![
                count(r.workers as u64),
                count(r.sim.completed as u64),
                count(r.sim.shed_queue_full as u64),
                count(r.sim.shed_tenant_cap as u64),
                pct(r.sim.shed_rate()),
                count(r.sim.fuel_exhausted as u64),
                format!("{:.1}", r.sim.throughput_per_sec()),
                ms(q.p50),
                ms(q.p99),
                ms(q.p999),
                pct(r.sim.dedup_rate()),
            ]);
        }
        t
    }

    fn row(&self, workers: usize) -> &ScalingRow {
        self.scaling
            .iter()
            .find(|r| r.workers == workers)
            .expect("swept width present")
    }

    /// Throughput at 8 workers over throughput at 1 worker.
    pub fn speedup_8v1(&self) -> f64 {
        let one = self.row(1).sim.throughput_per_sec();
        if one == 0.0 {
            return 0.0;
        }
        self.row(8).sim.throughput_per_sec() / one
    }

    /// ISSUE acceptance: ≥ 3× throughput at 8 workers vs 1.
    pub fn scales_3x(&self) -> bool {
        self.speedup_8v1() >= 3.0
    }

    /// ISSUE acceptance: the shared cache deduplicates on the
    /// multi-tenant same-program scenario.
    pub fn same_program_dedups(&self) -> bool {
        self.same_program_dedup > 0.0
    }

    /// Renders the full study as the `EXPERIMENTS.md` section (also
    /// the `serve_study` binary's output).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "## Serving tier — multi-tenant VM fleet\n");
        let _ = writeln!(
            w,
            "*Beyond the paper:* one JVM, one program becomes a fleet — a pool \
             of reusable VM instances draining an open-loop request stream of \
             `(program, input, tenant)` jobs. Admission control is a bounded \
             queue ({} slots) plus per-tenant concurrency caps; overload is \
             shed at the door with a reason (`QueueFull` | `TenantCap`), never \
             queued unboundedly. Each tenant runs under a *fuel* budget: an \
             instruction count the VM checks before every bytecode, trapping \
             `FuelExhausted` at a deterministic index on every engine — \
             metering is program semantics, not wall clock. The fleet shares a \
             content-addressed code cache, so a bytecode body translated for \
             one tenant is reused by every other. All numbers below come from \
             a discrete-event simulation over per-job *measured instruction \
             counts* (1 virtual ns per traced instruction), so this section \
             is byte-identical on any machine at any `--jobs`; the real \
             work-stealing pool is exercised by `serve_smoke` and the \
             `vm_engine/serve_throughput` bench.\n",
            QUEUE_CAPACITY
        );
        let _ = writeln!(w, "{}", self.traffic_table().to_markdown());
        let _ = writeln!(w, "{}", self.scaling_table().to_markdown());
        let eight = &self.row(8).sim;
        let _ = writeln!(
            w,
            "*Measured:* at {}× oversubscription a single worker saturates and \
             sheds; widening the fleet to 8 raises throughput {:.1}× and cuts \
             the shed rate to {} — {}. The shared cache pays once per distinct \
             content: {} translations serve {} warm lookups at 8 workers \
             ({} dedup). On the multi-tenant same-program scenario (every \
             tenant requests the same program) the dedup rate is {} — \
             {}. Metered tenants trap `FuelExhausted` in every sweep row \
             without disturbing any other tenant's results.\n",
            OVERSUBSCRIPTION,
            self.speedup_8v1(),
            pct(eight.shed_rate()),
            verdict(self.scales_3x()),
            count(eight.cache_misses),
            count(eight.cache_hits),
            pct(eight.dedup_rate()),
            pct(self.same_program_dedup),
            verdict(self.same_program_dedups())
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_holds_at_tiny() {
        let s = run(Size::Tiny);
        assert_eq!(s.scaling.len(), WORKERS.len());
        assert_eq!(s.traffic.len(), 7, "4 workloads + 3 fuzz programs");

        // ISSUE acceptance: ≥3× throughput at 8 workers vs 1.
        assert!(
            s.scales_3x(),
            "8-worker speedup {:.2} below 3x",
            s.speedup_8v1()
        );
        // ISSUE acceptance: nonzero dedup on the same-program
        // multi-tenant scenario.
        assert!(s.same_program_dedups());

        // The overload design point: one worker sheds, the sweep
        // dedups, metered tenants trap in every row.
        assert!(s.row(1).sim.shed() > 0);
        for r in &s.scaling {
            assert!(r.sim.dedup_rate() > 0.0, "workers={}", r.workers);
            assert!(r.sim.fuel_exhausted > 0, "workers={}", r.workers);
            assert_eq!(r.sim.offered, s.offered);
            assert_eq!(r.sim.completed + r.sim.shed(), s.offered);
        }
    }
}
