//! Figure 7 — effect of associativity (8 KB caches, 32-byte lines,
//! 1/2/4/8-way).
//!
//! The paper: higher associativity reduces misses, with the largest
//! step from direct-mapped to 2-way.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_cache::{CacheConfig, SplitSweep};
use jrt_workloads::{suite, Size};

/// Associativities swept.
pub const ASSOCS: [u32; 4] = [1, 2, 4, 8];

/// Aggregated miss rates per associativity for one mode.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Execution mode.
    pub mode: Mode,
    /// I-cache miss rate per associativity (suite aggregate).
    pub i_miss: [f64; 4],
    /// D-cache miss rate per associativity.
    pub d_miss: [f64; 4],
}

/// The full Figure 7 result.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// One row per mode.
    pub rows: Vec<Fig7Row>,
}

impl Fig7 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 7: associativity sweep (8K, 32B lines), suite aggregate",
            &["mode", "cache", "1-way", "2-way", "4-way", "8-way"],
        );
        for r in &self.rows {
            t.row(vec![
                r.mode.label().into(),
                "I".into(),
                pct(r.i_miss[0]),
                pct(r.i_miss[1]),
                pct(r.i_miss[2]),
                pct(r.i_miss[3]),
            ]);
            t.row(vec![
                r.mode.label().into(),
                "D".into(),
                pct(r.d_miss[0]),
                pct(r.d_miss[1]),
                pct(r.d_miss[2]),
                pct(r.d_miss[3]),
            ]);
        }
        t
    }
}

/// One benchmark × mode job: a single stack-distance pass over the
/// decoded stream yields exact counts for all four associativities,
/// returning `(i_refs, d_refs, i_misses, d_misses)` per point.
fn run_one(w: &Workload, mode: Mode) -> [(u64, u64, u64, u64); 4] {
    let points: Vec<CacheConfig> = ASSOCS
        .iter()
        .map(|&a| CacheConfig::paper_assoc_sweep(a))
        .collect();
    let mut sweep = SplitSweep::new(&points, &points);
    tape::for_each_block(w, mode, |b| sweep.consume_block(b));
    let mut out = [(0, 0, 0, 0); 4];
    for (k, (i, d)) in sweep
        .icache()
        .results()
        .iter()
        .zip(sweep.dcache().results())
        .enumerate()
    {
        out[k] = (
            i.stats().refs(),
            d.stats().refs(),
            i.stats().misses(),
            d.stats().misses(),
        );
    }
    out
}

/// Runs the Figure 7 experiment: one job per benchmark × mode, with
/// the suite aggregate folded mode-major after collection.
pub fn run(size: Size) -> Fig7 {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    let counts = jobs::par_map(&work, |(w, mode)| run_one(w, *mode));
    let rows = Mode::BOTH
        .iter()
        .map(|&mode| {
            let mut refs = [(0u64, 0u64); 4]; // (i_refs, d_refs)
            let mut misses = [(0u64, 0u64); 4];
            for ((_, m), per_assoc) in work.iter().zip(&counts) {
                if *m != mode {
                    continue;
                }
                for (k, &(ir, dr, im, dm)) in per_assoc.iter().enumerate() {
                    refs[k].0 += ir;
                    refs[k].1 += dr;
                    misses[k].0 += im;
                    misses[k].1 += dm;
                }
            }
            let mut i_miss = [0.0; 4];
            let mut d_miss = [0.0; 4];
            for k in 0..4 {
                i_miss[k] = misses[k].0 as f64 / refs[k].0.max(1) as f64;
                d_miss[k] = misses[k].1 as f64 / refs[k].1.max(1) as f64;
            }
            Fig7Row {
                mode,
                i_miss,
                d_miss,
            }
        })
        .collect();
    Fig7 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associativity_monotonically_helps() {
        let f = run(Size::Tiny);
        for r in &f.rows {
            for (k, &ways) in ASSOCS.iter().enumerate().skip(1) {
                assert!(
                    r.d_miss[k] <= r.d_miss[k - 1] * 1.05,
                    "{:?} D {}-way {} vs {}",
                    r.mode,
                    ways,
                    r.d_miss[k],
                    r.d_miss[k - 1]
                );
                assert!(r.i_miss[k] <= r.i_miss[k - 1] * 1.05);
            }
            // Largest step: 1-way -> 2-way.
            let step1 = r.d_miss[0] - r.d_miss[1];
            let step2 = r.d_miss[1] - r.d_miss[2];
            assert!(step1 >= step2 * 0.8, "{:?}: {} vs {}", r.mode, step1, step2);
        }
    }
}
