//! Figure 1 — when (or whether) to translate.
//!
//! For each benchmark: the JIT's execution time split into translation
//! and execution of translated code, the `opt` oracle's normalized
//! time, and the interpreter-to-JIT ratio. The paper's findings:
//! translation dominates for `hello`/`db`, execution dominates for
//! `compress`/`jack`; `opt` saves at best 10–15%; the JIT clearly
//! outperforms interpretation.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_trace::Phase;
use jrt_workloads::{suite_with_hello, Size};

/// One benchmark's Figure 1 bar.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Total JIT-mode instructions (≈ cycles in the Fig. 1 cost model).
    pub jit_total: u64,
    /// Instructions spent translating.
    pub translate: u64,
    /// `opt` total instructions.
    pub opt_total: u64,
    /// Interpreter total instructions.
    pub interp_total: u64,
}

impl Fig1Row {
    /// Fraction of JIT time spent translating.
    pub fn translate_frac(&self) -> f64 {
        self.translate as f64 / self.jit_total as f64
    }

    /// `opt` time normalized to JIT (= 1.0).
    pub fn opt_norm(&self) -> f64 {
        self.opt_total as f64 / self.jit_total as f64
    }

    /// Interpreter time normalized to JIT (the ratio printed on top
    /// of the paper's bars).
    pub fn interp_ratio(&self) -> f64 {
        self.interp_total as f64 / self.jit_total as f64
    }

    /// Savings of `opt` over the naive first-invocation heuristic.
    pub fn opt_savings(&self) -> f64 {
        1.0 - self.opt_norm()
    }
}

/// The full Figure 1 result.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Rows in suite order (hello first, as in the paper).
    pub rows: Vec<Fig1Row>,
}

impl Fig1 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 1: normalized execution (JIT = 1.0)",
            &[
                "benchmark",
                "jit:translate",
                "jit:execute",
                "opt",
                "opt-savings",
                "interp/jit",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                pct(r.translate_frac()),
                pct(1.0 - r.translate_frac()),
                format!("{:.3}", r.opt_norm()),
                pct(r.opt_savings()),
                format!("{:.2}x", r.interp_ratio()),
            ]);
        }
        t
    }

    /// Best saving achieved by the oracle across benchmarks.
    pub fn best_savings(&self) -> f64 {
        self.rows
            .iter()
            .map(Fig1Row::opt_savings)
            .fold(0.0, f64::max)
    }
}

fn run_one(w: &Workload) -> Fig1Row {
    // All three recordings come from the tape cache: interp and jit
    // are shared with every other driver, and the opt recording uses
    // the memoized oracle derived from their cached profiles.
    let interp = tape::recorded(w, Mode::Interp);
    let jit = tape::recorded(w, Mode::Jit);
    let opt = tape::recorded(w, Mode::Opt);

    Fig1Row {
        name: w.spec.name,
        jit_total: jit.counts.total(),
        translate: jit.counts.phase(Phase::Translate),
        opt_total: opt.counts.total(),
        interp_total: interp.counts.total(),
    }
}

/// Runs the Figure 1 experiment at the given size. One job per
/// benchmark (the oracle run consumes the other two runs' profiles,
/// so the three modes of one benchmark stay on one worker).
pub fn run(size: Size) -> Fig1 {
    let loads = jobs::prebuild(suite_with_hello(), size);
    Fig1 {
        rows: jobs::par_map(&loads, run_one),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_reproduces_the_shape() {
        let f = run(Size::Tiny);
        assert_eq!(f.rows.len(), 8);
        let by_name = |n: &str| f.rows.iter().find(|r| r.name == n).unwrap();

        // JIT beats the interpreter on the execution-dominated
        // benchmarks even at Tiny scale. (Translation-heavy programs
        // need the s1 inputs for the JIT to amortize — exactly the
        // paper's point; EXPERIMENTS.md shows interp/jit > 1 for all
        // but `hello` at s1.)
        for r in f
            .rows
            .iter()
            .filter(|r| ["compress", "mpeg", "mtrt", "jack"].contains(&r.name))
        {
            assert!(r.interp_ratio() > 1.0, "{}: {}", r.name, r.interp_ratio());
        }
        // hello is translation-dominated; compress/mpeg are
        // execution-dominated.
        assert!(by_name("hello").translate_frac() > 0.4);
        assert!(by_name("compress").translate_frac() < by_name("hello").translate_frac());
        assert!(by_name("mpeg").translate_frac() < 0.4);
        // The oracle never loses by much and wins somewhere.
        for r in &f.rows {
            assert!(r.opt_norm() < 1.10, "{}: {}", r.name, r.opt_norm());
        }
        // At Tiny the run-once library is small, so the oracle's
        // headroom is modest; the S1 report shows the 10-15% band.
        assert!(f.best_savings() > 0.015, "got {}", f.best_savings());
        // Table renders a row per benchmark.
        assert_eq!(f.table().len(), 8);
    }
}
