//! Experiment drivers regenerating every table and figure of
//! *Architectural Issues in Java Runtime Systems* (HPCA 2000).
//!
//! Each module reproduces one of the paper's results on the `javart`
//! substrate (synthetic SPARC-like traces, SpecJVM98-analog
//! workloads):
//!
//! | module | paper result |
//! |---|---|
//! | [`fig1`] | Fig. 1 — when/whether to translate: JIT translate/execute split, the `opt` oracle, interpreter ratio |
//! | [`table1`] | Table 1 — memory footprint, interpreter vs. JIT |
//! | [`fig2`] | Fig. 2 — instruction mix per execution mode |
//! | [`table2`] | Table 2 — branch misprediction for four predictors |
//! | [`table3`] | Table 3 — L1 I/D cache references and misses |
//! | [`fig3`] | Fig. 3 — share of data misses that are writes |
//! | [`fig4`] | Fig. 4 — miss rates vs. a C-like (AOT) execution |
//! | [`fig5`] | Fig. 5 — cache misses inside the translate phase |
//! | [`fig6`] | Fig. 6 — miss-rate timeline for `db` |
//! | [`fig7`] | Fig. 7 — associativity sweep (8K, 1/2/4/8-way) |
//! | [`fig8`] | Fig. 8 — line-size sweep (8K DM, 16–128 B) |
//! | [`fig9`] | Figs. 9 & 10 — IPC and normalized time vs. issue width |
//! | [`fig11`] | Fig. 11 — synchronization cases and lock-scheme costs |
//! | [`folding`] | Section 4.4's suggestion — picoJava-style interpreter folding, implemented and measured |
//! | [`indirect`] | Table 2's recommendation — an indirect-branch-tailored predictor (target cache), implemented and measured |
//! | [`proposal`] | Section 6 — the paper's install-into-I-cache proposal, implemented and measured |
//! | [`sizes`] | Section 2 — the s1→s10 method-reuse observation |
//! | [`codecache`] | Follow-on to Table 1/Figure 1 — managed code cache: capacity/eviction sweep, shared-vs-private caches, tiered recompilation |
//! | [`serve`] | Beyond the paper — multi-tenant VM fleet: admission control, per-tenant fuel, shared-cache dedup, throughput/latency scaling |
//! | [`scale`] | Beyond the paper — out-of-core tape store: s10-class tapes streamed from disk, sharded 1→8-worker replay stitched exactly |
//! | [`gc_study`] | Beyond the paper — generational copying GC: collection counts, survival, write-barrier overhead, Gc/GcBarrier cache slices, cross-collector equivalence |
//!
//! [`report::run_all`] executes everything and renders the
//! `EXPERIMENTS.md` comparison document.
//!
//! Every driver fans its `(workload, mode)` cross-product out on the
//! [`jobs`] work-queue scheduler (worker count from `JRT_JOBS` or the
//! machine) and merges results in canonical order, so reports are
//! bit-identical at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codecache;
pub mod fig1;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod folding;
pub mod gc_study;
pub mod indirect;
pub mod ir;
pub mod jobs;
pub mod proposal;
pub mod report;
pub mod runner;
pub mod scale;
pub mod serve;
pub mod sizes;
pub mod table;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod tape;

pub use runner::Mode;
pub use table::Table;
