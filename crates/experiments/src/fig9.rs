//! Figures 9 & 10 — instruction-level parallelism vs. issue width.
//!
//! The paper runs both modes through a cycle-accurate superscalar
//! simulator at issue widths 1–8. Findings: interpreter IPC is higher
//! (better locality, short dependence chains) but its scaling flattens
//! at wide issue because the dispatch jump's target misprediction
//! starves the front end; the JIT scales more evenly. Figure 10 plots
//! the same runs as execution time normalized to width 1.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::Table;
use crate::tape;
use jrt_ilp::{Pipeline, PipelineConfig, PipelineReport};
use jrt_workloads::{suite, Size};

/// Issue widths swept.
pub const WIDTHS: [u32; 4] = [1, 2, 4, 8];

/// Reports per width for one benchmark × mode.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Execution mode.
    pub mode: Mode,
    /// Pipeline reports at widths 1, 2, 4, 8.
    pub reports: [PipelineReport; 4],
}

impl Fig9Row {
    /// IPC at each width.
    pub fn ipc(&self) -> [f64; 4] {
        [
            self.reports[0].ipc(),
            self.reports[1].ipc(),
            self.reports[2].ipc(),
            self.reports[3].ipc(),
        ]
    }

    /// Execution time normalized to width 1 (Figure 10).
    pub fn normalized_time(&self) -> [f64; 4] {
        let base = self.reports[0].cycles as f64;
        [
            1.0,
            self.reports[1].cycles as f64 / base,
            self.reports[2].cycles as f64 / base,
            self.reports[3].cycles as f64 / base,
        ]
    }

    /// IPC improvement from width 1 to width 8.
    pub fn scaling(&self) -> f64 {
        self.reports[3].ipc() / self.reports[0].ipc()
    }
}

/// The full Figures 9/10 result.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Rows: per benchmark, interp then jit.
    pub rows: Vec<Fig9Row>,
}

impl Fig9 {
    /// Renders the IPC table (Figure 9).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 9: IPC vs issue width",
            &[
                "benchmark",
                "mode",
                "w=1",
                "w=2",
                "w=4",
                "w=8",
                "scale(8/1)",
            ],
        );
        for r in &self.rows {
            let ipc = r.ipc();
            t.row(vec![
                r.name.into(),
                r.mode.label().into(),
                format!("{:.2}", ipc[0]),
                format!("{:.2}", ipc[1]),
                format!("{:.2}", ipc[2]),
                format!("{:.2}", ipc[3]),
                format!("{:.2}x", r.scaling()),
            ]);
        }
        t
    }

    /// Renders the normalized-time table (Figure 10).
    pub fn table_fig10(&self) -> Table {
        let mut t = Table::new(
            "Figure 10: execution time normalized to 1-issue",
            &["benchmark", "mode", "w=1", "w=2", "w=4", "w=8"],
        );
        for r in &self.rows {
            let n = r.normalized_time();
            t.row(vec![
                r.name.into(),
                r.mode.label().into(),
                format!("{:.2}", n[0]),
                format!("{:.2}", n[1]),
                format!("{:.2}", n[2]),
                format!("{:.2}", n[3]),
            ]);
        }
        t
    }

    /// Mean IPC at a width index for a mode.
    pub fn mean_ipc(&self, mode: Mode, width_idx: usize) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.reports[width_idx].ipc())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Mean width-8/width-1 IPC scaling for a mode.
    pub fn mean_scaling(&self, mode: Mode) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.mode == mode)
            .map(Fig9Row::scaling)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn run_one(w: &Workload, mode: Mode) -> Fig9Row {
    let mut pipes: Vec<Pipeline> = WIDTHS
        .iter()
        .map(|&w| Pipeline::new(PipelineConfig::paper(w)))
        .collect();
    tape::replay(w, mode, &mut pipes);
    Fig9Row {
        name: w.spec.name,
        mode,
        reports: [
            pipes[0].report(),
            pipes[1].report(),
            pipes[2].report(),
            pipes[3].report(),
        ],
    }
}

/// Runs the Figures 9/10 experiment, one job per benchmark × mode
/// (each job drives its own four-pipeline sweep).
pub fn run(size: Size) -> Fig9 {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    Fig9 {
        rows: jobs::par_map(&work, |(w, mode)| run_one(w, *mode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_shape_matches_paper() {
        let f = run(Size::Tiny);
        // Wider machines never hurt; IPC grows with width.
        for r in &f.rows {
            let ipc = r.ipc();
            for k in 1..4 {
                assert!(
                    ipc[k] >= ipc[k - 1] * 0.98,
                    "{} {:?}: ipc w{} {} < w{} {}",
                    r.name,
                    r.mode,
                    WIDTHS[k],
                    ipc[k],
                    WIDTHS[k - 1],
                    ipc[k - 1]
                );
            }
        }
        // Interpreter IPC is at least competitive at narrow width.
        let i1 = f.mean_ipc(Mode::Interp, 0);
        let j1 = f.mean_ipc(Mode::Jit, 0);
        assert!(i1 > j1 * 0.9, "interp w1 {i1} vs jit w1 {j1}");
        // On the execution-dominated benchmarks (where translation
        // doesn't throttle the JIT trace), the JIT scales better to
        // wide issue — the interpreter's dispatch-jump mispredictions
        // flatten its curve, exactly the paper's mechanism.
        for name in ["compress", "mpeg"] {
            let i = f
                .rows
                .iter()
                .find(|r| r.name == name && r.mode == Mode::Interp)
                .unwrap();
            let j = f
                .rows
                .iter()
                .find(|r| r.name == name && r.mode == Mode::Jit)
                .unwrap();
            assert!(
                j.reports[3].ipc() > i.reports[3].ipc() * 0.98,
                "{name}: jit w8 IPC {} vs interp {}",
                j.reports[3].ipc(),
                i.reports[3].ipc()
            );
            // The mechanism: interpreter control mispredicts more.
            assert!(
                i.reports[3].mispredict_rate() > j.reports[3].mispredict_rate(),
                "{name}: interp mispredict {} vs jit {}",
                i.reports[3].mispredict_rate(),
                j.reports[3].mispredict_rate()
            );
        }
    }
}
