//! The register-IR tier study: stack vs register dispatch and memory
//! traffic.
//!
//! Sections 4.2–4.4 of the paper trace the interpreter's
//! architectural troubles to two structural sources: the per-bytecode
//! indirect dispatch jump (mispredicted targets, serialized fetch)
//! and the in-memory operand stack (extra data references). The
//! register-IR tier attacks both at once — `jrt-ir` lowers each
//! method's stack bytecode to a register IR (constant folding,
//! redundant-load elimination, superinstruction fusion), the IR
//! interpreter dispatches at most once per bytecode with operands in
//! registers, and the IR-backed JIT installs denser code because
//! fused pcs generate nothing. This experiment measures both engines
//! against their stack counterparts: dispatch counts, native
//! instructions, data references and misses through the one-pass
//! cache sweep, and installed code bytes.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{count, pct, Table};
use crate::tape;
use jrt_cache::{CacheConfig, SplitSweep};
use jrt_workloads::{suite, Size};

/// One engine family's measurements for one benchmark (stack engines
/// or IR engines).
#[derive(Debug, Clone, Copy)]
pub struct IrMeasure {
    /// Interpreter-mode native instructions.
    pub insts: u64,
    /// Executed bytecodes (identical across engines by construction).
    pub bytecodes: u64,
    /// Handler dispatches in interpreter mode (stack: one per
    /// bytecode; IR: one per unfused IR instruction).
    pub dispatches: u64,
    /// Interpreter-mode data references at the paper's L1 point.
    pub drefs: u64,
    /// Interpreter-mode data misses at the paper's L1 point.
    pub dmisses: u64,
    /// Code bytes the (IR-backed) JIT ever installed.
    pub code_bytes: u64,
}

/// Stack-vs-IR measurements for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct IrRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The stack engines (interpreter + JIT).
    pub base: IrMeasure,
    /// The register-IR engines (IR interpreter + IR-backed JIT).
    pub ir: IrMeasure,
}

impl IrRow {
    /// Fraction of interpreter dispatches removed by fusion/elision.
    pub fn dispatch_savings(&self) -> f64 {
        1.0 - self.ir.dispatches as f64 / self.base.dispatches as f64
    }

    /// Fraction of interpreter native instructions removed.
    pub fn inst_savings(&self) -> f64 {
        1.0 - self.ir.insts as f64 / self.base.insts as f64
    }

    /// Fraction of interpreter data references removed.
    pub fn dref_savings(&self) -> f64 {
        1.0 - self.ir.drefs as f64 / self.base.drefs as f64
    }

    /// Fraction of installed code bytes removed by the IR translator.
    pub fn code_savings(&self) -> f64 {
        1.0 - self.ir.code_bytes as f64 / self.base.code_bytes as f64
    }
}

/// The full register-IR study.
#[derive(Debug, Clone)]
pub struct IrStudy {
    /// Rows in suite order.
    pub rows: Vec<IrRow>,
}

impl IrStudy {
    /// Dispatch/instruction contrast table (interpreter modes).
    pub fn dispatch_table(&self) -> Table {
        let mut t = Table::new(
            "Register-IR interpreter vs stack interpreter",
            &[
                "benchmark",
                "bytecodes",
                "dispatches (stack)",
                "dispatches (IR)",
                "dispatches saved",
                "insts (stack)",
                "insts (IR)",
                "insts saved",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                count(r.base.bytecodes),
                count(r.base.dispatches),
                count(r.ir.dispatches),
                pct(r.dispatch_savings()),
                count(r.base.insts),
                count(r.ir.insts),
                pct(r.inst_savings()),
            ]);
        }
        t
    }

    /// Memory-traffic contrast table (one-pass cache sweep at the
    /// paper's L1 point, plus installed code bytes from the JIT
    /// modes).
    pub fn traffic_table(&self) -> Table {
        let mut t = Table::new(
            "Register-IR memory traffic (paper L1 D-cache) and code density",
            &[
                "benchmark",
                "D-refs (stack)",
                "D-refs (IR)",
                "D-refs saved",
                "D-misses (stack)",
                "D-misses (IR)",
                "code bytes (jit)",
                "code bytes (ir-jit)",
                "code saved",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                count(r.base.drefs),
                count(r.ir.drefs),
                pct(r.dref_savings()),
                count(r.base.dmisses),
                count(r.ir.dmisses),
                count(r.base.code_bytes),
                count(r.ir.code_bytes),
                pct(r.code_savings()),
            ]);
        }
        t
    }

    /// Mean over a per-row fraction.
    fn mean(&self, f: impl Fn(&IrRow) -> f64) -> f64 {
        self.rows.iter().map(f).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean dispatch reduction.
    pub fn mean_dispatch_savings(&self) -> f64 {
        self.mean(IrRow::dispatch_savings)
    }

    /// Mean native-instruction reduction.
    pub fn mean_inst_savings(&self) -> f64 {
        self.mean(IrRow::inst_savings)
    }

    /// Mean data-reference reduction.
    pub fn mean_dref_savings(&self) -> f64 {
        self.mean(IrRow::dref_savings)
    }

    /// Mean code-byte reduction.
    pub fn mean_code_savings(&self) -> f64 {
        self.mean(IrRow::code_savings)
    }
}

fn measure(w: &Workload, ir: bool) -> IrMeasure {
    let (interp, blocks, jit) = if ir {
        (
            tape::recorded_ir(w, Mode::Interp),
            tape::decoded_ir(w, Mode::Interp),
            tape::recorded_ir(w, Mode::Jit),
        )
    } else {
        (
            tape::recorded(w, Mode::Interp),
            tape::decoded(w, Mode::Interp),
            tape::recorded(w, Mode::Jit),
        )
    };
    let ipoints = [CacheConfig::paper_l1_inst()];
    let dpoints = [CacheConfig::paper_l1_data()];
    let mut sweep = SplitSweep::new(&ipoints, &dpoints);
    sweep.consume(&blocks);
    let d = &sweep.dcache().results()[0];
    IrMeasure {
        insts: interp.counts.total(),
        bytecodes: interp.result.counters.bytecodes,
        dispatches: if ir {
            interp.result.counters.ir_dispatches
        } else {
            // The stack interpreter dispatches exactly once per
            // bytecode.
            interp.result.counters.bytecodes
        },
        drefs: d.stats().refs(),
        dmisses: d.stats().misses(),
        code_bytes: jit.result.counters.code_ever_bytes,
    }
}

/// Runs the register-IR study, one job per benchmark × {stack, IR},
/// paired back up in suite order.
pub fn run(size: Size) -> IrStudy {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &[false, true]);
    let measured = jobs::par_map(&work, |(w, ir)| measure(w, *ir));
    let rows = work
        .chunks(2)
        .zip(measured.chunks(2))
        .map(|(pair, m)| IrRow {
            name: pair[0].0.spec.name,
            base: m[0],
            ir: m[1],
        })
        .collect();
    IrStudy { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};
    use jrt_workloads::compress;

    #[test]
    fn ir_engines_preserve_results() {
        let p = compress::program(Size::Tiny);
        for cfg in [VmConfig::ir_interp(), VmConfig::ir_jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(compress::expected(Size::Tiny)));
        }
    }

    #[test]
    fn ir_tier_saves_dispatches_instructions_and_traffic() {
        let s = run(Size::Tiny);
        for r in &s.rows {
            assert_eq!(
                r.base.bytecodes, r.ir.bytecodes,
                "{}: engines must execute identical bytecode",
                r.name
            );
            assert!(
                r.ir.dispatches <= r.base.bytecodes,
                "{}: IR dispatched {} times for {} bytecodes",
                r.name,
                r.ir.dispatches,
                r.base.bytecodes
            );
            assert!(
                r.dispatch_savings() > 0.0,
                "{}: fusion saved no dispatches",
                r.name
            );
            assert!(
                r.inst_savings() > 0.0,
                "{}: IR interpreter emitted more instructions",
                r.name
            );
            assert!(
                r.dref_savings() > 0.0,
                "{}: register operands saved no data traffic",
                r.name
            );
            assert!(
                r.ir.code_bytes <= r.base.code_bytes,
                "{}: IR-backed JIT installed more code",
                r.name
            );
        }
        assert!(
            s.mean_dispatch_savings() > 0.1,
            "got {}",
            s.mean_dispatch_savings()
        );
    }
}
