//! The record-once/replay-many tape cache behind every driver.
//!
//! The paper's measurement pipeline collected each benchmark's native
//! instruction stream **once** with Shade and then fed the recorded
//! trace to every simulator. The drivers in this crate historically
//! re-executed the VM per consumer instead — `run_all` regenerated the
//! same `(workload, mode)` stream up to a dozen times. This module
//! restores the paper's architecture: a process-global cache memoizes
//! one packed [`Tape`] (plus the [`RunResult`] and a [`CountingSink`]
//! snapshot of the recording pass) per `(workload, size, mode)` key,
//! and drivers [`replay`] from it at memory speed.
//!
//! Concurrency: keys are looked up under a brief mutex that hands out
//! an `Arc<OnceLock>` slot per key, and the expensive record happens
//! inside [`OnceLock::get_or_init`] *outside* that mutex — so two jobs
//! needing the same tape build it exactly once while jobs for other
//! keys proceed in parallel, which preserves the scheduler's
//! any-worker-count determinism (the cache only changes *when* a
//! stream is produced, never its contents).
//!
//! Assembled [`Program`]s are memoized the same way, so the eighteen
//! drivers stop re-assembling the suite once per driver, and the
//! Figure 1 oracle is derived once per workload from the cached
//! interpreter/JIT profiles instead of two fresh profiling runs per
//! call site.
//!
//! The tape store is bounded: cached tapes are charged against a byte
//! budget (`JRT_TAPE_BUDGET` bytes, default 4 GiB) and the
//! least-recently-used entries are dropped when it overflows. Eviction
//! only changes *when* a stream is re-recorded, never its contents —
//! recording is deterministic, so a dropped tape re-records
//! byte-identically (a property the tests pin down).
//!
//! On top of the packed tapes sits a second memo layer: [`decoded`]
//! expands a tape once into flat structure-of-arrays
//! [`AccessBlocks`] (pc/addr/kind/phase arrays in ~64K-event chunks)
//! for the access-level consumers — the one-pass cache-sweep drivers
//! iterate those arrays instead of paying the varint decoder and a
//! virtual `accept` per event per pass. Decoded blocks are charged
//! against their own instance of the same LRU byte budget.

use crate::jobs::Workload;
use crate::runner::Mode;
use jrt_bytecode::Program;
use jrt_trace::{AccessBlocks, CountingSink, FanoutSink, Tape, TapeRecorder, TraceSink};
use jrt_vm::{OracleDecisions, RunResult, Vm, VmConfig};
use jrt_workloads::{Size, Spec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: workload identity plus the stream-shaping knobs. The
/// folding flag matters because a folding interpreter emits a
/// genuinely different native stream than the stock one; the IR flag
/// selects the register-IR tier (IR interpreter / IR-backed JIT),
/// whose streams differ again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    name: &'static str,
    size: Size,
    mode: Mode,
    folding: bool,
    ir: bool,
}

/// Everything one recording pass produces, shared immutably.
#[derive(Debug)]
pub struct TapeEntry {
    /// The packed native-instruction stream.
    pub tape: Tape,
    /// The VM's run result (checksum, counters, profile, footprint).
    pub result: RunResult,
    /// Instruction counts taken during the recording pass.
    pub counts: CountingSink,
}

type Slot<V> = Arc<OnceLock<V>>;
type Memo<K, V> = OnceLock<Mutex<HashMap<K, Slot<V>>>>;

fn slot_of<K: std::hash::Hash + Eq + Copy, V>(map: &'static Memo<K, V>, key: K) -> Slot<V> {
    map.get_or_init(Default::default)
        .lock()
        .expect("tape cache poisoned")
        .entry(key)
        .or_default()
        .clone()
}

/// Returns the memoized program for `(spec, size)`, assembling it on
/// first use. All drivers share one `Arc<Program>` per benchmark/size.
pub fn program(spec: &Spec, size: Size) -> Arc<Program> {
    static PROGRAMS: Memo<(&'static str, Size), Arc<Program>> = OnceLock::new();
    slot_of(&PROGRAMS, (spec.name, size))
        .get_or_init(|| Arc::new((spec.build)(size)))
        .clone()
}

/// Returns the [`Workload`] wrapper for `(spec, size)` over the
/// memoized program.
pub fn workload(spec: &Spec, size: Size) -> Workload {
    Workload {
        spec: *spec,
        program: program(spec, size),
        size,
    }
}

/// Returns the memoized oracle for a workload, derived once from the
/// cached interpreter and JIT profiles (no extra profiling runs).
pub fn oracle(w: &Workload) -> Arc<OracleDecisions> {
    static ORACLES: Memo<(&'static str, Size), Arc<OracleDecisions>> = OnceLock::new();
    slot_of(&ORACLES, (w.spec.name, w.size))
        .get_or_init(|| {
            let interp = recorded(w, Mode::Interp);
            let jit = recorded(w, Mode::Jit);
            Arc::new(OracleDecisions::from_profiles(
                &interp.result.profile,
                &jit.result.profile,
            ))
        })
        .clone()
}

fn record(w: &Workload, mode: Mode, folding: bool, ir: bool) -> Arc<TapeEntry> {
    let cfg = match (mode, ir) {
        (Mode::Interp, false) => VmConfig::interpreter(),
        (Mode::Interp, true) => VmConfig::ir_interp(),
        (Mode::Jit, false) => VmConfig::jit(),
        (Mode::Jit, true) => VmConfig::ir_jit(),
        (Mode::Opt, false) => VmConfig::oracle(oracle(w).as_ref().clone()),
        (Mode::Opt, true) => unreachable!("no IR variant of the opt oracle"),
    };
    let cfg = if folding { cfg.with_folding() } else { cfg };
    let mut rec = TapeRecorder::new();
    let mut counts = CountingSink::new();
    let result = {
        let mut fan = FanoutSink::new().with(&mut rec).with(&mut counts);
        Vm::new(&w.program, cfg)
            .run(&mut fan)
            .expect("workload runs clean")
    };
    w.check(&result);
    Arc::new(TapeEntry {
        tape: rec.into_tape(),
        result,
        counts,
    })
}

/// One store slot: the shared once-cell plus an LRU stamp.
struct StoreSlot<V> {
    slot: Slot<V>,
    last_use: u64,
}

/// A bounded LRU store: slots keyed by [`Key`], with a logical clock
/// for recency ordering. Instantiated once for packed tapes and once
/// for decoded blocks, each against its own copy of the byte budget.
struct Store<V> {
    map: HashMap<Key, StoreSlot<V>>,
    tick: u64,
}

impl<V> Store<V> {
    fn new() -> Self {
        Store {
            map: HashMap::new(),
            tick: 0,
        }
    }

    /// Bumps the LRU stamp for `key` and hands out its slot.
    fn slot(&mut self, key: Key) -> Slot<V> {
        self.tick += 1;
        let tick = self.tick;
        let ts = self.map.entry(key).or_insert_with(|| StoreSlot {
            slot: Slot::default(),
            last_use: 0,
        });
        ts.last_use = tick;
        ts.slot.clone()
    }

    /// Drops least-recently-used initialized entries until the store
    /// fits in `budget`, never touching `keep` (the entry the caller
    /// is about to hand out). Uninitialized slots (work in flight) are
    /// free and never dropped. Holders of an evicted `Arc` keep it
    /// alive; the store just forgets it, so the next request rebuilds.
    fn enforce(&mut self, budget: u64, keep: Option<Key>, cost: impl Fn(&V) -> u64) {
        loop {
            let mut total = 0u64;
            let mut victim: Option<(u64, Key)> = None;
            for (k, ts) in &self.map {
                let Some(e) = ts.slot.get() else { continue };
                total += cost(e);
                if keep != Some(*k) && victim.is_none_or(|(lu, _)| ts.last_use < lu) {
                    victim = Some((ts.last_use, *k));
                }
            }
            if total <= budget {
                return;
            }
            let Some((_, k)) = victim else { return };
            self.map.remove(&k);
        }
    }
}

fn tape_store() -> &'static Mutex<Store<Arc<TapeEntry>>> {
    static TAPES: OnceLock<Mutex<Store<Arc<TapeEntry>>>> = OnceLock::new();
    TAPES.get_or_init(|| Mutex::new(Store::new()))
}

fn decoded_store() -> &'static Mutex<Store<Arc<AccessBlocks>>> {
    static DECODED: OnceLock<Mutex<Store<Arc<AccessBlocks>>>> = OnceLock::new();
    DECODED.get_or_init(|| Mutex::new(Store::new()))
}

/// Flat per-entry charge for everything around the packed tape (the
/// run result, profile, counting snapshot, map slot).
const ENTRY_OVERHEAD_BYTES: u64 = 4096;

/// The tape-store byte budget: `JRT_TAPE_BUDGET` (bytes), default
/// 4 GiB.
fn budget_bytes() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("JRT_TAPE_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4 * 1024 * 1024 * 1024)
    })
}

fn entry_cost(e: &TapeEntry) -> u64 {
    e.tape.size_bytes() as u64 + ENTRY_OVERHEAD_BYTES
}

/// Enforces the byte budget on the packed-tape store.
fn enforce_budget(budget: u64, keep: Option<Key>) {
    tape_store()
        .lock()
        .expect("tape cache poisoned")
        .enforce(budget, keep, |e| entry_cost(e));
}

/// Enforces the byte budget on the decoded-block store.
fn enforce_decoded_budget(budget: u64, keep: Option<Key>) {
    decoded_store()
        .lock()
        .expect("decoded cache poisoned")
        .enforce(budget, keep, |b| {
            b.size_bytes() as u64 + ENTRY_OVERHEAD_BYTES
        });
}

fn entry(w: &Workload, mode: Mode, folding: bool, ir: bool) -> Arc<TapeEntry> {
    let key = Key {
        name: w.spec.name,
        size: w.size,
        mode,
        folding,
        ir,
    };
    let slot = tape_store().lock().expect("tape cache poisoned").slot(key);
    // The record happens outside the store lock (other keys proceed
    // in parallel); the budget check runs after, so a giant fresh
    // tape can push out colder ones but is itself protected.
    let e = slot.get_or_init(|| record(w, mode, folding, ir)).clone();
    enforce_budget(budget_bytes(), Some(key));
    e
}

/// Returns the cached recording of `w` under `mode`, recording it on
/// first use. The entry is shared (`Arc`) across all callers.
pub fn recorded(w: &Workload, mode: Mode) -> Arc<TapeEntry> {
    entry(w, mode, false, false)
}

/// Like [`recorded`], but for the folding interpreter variant
/// (Section 4.4's picoJava-style stack-op folding), whose native
/// stream differs from the stock interpreter's.
pub fn recorded_folding(w: &Workload) -> Arc<TapeEntry> {
    entry(w, Mode::Interp, true, false)
}

/// Like [`recorded`], but for the register-IR tier: `Mode::Interp`
/// records the IR interpreter, `Mode::Jit` the IR-backed JIT. Both
/// emit genuinely different native streams than their stack-engine
/// counterparts.
pub fn recorded_ir(w: &Workload, mode: Mode) -> Arc<TapeEntry> {
    entry(w, mode, false, true)
}

/// Replays the cached `(w, mode)` stream into `sink` (recording it
/// first if needed) and returns the entry the replay came from.
pub fn replay(w: &Workload, mode: Mode, sink: &mut impl TraceSink) -> Arc<TapeEntry> {
    let e = recorded(w, mode);
    e.tape.replay(sink);
    e
}

/// Returns the cached decoded-block expansion of the `(w, mode)` tape,
/// decoding it (and recording the tape, if needed) on first use. The
/// blocks are shared (`Arc`) across all callers; the sweep drivers
/// iterate them instead of replaying the packed tape per pass.
pub fn decoded(w: &Workload, mode: Mode) -> Arc<AccessBlocks> {
    decoded_entry(w, mode, false)
}

/// Like [`decoded`], but over the register-IR tier's tape
/// (see [`recorded_ir`]).
pub fn decoded_ir(w: &Workload, mode: Mode) -> Arc<AccessBlocks> {
    decoded_entry(w, mode, true)
}

fn decoded_entry(w: &Workload, mode: Mode, ir: bool) -> Arc<AccessBlocks> {
    let key = Key {
        name: w.spec.name,
        size: w.size,
        mode,
        folding: false,
        ir,
    };
    let slot = decoded_store()
        .lock()
        .expect("decoded cache poisoned")
        .slot(key);
    // As with tapes, the expensive decode runs outside the store lock.
    let b = slot
        .get_or_init(|| Arc::new(AccessBlocks::from_tape(&entry(w, mode, false, ir).tape)))
        .clone();
    enforce_decoded_budget(budget_bytes(), Some(key));
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::RecordingSink;
    use jrt_workloads::{hello, suite_with_hello};

    fn hello_workload() -> Workload {
        let spec = suite_with_hello().remove(0);
        assert_eq!(spec.name, "hello");
        workload(&spec, Size::Tiny)
    }

    /// Serializes the tests that depend on the tape store's contents
    /// (sharing asserts an entry stays; eviction drops them all).
    fn store_lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().expect("test gate poisoned")
    }

    #[test]
    fn recorded_entry_is_shared() {
        let _g = store_lock();
        let w = hello_workload();
        let a = recorded(&w, Mode::Interp);
        let b = recorded(&w, Mode::Interp);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one entry");
        assert_eq!(a.counts.total(), a.tape.len());
        assert_eq!(a.result.exit_value, Some(hello::expected(Size::Tiny)));
    }

    #[test]
    fn eviction_then_rerecord_replays_identically() {
        let _g = store_lock();
        let w = hello_workload();
        let a = recorded(&w, Mode::Interp);
        let mut before = RecordingSink::new();
        a.tape.replay(&mut before);

        // A zero budget evicts every initialized entry.
        enforce_budget(0, None);
        let b = recorded(&w, Mode::Interp);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "entry must have been dropped and re-recorded"
        );

        let mut after = RecordingSink::new();
        b.tape.replay(&mut after);
        assert_eq!(
            before.events, after.events,
            "re-recording after eviction must reproduce the stream byte-for-byte"
        );
        assert_eq!(a.result.exit_value, b.result.exit_value);
    }

    #[test]
    fn budget_keeps_the_entry_just_requested() {
        let _g = store_lock();
        let w = hello_workload();
        let key = Key {
            name: w.spec.name,
            size: w.size,
            mode: Mode::Interp,
            folding: false,
            ir: false,
        };
        let _e = recorded(&w, Mode::Interp);
        // Even an impossible budget spares the protected key.
        enforce_budget(0, Some(key));
        let st = tape_store().lock().expect("tape cache poisoned");
        assert!(st.map.contains_key(&key));
    }

    #[test]
    fn replay_matches_direct_run() {
        let w = hello_workload();
        let mut direct = RecordingSink::new();
        let r = crate::runner::run_mode(&w.program, Mode::Jit, &mut direct);
        w.check(&r);

        let mut replayed = RecordingSink::new();
        let e = replay(&w, Mode::Jit, &mut replayed);
        assert_eq!(replayed.events, direct.events);
        assert_eq!(e.result.exit_value, r.exit_value);
        assert_eq!(e.counts.total(), direct.events.len() as u64);
    }

    #[test]
    fn folding_tape_differs_from_stock_interp() {
        let w = hello_workload();
        let stock = recorded(&w, Mode::Interp);
        let folded = recorded_folding(&w);
        assert!(folded.counts.total() < stock.counts.total());
    }

    #[test]
    fn decoded_blocks_are_shared_and_complete() {
        let w = hello_workload();
        let a = decoded(&w, Mode::Interp);
        let b = decoded(&w, Mode::Interp);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one decode");
        let e = recorded(&w, Mode::Interp);
        assert_eq!(a.len(), e.tape.len(), "every event must be decoded");
    }

    #[test]
    fn decoded_eviction_then_redecode_is_identical() {
        let w = hello_workload();
        let a = decoded(&w, Mode::Jit);
        enforce_decoded_budget(0, None);
        let b = decoded(&w, Mode::Jit);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "blocks must have been dropped and re-decoded"
        );
        assert_eq!(a.len(), b.len());
        for (ba, bb) in a.blocks().iter().zip(b.blocks()) {
            assert_eq!(ba.pc, bb.pc);
            assert_eq!(ba.addr, bb.addr);
            assert_eq!(ba.kind, bb.kind);
            assert_eq!(ba.phase, bb.phase);
        }
    }

    #[test]
    fn programs_are_memoized() {
        let spec = suite_with_hello().remove(0);
        let a = program(&spec, Size::Tiny);
        let b = program(&spec, Size::Tiny);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn opt_mode_uses_memoized_oracle() {
        let w = hello_workload();
        let o1 = oracle(&w);
        let o2 = oracle(&w);
        assert!(Arc::ptr_eq(&o1, &o2));
        let opt = recorded(&w, Mode::Opt);
        assert_eq!(opt.result.exit_value, Some(hello::expected(Size::Tiny)));
    }
}
