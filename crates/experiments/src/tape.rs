//! The record-once/replay-many tape cache behind every driver.
//!
//! The paper's measurement pipeline collected each benchmark's native
//! instruction stream **once** with Shade and then fed the recorded
//! trace to every simulator. The drivers in this crate historically
//! re-executed the VM per consumer instead — `run_all` regenerated the
//! same `(workload, mode)` stream up to a dozen times. This module
//! restores the paper's architecture: a process-global cache memoizes
//! one packed [`Tape`] (plus the [`RunResult`] and a [`CountingSink`]
//! snapshot of the recording pass) per `(workload, size, mode)` key,
//! and drivers [`replay`] from it at memory speed.
//!
//! Concurrency: keys are looked up under a brief mutex that hands out
//! an `Arc<OnceLock>` slot per key, and the expensive record happens
//! inside [`OnceLock::get_or_init`] *outside* that mutex — so two jobs
//! needing the same tape build it exactly once while jobs for other
//! keys proceed in parallel, which preserves the scheduler's
//! any-worker-count determinism (the cache only changes *when* a
//! stream is produced, never its contents).
//!
//! Assembled [`Program`]s are memoized the same way, so the eighteen
//! drivers stop re-assembling the suite once per driver, and the
//! Figure 1 oracle is derived once per workload from the cached
//! interpreter/JIT profiles instead of two fresh profiling runs per
//! call site.
//!
//! The tape store is bounded and tiered: cached tapes are charged
//! against a byte budget (`JRT_TAPE_BUDGET` bytes, default 4 GiB,
//! clamped to a 1 MiB floor — a zero budget would thrash re-records)
//! and the least-recently-used entries are **demoted to disk** when it
//! overflows (segment files under `JRT_TAPE_DIR`, default a per-process
//! temp directory, written and validated by content hash via
//! [`DiskTape`]). A later request for a demoted key promotes it back
//! from disk instead of re-recording; if the file fails validation the
//! store falls back to a fresh recording and counts the event
//! ([`disk_fallbacks`]) — recording is deterministic, so either path
//! reproduces the stream byte-identically (a property the tests pin
//! down).
//!
//! On top of the packed tapes sits a second memo layer: [`decoded`]
//! expands a tape once into flat structure-of-arrays
//! [`AccessBlocks`] (pc/addr/kind/phase arrays in ~64K-event chunks)
//! for the access-level consumers — the one-pass cache-sweep drivers
//! iterate those arrays instead of paying the varint decoder and a
//! virtual `accept` per event per pass. Decoded blocks are charged
//! against their own instance of the same LRU byte budget.

use crate::jobs::Workload;
use crate::runner::Mode;
use jrt_bytecode::Program;
use jrt_trace::{
    AccessBlock, AccessBlocks, CountingSink, DiskTape, FanoutSink, Tape, TapeRecorder, TraceSink,
};
use jrt_vm::{OracleDecisions, RunResult, Vm, VmConfig};
use jrt_workloads::{Size, Spec};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: workload identity plus the stream-shaping knobs. The
/// folding flag matters because a folding interpreter emits a
/// genuinely different native stream than the stock one; the IR flag
/// selects the register-IR tier (IR interpreter / IR-backed JIT),
/// whose streams differ again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    name: &'static str,
    size: Size,
    mode: Mode,
    folding: bool,
    ir: bool,
}

/// Everything one recording pass produces, shared immutably.
#[derive(Debug)]
pub struct TapeEntry {
    /// The packed native-instruction stream.
    pub tape: Tape,
    /// The VM's run result (checksum, counters, profile, footprint).
    pub result: RunResult,
    /// Instruction counts taken during the recording pass.
    pub counts: CountingSink,
}

type Slot<V> = Arc<OnceLock<V>>;
type Memo<K, V> = OnceLock<Mutex<HashMap<K, Slot<V>>>>;

fn slot_of<K: std::hash::Hash + Eq + Copy, V>(map: &'static Memo<K, V>, key: K) -> Slot<V> {
    map.get_or_init(Default::default)
        .lock()
        .expect("tape cache poisoned")
        .entry(key)
        .or_default()
        .clone()
}

/// Returns the memoized program for `(spec, size)`, assembling it on
/// first use. All drivers share one `Arc<Program>` per benchmark/size.
pub fn program(spec: &Spec, size: Size) -> Arc<Program> {
    static PROGRAMS: Memo<(&'static str, Size), Arc<Program>> = OnceLock::new();
    slot_of(&PROGRAMS, (spec.name, size))
        .get_or_init(|| Arc::new((spec.build)(size)))
        .clone()
}

/// Returns the [`Workload`] wrapper for `(spec, size)` over the
/// memoized program.
pub fn workload(spec: &Spec, size: Size) -> Workload {
    Workload {
        spec: *spec,
        program: program(spec, size),
        size,
    }
}

/// Returns the memoized oracle for a workload, derived once from the
/// cached interpreter and JIT profiles (no extra profiling runs).
pub fn oracle(w: &Workload) -> Arc<OracleDecisions> {
    static ORACLES: Memo<(&'static str, Size), Arc<OracleDecisions>> = OnceLock::new();
    slot_of(&ORACLES, (w.spec.name, w.size))
        .get_or_init(|| {
            let interp = recorded(w, Mode::Interp);
            let jit = recorded(w, Mode::Jit);
            Arc::new(OracleDecisions::from_profiles(
                &interp.result.profile,
                &jit.result.profile,
            ))
        })
        .clone()
}

fn record(w: &Workload, mode: Mode, folding: bool, ir: bool) -> Arc<TapeEntry> {
    let cfg = match (mode, ir) {
        (Mode::Interp, false) => VmConfig::interpreter(),
        (Mode::Interp, true) => VmConfig::ir_interp(),
        (Mode::Jit, false) => VmConfig::jit(),
        (Mode::Jit, true) => VmConfig::ir_jit(),
        (Mode::Opt, false) => VmConfig::oracle(oracle(w).as_ref().clone()),
        (Mode::Opt, true) => unreachable!("no IR variant of the opt oracle"),
    };
    let cfg = if folding { cfg.with_folding() } else { cfg };
    let mut rec = TapeRecorder::new();
    let mut counts = CountingSink::new();
    let result = {
        let mut fan = FanoutSink::new().with(&mut rec).with(&mut counts);
        Vm::new(&w.program, cfg)
            .run(&mut fan)
            .expect("workload runs clean")
    };
    w.check(&result);
    Arc::new(TapeEntry {
        tape: rec.into_tape(),
        result,
        counts,
    })
}

/// One store slot: the shared once-cell plus an LRU stamp.
struct StoreSlot<V> {
    slot: Slot<V>,
    last_use: u64,
}

/// A bounded LRU store: slots keyed by [`Key`], with a logical clock
/// for recency ordering. Instantiated once for packed tapes and once
/// for decoded blocks, each against its own copy of the byte budget.
struct Store<V> {
    map: HashMap<Key, StoreSlot<V>>,
    tick: u64,
}

impl<V> Store<V> {
    fn new() -> Self {
        Store {
            map: HashMap::new(),
            tick: 0,
        }
    }

    /// Bumps the LRU stamp for `key` and hands out its slot.
    fn slot(&mut self, key: Key) -> Slot<V> {
        self.tick += 1;
        let tick = self.tick;
        let ts = self.map.entry(key).or_insert_with(|| StoreSlot {
            slot: Slot::default(),
            last_use: 0,
        });
        ts.last_use = tick;
        ts.slot.clone()
    }

    /// Drops least-recently-used initialized entries until the store
    /// fits in `budget`, never touching `keep` (the entry the caller
    /// is about to hand out), and returns the evicted `(key, value)`
    /// pairs so the caller can demote them to a lower tier.
    /// Uninitialized slots (work in flight) are free and never
    /// dropped. Holders of an evicted `Arc` keep it alive; the store
    /// just forgets it, so the next request rebuilds.
    fn enforce(&mut self, budget: u64, keep: Option<Key>, cost: impl Fn(&V) -> u64) -> Vec<(Key, V)>
    where
        V: Clone,
    {
        let mut evicted = Vec::new();
        loop {
            let mut total = 0u64;
            let mut victim: Option<(u64, Key)> = None;
            for (k, ts) in &self.map {
                let Some(e) = ts.slot.get() else { continue };
                total += cost(e);
                if keep != Some(*k) && victim.is_none_or(|(lu, _)| ts.last_use < lu) {
                    victim = Some((ts.last_use, *k));
                }
            }
            if total <= budget {
                return evicted;
            }
            let Some((_, k)) = victim else { return evicted };
            if let Some(ts) = self.map.remove(&k) {
                if let Some(v) = ts.slot.get() {
                    evicted.push((k, v.clone()));
                }
            }
        }
    }
}

fn tape_store() -> &'static Mutex<Store<Arc<TapeEntry>>> {
    static TAPES: OnceLock<Mutex<Store<Arc<TapeEntry>>>> = OnceLock::new();
    TAPES.get_or_init(|| Mutex::new(Store::new()))
}

fn decoded_store() -> &'static Mutex<Store<Arc<AccessBlocks>>> {
    static DECODED: OnceLock<Mutex<Store<Arc<AccessBlocks>>>> = OnceLock::new();
    DECODED.get_or_init(|| Mutex::new(Store::new()))
}

/// Flat per-entry charge for everything around the packed tape (the
/// run result, profile, counting snapshot, map slot).
const ENTRY_OVERHEAD_BYTES: u64 = 4096;

/// Default tape-store byte budget: 4 GiB.
const DEFAULT_BUDGET_BYTES: u64 = 4 * 1024 * 1024 * 1024;

/// Budget floor. A zero (or near-zero) budget would evict every tape
/// the moment it lands and thrash demote/promote (or, historically,
/// re-record) cycles; requests below the floor are clamped, loudly.
const MIN_BUDGET_BYTES: u64 = 1024 * 1024;

/// Parses a `JRT_TAPE_BUDGET` override. Unset uses the default;
/// unparsable values warn and use the default; parsable values below
/// [`MIN_BUDGET_BYTES`] (including 0) warn and clamp to the floor.
fn parse_budget(raw: Option<&str>) -> u64 {
    let Some(raw) = raw else {
        return DEFAULT_BUDGET_BYTES;
    };
    match raw.trim().parse::<u64>() {
        Ok(v) if v >= MIN_BUDGET_BYTES => v,
        Ok(v) => {
            eprintln!(
                "warning: JRT_TAPE_BUDGET={v} is below the {MIN_BUDGET_BYTES}-byte floor; \
                 clamping to {MIN_BUDGET_BYTES} (a zero budget would thrash the tape store)"
            );
            MIN_BUDGET_BYTES
        }
        Err(_) => {
            eprintln!(
                "warning: JRT_TAPE_BUDGET={raw:?} is not a byte count; \
                 using the default {DEFAULT_BUDGET_BYTES}"
            );
            DEFAULT_BUDGET_BYTES
        }
    }
}

/// The tape-store byte budget: `JRT_TAPE_BUDGET` (bytes, clamped to
/// the 1 MiB floor), default 4 GiB.
pub fn budget_bytes() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| parse_budget(std::env::var("JRT_TAPE_BUDGET").ok().as_deref()))
}

fn entry_cost(e: &TapeEntry) -> u64 {
    e.tape.size_bytes() as u64 + ENTRY_OVERHEAD_BYTES
}

/// Enforces the byte budget on the packed-tape store; evicted entries
/// are demoted to the disk tier (outside the store lock).
fn enforce_budget(budget: u64, keep: Option<Key>) {
    let evicted = tape_store()
        .lock()
        .expect("tape cache poisoned")
        .enforce(budget, keep, |e| entry_cost(e));
    for (key, e) in evicted {
        demote(key, &e);
    }
}

/// Enforces the byte budget on the decoded-block store. Evicted
/// decodes are simply dropped — they rebuild from the (RAM- or
/// disk-tier) packed tape, which is far cheaper than re-recording.
fn enforce_decoded_budget(budget: u64, keep: Option<Key>) {
    decoded_store()
        .lock()
        .expect("decoded cache poisoned")
        .enforce(budget, keep, |b| {
            b.size_bytes() as u64 + ENTRY_OVERHEAD_BYTES
        });
}

/// One demoted entry: the on-disk tape plus the cheap side metadata
/// that promotion must restore (results and counts are tiny next to
/// the tape bytes).
#[derive(Debug, Clone)]
struct DiskEntry {
    disk: DiskTape,
    /// Logical-content fingerprint taken at demotion; promotion
    /// re-derives it from what it read back and refuses a mismatch.
    expect: u64,
    result: RunResult,
    counts: CountingSink,
}

fn disk_map() -> &'static Mutex<HashMap<Key, DiskEntry>> {
    static DISK: OnceLock<Mutex<HashMap<Key, DiskEntry>>> = OnceLock::new();
    DISK.get_or_init(Default::default)
}

/// Times an evicted tape was written to the disk tier.
static DISK_DEMOTIONS: AtomicU64 = AtomicU64::new(0);
/// Times a tape was promoted back from the disk tier.
static DISK_PROMOTIONS: AtomicU64 = AtomicU64::new(0);
/// Times a disk-tier read failed validation and fell back to a fresh
/// recording.
static DISK_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Evicted tapes written to the disk tier so far.
pub fn disk_demotions() -> u64 {
    DISK_DEMOTIONS.load(Ordering::Relaxed)
}

/// Tapes promoted back from the disk tier so far.
pub fn disk_promotions() -> u64 {
    DISK_PROMOTIONS.load(Ordering::Relaxed)
}

/// Disk-tier reads that failed validation (corrupt or unreadable
/// files) and fell back to re-recording. The fallback is counted, not
/// fatal: a damaged spill file can never poison results.
pub fn disk_fallbacks() -> u64 {
    DISK_FALLBACKS.load(Ordering::Relaxed)
}

/// The disk-tier directory: `JRT_TAPE_DIR`, default a per-process
/// directory under the system temp dir. `None` if it cannot be
/// created (the store then degrades to evict-and-re-record).
pub(crate) fn disk_dir() -> Option<&'static PathBuf> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::var_os("JRT_TAPE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("jrt-tapes-{}", std::process::id()))
            });
        match std::fs::create_dir_all(&dir) {
            Ok(()) => Some(dir),
            Err(e) => {
                eprintln!(
                    "warning: cannot create tape spill dir {}: {e}; \
                     evicted tapes will re-record instead",
                    dir.display()
                );
                None
            }
        }
    })
    .as_ref()
}

fn spill_file(key: Key) -> String {
    format!(
        "{}-{:?}-{:?}-fold{}-ir{}.tape",
        key.name, key.size, key.mode, key.folding as u8, key.ir as u8
    )
}

/// Writes an evicted entry to the disk tier. Holding the disk-map
/// lock across the write serializes concurrent demotions of the same
/// key; a failed write only warns — the entry just re-records later.
fn demote(key: Key, e: &TapeEntry) {
    let Some(dir) = disk_dir() else { return };
    let path = dir.join(spill_file(key));
    let mut map = disk_map().lock().expect("disk tier poisoned");
    match DiskTape::write(&path, &e.tape) {
        Ok(disk) => {
            DISK_DEMOTIONS.fetch_add(1, Ordering::Relaxed);
            map.insert(
                key,
                DiskEntry {
                    disk,
                    expect: jrt_trace::store::fingerprint(e.tape.len(), e.tape.segments()),
                    result: e.result.clone(),
                    counts: e.counts.clone(),
                },
            );
        }
        Err(err) => eprintln!(
            "warning: tape demotion to {} failed: {err}; will re-record on next use",
            path.display()
        ),
    }
}

/// Tries to promote a demoted entry back from disk. Validation
/// failures (corrupt segment, truncated index, fingerprint mismatch)
/// drop the spill entry, bump the fallback counter, and return `None`
/// so the caller re-records.
fn promote(key: Key) -> Option<Arc<TapeEntry>> {
    let entry = disk_map()
        .lock()
        .expect("disk tier poisoned")
        .get(&key)
        .cloned()?;
    let read = entry
        .disk
        .to_tape()
        .map_err(|e| e.to_string())
        .and_then(|t| {
            if jrt_trace::store::fingerprint(t.len(), t.segments()) == entry.expect {
                Ok(t)
            } else {
                Err("content fingerprint mismatch".into())
            }
        });
    match read {
        Ok(tape) => {
            DISK_PROMOTIONS.fetch_add(1, Ordering::Relaxed);
            Some(Arc::new(TapeEntry {
                tape,
                result: entry.result,
                counts: entry.counts,
            }))
        }
        Err(err) => {
            DISK_FALLBACKS.fetch_add(1, Ordering::Relaxed);
            disk_map().lock().expect("disk tier poisoned").remove(&key);
            eprintln!(
                "warning: disk-tier tape {} failed validation ({err}); re-recording",
                entry.disk.path().display()
            );
            None
        }
    }
}

fn entry(w: &Workload, mode: Mode, folding: bool, ir: bool) -> Arc<TapeEntry> {
    let key = Key {
        name: w.spec.name,
        size: w.size,
        mode,
        folding,
        ir,
    };
    let slot = tape_store().lock().expect("tape cache poisoned").slot(key);
    // The promote/record happens outside the store lock (other keys
    // proceed in parallel); the budget check runs after, so a giant
    // fresh tape can push out colder ones but is itself protected.
    let e = slot
        .get_or_init(|| promote(key).unwrap_or_else(|| record(w, mode, folding, ir)))
        .clone();
    enforce_budget(budget_bytes(), Some(key));
    e
}

/// Returns the cached recording of `w` under `mode`, recording it on
/// first use. The entry is shared (`Arc`) across all callers.
pub fn recorded(w: &Workload, mode: Mode) -> Arc<TapeEntry> {
    entry(w, mode, false, false)
}

/// Like [`recorded`], but for the folding interpreter variant
/// (Section 4.4's picoJava-style stack-op folding), whose native
/// stream differs from the stock interpreter's.
pub fn recorded_folding(w: &Workload) -> Arc<TapeEntry> {
    entry(w, Mode::Interp, true, false)
}

/// Like [`recorded`], but for the register-IR tier: `Mode::Interp`
/// records the IR interpreter, `Mode::Jit` the IR-backed JIT. Both
/// emit genuinely different native streams than their stack-engine
/// counterparts.
pub fn recorded_ir(w: &Workload, mode: Mode) -> Arc<TapeEntry> {
    entry(w, mode, false, true)
}

/// Replays the cached `(w, mode)` stream into `sink` (recording it
/// first if needed) and returns the entry the replay came from.
pub fn replay(w: &Workload, mode: Mode, sink: &mut impl TraceSink) -> Arc<TapeEntry> {
    let e = recorded(w, mode);
    e.tape.replay(sink);
    e
}

/// Returns the cached decoded-block expansion of the `(w, mode)` tape,
/// decoding it (and recording the tape, if needed) on first use. The
/// blocks are shared (`Arc`) across all callers; the sweep drivers
/// iterate them instead of replaying the packed tape per pass.
pub fn decoded(w: &Workload, mode: Mode) -> Arc<AccessBlocks> {
    decoded_entry(w, mode, false)
}

/// Like [`decoded`], but over the register-IR tier's tape
/// (see [`recorded_ir`]).
pub fn decoded_ir(w: &Workload, mode: Mode) -> Arc<AccessBlocks> {
    decoded_entry(w, mode, true)
}

/// Decoded-expansion cost per event: pc + addr (8 bytes each) plus
/// kind/phase/pc-region/addr-region bytes.
const DECODED_BYTES_PER_EVENT: u64 = 20;

/// Streams the `(w, mode)` access stream to `f` one decoded
/// [`AccessBlock`] at a time — the out-of-core consumer entry point
/// every sweep driver goes through.
///
/// When the full decoded expansion comfortably fits the tape budget
/// the blocks come from the shared [`decoded`] memo (repeated sweeps
/// over the same workload pay the decode once); otherwise the packed
/// tape is streamed block-by-block with O(one block) decoded state
/// ([`Tape::replay_stream`]). Both paths deliver byte-identical
/// blocks in the same order — the budget only picks the cheaper one.
pub fn for_each_block(w: &Workload, mode: Mode, mut f: impl FnMut(&AccessBlock)) {
    let e = recorded(w, mode);
    let decoded_est = e.tape.len().saturating_mul(DECODED_BYTES_PER_EVENT);
    if decoded_est.saturating_mul(2) <= budget_bytes() {
        for b in decoded(w, mode).blocks() {
            f(b);
        }
    } else {
        e.tape.replay_stream(f);
    }
}

fn decoded_entry(w: &Workload, mode: Mode, ir: bool) -> Arc<AccessBlocks> {
    let key = Key {
        name: w.spec.name,
        size: w.size,
        mode,
        folding: false,
        ir,
    };
    let slot = decoded_store()
        .lock()
        .expect("decoded cache poisoned")
        .slot(key);
    // As with tapes, the expensive decode runs outside the store lock.
    let b = slot
        .get_or_init(|| Arc::new(AccessBlocks::from_tape(&entry(w, mode, false, ir).tape)))
        .clone();
    enforce_decoded_budget(budget_bytes(), Some(key));
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::RecordingSink;
    use jrt_workloads::{hello, suite_with_hello};

    fn hello_workload() -> Workload {
        let spec = suite_with_hello().remove(0);
        assert_eq!(spec.name, "hello");
        workload(&spec, Size::Tiny)
    }

    /// Serializes the tests that depend on the tape store's contents
    /// (sharing asserts an entry stays; eviction drops them all).
    fn store_lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().expect("test gate poisoned")
    }

    #[test]
    fn recorded_entry_is_shared() {
        let _g = store_lock();
        let w = hello_workload();
        let a = recorded(&w, Mode::Interp);
        let b = recorded(&w, Mode::Interp);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one entry");
        assert_eq!(a.counts.total(), a.tape.len());
        assert_eq!(a.result.exit_value, Some(hello::expected(Size::Tiny)));
    }

    #[test]
    fn eviction_then_rerecord_replays_identically() {
        let _g = store_lock();
        let w = hello_workload();
        let a = recorded(&w, Mode::Interp);
        let mut before = RecordingSink::new();
        a.tape.replay(&mut before);

        // A zero budget evicts every initialized entry.
        enforce_budget(0, None);
        let b = recorded(&w, Mode::Interp);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "entry must have been dropped and re-recorded"
        );

        let mut after = RecordingSink::new();
        b.tape.replay(&mut after);
        assert_eq!(
            before.events, after.events,
            "re-recording after eviction must reproduce the stream byte-for-byte"
        );
        assert_eq!(a.result.exit_value, b.result.exit_value);
    }

    #[test]
    fn budget_keeps_the_entry_just_requested() {
        let _g = store_lock();
        let w = hello_workload();
        let key = Key {
            name: w.spec.name,
            size: w.size,
            mode: Mode::Interp,
            folding: false,
            ir: false,
        };
        let _e = recorded(&w, Mode::Interp);
        // Even an impossible budget spares the protected key.
        enforce_budget(0, Some(key));
        let st = tape_store().lock().expect("tape cache poisoned");
        assert!(st.map.contains_key(&key));
    }

    #[test]
    fn replay_matches_direct_run() {
        let w = hello_workload();
        let mut direct = RecordingSink::new();
        let r = crate::runner::run_mode(&w.program, Mode::Jit, &mut direct);
        w.check(&r);

        let mut replayed = RecordingSink::new();
        let e = replay(&w, Mode::Jit, &mut replayed);
        assert_eq!(replayed.events, direct.events);
        assert_eq!(e.result.exit_value, r.exit_value);
        assert_eq!(e.counts.total(), direct.events.len() as u64);
    }

    #[test]
    fn folding_tape_differs_from_stock_interp() {
        let w = hello_workload();
        let stock = recorded(&w, Mode::Interp);
        let folded = recorded_folding(&w);
        assert!(folded.counts.total() < stock.counts.total());
    }

    #[test]
    fn decoded_blocks_are_shared_and_complete() {
        let w = hello_workload();
        let a = decoded(&w, Mode::Interp);
        let b = decoded(&w, Mode::Interp);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one decode");
        let e = recorded(&w, Mode::Interp);
        assert_eq!(a.len(), e.tape.len(), "every event must be decoded");
    }

    #[test]
    fn decoded_eviction_then_redecode_is_identical() {
        let w = hello_workload();
        let a = decoded(&w, Mode::Jit);
        enforce_decoded_budget(0, None);
        let b = decoded(&w, Mode::Jit);
        assert!(
            !Arc::ptr_eq(&a, &b),
            "blocks must have been dropped and re-decoded"
        );
        assert_eq!(a.len(), b.len());
        for (ba, bb) in a.blocks().iter().zip(b.blocks()) {
            assert_eq!(ba.pc, bb.pc);
            assert_eq!(ba.addr, bb.addr);
            assert_eq!(ba.kind, bb.kind);
            assert_eq!(ba.phase, bb.phase);
        }
    }

    #[test]
    fn budget_parsing_clamps_and_defaults() {
        // Unset: default.
        assert_eq!(parse_budget(None), DEFAULT_BUDGET_BYTES);
        // Zero (the historical thrash case) clamps to the floor.
        assert_eq!(parse_budget(Some("0")), MIN_BUDGET_BYTES);
        // Below-floor values clamp too.
        assert_eq!(parse_budget(Some("1")), MIN_BUDGET_BYTES);
        assert_eq!(parse_budget(Some("1048575")), MIN_BUDGET_BYTES);
        // At or above the floor: taken literally.
        assert_eq!(parse_budget(Some("1048576")), MIN_BUDGET_BYTES);
        assert_eq!(parse_budget(Some("2097152")), 2 * 1024 * 1024);
        // Whitespace tolerated; garbage falls back to the default.
        assert_eq!(parse_budget(Some(" 4194304 ")), 4 * 1024 * 1024);
        assert_eq!(parse_budget(Some("4GiB")), DEFAULT_BUDGET_BYTES);
        assert_eq!(parse_budget(Some("")), DEFAULT_BUDGET_BYTES);
        assert_eq!(parse_budget(Some("-1")), DEFAULT_BUDGET_BYTES);
    }

    #[test]
    fn eviction_demotes_to_disk_and_promotes_back() {
        let _g = store_lock();
        let w = hello_workload();
        let key = Key {
            name: w.spec.name,
            size: w.size,
            mode: Mode::Interp,
            folding: false,
            ir: false,
        };
        let a = recorded(&w, Mode::Interp);
        let mut before = RecordingSink::new();
        a.tape.replay(&mut before);

        let demotions_0 = disk_demotions();
        let promotions_0 = disk_promotions();
        enforce_budget(0, None);
        assert!(disk_demotions() > demotions_0, "eviction must spill");
        assert!(
            disk_map()
                .lock()
                .expect("disk tier poisoned")
                .contains_key(&key),
            "spilled entry must be indexed"
        );

        let b = recorded(&w, Mode::Interp);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(disk_promotions() > promotions_0, "reload must promote");
        let mut after = RecordingSink::new();
        b.tape.replay(&mut after);
        assert_eq!(before.events, after.events);
        assert_eq!(a.result.exit_value, b.result.exit_value);
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn corrupt_spill_falls_back_to_rerecord() {
        let _g = store_lock();
        let w = hello_workload();
        let key = Key {
            name: w.spec.name,
            size: w.size,
            mode: Mode::Jit,
            folding: false,
            ir: false,
        };
        let a = recorded(&w, Mode::Jit);
        let mut before = RecordingSink::new();
        a.tape.replay(&mut before);
        enforce_budget(0, None);

        // Damage the spilled payload.
        let path = disk_map()
            .lock()
            .expect("disk tier poisoned")
            .get(&key)
            .expect("entry spilled")
            .disk
            .path()
            .to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let fallbacks_0 = disk_fallbacks();
        let b = recorded(&w, Mode::Jit);
        assert!(disk_fallbacks() > fallbacks_0, "fallback must be counted");
        assert!(
            !disk_map()
                .lock()
                .expect("disk tier poisoned")
                .contains_key(&key),
            "damaged spill entry must be forgotten"
        );
        let mut after = RecordingSink::new();
        b.tape.replay(&mut after);
        assert_eq!(
            before.events, after.events,
            "re-recording must reproduce the stream exactly"
        );
    }

    #[test]
    fn for_each_block_matches_decoded_blocks() {
        let w = hello_workload();
        let want = decoded(&w, Mode::Interp);
        let mut got: Vec<AccessBlock> = Vec::new();
        for_each_block(&w, Mode::Interp, |b| got.push(b.clone()));
        assert_eq!(got.len(), want.blocks().len());
        for (g, m) in got.iter().zip(want.blocks()) {
            assert_eq!(g.pc, m.pc);
            assert_eq!(g.addr, m.addr);
            assert_eq!(g.kind, m.kind);
            assert_eq!(g.phase, m.phase);
            assert_eq!(g.pc_region, m.pc_region);
            assert_eq!(g.addr_region, m.addr_region);
        }
    }

    #[test]
    fn programs_are_memoized() {
        let spec = suite_with_hello().remove(0);
        let a = program(&spec, Size::Tiny);
        let b = program(&spec, Size::Tiny);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn opt_mode_uses_memoized_oracle() {
        let w = hello_workload();
        let o1 = oracle(&w);
        let o2 = oracle(&w);
        assert!(Arc::ptr_eq(&o1, &o2));
        let opt = recorded(&w, Mode::Opt);
        assert_eq!(opt.result.exit_value, Some(hello::expected(Size::Tiny)));
    }
}
